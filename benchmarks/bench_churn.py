"""CHURN — fast-path behaviour under sustained control-plane churn.

HARMLESS keeps commodity software switches on the forwarding path
while controllers continuously reprogram them, so the fast path must
survive FlowMod streams, not just steady state.  Two experiments:

* **churn** — N exact flows serve a steady working set while a
  controller issues one FlowMod every few packets.  Two churn shapes
  (adds/deletes against a table the traffic never visits, and
  unrelated-mask adds into the hot table) × two invalidation policies:
  ``scoped`` (the dependency index: only dependent walks drop) vs
  ``flush`` (the pre-dependency-index behaviour: every mutation clears
  the whole microflow cache, emulated by an explicit ``invalidate()``
  after each mutation).  Measures wall-clock pps and cache hit rate.
* **masked scaling** — M masked (prefix) entries spread over 8
  distinct mask-sets, microflow cache disabled.  The staged-subtable
  classifier costs O(#mask-sets) per lookup, so pps should stay ~flat
  in M while the seed linear scan degrades.

Results go to ``results/churn.txt`` (human) and ``results/churn.json``
(machine; compared against ``baselines/churn.json`` by
``check_regression.py`` in CI).

Run standalone: ``PYTHONPATH=src python benchmarks/bench_churn.py
[--fast]`` — ``--fast`` is the CI smoke mode (smaller sizes).
"""

import json
import time

from repro.net.addresses import IPv4Address
from repro.net.build import udp_frame
from repro.netsim import Simulator
from repro.openflow import ApplyActions, FlowMod, Match, OutputAction
from repro.openflow import consts as c
from repro.softswitch import SoftSwitch

from common import (
    ACTIVE_FLOWS,
    BENCH_MAC_DST,
    BENCH_MAC_SRC,
    MEASURE_REPEATS,
    RESULTS_DIR,
    ZERO_COST,
    keep_best,
    save_result,
    steady_traffic,
    wire_counting_sinks,
)
from bench_fastpath import install_exact_flows
#: One control-plane mutation every CHURN_EVERY packets.
CHURN_EVERY = 4
#: Churn entries kept installed before the oldest is deleted again.
CHURN_WINDOW = 64

FULL_CHURN = {"flows": 1_000, "packets": 8_000}
#: Smoke rows feed the CI regression gate: sized for hundreds of ms
#: per run so scheduler bursts cannot halve a row.
SMOKE_CHURN = {"flows": 200, "packets": 4_000}

#: masked-tier size -> packets measured (cache disabled, so the seed
#: linear baseline is the wall-clock limiter at large M).
FULL_SCALING = {250: 4_000, 1_000: 2_000, 4_000: 1_000}
SMOKE_SCALING = {250: 2_000, 4_000: 2_000}

#: Distinct prefix lengths = distinct mask-sets in the masked tier.
PREFIX_LENGTHS = tuple(range(17, 25))


def build_switch(packets):
    sim = Simulator()
    # Specialization off: this bench pins the interpreted fast path's
    # churn behaviour (the compiled tier 0 has bench_specialized.py).
    switch = SoftSwitch(
        sim, "dut", datapath_id=1, cost_model=ZERO_COST,
        enable_specialization=False,
    )
    sinks = wire_counting_sinks(sim, switch, packets)
    return sim, switch, sinks


# ----------------------------------------------------------------- churn


def churn_messages(kind, sequence):
    """The FlowMod(s) for churn step *sequence* (install + windowed delete).

    ``unrelated_table``: adds land in table 3, which the traffic's
    pipeline walk never visits.  ``unrelated_mask``: masked adds land in
    the hot table 0, but under a 172.x prefix no traffic key matches.
    Both are the incremental-reprogramming common case: control-plane
    work that should not disturb the forwarding fast path.
    """
    if kind == "unrelated_table":

        def make(seq):
            return FlowMod(
                table_id=3,
                match=Match(eth_type=0x0800, udp_dst=(seq % 60_000) + 1),
                priority=50,
                instructions=[],
            )

    else:

        def make(seq):
            return FlowMod(
                table_id=0,
                match=Match(
                    eth_type=0x0800,
                    ipv4_dst=((172 << 24) | ((seq % 4096) << 8), 0xFFFFFF00),
                ),
                priority=200,
                instructions=[],
            )

    messages = [make(sequence)]
    if sequence >= CHURN_WINDOW:
        expired = make(sequence - CHURN_WINDOW)
        messages.append(
            FlowMod(
                table_id=expired.table_id,
                command=c.OFPFC_DELETE_STRICT,
                match=expired.match,
                priority=expired.priority,
            )
        )
    return messages


def run_churn(num_flows, packets, kind, policy):
    sim, switch, sinks = build_switch(packets)
    install_exact_flows(switch, num_flows)
    frames = steady_traffic(num_flows, packets, ACTIVE_FLOWS)
    churn_raw = []
    sequence = 0
    for _ in range(packets // CHURN_EVERY):
        churn_raw.append([m.to_bytes() for m in churn_messages(kind, sequence)])
        sequence += 1
    inject = switch.inject
    handle = switch.handle_message
    cache = switch.flow_cache
    flush = policy == "flush"
    churn_mods = 0
    start = time.perf_counter()
    for index, frame in enumerate(frames):
        if index % CHURN_EVERY == 0 and index // CHURN_EVERY < len(churn_raw):
            for raw in churn_raw[index // CHURN_EVERY]:
                handle(raw)
                churn_mods += 1
            if flush:
                cache.invalidate()  # the pre-dependency-index behaviour
        inject(frame, 4)
    sim.run()
    elapsed = time.perf_counter() - start
    delivered = sum(sink.count for sink in sinks)
    assert delivered == packets, f"{kind}/{policy}: {delivered}/{packets} delivered"
    return {
        "kind": kind,
        "policy": policy,
        "flows": num_flows,
        "packets": packets,
        "churn_mods": churn_mods,
        "pps": packets / elapsed,
        "elapsed_s": elapsed,
        "hit_rate": cache.hit_rate,
        "cache": cache.stats(),
    }


# -------------------------------------------------------- masked scaling


def scaling_network(index):
    """Entry *index*'s (network, mask, prefix_len, priority).

    Entries spread round-robin over PREFIX_LENGTHS; within one prefix
    length the networks are laid out disjointly, and priority equals
    the prefix length (longest-prefix-match idiom), so the /24 tier
    always wins for the bench traffic.
    """
    bits = PREFIX_LENGTHS[index % len(PREFIX_LENGTHS)]
    position = index // len(PREFIX_LENGTHS)
    mask = (0xFFFFFFFF << (32 - bits)) & 0xFFFFFFFF
    network = ((10 << 24) | (position << (32 - bits))) & mask
    return network, mask, bits


def build_masked_switch(num_entries, config, packets):
    sim = Simulator()
    switch = SoftSwitch(
        sim,
        "dut",
        datapath_id=1,
        cost_model=ZERO_COST,
        enable_fast_path=(config != "linear"),
        enable_specialization=False,
    )
    if config == "classifier":
        switch.flow_cache = None  # measure the masked tier, not the cache
    sinks = wire_counting_sinks(sim, switch, packets)
    for index in range(num_entries):
        network, mask, bits = scaling_network(index)
        message = FlowMod(
            match=Match(eth_type=0x0800, ipv4_dst=(network, mask)),
            priority=bits,
            instructions=[ApplyActions(actions=(OutputAction(port=index % 3 + 1),))],
        )
        assert switch.handle_message(message.to_bytes()) == []
    drop = FlowMod(match=Match(), priority=0, instructions=[])
    assert switch.handle_message(drop.to_bytes()) == []
    return sim, switch, sinks


def masked_traffic(num_entries, packets):
    """Frames destined to /24 entries spread across the table."""
    targets = [
        index
        for index in range(num_entries)
        if PREFIX_LENGTHS[index % len(PREFIX_LENGTHS)] == 24
    ]
    active = [targets[i * len(targets) // ACTIVE_FLOWS] for i in range(ACTIVE_FLOWS)]
    frames = []
    for index in active:
        network, _, _ = scaling_network(index)
        frames.append(
            udp_frame(
                BENCH_MAC_SRC,
                BENCH_MAC_DST,
                IPv4Address("10.255.0.1"),
                IPv4Address(network | 1),
                1000,
                2000,
                b"x" * 32,
            )
        )
    return [frames[i % len(frames)] for i in range(packets)]


def run_scaling(num_entries, packets, config):
    sim, switch, sinks = build_masked_switch(num_entries, config, packets)
    frames = masked_traffic(num_entries, packets)
    inject = switch.inject
    start = time.perf_counter()
    for frame in frames:
        inject(frame, 4)
    sim.run()
    elapsed = time.perf_counter() - start
    delivered = sum(sink.count for sink in sinks)
    assert delivered == packets, f"{config}@{num_entries}: {delivered}/{packets}"
    table = switch.tables[0]
    return {
        "config": config,
        "masked_entries": num_entries,
        "subtables": table.subtable_count,
        "packets": packets,
        "pps": packets / elapsed,
        "elapsed_s": elapsed,
    }


# ------------------------------------------------------------- reporting


def run_suite(churn_params, scaling_sizes):
    best_churn = {}
    best_scaling = {}
    for _ in range(MEASURE_REPEATS):
        for kind in ("unrelated_table", "unrelated_mask"):
            for policy in ("scoped", "flush"):
                keep_best(
                    best_churn,
                    (kind, policy),
                    run_churn(
                        churn_params["flows"], churn_params["packets"], kind, policy
                    ),
                )
        for num_entries, packets in scaling_sizes.items():
            for config in ("linear", "classifier"):
                keep_best(
                    best_scaling,
                    (num_entries, config),
                    run_scaling(num_entries, packets, config),
                )
    return list(best_churn.values()), list(best_scaling.values())


def render(churn_rows, scaling_rows, mode):
    lines = [
        "=" * 76,
        "CHURN: fast path under sustained control-plane reprogramming",
        "=" * 76,
        f"mode: {mode}; 1 FlowMod per {CHURN_EVERY} packets, "
        f"working set {ACTIVE_FLOWS} flows",
        "",
        f"{'churn kind':>16} {'policy':>7} {'flows':>6} {'mods':>6} "
        f"{'pps':>12} {'hit rate':>9} {'dropped walks':>14}",
    ]
    for row in churn_rows:
        lines.append(
            f"{row['kind']:>16} {row['policy']:>7} {row['flows']:>6} "
            f"{row['churn_mods']:>6} {row['pps']:>12.0f} {row['hit_rate']:>8.1%} "
            f"{row['cache']['paths_dropped']:>14}"
        )
    lines += [
        "",
        "MASKED SCALING: staged subtables vs seed linear scan (no cache)",
        f"{'masked entries':>15} {'subtables':>10} {'linear pps':>12} "
        f"{'classifier pps':>15} {'ratio':>7}",
    ]
    by_size = {}
    for row in scaling_rows:
        by_size.setdefault(row["masked_entries"], {})[row["config"]] = row
    for size in sorted(by_size):
        pair = by_size[size]
        ratio = pair["classifier"]["pps"] / pair["linear"]["pps"]
        lines.append(
            f"{size:>15} {pair['classifier']['subtables']:>10} "
            f"{pair['linear']['pps']:>12.0f} {pair['classifier']['pps']:>15.0f} "
            f"{ratio:>6.1f}x"
        )
    return "\n".join(lines)


def save_json(churn_rows, scaling_rows, mode):
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "bench": "churn",
        "mode": mode,
        "churn": churn_rows,
        "masked_scaling": scaling_rows,
    }
    path = RESULTS_DIR / "churn.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def check_acceptance(churn_rows, scaling_rows):
    """The ISSUE acceptance criteria, asserted on every run."""
    by_case = {(row["kind"], row["policy"]): row for row in churn_rows}
    for kind in ("unrelated_table", "unrelated_mask"):
        scoped = by_case[(kind, "scoped")]
        flush = by_case[(kind, "flush")]
        assert scoped["hit_rate"] > 0.8, (kind, scoped["hit_rate"])
        assert flush["hit_rate"] < 0.3, (kind, flush["hit_rate"])
        assert scoped["cache"]["full_invalidations"] == 0
    sizes = sorted({row["masked_entries"] for row in scaling_rows})
    small, large = sizes[0], sizes[-1]
    pps = {
        (row["config"], row["masked_entries"]): row["pps"] for row in scaling_rows
    }
    classifier_decay = pps[("classifier", large)] / pps[("classifier", small)]
    linear_decay = pps[("linear", large)] / pps[("linear", small)]
    # The staged tier holds its rate as the masked table grows; the
    # linear scan decays roughly with the table size.
    assert classifier_decay > 0.5, classifier_decay
    assert linear_decay < classifier_decay / 2, (linear_decay, classifier_decay)


def test_churn_acceptance():
    """Acceptance: >80% hit rate under churn, bounded masked lookups."""
    churn_rows, scaling_rows = run_suite(SMOKE_CHURN, SMOKE_SCALING)
    check_acceptance(churn_rows, scaling_rows)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="CI smoke: smaller sizes"
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.fast else "full"
    churn_rows, scaling_rows = run_suite(
        SMOKE_CHURN if args.fast else FULL_CHURN,
        SMOKE_SCALING if args.fast else FULL_SCALING,
    )
    check_acceptance(churn_rows, scaling_rows)
    save_result("churn", render(churn_rows, scaling_rows, mode))
    path = save_json(churn_rows, scaling_rows, mode)
    print(f"JSON archived at {path}")


if __name__ == "__main__":
    main()
