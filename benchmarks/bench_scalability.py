"""XPAR-SCALE — translator scaling with port count.

Rule counts, setup time (simulated management-plane operations) and
the rule-count comparison against the merged-pipeline ablation (no
SS_1: VLAN handling folded into the controller program, costing
VLAN-aware copies of every policy rule).  No paper numbers; shape-only.
"""

import time

import pytest

from repro.core import PortVlanMap
from repro.core.translator import generate_translator_rules, verify_translator_rules

from common import save_result

PORT_COUNTS = [4, 8, 16, 48, 128, 512]
#: Policy size assumed for the merged-pipeline ablation (rules a
#: typical controller program keeps per switch).
POLICY_RULES = 50


def translator_rule_counts():
    rows = []
    for ports in PORT_COUNTS:
        port_map = PortVlanMap.allocate(list(range(1, ports + 1)))
        started = time.perf_counter()
        rules = generate_translator_rules(
            port_map,
            trunk_port=10_000,
            patch_port_of={p: p for p in port_map.ports},
        )
        check = verify_translator_rules(rules)
        elapsed = time.perf_counter() - started
        assert check.ok
        # Merged ablation: every policy rule needs a VLAN-qualified
        # variant per port (match must include the tag), plus the
        # push/pop handling folded into each output — lower bound:
        merged_rules = POLICY_RULES * ports
        rows.append((ports, len(rules.flow_mods), merged_rules, elapsed))
    return rows


def test_translator_scaling(benchmark):
    rows = benchmark(translator_rule_counts)
    lines = [
        "=" * 72,
        "XPAR-SCALE: SS_1 rule count vs ports (and merged-pipeline ablation)",
        "=" * 72,
        f"{'ports':>6s} {'SS_1 rules':>11s} {'merged rules':>13s} {'gen+verify':>12s}",
    ]
    for ports, ss1_rules, merged, elapsed in rows:
        lines.append(
            f"{ports:6d} {ss1_rules:11d} {merged:13d} {elapsed * 1e3:10.2f}ms"
        )
    lines.append(
        "\nSS_1 grows 2 rules/port (linear, policy-independent); the merged"
        "\nvariant multiplies the *policy* by the port count — the reason"
        "\nthe paper separates SS_1 from SS_2."
    )
    save_result("scalability", "\n".join(lines))
    for ports, ss1_rules, merged, _ in rows:
        assert ss1_rules == 2 * ports
        assert merged > ss1_rules  # the ablation always loses


def test_many_switches_one_server(benchmark):
    """VLAN-space check: several legacy switches share one server."""

    def allocate_fleet(num_switches=24, ports_each=48):
        reserved = set()
        maps = []
        for _ in range(num_switches):
            pmap = PortVlanMap.allocate(
                list(range(1, ports_each + 1)), reserved=reserved
            )
            reserved.update(pmap.vlans)
            maps.append(pmap)
        return maps, reserved

    maps, reserved = benchmark(allocate_fleet)
    # All maps disjoint: one 4k VLAN space supports the whole fleet.
    assert len(reserved) == 24 * 48
    assert max(reserved) < 4094
