"""XPAR-MIGR — migration strategies over a campus network.

The paper's §1 argument quantified: flag-day vs incremental-COTS vs
HARMLESS waves over a fleet of edge switches.  Reports capex, total and
worst-case downtime, and SDN-coverage progression.  No paper numbers;
shape-only (HARMLESS must dominate on capex and downtime).
"""

import pytest

from repro.core import MigrationPlanner, MigrationStrategy, SwitchSite

from common import save_result

FLEET = [
    SwitchSite(name=f"edge{i:02d}", ports=48 if i % 3 else 24, ports_in_use=20 + i % 16)
    for i in range(12)
]


def run_plans():
    planner = MigrationPlanner(FLEET)
    return planner.compare_all(wave_size=3)


def test_migration_strategies(benchmark):
    plans = benchmark(run_plans)
    lines = [
        "=" * 72,
        f"XPAR-MIGR: migrating {len(FLEET)} edge switches to SDN",
        "=" * 72,
        f"{'strategy':<18s} {'capex':>10s} {'downtime':>10s} {'worst wave':>11s} {'waves':>6s}",
    ]
    for name, plan in plans.items():
        lines.append(
            f"{name:<18s} ${plan.total_capex:9,.0f} "
            f"{plan.total_downtime_s:9.0f}s {plan.max_single_downtime_s:10.0f}s "
            f"{plan.num_waves:6d}"
        )
    lines.append("\ncoverage curve (harmless-waves):")
    for wave, ports in plans["harmless-waves"].coverage_curve():
        lines.append(f"  after wave {wave}: {ports} SDN ports")
    lines.append("\n" + plans["harmless-waves"].describe())
    save_result("migration", "\n".join(lines))

    harmless = plans["harmless-waves"]
    cots = plans["incremental-cots"]
    flag_day = plans["flag-day"]
    assert harmless.total_capex < cots.total_capex
    assert harmless.total_capex < flag_day.total_capex
    assert harmless.total_downtime_s < flag_day.total_downtime_s
    assert flag_day.max_single_downtime_s >= cots.max_single_downtime_s
    # Incremental strategies reach full coverage gradually.
    curve = harmless.coverage_curve()
    assert len(curve) == 4
    assert curve[-1][1] == sum(site.ports_in_use for site in FLEET)
