"""RESILIENCE — convergence time and loss per injected fault class.

Every other bench measures steady state; this one measures what happens
when the steady state breaks.  Four event classes are injected into a
leaf-spine and a ring fabric (the ring running live 802.1D spanning
tree from :mod:`repro.legacy.stp`, its closing link unblocked):

* ``flap``     — an inter-switch link fails and (leaf-spine) returns;
  the ring row measures the STP reroute onto the formerly blocked port
  while the link is still down.
* ``crash``    — a switch power-cycles.  The leaf-spine row crashes a
  *migrated* site (legacy half black-holes, both S4 datapaths lose
  their flow tables) and recovery replays the HARMLESS bring-up; the
  ring row crashes a legacy switch and recovery is an STP cold start.
* ``controller_loss`` — a migrated site's control channel black-holes
  for a window.  Reactive flows carry ``idle_timeout`` so the outage
  actually bites: once they expire, table misses die against the dead
  channel until the channel returns.
* ``midwave``  — the flap fires *during* the HARMLESS rollout: waves
  keep migrating while the fault is live, and the fleet must still
  verify clean after recovery (the paper's "transitioning must be
  harmless" claim, under failure).
* ``boundary_flap`` — the sharded-engine fault class: a 64-edge
  leaf-spine split across 2 shards flaps the very trunk the partition
  severs, and reconvergence is scored through the collective
  :meth:`ShardedFleet.await_reconvergence` loop over a fixed 8-host
  probe panel (one host per spine, so half the ordered pairs cross the
  shard boundary; a full 4032-pair sweep at this scale is both
  congestion-bound and minutes of wall-clock).

Each row reports ``convergence_s`` — simulated time from the row's
measurement anchor (see EXPERIMENTS.md: fault onset, restore instant,
or deep-outage point, per event class) to the end of the first fully
clean reachability sweep, at 0.25 s sweep granularity — and
``frames_lost``, the probe pairs that failed across the sweeps on the
way there.  Both are **pure simulated-time metrics**: identical on any
machine, so ``check_regression.py`` gates them with zero machine
tolerance against ``baselines/resilience.json``, and ``--fast`` runs
the very same sizes (it exists only for CLI uniformity with the other
benches).

Run standalone: ``PYTHONPATH=src python benchmarks/bench_resilience.py
[--fast]``.
"""

import json

from repro.apps import LearningSwitchApp
from repro.controller import Controller
from repro.core import HarmlessFleet
from repro.fabric import leaf_spine_fabric, ring_fabric
from repro.netsim import FaultInjector

from common import RESULTS_DIR, save_result

#: Reachability-sweep window: one sweep every quarter simulated second.
SWEEP_WINDOW_S = 0.25
#: A row that has not reconverged by this much simulated time is a bug.
DEADLINE_S = 10.0
#: Link-flap hold (long enough that mid-wave migrations run under it).
FLAP_HOLD_S = 0.5
#: Switch-crash hold.
CRASH_HOLD_S = 0.5
#: Controller-channel outage and the idle gap that expires the reactive
#: flows first (idle_timeout is an OpenFlow uint16 — whole seconds).
OUTAGE_HOLD_S = 2.0
OUTAGE_IDLE_GAP_S = 1.5
FLOW_IDLE_TIMEOUT_S = 1

LEAF_SPINE = dict(edges=4, spines=1, hosts_per_edge=2)
RING = dict(switches=4, hosts_per_switch=2)


def build_leaf_spine(idle_timeout: int = 0):
    fabric = leaf_spine_fabric(**LEAF_SPINE)
    controller = Controller(fabric.sim)
    controller.add_app(LearningSwitchApp(idle_timeout=idle_timeout))
    fleet = HarmlessFleet(fabric, controller=controller, wave_size=2)
    return fabric, fleet


def build_ring(idle_timeout: int = 0):
    """A ring running live STP, settled past its initial election."""
    fabric = ring_fabric(stp=True, **RING)
    settle = max(tree.settle_s() for tree in fabric.stp.values())
    fabric.sim.run(until=fabric.sim.now + settle + 0.5)
    controller = Controller(fabric.sim)
    controller.add_app(LearningSwitchApp(idle_timeout=idle_timeout))
    fleet = HarmlessFleet(fabric, controller=controller, wave_size=2)
    return fabric, fleet


def channel_of(fleet, deployment):
    """The control channel serving a deployment's SS_2."""
    return next(
        dp.channel
        for dp in fleet.controller.datapaths.values()
        if dp.channel.switch is deployment.s4.ss2
    )


def measure(fleet, topology: str, event: str, injector) -> dict:
    report = fleet.await_reconvergence(
        event=event, window_s=SWEEP_WINDOW_S, deadline_s=DEADLINE_S
    )
    assert report.converged, (
        f"{topology}/{event}: no reconvergence within {DEADLINE_S}s "
        f"({report.probes_lost} probes lost; log {injector.log})"
    )
    return {
        "topology": topology,
        "event": event,
        "convergence_s": report.convergence_s,
        "frames_lost": report.probes_lost,
        "sweeps": report.sweeps,
        "pairs_per_sweep": report.pairs_per_sweep,
    }


# -------------------------------------------------------------- leaf-spine


def leaf_spine_flap() -> dict:
    """Trunk flap on the migrated fabric; measured from the restore."""
    fabric, fleet = build_leaf_spine()
    fleet.migrate_all(verify=True, strict=True)
    sim = fabric.sim
    injector = FaultInjector(sim)
    at = sim.now + 0.01
    injector.link_flap(fabric.trunk_links[0], at, hold_s=FLAP_HOLD_S)
    sim.run(until=at + FLAP_HOLD_S)
    return measure(fleet, "leaf-spine", "flap", injector)


def leaf_spine_crash() -> dict:
    """A migrated site power-cycles; measured from the restart."""
    fabric, fleet = build_leaf_spine()
    fleet.migrate_all(verify=True, strict=True)
    sim = fabric.sim
    injector = FaultInjector(sim)
    site = next(iter(fleet.deployments))
    at = sim.now + 0.01
    injector.deployment_crash(
        fleet.deployments[site], fleet.controller, at, hold_s=CRASH_HOLD_S
    )
    sim.run(until=at + CRASH_HOLD_S)
    return measure(fleet, "leaf-spine", "crash", injector)


def leaf_spine_controller_loss() -> dict:
    """Control channel dies; measured from the deep-outage point."""
    fabric, fleet = build_leaf_spine(idle_timeout=FLOW_IDLE_TIMEOUT_S)
    fleet.migrate_all(verify=True, strict=True)
    sim = fabric.sim
    injector = FaultInjector(sim)
    site = next(iter(fleet.deployments))
    channel = channel_of(fleet, fleet.deployments[site])
    at = sim.now + 0.01
    injector.controller_loss(channel, at, hold_s=OUTAGE_HOLD_S)
    # Idle past the flow timeout so the datapath actually depends on
    # the (dead) controller again, then measure through the recovery.
    sim.run(until=at + OUTAGE_IDLE_GAP_S)
    return measure(fleet, "leaf-spine", "controller_loss", injector)


def leaf_spine_midwave() -> dict:
    """Flap under a live rollout; waves keep landing during the fault."""
    fabric, fleet = build_leaf_spine()
    fleet.migrate_next_wave(verify=True)
    sim = fabric.sim
    injector = FaultInjector(sim)
    at = sim.now + 0.01
    injector.link_flap(fabric.trunk_links[0], at, hold_s=FLAP_HOLD_S)
    sim.run(until=at + 0.005)
    while not fleet.complete:
        fleet.migrate_next_wave(verify=False)
    sim.run(until=at + FLAP_HOLD_S)
    row = measure(fleet, "leaf-spine", "midwave", injector)
    final = fleet.verify_reachability()
    assert final.ok, f"post-recovery sweep failed: {final.describe()}"
    return row


# -------------------------------------------------------------------- ring


def ring_flap() -> dict:
    """Cut a live ring link; STP reroutes through the blocked port.

    Measured from the cut — the interesting dynamics (loss-of-light
    election, the ALTERNATE port walking to FORWARDING) all happen
    while the link is still down.  The fabric stays legacy: this is
    the pure 802.1D story, no SDN involved.
    """
    fabric, fleet = build_ring()
    assert fleet.verify_reachability().ok, "ring not converged pre-fault"
    sim = fabric.sim
    injector = FaultInjector(sim)
    at = sim.now + 0.01
    injector.link_flap(fabric.trunk_links[0], at, hold_s=DEADLINE_S)
    sim.run(until=at)
    return measure(fleet, "ring", "flap", injector)


def ring_crash() -> dict:
    """A legacy ring switch power-cycles; recovery is an STP cold start.

    Neighbours detect the crash by BPDU silence (max-age) because the
    crashed switch's ports stay physically up — a hung supervisor, not
    pulled cables.
    """
    fabric, fleet = build_ring()
    assert fleet.verify_reachability().ok, "ring not converged pre-fault"
    sim = fabric.sim
    injector = FaultInjector(sim)
    switch = next(iter(fabric.sites.values())).switch
    at = sim.now + 0.01
    injector.switch_crash(switch, at, hold_s=CRASH_HOLD_S)
    sim.run(until=at + CRASH_HOLD_S)
    return measure(fleet, "ring", "crash", injector)


def ring_controller_loss() -> dict:
    """Controller outage on a migrated ring site (STP stays live)."""
    fabric, fleet = build_ring(idle_timeout=FLOW_IDLE_TIMEOUT_S)
    fleet.migrate_all(verify=True, strict=True)
    sim = fabric.sim
    injector = FaultInjector(sim)
    site = next(iter(fleet.deployments))
    channel = channel_of(fleet, fleet.deployments[site])
    at = sim.now + 0.01
    injector.controller_loss(channel, at, hold_s=OUTAGE_HOLD_S)
    sim.run(until=at + OUTAGE_IDLE_GAP_S)
    return measure(fleet, "ring", "controller_loss", injector)


def ring_midwave() -> dict:
    """Ring-link flap while the rollout migrates the remaining waves."""
    fabric, fleet = build_ring(idle_timeout=FLOW_IDLE_TIMEOUT_S)
    fleet.migrate_next_wave(verify=True)
    sim = fabric.sim
    injector = FaultInjector(sim)
    at = sim.now + 0.01
    injector.link_flap(fabric.trunk_links[1], at, hold_s=FLAP_HOLD_S)
    sim.run(until=at + 0.005)
    while not fleet.complete:
        fleet.migrate_next_wave(verify=False)
    sim.run(until=at + FLAP_HOLD_S)
    row = measure(fleet, "ring", "midwave", injector)
    final = fleet.verify_reachability()
    assert final.ok, f"post-recovery sweep failed: {final.describe()}"
    return row


# ----------------------------------------------------------------- sharded

SHARDED_EDGES = 64
SHARDED_SPINES = 8
SHARDED_SHARDS = 2
SHARDED_TRUNK_PROP_S = 50e-6
#: After the ~0.45 s rollout plus the 2 s panel pre-sweep.
SHARDED_FLAP_AT = 3.0
#: Probe panel: one host per spine (edges home round-robin onto the
#: spines, so edges 1..8 cover spine 1..8) — half the ordered pairs
#: cross the severed spine-chain link.
SHARDED_PANEL = [f"edge{n}-h1" for n in range(1, SHARDED_SPINES + 1)]


def sharded_boundary_flap() -> dict:
    """Flap the one trunk the 2-shard partition severs, mid-traffic.

    The fault plan is SPMD — every replica schedules the identical
    flap inside its build callable — and scoring starts at the onset
    (like the ring row): the first sweeps run against the dead
    boundary, so the loss is the cross-shard pair set until the
    restore lands.
    """
    from repro.fabric import ShardedFabric, leaf_spine_fabric
    from repro.fabric.partition import partition_fabric
    from repro.netsim import Simulator

    def build_plain(sim):
        fabric = leaf_spine_fabric(
            edges=SHARDED_EDGES,
            spines=SHARDED_SPINES,
            hosts_per_edge=1,
            sim=sim,
        )
        for link in fabric.trunk_links:
            link.propagation_delay_s = SHARDED_TRUNK_PROP_S
        return fabric

    # The builders are deterministic, so the cut trunk's build index
    # picks the same link in every replica.
    boundary = (
        partition_fabric(build_plain(Simulator()), SHARDED_SHARDS)
        .cuts[0]
        .index
    )

    def build_with_flap(sim):
        fabric = build_plain(sim)
        FaultInjector(sim).link_flap(
            fabric.trunk_links[boundary],
            at_s=SHARDED_FLAP_AT,
            hold_s=FLAP_HOLD_S,
        )
        return fabric

    with ShardedFabric(
        build_with_flap, shards=SHARDED_SHARDS, backend="thread"
    ) as sharded:
        fleet = sharded.fleet(wave_size=8)
        fleet.migrate_all(verify=False)
        pre = fleet.verify_reachability(host_names=SHARDED_PANEL)
        assert pre["ok"], f"panel unreachable pre-fault: {pre['lost'][:5]}"
        assert sharded.stats()["now"] < SHARDED_FLAP_AT, "flap time too early"
        sharded.run(until=SHARDED_FLAP_AT + 0.005)
        report = fleet.await_reconvergence(
            event="boundary_flap",
            window_s=SWEEP_WINDOW_S,
            deadline_s=DEADLINE_S,
            host_names=SHARDED_PANEL,
        )
        stats = sharded.stats()
    assert report.converged, (
        f"sharded/boundary_flap: no reconvergence within {DEADLINE_S}s "
        f"({report.probes_lost} probes lost)"
    )
    assert stats["shadow_drops"] == 0, "slimmed replica leaked traffic"
    return {
        "topology": f"leaf-spine-{SHARDED_EDGES}",
        "event": "boundary_flap",
        "shards": SHARDED_SHARDS,
        "convergence_s": report.convergence_s,
        "frames_lost": report.probes_lost,
        "sweeps": report.sweeps,
        "pairs_per_sweep": report.pairs_per_sweep,
    }


ROWS = [
    leaf_spine_flap,
    leaf_spine_crash,
    leaf_spine_controller_loss,
    leaf_spine_midwave,
    ring_flap,
    ring_crash,
    ring_controller_loss,
    ring_midwave,
    sharded_boundary_flap,
]


def run_suite() -> list:
    return [row_fn() for row_fn in ROWS]


def render(rows: list, mode: str) -> str:
    lines = [
        "=" * 76,
        "RESILIENCE: convergence time and probe loss per injected fault",
        "=" * 76,
        f"mode: {mode}; sweep window {SWEEP_WINDOW_S}s, "
        "all metrics pure simulated time (machine-independent)",
        "",
        f"{'topology':>10} {'event':>16} {'convergence':>12} "
        f"{'frames lost':>12} {'sweeps':>7} {'pairs':>6}",
    ]
    for row in rows:
        lines.append(
            f"{row['topology']:>10} {row['event']:>16} "
            f"{row['convergence_s'] * 1e3:>9.0f} ms "
            f"{row['frames_lost']:>12} {row['sweeps']:>7} "
            f"{row['pairs_per_sweep']:>6}"
        )
    return "\n".join(lines)


def save_json(rows: list, mode: str):
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {"bench": "resilience", "mode": mode, "rows": rows}
    path = RESULTS_DIR / "resilience.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="accepted for CI uniformity; sizes are identical either way "
        "(the metrics are deterministic simulated time)",
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.fast else "full"
    rows = run_suite()
    save_result("resilience", render(rows, mode=mode))
    path = save_json(rows, mode=mode)
    print(f"JSON archived at {path}")


if __name__ == "__main__":
    main()
