"""FIG1 — Reproduce Figure 1: architecture, SS_1 flow table, worked example.

Regenerates the paper's figure content as text: the HARMLESS-S4
composite, the "Flow table of SS_1", and the green-dashed-arrow trace
of the DMZ example (Host 1 -> Host 2 permitted to talk only to each
other): tag 101 on ingress, pop at SS_1, policy at SS_2, push 102 on
the way back, untagged delivery at Host 2.
"""

import pytest

from repro.apps import DmzPolicyApp, Vm
from repro.net import IPv4Address, MACAddress
from repro.netsim import Capture

from common import build_harmless_site, save_result


def make_dmz_apps():
    vms = [
        Vm(
            name=f"vm{i + 1}",
            ip=IPv4Address(f"10.0.0.{i + 1}"),
            mac=MACAddress(0x020000000001 + i),
            port=i + 1,
        )
        for i in range(4)
    ]
    return [DmzPolicyApp(vms=vms, allowed_pairs={("vm1", "vm2")})]


def run_fig1():
    sim, hosts, deployment, _ = build_harmless_site(4, apps_factory=make_dmz_apps)
    h1, h2, h3, h4 = hosts
    legacy = deployment.legacy_switch

    trunk_capture = Capture("trunk").attach(legacy.port(deployment.trunk_port))
    host_capture = Capture("host2").attach(h2.port0)

    h1.ping(h2.ip)  # the green dashed arrow
    h3.ping(h4.ip)  # denied by the DMZ policy
    sim.run(until=3.0)

    report = [
        "=" * 72,
        "FIG1: HARMLESS architecture reproduction",
        "=" * 72,
        deployment.describe(),
        "",
        deployment.s4.dump(),
        "",
        "-- trunk trace (tagged hairpin traffic) --",
        trunk_capture.format_trace(),
        "",
        "-- Host 2 access-port trace (untagged delivery) --",
        host_capture.format_trace(),
        "",
        f"DMZ result: h1<->h2 pings ok={len(h1.rtts())}, "
        f"h3->h4 lost={sum(1 for r in h3.ping_results if r.lost)}",
    ]
    text = "\n".join(report)

    vlans_on_trunk = {
        entry.frame.vlan_id for entry in trunk_capture if entry.frame.vlan
    }
    return text, {
        "h1_pings_ok": len(h1.rtts()),
        "h3_pings_lost": sum(1 for r in h3.ping_results if r.lost),
        "trunk_vlans": vlans_on_trunk,
        "host2_saw_tags": any(e.frame.vlan for e in host_capture),
        "port_map_vlans": set(deployment.port_map.vlans),
    }


def test_fig1_architecture(benchmark):
    text, checks = benchmark(run_fig1)
    save_result("fig1_architecture", text)
    # The worked example holds: permitted pair talks, denied pair doesn't.
    assert checks["h1_pings_ok"] == 1
    assert checks["h3_pings_lost"] == 1
    # Tagging and hairpinning visible on the trunk, invisible to hosts.
    assert checks["trunk_vlans"] <= checks["port_map_vlans"]
    assert len(checks["trunk_vlans"]) >= 2  # both directions tagged
    assert not checks["host2_saw_tags"]
