"""FABRIC — aggregate throughput of a fully migrated multi-switch fabric.

Every other bench measures one switch; this one measures the *network*:
a leaf-spine fabric of legacy edge switches is migrated wave by wave by
the :class:`HarmlessFleet`, one traffic station is attached per edge
pod, and a zipf-weighted cross-pod burst mix is pushed through the
fabric.  Every frame crosses three migrated hops (source edge S4 ->
spine S4 -> destination edge S4), each hop re-coalescing the burst
(legacy egress buffering -> trunk -> ``SoftSwitch.process_batch``), so
the whole PR 1-4 stack — burst pipeline, microflow cache and the SS_1
compiled tier — is exercised per hop.

Reported per fabric size (2/4/8 edge switches):

* ``pps`` — aggregate frames delivered per wall-clock second (median
  across ``MEASURE_REPEATS`` passes; gated by ``check_regression.py``
  against ``baselines/fabric.json``);
* ``hit_rate`` — aggregate SS_2 microflow hit rate across all hops
  (machine-independent, gated absolutely);
* ``packet_ins_migration`` / ``packet_ins_steady`` — controller load
  while the fleet migrates + primes vs during the measured run (the
  steady number should stay ~0: reactive installs happen once).

Run standalone: ``PYTHONPATH=src python benchmarks/bench_fabric.py
[--fast]`` — ``--fast`` is the CI smoke mode.

``--shards N`` switches to the **sharded** suite instead: the fabric is
partitioned at pod boundaries (:mod:`repro.fabric.partition`) and run
as N parallel per-shard event loops in forked worker processes with
the v2 conservative-lookahead sync (skip-ahead rounds, coalesced
boundary pickles, slimmed foreign replicas).  Results land in a
separate artefact (``results/fabric_sharded.json``, gated against
``baselines/fabric_sharded.json``).  Full mode runs the scaling sweep
— every shard count in {1, 2, 4} up to N on every fabric size in
``SHARDED_FULL_SIZES`` (64/128/256 edges) — and reports
``speedup_vs_1shard`` per multi-shard row plus the v2 sync counters
(rounds, skipped rounds, records/bytes exchanged, stubbed sites).
``--edges E`` / ``--packets P`` pin a single configuration instead
(the nightly 4-shard 128-edge smoke uses this).  Note the speedup is
only meaningful on a multi-core machine — the sync protocol is the
same regardless, so single-core CI still exercises the full code
path, just without parallel gain.
"""

import json
import statistics
import time

from repro.core import HarmlessFleet
from repro.fabric import leaf_spine_fabric
from repro.softswitch import DatapathCostModel
from repro.traffic import (
    BurstSource,
    announcement_frame,
    burst_schedule,
    cross_pod_flows,
    interleave_bursts,
    zipf_weights,
)

from common import MEASURE_REPEATS, RESULTS_DIR, save_result

#: Edge-switch counts per mode -> frames measured per run.
FULL_SIZES = {2: 12_000, 4: 12_000, 8: 12_000}
SMOKE_SIZES = {2: 4_000, 4: 4_000}

#: Sharded-suite sizes (the tentpole scale: 64-256 switches).  Full
#: mode sweeps every size x every shard count in {1, 2, 4} up to
#: ``--shards``; packet counts are sized for the single-core CI runner.
SHARDED_FULL_SIZES = {64: 24_000, 128: 24_000, 256: 24_000}
SHARDED_SMOKE_SIZES = {16: 8_000, 24: 8_000}
#: Destination pods each source pod targets in the sharded mix
#: (all-pairs is quadratic at 64 pods; 8 peers saturates every trunk).
SHARDED_PEERS_PER_POD = 8

#: Frames per coalesced burst (the PR 3/4 sweet spot).
BURST_SIZE = 32
#: Distinct 5-tuples per ordered pod pair.
FLOWS_PER_PAIR = 4
#: Zipf skew of the cross-pod mix.
TRAFFIC_SKEW = 1.0

ZERO_COST = DatapathCostModel.zero()


def build_fabric(edges: int):
    """A fully migrated leaf-spine fabric with one station per pod."""
    fabric = leaf_spine_fabric(
        edges=edges,
        spines=1,
        hosts_per_edge=1,
        gen_ports_per_edge=1,
        processing_delay_s=0.0,
        host_bandwidth_bps=None,
        trunk_bandwidth_bps=None,
        queue_frames=1_000_000,
    )
    fleet = HarmlessFleet(
        fabric,
        wave_size=2,
        cost_model=ZERO_COST,
        queue_frames=1_000_000,
    )
    fleet.migrate_all(verify=True, strict=True)
    stations = []
    for index, site in enumerate(fabric.edge_sites()):
        station = BurstSource(fabric.sim, f"gen{index}")
        fabric.attach_station(site.name, station, bandwidth_bps=None)
        stations.append(station)
    return fabric, fleet, stations


def prime(fabric, fleet, stations, flows) -> None:
    """Announce every destination, then run one frame per flow.

    After this, every SS_2 on every path holds the reactive flow rules
    and the measured run is pure data plane (steady state).
    """
    sim = fabric.sim
    for flow in flows:
        stations[flow.dst_pod].port0.send(announcement_frame(flow.spec))
    sim.run(until=sim.now + 0.5)
    for flow in flows:
        stations[flow.src_pod].port0.send(flow.spec.frame(payload_len=32))
    sim.run(until=sim.now + 0.5)


def pod_bursts(stations, flows, packets: int, start_s: float):
    """Per-pod zipf burst schedules totalling *packets* frames."""
    pods = len(stations)
    per_pod = packets // pods
    all_bursts = []
    for pod in range(pods):
        specs = [flow.spec for flow in flows if flow.src_pod == pod]
        schedule = burst_schedule(
            rate_pps=1e6,
            duration_s=per_pod / 1e6,
            burst_size=BURST_SIZE,
            start_s=start_s,
        )
        bursts = interleave_bursts(
            specs,
            schedule,
            seed=pod,
            weights=zipf_weights(len(specs), skew=TRAFFIC_SKEW),
            payload_len=32,
            train_len=4,
        )
        all_bursts.append(bursts)
    return all_bursts


def aggregate_cache_stats(fleet) -> "tuple[int, int]":
    """(hits, lookups) summed over every migrated SS_2 datapath."""
    hits = lookups = 0
    for deployment in fleet.deployments.values():
        stats = deployment.s4.ss2.stats()["cache"]
        hits += stats["hits"]
        lookups += stats["hits"] + stats["misses"]
    return hits, lookups


def run_one(edges: int, packets: int) -> dict:
    fabric, fleet, stations = build_fabric(edges)
    sim = fabric.sim
    app = fleet.controller.apps[0]
    flows = cross_pod_flows(pods=edges, per_pair=FLOWS_PER_PAIR, seed=edges)
    prime(fabric, fleet, stations, flows)
    packet_ins_migration = app.packet_ins_handled

    bursts_per_pod = pod_bursts(stations, flows, packets, start_s=sim.now + 1e-3)
    injected = sum(
        len(frames) for bursts in bursts_per_pod for _, frames in bursts
    )
    rx_before = sum(station.rx_count for station in stations)
    hits_before, lookups_before = aggregate_cache_stats(fleet)

    start = time.perf_counter()
    for station, bursts in zip(stations, bursts_per_pod):
        station.start(bursts)
    sim.run()
    elapsed = time.perf_counter() - start

    delivered = sum(station.rx_count for station in stations) - rx_before
    assert delivered == injected, f"edges={edges}: {delivered}/{injected}"
    hits, lookups = aggregate_cache_stats(fleet)
    return {
        "config": "leaf-spine",
        "edges": edges,
        "hops": 3,
        "packets": injected,
        "pps": injected / elapsed,
        "elapsed_s": elapsed,
        "hit_rate": (
            (hits - hits_before) / (lookups - lookups_before)
            if lookups > lookups_before
            else 0.0
        ),
        "packet_ins_migration": packet_ins_migration,
        "packet_ins_steady": app.packet_ins_handled - packet_ins_migration,
    }


def run_suite(sizes: dict) -> list:
    samples: "dict[int, list[dict]]" = {}
    for _ in range(MEASURE_REPEATS):
        for edges, packets in sizes.items():
            samples.setdefault(edges, []).append(run_one(edges, packets))
    rows = []
    for edges, runs in sorted(samples.items()):
        row = dict(runs[0])
        row["pps"] = statistics.median(run["pps"] for run in runs)
        row.pop("elapsed_s")
        rows.append(row)
    return rows


def render(rows: list, mode: str) -> str:
    lines = [
        "=" * 76,
        "FABRIC: aggregate pps across a fully migrated leaf-spine fabric",
        "=" * 76,
        f"mode: {mode}; burst {BURST_SIZE}, {FLOWS_PER_PAIR} flows/pod-pair, "
        "3 migrated hops per frame",
        "",
        f"{'edges':>6} {'pkts':>7} {'pps':>12} {'ss2 hit rate':>13} "
        f"{'pkt-ins (mig)':>14} {'pkt-ins (steady)':>17}",
    ]
    for row in rows:
        lines.append(
            f"{row['edges']:>6} {row['packets']:>7} {row['pps']:>12.0f} "
            f"{row['hit_rate']:>12.1%} {row['packet_ins_migration']:>14} "
            f"{row['packet_ins_steady']:>17}"
        )
    return "\n".join(lines)


def save_json(rows: list, mode: str):
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {"bench": "fabric", "mode": mode, "rows": rows}
    path = RESULTS_DIR / "fabric.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


# --------------------------------------------------------------------------
# Sharded suite (--shards N): parallel per-pod event loops
# --------------------------------------------------------------------------


def sharded_spines(edges: int) -> int:
    """Spine count for the sharded fabrics — fixed per edge count (so
    shards=1 and shards=N time the *same* topology), one spine per 8
    edges, floor 2 so a 2-shard partition always exists."""
    return max(2, edges // 8)


#: Trunk propagation in the sharded fabrics.  The lookahead window (==
#: min cut-link propagation) bounds how far shards run between sync
#: barriers; 50 us models long inter-pod trunks (~10 km fiber) and keeps
#: the barrier rate low.  Identical for every shard count, so the
#: speedup comparison stays apples-to-apples.
SHARDED_TRUNK_PROP_S = 50e-6


def make_sharded_build(edges: int):
    """The deterministic ``sim -> Fabric`` callable every shard replays."""

    def build(sim):
        fabric = leaf_spine_fabric(
            edges=edges,
            spines=sharded_spines(edges),
            hosts_per_edge=1,
            gen_ports_per_edge=1,
            processing_delay_s=0.0,
            host_bandwidth_bps=None,
            trunk_bandwidth_bps=None,
            queue_frames=1_000_000,
            sim=sim,
        )
        for link in fabric.trunk_links:
            link.propagation_delay_s = SHARDED_TRUNK_PROP_S
        return fabric

    return build


def sharded_panel(edges: int) -> "list[str]":
    """Host names for the post-migration sanity sweep.

    All-pairs reachability is quadratic in hosts and each ARP floods
    the whole fabric, so the sweep probes a fixed panel of <= 8 hosts
    instead: one edge per evenly spaced spine, which spreads the panel
    across every shard cluster (clusters are contiguous spine-chain
    arcs, and edge *s* homes onto spine *s*).
    """
    spines = sharded_spines(edges)
    chosen = []
    for index in range(8):
        spine = 1 + round(index * (spines - 1) / 7)
        if spine not in chosen:
            chosen.append(spine)
    return [f"edge{spine}-h1" for spine in chosen]


def _staggered_singles(frames_with_pods, base_s: float):
    """One single-frame burst per entry, 2 us apart (no same-instant
    injections, so shard runs stay tie-free)."""
    per_pod: "dict[int, list]" = {}
    for offset, (pod, frame) in enumerate(frames_with_pods):
        per_pod.setdefault(pod, []).append((base_s + offset * 2e-6, [frame]))
    return per_pod


def run_one_sharded(edges: int, packets: int, shards: int) -> dict:
    from repro.fabric import ShardedFabric

    build = make_sharded_build(edges)
    backend = "fork" if shards > 1 else "thread"
    with ShardedFabric(build, shards=shards, backend=backend) as sharded:
        fleet = sharded.fleet(
            record_packet_ins=False,
            wave_size=4,
            cost_model=ZERO_COST,
            queue_frames=1_000_000,
        )
        fleet.migrate_all(verify=False)
        sweep = fleet.verify_reachability(host_names=sharded_panel(edges))
        assert sweep["ok"], f"edges={edges} shards={shards}: {sweep['lost'][:5]}"

        edge_names = [site.name for site in sharded.reference.edge_sites()]
        for pod, name in enumerate(edge_names):
            sharded.attach_station(name, f"gen{pod}", bandwidth_bps=None)
        flows = cross_pod_flows(
            pods=edges,
            per_pair=FLOWS_PER_PAIR,
            seed=edges,
            peers_per_pod=min(SHARDED_PEERS_PER_POD, edges - 1),
        )

        # Prime: announce every destination, then one frame per flow —
        # after this the measured run is pure data plane, as in the
        # single-process suite.  Announcements are deduped per station
        # MAC (all flows into a pod share it): each one floods the
        # whole fabric, which dominates prime time at 256 edges.
        base = sharded.stats()["now"]
        seen_macs = set()
        unique_dst = [
            flow
            for flow in flows
            if not (
                flow.spec.dst_mac in seen_macs or seen_macs.add(flow.spec.dst_mac)
            )
        ]
        announcements = _staggered_singles(
            [
                (flow.dst_pod, announcement_frame(flow.spec))
                for flow in unique_dst
            ],
            base + 1e-3,
        )
        for pod, bursts in announcements.items():
            sharded.start_station(edge_names[pod], 0, bursts)
        sharded.run()
        base = sharded.stats()["now"]
        warmup = _staggered_singles(
            [(flow.src_pod, flow.spec.frame(payload_len=32)) for flow in flows],
            base + 1e-3,
        )
        for pod, bursts in warmup.items():
            sharded.start_station(edge_names[pod], 0, bursts)
        sharded.run()

        samples = []
        injected_total = 0
        for _ in range(MEASURE_REPEATS):
            start_s = sharded.stats()["now"] + 1e-3
            # pod_bursts only reads len() of its first argument.
            bursts_per_pod = pod_bursts(edge_names, flows, packets, start_s)
            injected = sum(
                len(frames)
                for bursts in bursts_per_pod
                for _, frames in bursts
            )
            rx_before = sum(
                row["rx"] for row in sharded.delivered().values()
            )
            start = time.perf_counter()
            for name, bursts in zip(edge_names, bursts_per_pod):
                sharded.start_station(name, 0, bursts)
            sharded.run()
            elapsed = time.perf_counter() - start
            delivered = (
                sum(row["rx"] for row in sharded.delivered().values())
                - rx_before
            )
            assert delivered == injected, (
                f"edges={edges} shards={shards}: {delivered}/{injected}"
            )
            samples.append(injected / elapsed)
            injected_total += injected
        stats = sharded.stats()
        assert stats["shadow_drops"] == 0
    return {
        "config": "leaf-spine-sharded",
        "edges": edges,
        "spines": sharded_spines(edges),
        "shards": shards,
        "backend": backend,
        "packets": injected_total // MEASURE_REPEATS,
        "pps": statistics.median(samples),
        "sync_rounds": stats["sync_rounds"],
        "rounds_skipped": stats["rounds_skipped"],
        "frames_exported": stats["frames_exported"],
        "records_exported": stats["records_exported"],
        "bytes_exchanged": stats["bytes_exchanged"],
        "stub_sites": stats["stub_sites"],
        "stub_hosts": stats["stub_hosts"],
    }


def run_sharded_suite(sizes: dict, shards: int, sweep_counts: bool):
    """One row per (edges, shard count).

    *sweep_counts* runs every shard count in {1, 2, 4} up to *shards*
    on each fabric size (the scaling sweep) and annotates every
    multi-shard row with ``speedup_vs_1shard``; otherwise only
    *shards* itself is measured.
    """
    rows = []
    for edges, packets in sorted(sizes.items()):
        if sweep_counts:
            counts = sorted({c for c in (1, 2, 4) if c < shards} | {shards})
        else:
            counts = [shards]
        baseline_pps = None
        for count in counts:
            row = run_one_sharded(edges, packets, count)
            if count == 1:
                baseline_pps = row["pps"]
            elif baseline_pps:
                row["speedup_vs_1shard"] = row["pps"] / baseline_pps
            rows.append(row)
    return rows


def render_sharded(rows: list, mode: str) -> str:
    lines = [
        "=" * 76,
        "FABRIC-SHARDED: parallel per-pod event loops, "
        "conservative-lookahead sync",
        "=" * 76,
        f"mode: {mode}; burst {BURST_SIZE}, {FLOWS_PER_PAIR} flows/pod-pair, "
        f"<= {SHARDED_PEERS_PER_POD} peer pods/source, fork workers",
        "",
        f"{'edges':>6} {'shards':>7} {'pkts':>7} {'pps':>10} "
        f"{'rounds':>7} {'skipped':>8} {'exported':>9} {'KiB xchg':>9} "
        f"{'stubs':>6} {'speedup':>8}",
    ]
    for row in rows:
        speedup = (
            f"{row['speedup_vs_1shard']:>7.2f}x"
            if "speedup_vs_1shard" in row
            else f"{'-':>8}"
        )
        lines.append(
            f"{row['edges']:>6} {row['shards']:>7} {row['packets']:>7} "
            f"{row['pps']:>10.0f} {row['sync_rounds']:>7} "
            f"{row['rounds_skipped']:>8} {row['frames_exported']:>9} "
            f"{row['bytes_exchanged'] / 1024:>9.0f} {row['stub_sites']:>6} "
            f"{speedup}"
        )
    return "\n".join(lines)


def save_json_sharded(rows: list, mode: str):
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {"bench": "fabric_sharded", "mode": mode, "rows": rows}
    path = RESULTS_DIR / "fabric_sharded.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="CI smoke: small fabrics only"
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="run the sharded suite with N parallel shard workers "
        "(writes results/fabric_sharded.json instead of fabric.json); "
        "full mode sweeps every shard count in {1,2,4} up to N",
    )
    parser.add_argument(
        "--edges",
        type=int,
        default=None,
        metavar="E",
        help="sharded suite only: run a single fabric size of E edge "
        "switches instead of the mode's size table",
    )
    parser.add_argument(
        "--packets",
        type=int,
        default=None,
        metavar="P",
        help="sharded suite only: frames per measured pass (default: "
        "the mode's table value, or 8000 with --edges in smoke mode)",
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.fast else "full"
    if args.shards is None and (args.edges or args.packets):
        parser.error("--edges/--packets need --shards")
    if args.shards is not None:
        if args.shards < 1:
            parser.error("--shards must be >= 1")
        if args.edges is not None:
            packets = args.packets or (8_000 if args.fast else 24_000)
            sizes = {args.edges: packets}
        else:
            sizes = dict(SHARDED_SMOKE_SIZES if args.fast else SHARDED_FULL_SIZES)
            if args.packets is not None:
                sizes = {edges: args.packets for edges in sizes}
        rows = run_sharded_suite(sizes, args.shards, sweep_counts=not args.fast)
        save_result("fabric_sharded", render_sharded(rows, mode=mode))
        path = save_json_sharded(rows, mode=mode)
    else:
        rows = run_suite(SMOKE_SIZES if args.fast else FULL_SIZES)
        save_result("fabric", render(rows, mode=mode))
        path = save_json(rows, mode=mode)
    print(f"JSON archived at {path}")


if __name__ == "__main__":
    main()
