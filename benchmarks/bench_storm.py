"""STORM — containment latency and collateral loss under overload.

Three overload classes, each driven against a legacy-only fabric and a
part-migrated (hybrid) one, with the protection machinery off vs armed:

* ``storm``          — a broadcast storm (:meth:`FaultInjector.storm`)
  blasts a ring running live 802.1D while a mid-storm trunk cut forces
  an STP reroute under storm pressure.  Armed rows carry
  :class:`repro.legacy.StormControl` on the legacy switches and the
  same meter as ``flood_guard`` on every migrated SS_2, so the storm
  is contained on *both* sides of the legacy/SDN boundary; the hybrid
  row also arms table-miss suppression and the per-datapath packet-in
  limiter so the storm's control-plane echo stays bounded.
* ``fdb_pressure``   — a MAC-churn train (65 536 distinct source MACs,
  :func:`mac_churn_bursts`) against CAM-sized FDBs (256 entries):
  memory stays bounded at capacity, learning never refuses, and
  traffic to evicted MACs degrades to flooding
  (``flood_fallbacks``), not loss.  The hybrid variant bounds the
  per-source packet-in flood with the channel limiter.
* ``packetin_flood`` — a repeating miss train against a migrated
  fabric: unprotected, every repeat is a packet-in; armed, the
  miss-suppression negative cache plus the packet-in token bucket cut
  controller work by orders of magnitude while the post-flood sweep
  still converges clean.

Each row reports ``convergence_s`` (simulated time from the row's
anchor — the mid-storm cut, or the end of the injected train — to the
first fully clean reachability sweep) and ``frames_lost`` (probe pairs
failed on the way there).  Both are **pure simulated time**, identical
on any machine, so ``check_regression.py`` gates them against
``baselines/storm.json`` with zero machine tolerance; ``--fast`` runs
the same sizes (CLI uniformity only).  A sharded 64-edge class proves
containment composes with the parallel engine (and that the slimmed
replicas leak nothing: ``shadow_drops == 0``).

Run standalone: ``PYTHONPATH=src python benchmarks/bench_storm.py
[--fast]``.
"""

import json

from repro.apps import LearningSwitchApp
from repro.controller import Controller
from repro.core import HarmlessFleet
from repro.fabric import leaf_spine_fabric, ring_fabric
from repro.legacy import StormControl
from repro.net import IPv4Address, MACAddress
from repro.net.build import udp_frame
from repro.netsim import FaultInjector
from repro.traffic.generators import (
    BurstSource,
    burst_schedule,
    mac_churn_bursts,
    storm_frames,
)

from common import RESULTS_DIR, save_result

#: Reachability-sweep window / convergence deadline (simulated time).
SWEEP_WINDOW_S = 0.25
DEADLINE_S = 10.0

#: The injected broadcast storm: 20k fps for one second.
STORM_RATE_FPS = 20_000
STORM_DURATION_S = 1.0
STORM_BURST = 64
#: The mid-storm trunk flap: STP must reroute *under* storm pressure
#: (and back when the link returns), while reactive flows on migrated
#: sites idle out (``FLOW_IDLE_TIMEOUT_S``) instead of going stale.
CUT_INTO_STORM_S = 0.3
FLAP_HOLD_S = 0.5
FLOW_IDLE_TIMEOUT_S = 1

#: Armed storm-control policy: generous burst so reachability sweeps
#: and ARP chatter stay conforming, 10x under the storm's rate.
SC_RATE_FPS = 2000.0
SC_BURST = 256
SC_RECOVERY_S = 0.05

#: Control-plane protection: miss-suppression window and the
#: per-datapath packet-in bucket.
MISS_WINDOW_S = 0.05
PACKETIN_RATE_PPS = 2000.0
PACKETIN_BURST = 128

#: FDB pressure: a CAM-sized table vs a 64k-station churn train.
FDB_CAPACITY = 256
CHURN_STATIONS = 65_536
CHURN_RATE_PPS = 131_072.0  # the full train inside half a second
CHURN_BURST = 64
HYBRID_CHURN_STATIONS = 16_384

#: Packet-in flood: 16 distinct miss signatures, hammered 256x each.
MISS_TRAIN_DSTS = 16
MISS_TRAIN_FRAMES = 4096
MISS_TRAIN_RATE_PPS = 20_480.0

RING = dict(switches=4, hosts_per_switch=2)
PRESSURE = dict(
    edges=2, spines=1, hosts_per_edge=2, gen_ports_per_edge=1,
    processing_delay_s=0.0,
)


def armed_meter() -> StormControl:
    return StormControl(
        rate_fps=SC_RATE_FPS, burst=SC_BURST, recovery_s=SC_RECOVERY_S
    )


def build_ring():
    """The STP ring, settled past its initial election."""
    fabric = ring_fabric(stp=True, **RING)
    settle = max(tree.settle_s() for tree in fabric.stp.values())
    fabric.sim.run(until=fabric.sim.now + settle + 0.5)
    controller = Controller(fabric.sim)
    controller.add_app(LearningSwitchApp(idle_timeout=FLOW_IDLE_TIMEOUT_S))
    fleet = HarmlessFleet(fabric, controller=controller, wave_size=2)
    return fabric, fleet


def build_pressure(gen_site_index=0):
    """The small leaf-spine used by the pressure rows, plus a station."""
    fabric = leaf_spine_fabric(**PRESSURE)
    controller = Controller(fabric.sim)
    controller.add_app(LearningSwitchApp())
    fleet = HarmlessFleet(fabric, controller=controller, wave_size=2)
    site = fabric.edge_sites()[gen_site_index]
    station = BurstSource(fabric.sim, "churn-gen")
    fabric.attach_station(site.name, station)
    return fabric, fleet, station


def measure(fleet, row: dict, event: str) -> dict:
    report = fleet.await_reconvergence(
        event=event, window_s=SWEEP_WINDOW_S, deadline_s=DEADLINE_S
    )
    assert report.converged, (
        f"{row}: no reconvergence within {DEADLINE_S}s "
        f"({report.probes_lost} probes lost)"
    )
    row.update(
        event=event,
        convergence_s=report.convergence_s,
        frames_lost=report.probes_lost,
        sweeps=report.sweeps,
        pairs_per_sweep=report.pairs_per_sweep,
    )
    return row


# ------------------------------------------------------------------- storm


def _run_ring_storm(protect: bool, hybrid: bool) -> dict:
    fabric, fleet = build_ring()
    sim = fabric.sim
    if hybrid:
        fleet.migrate_next_wave(verify=True)
    ingress_name = next(
        name for name in fabric.sites if name not in fleet.deployments
    )
    if protect:
        for name, site in fabric.sites.items():
            if name in fleet.deployments:
                continue
            if hybrid and name == ingress_name:
                # The hybrid row leaves the storm's ingress switch bare
                # so containment is proven *downstream*, on both the
                # legacy and the migrated side of the boundary.
                continue
            site.switch.storm_control = armed_meter()
        for deployment in fleet.deployments.values():
            deployment.s4.ss2.flood_guard = armed_meter()
            deployment.s4.ss2.miss_suppression_s = MISS_WINDOW_S
            deployment.datapath.channel.configure_packetin_limit(
                rate_pps=PACKETIN_RATE_PPS, burst=PACKETIN_BURST
            )
    injector = FaultInjector(sim)
    storm_port = fabric.sites[ingress_name].hosts[0].port0
    at = sim.now + 0.01
    injector.storm(
        storm_port, at, STORM_DURATION_S,
        rate_fps=STORM_RATE_FPS, burst=STORM_BURST,
    )
    injector.link_flap(
        fabric.trunk_links[0], at + CUT_INTO_STORM_S, hold_s=FLAP_HOLD_S
    )
    sim.run(until=at + CUT_INTO_STORM_S)
    row = {
        "kind": "storm",
        "topology": "ring",
        "config": "hybrid" if hybrid else "legacy",
        "protection": "armed" if protect else "off",
        "storm_frames": injector.storm_frames_sent,
    }
    row = measure(fleet, row, event="storm")
    final = fleet.verify_reachability()
    assert final.ok, f"{row}: steady-state loss after recovery"
    suppressed = sum(
        site.switch.counters.storm_suppressed
        for site in fabric.sites.values()
    )
    guarded = sum(
        deployment.s4.ss2.floods_suppressed
        for deployment in fleet.deployments.values()
    )
    miss_suppressed = sum(
        deployment.s4.ss2.packet_ins_suppressed
        for deployment in fleet.deployments.values()
    )
    limited = sum(
        deployment.datapath.channel.packet_ins_limited
        for deployment in fleet.deployments.values()
    )
    row["storm_suppressed"] = suppressed
    row["floods_suppressed"] = guarded
    row["packet_ins_suppressed"] = miss_suppressed
    row["packet_ins_limited"] = limited
    if protect:
        assert suppressed > 0, f"{row}: no legacy meter tripped"
        if hybrid:
            # The migrated side is defended in depth: the miss cache
            # and the channel bucket usually absorb the storm's echo
            # before a PacketOut flood ever reaches the flood guard.
            assert guarded + miss_suppressed + limited > 0, (
                f"{row}: the migrated side never suppressed anything"
            )
    return row


def storm_legacy_off() -> dict:
    return _run_ring_storm(protect=False, hybrid=False)


def storm_legacy_armed() -> dict:
    return _run_ring_storm(protect=True, hybrid=False)


def storm_hybrid_off() -> dict:
    return _run_ring_storm(protect=False, hybrid=True)


def storm_hybrid_armed() -> dict:
    return _run_ring_storm(protect=True, hybrid=True)


# ----------------------------------------------------------- fdb pressure


def _churn(station, sim, stations: int, at: float) -> None:
    duration = stations / CHURN_RATE_PPS
    schedule = burst_schedule(CHURN_RATE_PPS, duration, CHURN_BURST, start_s=at)
    station.start(mac_churn_bursts(schedule, seed=1))
    sim.run(until=at + duration + 0.01)


def _run_fdb_pressure(hybrid: bool) -> dict:
    fabric, fleet, station = build_pressure()
    sim = fabric.sim
    if hybrid:
        fleet.migrate_all(verify=True, strict=True)
        for deployment in fleet.deployments.values():
            deployment.datapath.channel.configure_packetin_limit(
                rate_pps=PACKETIN_RATE_PPS, burst=PACKETIN_BURST
            )
    for site in fabric.sites.values():
        site.switch.fdb.capacity = FDB_CAPACITY
    stations = HYBRID_CHURN_STATIONS if hybrid else CHURN_STATIONS
    _churn(station, sim, stations, at=sim.now + 0.01)
    row = {
        "kind": "fdb_pressure",
        "topology": "leaf-spine",
        "config": "hybrid" if hybrid else "legacy",
        "protection": "armed" if hybrid else "off",
        "stations": stations,
    }
    evictions = 0
    fallbacks = 0
    for site in fabric.sites.values():
        fdb = site.switch.fdb
        assert len(fdb) <= FDB_CAPACITY, (
            f"{row}: {site.name} FDB grew past capacity ({len(fdb)})"
        )
        evictions += fdb.evictions
        fallbacks += fdb.flood_fallbacks
    assert evictions > 0, f"{row}: churn never hit the capacity policy"
    assert fallbacks > 0, f"{row}: nothing degraded to flooding"
    row["evictions"] = evictions
    row["flood_fallbacks"] = fallbacks
    if hybrid:
        row["packet_ins_limited"] = sum(
            deployment.datapath.channel.packet_ins_limited
            for deployment in fleet.deployments.values()
        )
        assert row["packet_ins_limited"] > 0, (
            f"{row}: the churn never pressured the packet-in budget"
        )
    row = measure(fleet, row, event="fdb_pressure")
    assert row["frames_lost"] == 0, f"{row}: full tables must flood, not drop"
    return row


def fdb_pressure_legacy() -> dict:
    return _run_fdb_pressure(hybrid=False)


def fdb_pressure_hybrid() -> dict:
    return _run_fdb_pressure(hybrid=True)


# --------------------------------------------------------- packet-in flood


def _miss_train(station, sim, at: float) -> None:
    """MISS_TRAIN_FRAMES frames cycling MISS_TRAIN_DSTS unknown MACs."""
    templates = [
        udp_frame(
            MACAddress(0x02_F0_00_00_AA_00),
            MACAddress(0x02_66_00_00_00_00 + index),
            IPv4Address("10.250.0.1"),
            IPv4Address("10.250.0.2"),
            1024 + index,
            2048,
            b"\x00" * 32,
        )
        for index in range(MISS_TRAIN_DSTS)
    ]
    duration = MISS_TRAIN_FRAMES / MISS_TRAIN_RATE_PPS
    schedule = burst_schedule(MISS_TRAIN_RATE_PPS, duration, 32, start_s=at)
    counter = 0
    bursts = []
    for start, count in schedule:
        frames = [
            templates[(counter + offset) % MISS_TRAIN_DSTS]
            for offset in range(count)
        ]
        counter += count
        bursts.append((start, frames))
    station.start(bursts)
    sim.run(until=at + duration + 0.01)


def _run_packetin_flood(config: str, protect: bool) -> dict:
    fabric, fleet, station = build_pressure()
    sim = fabric.sim
    if config == "hybrid":
        fleet.migrate_all(verify=True, strict=True)
        if protect:
            for deployment in fleet.deployments.values():
                deployment.s4.ss2.miss_suppression_s = MISS_WINDOW_S
                deployment.datapath.channel.configure_packetin_limit(
                    rate_pps=PACKETIN_RATE_PPS, burst=PACKETIN_BURST
                )
    before = sum(
        deployment.s4.ss2.packets_to_controller
        for deployment in fleet.deployments.values()
    )
    _miss_train(station, sim, at=sim.now + 0.01)
    row = {
        "kind": "packetin_flood",
        "topology": "leaf-spine",
        "config": config,
        "protection": "armed" if protect else "off",
        "train_frames": MISS_TRAIN_FRAMES,
    }
    row["packet_ins"] = sum(
        deployment.s4.ss2.packets_to_controller
        for deployment in fleet.deployments.values()
    ) - before
    row["packet_ins_suppressed"] = sum(
        deployment.s4.ss2.packet_ins_suppressed
        for deployment in fleet.deployments.values()
    )
    row["packet_ins_limited"] = sum(
        deployment.datapath.channel.packet_ins_limited
        for deployment in fleet.deployments.values()
    )
    return measure(fleet, row, event="packetin_flood")


def packetin_flood_legacy() -> dict:
    """The legacy analog: the train floods in hardware, zero controller
    messages by construction — the row anchors the matrix."""
    row = _run_packetin_flood("legacy", protect=False)
    assert row["packet_ins"] == 0
    return row


def packetin_flood_hybrid_off() -> dict:
    return _run_packetin_flood("hybrid", protect=False)


def packetin_flood_hybrid_armed() -> dict:
    return _run_packetin_flood("hybrid", protect=True)


# ----------------------------------------------------------------- sharded

SHARDED_EDGES = 64
SHARDED_SPINES = 8
SHARDED_SHARDS = 2
SHARDED_TRUNK_PROP_S = 50e-6
#: After the ~0.45 s rollout plus the 2 s panel pre-sweep.
SHARDED_STORM_AT = 3.0
SHARDED_STORM_BURSTS = 64
SHARDED_STORM_FRAMES_PER_BURST = 16
SHARDED_PANEL = [f"edge{n}-h1" for n in range(1, SHARDED_SPINES + 1)]


def sharded_storm() -> dict:
    """A broadcast storm inside a 2-shard 64-edge fabric.

    Storm control is armed inside the build callable (SPMD topology
    configuration, identical on every shard); the storm itself rides
    the collective station API, so the owning shard transmits and the
    replicas stay in lockstep.  Containment must be bit-deterministic:
    the slimmed replicas may leak nothing (``shadow_drops == 0``).
    """
    from repro.fabric import ShardedFabric

    def build(sim):
        fabric = leaf_spine_fabric(
            edges=SHARDED_EDGES,
            spines=SHARDED_SPINES,
            hosts_per_edge=1,
            gen_ports_per_edge=1,
            sim=sim,
        )
        for link in fabric.trunk_links:
            link.propagation_delay_s = SHARDED_TRUNK_PROP_S
        # Arm the access tier only: spine chain ports aggregate the
        # whole fabric's legitimate flood traffic (a sweep's ARPs all
        # cross every trunk), which is exactly the traffic storm
        # control must never meter.  Real deployments arm edge ports.
        for site in fabric.edge_sites():
            site.switch.storm_control = armed_meter()
        return fabric

    with ShardedFabric(
        build, shards=SHARDED_SHARDS, backend="thread"
    ) as sharded:
        fleet = sharded.fleet(wave_size=8)
        fleet.migrate_all(verify=False)
        pre = fleet.verify_reachability(host_names=SHARDED_PANEL)
        assert pre["ok"], f"panel unreachable pre-storm: {pre['lost'][:5]}"
        assert sharded.stats()["now"] < SHARDED_STORM_AT, "storm time too early"
        storm_site = sharded.reference.edge_sites()[0].name
        sharded.attach_station(storm_site, "storm-gen")
        bursts = [
            (
                SHARDED_STORM_AT + index * 1e-4,
                storm_frames(SHARDED_STORM_FRAMES_PER_BURST),
            )
            for index in range(SHARDED_STORM_BURSTS)
        ]
        injected = sharded.start_station(storm_site, 0, bursts)
        sharded.run(until=SHARDED_STORM_AT + 0.005)
        report = fleet.await_reconvergence(
            event="storm",
            window_s=SWEEP_WINDOW_S,
            deadline_s=DEADLINE_S,
            host_names=SHARDED_PANEL,
        )
        stats = sharded.stats()
    assert report.converged, (
        f"sharded/storm: no reconvergence within {DEADLINE_S}s "
        f"({report.probes_lost} probes lost)"
    )
    assert stats["shadow_drops"] == 0, "slimmed replica leaked traffic"
    return {
        "kind": "storm",
        "topology": f"leaf-spine-{SHARDED_EDGES}",
        "config": "hybrid",
        "protection": "armed",
        "event": "storm",
        "shards": SHARDED_SHARDS,
        "storm_frames": injected,
        "convergence_s": report.convergence_s,
        "frames_lost": report.probes_lost,
        "sweeps": report.sweeps,
        "pairs_per_sweep": report.pairs_per_sweep,
    }


ROWS = [
    storm_legacy_off,
    storm_legacy_armed,
    storm_hybrid_off,
    storm_hybrid_armed,
    fdb_pressure_legacy,
    fdb_pressure_hybrid,
    packetin_flood_legacy,
    packetin_flood_hybrid_off,
    packetin_flood_hybrid_armed,
    sharded_storm,
]


def run_suite() -> list:
    rows = [row_fn() for row_fn in ROWS]
    flood_rows = {
        (row["config"], row["protection"]): row
        for row in rows
        if row["kind"] == "packetin_flood"
    }
    armed = flood_rows[("hybrid", "armed")]
    unprotected = flood_rows[("hybrid", "off")]
    assert armed["packet_ins"] * 10 <= unprotected["packet_ins"], (
        "miss suppression + packet-in limiting should cut controller "
        f"work >=10x (off {unprotected['packet_ins']}, "
        f"armed {armed['packet_ins']})"
    )
    return rows


def render(rows: list, mode: str) -> str:
    lines = [
        "=" * 76,
        "STORM: containment latency and collateral loss under overload",
        "=" * 76,
        f"mode: {mode}; sweep window {SWEEP_WINDOW_S}s, "
        "all metrics pure simulated time (machine-independent)",
        "",
        f"{'kind':>15} {'topology':>14} {'config':>7} {'prot':>6} "
        f"{'convergence':>12} {'lost':>5} {'packet-ins':>10}",
    ]
    for row in rows:
        lines.append(
            f"{row['kind']:>15} {row['topology']:>14} {row['config']:>7} "
            f"{row['protection']:>6} {row['convergence_s'] * 1e3:>9.0f} ms "
            f"{row['frames_lost']:>5} {row.get('packet_ins', '-'):>10}"
        )
    return "\n".join(lines)


def save_json(rows: list, mode: str):
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {"bench": "storm", "mode": mode, "rows": rows}
    path = RESULTS_DIR / "storm.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="accepted for CI uniformity; sizes are identical either way "
        "(the metrics are deterministic simulated time)",
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.fast else "full"
    rows = run_suite()
    save_result("storm", render(rows, mode=mode))
    path = save_json(rows, mode=mode)
    print(f"JSON archived at {path}")


if __name__ == "__main__":
    main()
