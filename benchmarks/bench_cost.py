"""CLAIM-COST — "nor any substantial price tag".

Capex per SDN-enabled port across port counts for the three
strategies, plus the HARMLESS-vs-COTS crossover search.  The expected
shape: HARMLESS wins clearly at SME port counts because the legacy
switches are already owned; the gap narrows under line-rate CPU
provisioning (no oversubscription) and when legacy gear must be bought.
"""

import pytest

from repro.costmodel import CostModel

from common import save_result

PORT_COUNTS = [8, 16, 24, 48, 96, 192, 384]


def build_table(model):
    rows = []
    for ports in PORT_COUNTS:
        comparison = model.compare(ports)
        rows.append(
            (
                ports,
                comparison["harmless"].total,
                comparison["cots-hardware"].total,
                comparison["pure-software"].total,
            )
        )
    return rows


def test_cost_sweep(benchmark):
    model = CostModel(legacy_owned=True, oversubscription=4.0)
    rows = benchmark(build_table, model)

    lines = [
        "=" * 72,
        "CLAIM-COST: capex per strategy (legacy owned, 4:1 oversubscription)",
        "=" * 72,
        f"{'ports':>6s} {'HARMLESS':>12s} {'COTS-OF':>12s} {'pure-SW':>12s}"
        f" {'HARMLESS $/port':>16s}",
    ]
    for ports, harmless, cots, pure in rows:
        lines.append(
            f"{ports:6d} {harmless:12,.0f} {cots:12,.0f} {pure:12,.0f}"
            f" {harmless / ports:16,.1f}"
        )
    crossover = model.crossover_vs_cots(max_ports=2048)
    lines.append(
        f"\nHARMLESS-vs-COTS crossover: "
        f"{'none up to 2048 ports' if crossover is None else f'{crossover} ports'}"
    )
    lines.append("\nitemised example at 96 ports (HARMLESS):")
    lines.append(model.harmless(96).breakdown.describe())
    save_result("cost", "\n".join(lines))

    # The paper's claim at SME scale.
    for ports, harmless, cots, pure in rows:
        if ports <= 192:
            assert harmless < cots, f"HARMLESS not cheaper at {ports} ports"
    # Pure software loses on port density everywhere beyond trivial sizes.
    for ports, harmless, _, pure in rows:
        if ports >= 48:
            assert harmless < pure


def test_sensitivity_to_assumptions(benchmark):
    """Ablations: oversubscription and legacy ownership move the needle."""

    def scenarios():
        return {
            "owned,4:1": CostModel(True, 4.0).harmless(96).total,
            "owned,1:1": CostModel(True, 1.0).harmless(96).total,
            "greenfield,4:1": CostModel(False, 4.0).harmless(96).total,
        }

    results = benchmark(scenarios)
    lines = [
        "=" * 72,
        "CLAIM-COST sensitivity (96 ports, HARMLESS capex)",
        "=" * 72,
    ]
    lines.extend(f"{k:<16s} ${v:10,.0f}" for k, v in results.items())
    cots = CostModel().cots_hardware(96).total
    lines.append(f"{'COTS reference':<16s} ${cots:10,.0f}")
    save_result("cost_sensitivity", "\n".join(lines))

    assert results["owned,1:1"] >= results["owned,4:1"]
    assert results["greenfield,4:1"] > results["owned,4:1"]
