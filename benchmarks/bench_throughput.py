"""CLAIM-PERF — "without incurring any major performance ... penalty".

Compares packet-forwarding capacity and sub-capacity delivery of:

* native software switch (ESwitch-calibrated, the best case),
* HARMLESS (legacy switch + SS_1 -> SS_2 -> SS_1 per packet),
* the legacy switch alone (hardware line rate; the pre-SDN baseline).

Analytic single-core ceilings come from the calibrated cost model; the
simulated runs offer a demo-scale load (well under capacity, as in the
paper's live demo) and verify zero loss and full delivered rate.
"""

import pytest

from repro.core import HarmlessS4, PortVlanMap
from repro.legacy import LegacySwitch
from repro.netsim import Simulator
from repro.netsim.link import Link
from repro.nfpa import measure_pipeline_rate
from repro.nfpa.harness import make_sink, measure_forwarding
from repro.openflow import ApplyActions, FlowMod, Match, OutputAction
from repro.softswitch import ESWITCH_COST_MODEL, SoftSwitch
from repro.traffic import make_flow_population

from common import save_result

OFFERED_PPS = 500_000
PACKETS = 3_000
FLOWS = 16


def install_port_forward(switch, in_port, out_port):
    flow = FlowMod(
        match=Match(in_port=in_port),
        instructions=[ApplyActions(actions=(OutputAction(port=out_port),))],
        priority=100,
    )
    errors = switch.handle_message(flow.to_bytes())
    assert not errors


def build_native_dut():
    """source -> SoftSwitch -> sink with a one-flow pipeline."""
    sim = Simulator()
    switch = SoftSwitch(sim, "native", datapath_id=1, cost_model=ESWITCH_COST_MODEL)
    sink = make_sink(sim, "native")
    switch.add_port(1)
    Link(switch.add_port(2), sink.add_port(1), bandwidth_bps=10e9)
    install_port_forward(switch, 1, 2)
    return sim, (lambda frame: switch.inject(frame, 1)), sink


def build_harmless_dut():
    """source -> legacy access 1 -> trunk -> S4 -> trunk -> access 2 -> sink."""
    sim = Simulator()
    legacy = LegacySwitch(sim, "legacy", num_ports=3, processing_delay_s=4e-6)
    config = legacy.config.copy()
    config.set_access(1, 101)
    config.set_access(2, 102)
    config.set_trunk(3, {101, 102})
    legacy.apply_config(config)

    s4 = HarmlessS4(
        sim, "s4", access_ports=[1, 2], datapath_id=2, cost_model=ESWITCH_COST_MODEL
    )
    Link(legacy.port(3), s4.trunk_port, bandwidth_bps=10e9)
    s4.install_translator(PortVlanMap({1: 101, 2: 102}))
    install_port_forward(s4.ss2, 1, 2)

    sink = make_sink(sim, "harmless")
    Link(legacy.port(2), sink.add_port(1), bandwidth_bps=10e9)
    return sim, (lambda frame: legacy.receive(legacy.port(1), frame)), sink


def build_legacy_dut():
    """source -> plain legacy switch -> sink (pre-migration baseline)."""
    sim = Simulator()
    legacy = LegacySwitch(sim, "legacy", num_ports=2, processing_delay_s=4e-6)
    sink = make_sink(sim, "legacy-only")
    Link(legacy.port(2), sink.add_port(1), bandwidth_bps=10e9)
    return sim, (lambda frame: legacy.receive(legacy.port(1), frame)), sink


BUILDERS = {
    "native-softswitch": build_native_dut,
    "harmless": build_harmless_dut,
    "legacy-only": build_legacy_dut,
}


def run_one(kind):
    sim, ingress, sink = BUILDERS[kind]()
    flows = make_flow_population(FLOWS, seed=42)
    return measure_forwarding(
        sim,
        kind,
        ingress,
        sink,
        flows,
        packets_per_flow=PACKETS // FLOWS,
        interval_s=1.0 / OFFERED_PPS,
        payload_len=56,
    )


def test_throughput_comparison(benchmark):
    results = {kind: run_one(kind) for kind in BUILDERS}
    benchmark(lambda: run_one("harmless"))

    native_cap, harmless_cap = analytic_capacities()
    lines = [
        "=" * 72,
        "CLAIM-PERF: throughput, HARMLESS vs native software switch vs legacy",
        "=" * 72,
        f"analytic single-core capacity: native {native_cap / 1e6:6.2f} Mpps, "
        f"HARMLESS {harmless_cap / 1e6:6.2f} Mpps "
        f"(overhead factor {native_cap / harmless_cap:4.2f}x)",
        f"offered load (demo scale): {OFFERED_PPS / 1e6:5.2f} Mpps, "
        f"{PACKETS} packets over {FLOWS} flows",
        "",
    ]
    lines.extend(results[kind].row() for kind in BUILDERS)
    save_result("throughput", "\n".join(lines))

    # Shape of the claim: at demo-scale offered load HARMLESS delivers
    # everything the native switch delivers (no *major* penalty)...
    assert results["harmless"].loss_rate == 0.0
    assert results["native-softswitch"].loss_rate == 0.0
    assert results["harmless"].delivered_pps == pytest.approx(
        results["native-softswitch"].delivered_pps, rel=0.05
    )
    # ...while the per-core ceiling honestly reflects the extra walks.
    assert 1.5 < native_cap / harmless_cap < 6.0


def analytic_capacities():
    native = measure_pipeline_rate(ESWITCH_COST_MODEL, lookups=1, actions=1)
    harmless = 1.0 / (
        ESWITCH_COST_MODEL.cost_s(lookups=1, actions=2, vlan_ops=1, patch_hops=1)
        + ESWITCH_COST_MODEL.cost_s(lookups=1, actions=1, patch_hops=1)
        + ESWITCH_COST_MODEL.cost_s(lookups=1, actions=3, vlan_ops=1)
    )
    return native, harmless


def test_capacity_scales_with_flow_table_shape(benchmark):
    """Ablation: pipeline depth costs capacity (goto-table chains)."""

    def rate_for_depth(depth):
        return measure_pipeline_rate(
            ESWITCH_COST_MODEL, lookups=depth, actions=1
        )

    rates = benchmark(lambda: [rate_for_depth(d) for d in (1, 2, 4, 8)])
    assert all(earlier > later for earlier, later in zip(rates, rates[1:]))
