"""BATCH — wall-clock pps of the burst-mode datapath vs single-frame.

Real softswitches only reach line rate by amortising per-packet
overhead over bursts (DPDK/OVS batch receive); this bench measures what
the simulated equivalent buys.  One weighted (zipf) frame stream over a
bounded working set is generated once per flow-table size, then pushed
through the same fast-path switch two ways:

* ``single`` (burst size 1) — the PR 2 path: one ``inject()`` call,
  one microflow probe, one expiry validation and one egress event per
  frame;
* ``batch`` at burst sizes 8/32/128 — ``process_batch``: one decode
  per distinct frame template, one expiry validation per (key, burst),
  and one egress link event per burst per port.

Reported pps is the **median** across ``MEASURE_REPEATS`` full passes
(the regression gate compares medians, so a single scheduler hiccup
cannot move a published row).  Results go to ``results/batch.txt``
(human) and ``results/batch.json`` (machine, gated by
``check_regression.py`` against ``baselines/batch.json``).

Run standalone: ``PYTHONPATH=src python benchmarks/bench_batch.py
[--fast]`` — ``--fast`` is the CI smoke mode.
"""

import json
import statistics
import time

from repro.netsim import Simulator
from repro.softswitch import SoftSwitch
from repro.traffic import FlowSpec, interleave_bursts, zipf_weights

from bench_fastpath import install_exact_flows
from common import (
    ACTIVE_FLOWS,
    BENCH_MAC_DST,
    BENCH_MAC_SRC,
    MEASURE_REPEATS,
    RESULTS_DIR,
    ZERO_COST,
    bench_flow_addresses,
    save_result,
    wire_counting_sinks,
)

#: flow-table size -> packets measured per run.
FULL_SIZES = {1_000: 40_000, 10_000: 20_000}
SMOKE_SIZES = {100: 20_000}

BURST_SIZES = (1, 8, 32, 128)

#: Zipf skew of the traffic mix (flow popularity, NFPA-style).
TRAFFIC_SKEW = 1.0
#: Per-flow trains of up to this many back-to-back frames (TCP-window /
#: GSO shape) — the within-burst locality the grouping amortises.
TRAIN_LEN = 4


def bench_flowspecs(num_flows: int, active: int) -> "list[FlowSpec]":
    """FlowSpecs for the active working set, spread across the table
    (the same flows `common.steady_traffic` cycles through)."""
    active = min(num_flows, active)
    stride = max(num_flows // active, 1)
    specs = []
    for slot in range(active):
        index = (slot * stride) % num_flows
        src, dst = bench_flow_addresses(index)
        specs.append(
            FlowSpec(
                src_mac=BENCH_MAC_SRC,
                dst_mac=BENCH_MAC_DST,
                src_ip=src,
                dst_ip=dst,
                src_port=1000,
                dst_port=2000,
            )
        )
    return specs


def make_stream(num_flows: int, packets: int) -> list:
    """One flat zipf-weighted frame stream (template frame per flow).

    Generated once and *chunked* per burst size, so every configuration
    processes byte-for-byte the same frame sequence.
    """
    specs = bench_flowspecs(num_flows, ACTIVE_FLOWS)
    weights = zipf_weights(len(specs), skew=TRAFFIC_SKEW)
    ((_, frames),) = interleave_bursts(
        specs, [(0.0, packets)], seed=num_flows, weights=weights,
        payload_len=32, train_len=TRAIN_LEN,
    )
    return frames


def chunk(stream: list, size: int) -> "list[list]":
    return [stream[i:i + size] for i in range(0, len(stream), size)]


def build_dut(num_flows: int, packets: int):
    sim = Simulator()
    # Specialization off: this bench measures the interpreted burst
    # pipeline (the compiled tier 0 has its own bench_specialized.py).
    switch = SoftSwitch(
        sim, "dut", datapath_id=1, cost_model=ZERO_COST,
        enable_specialization=False,
    )
    sinks = wire_counting_sinks(sim, switch, packets)
    install_exact_flows(switch, num_flows)
    return sim, switch, sinks


def run_one(num_flows: int, stream: list, burst_size: int) -> dict:
    packets = len(stream)
    sim, switch, sinks = build_dut(num_flows, packets)
    start = time.perf_counter()
    if burst_size == 1:
        inject = switch.inject
        for frame in stream:
            inject(frame, 4)
    else:
        process_batch = switch.process_batch
        for burst in chunk(stream, burst_size):
            process_batch(4, burst)
    sim.run()
    elapsed = time.perf_counter() - start
    delivered = sum(sink.count for sink in sinks)
    assert delivered == packets, f"burst={burst_size}: {delivered}/{packets}"
    result = {
        "config": "single" if burst_size == 1 else "batch",
        "burst": burst_size,
        "flows": num_flows,
        "packets": packets,
        "pps": packets / elapsed,
        "elapsed_s": elapsed,
        "cache": switch.flow_cache.stats(),
    }
    if burst_size > 1:
        # Grouping amortisation: frames sharing a burst's validated keys.
        result["frames_per_key_validation"] = (
            switch.batch_frames / switch.batch_unique_keys
            if switch.batch_unique_keys
            else 0.0
        )
    return result


def run_suite(sizes: dict) -> list:
    samples: "dict[tuple, list[dict]]" = {}
    streams = {
        num_flows: make_stream(num_flows, packets)
        for num_flows, packets in sizes.items()
    }
    for _ in range(MEASURE_REPEATS):
        for num_flows in sizes:
            for burst_size in BURST_SIZES:
                row = run_one(num_flows, streams[num_flows], burst_size)
                samples.setdefault((num_flows, burst_size), []).append(row)
    rows = []
    for (num_flows, burst_size), runs in sorted(samples.items()):
        median_pps = statistics.median(run["pps"] for run in runs)
        row = dict(runs[0])
        row["pps"] = median_pps
        row.pop("elapsed_s")
        rows.append(row)
    by_key = {(row["flows"], row["burst"]): row for row in rows}
    for row in rows:
        if row["burst"] > 1:
            row["speedup_vs_single"] = (
                row["pps"] / by_key[(row["flows"], 1)]["pps"]
            )
    return rows


def render(rows: list, mode: str) -> str:
    lines = [
        "=" * 76,
        "BATCH: burst-mode datapath vs single-frame fast path (median wall-clock pps)",
        "=" * 76,
        f"mode: {mode}; zipf(skew={TRAFFIC_SKEW}) mix over {ACTIVE_FLOWS} active flows",
        "",
        f"{'flows':>7} {'burst':>6} {'pkts':>7} {'pps':>12} {'speedup':>8} "
        f"{'hit rate':>9} {'frames/validation':>18}",
    ]
    for row in rows:
        speedup = (
            f"{row['speedup_vs_single']:>7.1f}x"
            if "speedup_vs_single" in row
            else f"{'1.0x':>8}"
        )
        grouping = (
            f"{row['frames_per_key_validation']:>18.1f}"
            if "frames_per_key_validation" in row
            else f"{'—':>18}"
        )
        lines.append(
            f"{row['flows']:>7} {row['burst']:>6} {row['packets']:>7} "
            f"{row['pps']:>12.0f} {speedup} "
            f"{row['cache']['hit_rate']:>8.1%} {grouping}"
        )
    return "\n".join(lines)


def save_json(rows: list, mode: str):
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {"bench": "batch", "mode": mode, "rows": rows}
    path = RESULTS_DIR / "batch.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def test_batch_speedup():
    """Acceptance: ≥3x median pps over single-frame at burst 32 / 10k flows."""
    rows = run_suite(FULL_SIZES)
    save_result("batch", render(rows, mode="full"))
    save_json(rows, mode="full")
    by_key = {(row["flows"], row["burst"]): row for row in rows}
    assert by_key[(10_000, 32)]["speedup_vs_single"] >= 3.0
    # Bigger bursts never hurt: the sweep is monotone within noise.
    assert by_key[(10_000, 128)]["speedup_vs_single"] >= 2.5
    # The grouping actually grouped (zipf mix repeats keys within bursts).
    assert by_key[(10_000, 32)]["frames_per_key_validation"] > 1.5


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="CI smoke: small flow counts only"
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.fast else "full"
    rows = run_suite(SMOKE_SIZES if args.fast else FULL_SIZES)
    save_result("batch", render(rows, mode=mode))
    path = save_json(rows, mode=mode)
    print(f"JSON archived at {path}")


if __name__ == "__main__":
    main()
