"""XPAR-TRANSP — data-plane transparency (the architectural property).

Differential testing: the same controller program and the same seeded
traffic run against (a) a HARMLESS-migrated legacy switch and (b) an
ideal OpenFlow switch; host-observable behaviour must be identical.
No paper numbers exist for this row — the demo asserts the property,
we measure it.
"""

import pytest

from repro.apps import LearningSwitchApp
from repro.core import TransparencyHarness
from repro.core.verify import random_udp_traffic

from common import save_result

SEEDS = list(range(8))


def run_all_seeds():
    outcomes = []
    for seed in SEEDS:
        harness = TransparencyHarness(
            num_hosts=4, app_factory=lambda: [LearningSwitchApp()]
        )
        result = harness.run(random_udp_traffic(seed=seed, num_messages=30))
        outcomes.append((seed, result.equivalent, len(result.mismatches)))
    return outcomes


def test_transparency_differential(benchmark):
    outcomes = benchmark(run_all_seeds)
    lines = [
        "=" * 72,
        "XPAR-TRANSP: HARMLESS vs ideal OpenFlow switch (differential)",
        "=" * 72,
        f"{'seed':>5s} {'equivalent':>11s} {'mismatches':>11s}",
    ]
    lines.extend(
        f"{seed:5d} {str(ok):>11s} {mismatches:11d}"
        for seed, ok, mismatches in outcomes
    )
    passed = sum(1 for _, ok, _ in outcomes if ok)
    lines.append(f"\n{passed}/{len(outcomes)} seeds behaviourally identical")
    save_result("transparency", "\n".join(lines))
    assert passed == len(outcomes)
