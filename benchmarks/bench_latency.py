"""CLAIM-LAT — "... or latency penalty".

End-to-end host RTTs (steady state, proactive flows) across:

* legacy switch alone (the pre-migration baseline),
* HARMLESS (legacy + trunk + SS_1/SS_2 hairpin),
* native software switch (hosts directly on the server).

The penalty HARMLESS adds over the legacy baseline is two trunk-link
traversals plus the translator walks per direction — microseconds.
"""

import statistics

import pytest

from common import (
    build_harmless_site,
    build_ideal_site,
    build_legacy_site,
    save_result,
    warm_up_pings,
)

PINGS = 30


def measure_rtts(kind):
    if kind == "harmless":
        sim, hosts, _, _ = build_harmless_site(2)
    elif kind == "native-softswitch":
        sim, hosts, _, _ = build_ideal_site(2)
    else:
        sim, hosts, _ = build_legacy_site(2)
    h1, h2 = hosts[0], hosts[1]
    warm_up_pings(sim, hosts, [(h1, h2)])
    for index in range(PINGS):
        sim.schedule(0.01 * index, lambda: h1.ping(h2.ip))
    sim.run(until=sim.now + 5.0)
    rtts = h1.rtts()[1:]  # drop the warm-up ping
    assert len(rtts) == PINGS
    return rtts


def test_latency_comparison(benchmark):
    rtts = {
        kind: measure_rtts(kind)
        for kind in ("legacy-only", "harmless", "native-softswitch")
    }
    benchmark(lambda: measure_rtts("harmless"))

    lines = [
        "=" * 72,
        "CLAIM-LAT: steady-state ping RTT (proactive flows, no controller hop)",
        "=" * 72,
    ]
    means = {}
    for kind, samples in rtts.items():
        mean = statistics.fmean(samples)
        means[kind] = mean
        lines.append(
            f"{kind:<22s} mean {mean * 1e6:8.2f}us  "
            f"min {min(samples) * 1e6:8.2f}us  max {max(samples) * 1e6:8.2f}us"
        )
    penalty = means["harmless"] - means["legacy-only"]
    lines.append(
        f"\nHARMLESS penalty over legacy: {penalty * 1e6:.2f}us per RTT "
        f"(trunk x4 + translator walks x4)"
    )
    save_result("latency", "\n".join(lines))

    # Shape: the added latency is microseconds, not milliseconds —
    # "no major latency penalty".
    assert penalty > 0  # it is not free...
    assert penalty < 100e-6  # ...but it is far below human/app thresholds
    # And HARMLESS stays in the same league as the pure software switch.
    assert means["harmless"] < 10 * means["native-softswitch"]


def test_first_packet_pays_controller_rtt(benchmark):
    """Reactive setup cost: the first flow packet detours via controller."""

    def run():
        sim, hosts, _, _ = build_harmless_site(2, controller_latency_s=500e-6)
        h1, h2 = hosts[0], hosts[1]
        h1.ping(h2.ip)
        sim.run(until=2.0)
        h1.ping(h2.ip)
        sim.run(until=4.0)
        return h1.rtts()

    rtts = benchmark(run)
    assert len(rtts) == 2
    first, second = rtts
    assert first > second  # reactive detour visible exactly once
    assert first > 1e-3  # at least one 2x500us controller round trip
