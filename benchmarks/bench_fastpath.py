"""FASTPATH — wall-clock packets/sec of the two-tier datapath.

Measures the *Python* cost of a pipeline walk (not the simulated cost
model, which is identical by construction) for three configurations:

* ``linear``     — the seed algorithm: O(n) priority scan per table,
  no caching (``enable_fast_path=False``);
* ``classifier`` — hash-bucketed slow path only (microflow cache
  disabled): one bucket probe per field-set + masked fallback;
* ``fastpath``   — the full two-tier path: microflow cache replaying
  memoised walks in front of the classifier.

Each run installs N exact 5-tuple flows plus a low-priority match-all
drop, then replays a steady-state traffic mix (a bounded active-flow
working set, so the cache serves hits like a real edge would see).
Results go to ``results/fastpath.txt`` (human) and
``results/fastpath.json`` (machine, archived by CI).

Run standalone: ``PYTHONPATH=src python benchmarks/bench_fastpath.py
[--fast]`` — ``--fast`` is the CI smoke mode (small flow counts only).
"""

import json
import time

from repro.netsim import Simulator
from repro.openflow import ApplyActions, FlowMod, Match, OutputAction
from repro.softswitch import SoftSwitch

from common import (
    ACTIVE_FLOWS,
    MEASURE_REPEATS,
    RESULTS_DIR,
    ZERO_COST,
    bench_flow_addresses,
    keep_best,
    save_result,
    steady_traffic,
    wire_counting_sinks,
)

#: flow-table size -> packets measured (smaller at large n so the seed
#: linear baseline finishes in sane wall-clock time).
FULL_SIZES = {10: 20_000, 100: 10_000, 1_000: 4_000, 10_000: 1_000}
#: Smoke rows feed the CI regression gate, so they are long enough
#: (hundreds of ms per run) that scheduler bursts cannot halve a row.
SMOKE_SIZES = {10: 10_000, 100: 10_000}

def install_exact_flows(switch, num_flows):
    """*num_flows* exact 5-tuple rules + a match-all drop."""
    for index in range(num_flows):
        src, dst = bench_flow_addresses(index)
        message = FlowMod(
            match=Match(eth_type=0x0800, ipv4_src=src, ipv4_dst=dst, udp_dst=2000),
            priority=100,
            instructions=[
                ApplyActions(actions=(OutputAction(port=index % 3 + 1),))
            ],
        )
        assert switch.handle_message(message.to_bytes()) == []
    drop = FlowMod(match=Match(), priority=0, instructions=[])
    assert switch.handle_message(drop.to_bytes()) == []


def build_dut(num_flows, config, packets):
    """A switch with *num_flows* exact 5-tuple rules + match-all drop."""
    sim = Simulator()
    switch = SoftSwitch(
        sim,
        "dut",
        datapath_id=1,
        cost_model=ZERO_COST,
        enable_fast_path=(config != "linear"),
        # This bench measures the *interpreted* tiers; the compiled
        # tier 0 has its own bench (bench_specialized.py).
        enable_specialization=False,
    )
    if config == "classifier":
        switch.flow_cache = None  # bucketed slow path, no microflow cache
    sinks = wire_counting_sinks(sim, switch, packets)
    install_exact_flows(switch, num_flows)
    return sim, switch, sinks


def run_one(num_flows, packets, config):
    sim, switch, sinks = build_dut(num_flows, config, packets)
    frames = steady_traffic(num_flows, packets, ACTIVE_FLOWS)
    inject = switch.inject
    start = time.perf_counter()
    for frame in frames:
        inject(frame, 4)
    sim.run()
    elapsed = time.perf_counter() - start
    delivered = sum(sink.count for sink in sinks)
    assert delivered == packets, f"{config}: {delivered}/{packets} delivered"
    result = {
        "config": config,
        "flows": num_flows,
        "packets": packets,
        "pps": packets / elapsed,
        "elapsed_s": elapsed,
    }
    if switch.flow_cache is not None:
        result["cache"] = switch.flow_cache.stats()
    return result


def run_suite(sizes):
    best = {}
    for _ in range(MEASURE_REPEATS):
        for num_flows, packets in sizes.items():
            for config in ("linear", "classifier", "fastpath"):
                keep_best(
                    best, (num_flows, config), run_one(num_flows, packets, config)
                )
    rows = []
    for num_flows, packets in sizes.items():
        row = {"flows": num_flows, "packets": packets}
        for config in ("linear", "classifier", "fastpath"):
            row[config] = best[(num_flows, config)]
        row["speedup_fastpath"] = row["fastpath"]["pps"] / row["linear"]["pps"]
        row["speedup_classifier"] = row["classifier"]["pps"] / row["linear"]["pps"]
        rows.append(row)
    return rows


def render(rows, mode):
    lines = [
        "=" * 76,
        "FASTPATH: wall-clock pipeline rate, two-tier datapath vs seed linear scan",
        "=" * 76,
        f"mode: {mode}; steady-state working set of {ACTIVE_FLOWS} active flows",
        "",
        f"{'flows':>7} {'pkts':>7} {'linear pps':>12} {'classifier':>12} "
        f"{'fastpath':>12} {'speedup':>8} {'hit rate':>9}",
    ]
    for row in rows:
        hit_rate = row["fastpath"]["cache"]["hit_rate"]
        lines.append(
            f"{row['flows']:>7} {row['packets']:>7} "
            f"{row['linear']['pps']:>12.0f} {row['classifier']['pps']:>12.0f} "
            f"{row['fastpath']['pps']:>12.0f} "
            f"{row['speedup_fastpath']:>7.1f}x {hit_rate:>8.1%}"
        )
    return "\n".join(lines)


def save_json(rows, mode):
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {"bench": "fastpath", "mode": mode, "rows": rows}
    path = RESULTS_DIR / "fastpath.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def test_fastpath_speedup():
    """Acceptance: ≥5x over the seed linear path at 1k installed flows."""
    rows = run_suite(FULL_SIZES)
    save_result("fastpath", render(rows, mode="full"))
    save_json(rows, mode="full")
    by_flows = {row["flows"]: row for row in rows}
    assert by_flows[1_000]["speedup_fastpath"] >= 5.0
    # The cache, not just the classifier, carries the win at scale.
    assert by_flows[10_000]["speedup_fastpath"] > by_flows[10_000]["speedup_classifier"] * 0.5
    # Steady state means the cache serves nearly every packet.
    for row in rows:
        assert row["fastpath"]["cache"]["hit_rate"] > 0.9


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="CI smoke: small flow counts only"
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.fast else "full"
    rows = run_suite(SMOKE_SIZES if args.fast else FULL_SIZES)
    save_result("fastpath", render(rows, mode=mode))
    path = save_json(rows, mode=mode)
    print(f"JSON archived at {path}")


if __name__ == "__main__":
    main()
