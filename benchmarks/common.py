"""Shared builders for the benchmark suite.

Each bench builds its environments through these helpers so every row
in EXPERIMENTS.md is produced by the same code paths the test suite
exercises.  Results are printed and archived under
``benchmarks/results/`` so the bench run leaves an auditable artefact.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.apps import LearningSwitchApp
from repro.controller import Controller
from repro.core import HarmlessManager
from repro.legacy import LegacySwitch
from repro.mgmt import DeviceConnection, get_network_driver
from repro.net import IPv4Address, MACAddress
from repro.net.build import udp_frame
from repro.netsim import Host, Link, Simulator
from repro.netsim.link import wire
from repro.netsim.node import Node
from repro.snmp import SnmpAgent, attach_bridge_mib
from repro.softswitch import ESWITCH_COST_MODEL, DatapathCostModel, SoftSwitch

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Cost-free datapath for wall-clock (Python-level) measurements.
ZERO_COST = DatapathCostModel.zero()

#: Full measurement passes per bench suite (merged per-row by keep_best).
MEASURE_REPEATS = 3

#: Steady-state working set the wall-clock benches cycle through
#: (microflow-cache hit rate ~= 1 - active/packets).
ACTIVE_FLOWS = 64

BENCH_MAC_SRC = MACAddress("02:00:00:00:aa:01")
BENCH_MAC_DST = MACAddress("02:00:00:00:bb:02")


class CountingSink(Node):
    """A port peer that just counts what it receives."""

    def __init__(self, sim: Simulator, name: str) -> None:
        super().__init__(sim, name)
        self.count = 0

    def receive(self, port, frame) -> None:
        self.count += 1

    def receive_burst(self, port, arrivals) -> None:
        self.count += len(arrivals)


def wire_counting_sinks(sim, switch, packets: int, count: int = 3):
    """*count* CountingSinks on the switch, queues sized for the burst.

    Everything is injected at t=0, so the drop-tail queues must hold
    the whole run or the egress links silently tail-drop what the
    datapath forwarded.
    """
    sinks = []
    for _ in range(count):
        sink = CountingSink(sim, "sink")
        wire(
            switch,
            sink,
            bandwidth_bps=None,
            propagation_delay_s=0.0,
            queue_frames=packets + 1,
        )
        sinks.append(sink)
    return sinks


def bench_flow_addresses(index: int):
    """The (src, dst) pair of exact bench flow *index*."""
    return (
        IPv4Address((10 << 24) | index),
        IPv4Address((11 << 24) | index),
    )


def steady_traffic(num_flows: int, packets: int, active: int):
    """Frames cycling a bounded working set spread across the table."""
    active = min(num_flows, active)
    stride = max(num_flows // active, 1)
    frames = []
    for slot in range(active):
        index = (slot * stride) % num_flows
        src, dst = bench_flow_addresses(index)
        frames.append(
            udp_frame(BENCH_MAC_SRC, BENCH_MAC_DST, src, dst, 1000, 2000, b"x" * 32)
        )
    return [frames[i % active] for i in range(packets)]


def keep_best(best: dict, key, row: dict) -> None:
    """Keep the higher-pps *row* for *key* in *best* (noise suppression).

    The CI regression gate compares individual rows against committed
    baselines, and a single wall-clock measurement moves by more than a
    real regression threshold when the runner's scheduler hiccups.
    Benches therefore run the whole measurement pass N times and merge
    with this helper: interference must persist across *every* pass to
    depress a published number, while genuine regressions (which affect
    all passes equally) still show.
    """
    if key not in best or row["pps"] > best[key]["pps"]:
        best[key] = row


def save_result(name: str, text: str) -> None:
    """Print a result table and archive it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def save_json(name: str, rows: list, mode: str) -> pathlib.Path:
    """Archive machine-readable rows for the check_regression.py gate."""
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {"bench": name, "mode": mode, "rows": rows}
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def measure_usecase_datapath(
    name: str,
    make_rig,
    packets: int = 12_000,
    burst: int = 32,
    repeats: int = MEASURE_REPEATS,
) -> list:
    """Compiled-vs-interpreted wall-clock pps through a use-case pipeline.

    ``make_rig(specialize)`` returns ``(sim, switch, stream, in_port)``:
    a fully provisioned HARMLESS site whose *switch* carries the use
    case's installed rules, and a frame *stream* exercising them in
    steady state.  Each config runs *repeats* full passes; the best
    pps survives (the ``keep_best`` noise-suppression story: scheduler
    interference must depress *every* pass of a config to depress its
    published number, which matters here because the site's full
    delivery path — trunk, QinQ, host receive — dwarfs the datapath
    delta being measured).  The specialized rows carry
    ``speedup_vs_interpreted`` plus the compiled-tier activity
    counters the acceptance gate checks.
    """
    best: dict[str, dict] = {}
    for config in ("interpreted", "specialized"):
        runs = []
        for _ in range(repeats):
            sim, switch, stream, in_port = make_rig(config == "specialized")
            # One mod is enough to trigger a recompile: the use-case
            # pipeline is installed up front and then left quiet.
            switch.recompile_after_mods = 1
            frames = [stream[i % len(stream)] for i in range(packets)]
            bursts = [
                frames[i : i + burst] for i in range(0, len(frames), burst)
            ]
            process_batch = switch.process_batch
            start = time.perf_counter()
            for chunk in bursts:
                process_batch(in_port, list(chunk))
            sim.run()
            elapsed = time.perf_counter() - start
            spec = switch.stats()["specialization"]
            runs.append(
                {
                    "bench": name,
                    "config": config,
                    "packets": len(frames),
                    "pps": len(frames) / elapsed,
                    "compiles": spec["compiles"],
                    "specialized_share": (
                        spec["specialized_frames"] / len(frames)
                        if spec["enabled"]
                        else 0.0
                    ),
                }
            )
        row = dict(runs[0])
        row["pps"] = max(run["pps"] for run in runs)
        best[config] = row
    best["specialized"]["speedup_vs_interpreted"] = (
        best["specialized"]["pps"] / best["interpreted"]["pps"]
    )
    return [best["interpreted"], best["specialized"]]


def render_usecase_datapath(name: str, rows: list) -> str:
    lines = [
        "=" * 72,
        f"{name}: datapath wall-clock, compiled tier vs interpreted",
        "=" * 72,
        f"{'config':>12} {'pps':>12} {'speedup':>8} {'compiles':>9} "
        f"{'spec share':>11}",
    ]
    for row in rows:
        speedup = (
            f"{row['speedup_vs_interpreted']:>7.2f}x"
            if "speedup_vs_interpreted" in row
            else f"{'—':>8}"
        )
        lines.append(
            f"{row['config']:>12} {row['pps']:>12.0f} {speedup} "
            f"{row['compiles']:>9} {row['specialized_share']:>10.1%}"
        )
    return "\n".join(lines)


def make_hosts(sim: Simulator, count: int, net: str = "10.0.0") -> list[Host]:
    return [
        Host(
            sim,
            f"h{index + 1}",
            MACAddress(0x020000000001 + index),
            IPv4Address(f"{net}.{index + 1}"),
        )
        for index in range(count)
    ]


def build_harmless_site(
    num_hosts: int,
    apps_factory=None,
    cost_model=ESWITCH_COST_MODEL,
    legacy_delay_s: float = 4e-6,
    controller_latency_s: float = 50e-6,
):
    """Hosts on a legacy switch migrated by the HARMLESS Manager.

    Returns (sim, hosts, deployment, controller).
    """
    num_ports = num_hosts + 1
    sim = Simulator()
    legacy = LegacySwitch(
        sim, "edge", num_ports=num_ports, processing_delay_s=legacy_delay_s
    )
    hosts = make_hosts(sim, num_hosts)
    for index, host in enumerate(hosts):
        Link(host.port0, legacy.port(index + 1))
    mib, _ = attach_bridge_mib(legacy)
    driver = get_network_driver("sim-ios")(
        DeviceConnection(agent=SnmpAgent(mib), hostname="edge")
    )
    driver.open()
    controller = Controller(sim)
    for app in (apps_factory or (lambda: [LearningSwitchApp()]))():
        controller.add_app(app)
    manager = HarmlessManager(sim, controller=controller, cost_model=cost_model)
    deployment = manager.migrate(
        legacy, driver, trunk_port=num_ports, controller_latency_s=controller_latency_s
    )
    sim.run(until=0.05)
    return sim, hosts, deployment, controller


def build_ideal_site(
    num_hosts: int,
    apps_factory=None,
    cost_model=ESWITCH_COST_MODEL,
    controller_latency_s: float = 50e-6,
):
    """The reference: hosts directly on one software OpenFlow switch."""
    sim = Simulator()
    switch = SoftSwitch(sim, "native", datapath_id=0x42, cost_model=cost_model)
    hosts = make_hosts(sim, num_hosts)
    for index, host in enumerate(hosts):
        Link(host.port0, switch.add_port(index + 1))
    controller = Controller(sim)
    for app in (apps_factory or (lambda: [LearningSwitchApp()]))():
        controller.add_app(app)
    controller.connect(switch, latency_s=controller_latency_s)
    sim.run(until=0.05)
    return sim, hosts, switch, controller


def build_legacy_site(num_hosts: int, legacy_delay_s: float = 4e-6):
    """The pre-migration baseline: hosts on the plain legacy switch."""
    sim = Simulator()
    legacy = LegacySwitch(
        sim, "edge", num_ports=num_hosts + 1, processing_delay_s=legacy_delay_s
    )
    hosts = make_hosts(sim, num_hosts)
    for index, host in enumerate(hosts):
        Link(host.port0, legacy.port(index + 1))
    return sim, hosts, legacy


def warm_up_pings(sim, hosts, pairs, until=2.0):
    """Prime ARP tables and reactive flows so measurements are steady-state."""
    for a, b in pairs:
        a.ping(b.ip)
    sim.run(until=sim.now + until)
