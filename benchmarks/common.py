"""Shared builders for the benchmark suite.

Each bench builds its environments through these helpers so every row
in EXPERIMENTS.md is produced by the same code paths the test suite
exercises.  Results are printed and archived under
``benchmarks/results/`` so the bench run leaves an auditable artefact.
"""

from __future__ import annotations

import pathlib

from repro.apps import LearningSwitchApp
from repro.controller import Controller
from repro.core import HarmlessManager
from repro.legacy import LegacySwitch
from repro.mgmt import DeviceConnection, get_network_driver
from repro.net import IPv4Address, MACAddress
from repro.netsim import Host, Link, Simulator
from repro.snmp import SnmpAgent, attach_bridge_mib
from repro.softswitch import ESWITCH_COST_MODEL, SoftSwitch

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_result(name: str, text: str) -> None:
    """Print a result table and archive it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def make_hosts(sim: Simulator, count: int, net: str = "10.0.0") -> list[Host]:
    return [
        Host(
            sim,
            f"h{index + 1}",
            MACAddress(0x020000000001 + index),
            IPv4Address(f"{net}.{index + 1}"),
        )
        for index in range(count)
    ]


def build_harmless_site(
    num_hosts: int,
    apps_factory=None,
    cost_model=ESWITCH_COST_MODEL,
    legacy_delay_s: float = 4e-6,
    controller_latency_s: float = 50e-6,
):
    """Hosts on a legacy switch migrated by the HARMLESS Manager.

    Returns (sim, hosts, deployment, controller).
    """
    num_ports = num_hosts + 1
    sim = Simulator()
    legacy = LegacySwitch(
        sim, "edge", num_ports=num_ports, processing_delay_s=legacy_delay_s
    )
    hosts = make_hosts(sim, num_hosts)
    for index, host in enumerate(hosts):
        Link(host.port0, legacy.port(index + 1))
    mib, _ = attach_bridge_mib(legacy)
    driver = get_network_driver("sim-ios")(
        DeviceConnection(agent=SnmpAgent(mib), hostname="edge")
    )
    driver.open()
    controller = Controller(sim)
    for app in (apps_factory or (lambda: [LearningSwitchApp()]))():
        controller.add_app(app)
    manager = HarmlessManager(sim, controller=controller, cost_model=cost_model)
    deployment = manager.migrate(
        legacy, driver, trunk_port=num_ports, controller_latency_s=controller_latency_s
    )
    sim.run(until=0.05)
    return sim, hosts, deployment, controller


def build_ideal_site(
    num_hosts: int,
    apps_factory=None,
    cost_model=ESWITCH_COST_MODEL,
    controller_latency_s: float = 50e-6,
):
    """The reference: hosts directly on one software OpenFlow switch."""
    sim = Simulator()
    switch = SoftSwitch(sim, "native", datapath_id=0x42, cost_model=cost_model)
    hosts = make_hosts(sim, num_hosts)
    for index, host in enumerate(hosts):
        Link(host.port0, switch.add_port(index + 1))
    controller = Controller(sim)
    for app in (apps_factory or (lambda: [LearningSwitchApp()]))():
        controller.add_app(app)
    controller.connect(switch, latency_s=controller_latency_s)
    sim.run(until=0.05)
    return sim, hosts, switch, controller


def build_legacy_site(num_hosts: int, legacy_delay_s: float = 4e-6):
    """The pre-migration baseline: hosts on the plain legacy switch."""
    sim = Simulator()
    legacy = LegacySwitch(
        sim, "edge", num_ports=num_hosts + 1, processing_delay_s=legacy_delay_s
    )
    hosts = make_hosts(sim, num_hosts)
    for index, host in enumerate(hosts):
        Link(host.port0, legacy.port(index + 1))
    return sim, hosts, legacy


def warm_up_pings(sim, hosts, pairs, until=2.0):
    """Prime ARP tables and reactive flows so measurements are steady-state."""
    for a, b in pairs:
        a.ping(b.ip)
    sim.run(until=sim.now + until)
