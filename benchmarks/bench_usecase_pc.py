"""UC-PC — use case (c): parental control with mid-stream rule flips.

A user x site blocking matrix enforced at DNS resolution time, plus L3
drops once addresses are learned; then mid-run block/unblock flips
("deny access ... on-the-fly").
"""

import pytest

from repro.apps import LearningSwitchApp, ParentalControlApp
from repro.net import IPv4Address
from repro.net.dns import DNS_RCODE_REFUSED, DnsMessage, DnsResourceRecord

from common import build_harmless_site, save_result

USERS = 3
SITES = ["news.example", "games.example", "video.example"]
ZONE = {name: IPv4Address(f"10.0.0.{200 + i}") for i, name in enumerate(SITES)}


def build(return_deployment=False):
    pc = ParentalControlApp()
    sim, hosts, deployment, _ = build_harmless_site(
        USERS + 1, apps_factory=lambda: [pc, LearningSwitchApp()]
    )
    users = hosts[:USERS]
    resolver = hosts[USERS]

    def dns_server(host, src_ip, src_port, dst_port, payload):
        query = DnsMessage.from_bytes(payload)
        name = query.questions[0].name
        if name in ZONE:
            response = query.make_response(
                [DnsResourceRecord.a_record(name, ZONE[name])]
            )
        else:
            response = query.make_response(rcode=3)
        host.send_udp(src_ip, src_port, response.to_bytes(), src_port=53)

    resolver.serve_udp(53, dns_server)
    if return_deployment:
        return sim, users, resolver, pc, deployment
    return sim, users, resolver, pc


def resolve(user, resolver, name, txid, results):
    def on_reply(h, src_ip, src_port, dst_port, payload):
        results.append((user.name, name, DnsMessage.from_bytes(payload).rcode))

    user.serve_udp(5353, on_reply)
    user.send_udp(resolver.ip, 53, DnsMessage.query(txid, name).to_bytes(), src_port=5353)


def run_matrix():
    sim, users, resolver, pc = build()
    # Block matrix: user i blocked from site i.
    for index, user in enumerate(users):
        pc.block(user.ip, SITES[index])
    results = []
    txid = 0
    delay = 0.1
    for user in users:
        for site in SITES:
            txid += 1
            sim.schedule(
                delay,
                lambda u=user, s=site, t=txid: resolve(u, resolver, s, t, results),
            )
            delay += 0.05
    sim.run(until=delay + 3.0)
    refused = [(u, s) for u, s, rcode in results if rcode == DNS_RCODE_REFUSED]
    resolved = [(u, s) for u, s, rcode in results if rcode == 0]
    return results, refused, resolved


def test_blocking_matrix(benchmark):
    results, refused, resolved = benchmark(run_matrix)
    lines = [
        "=" * 72,
        f"UC-PC: parental control, {USERS} users x {len(SITES)} sites",
        "=" * 72,
        f"lookups answered: {len(results)} / {USERS * len(SITES)}",
        f"refused (policy hits): {sorted(refused)}",
        f"resolved: {len(resolved)}",
    ]
    save_result("usecase_pc", "\n".join(lines))
    assert len(results) == USERS * len(SITES)
    # Exactly the diagonal is refused.
    assert sorted(refused) == sorted(
        (f"h{i + 1}", SITES[i]) for i in range(USERS)
    )
    assert len(resolved) == USERS * len(SITES) - USERS


def test_on_the_fly_flip(benchmark):
    """Block mid-run, then unblock: the demo's on-the-fly story."""

    def run():
        sim, users, resolver, pc = build()
        kid = users[0]
        outcomes = []
        results = []
        resolve(kid, resolver, SITES[0], 1, results)
        sim.run(until=2.0)
        outcomes.append(("before-block", results[-1][2]))
        pc.block(kid.ip, SITES[0])
        results2 = []
        resolve(kid, resolver, SITES[0], 2, results2)
        sim.run(until=4.0)
        outcomes.append(("after-block", results2[-1][2]))
        pc.unblock(kid.ip, SITES[0])
        results3 = []
        resolve(kid, resolver, SITES[0], 3, results3)
        sim.run(until=6.0)
        outcomes.append(("after-unblock", results3[-1][2]))
        return outcomes

    outcomes = benchmark(run)
    assert outcomes[0][1] == 0
    assert outcomes[1][1] == DNS_RCODE_REFUSED
    assert outcomes[2][1] == 0


def test_l3_drop_after_learning(benchmark):
    """Cached resolutions cannot bypass the filter once IPs are learned."""

    def run():
        sim, users, resolver, pc, deployment = build(return_deployment=True)
        kid, other = users[0], users[1]
        results = []
        resolve(other, resolver, SITES[1], 9, results)  # app learns the IP
        sim.run(until=2.0)
        pc.block(kid.ip, SITES[1])
        sim.run(until=2.5)
        # A drop flow for (kid -> site IP) must now sit on SS_2, scoped
        # to the kid alone.
        drops = []
        for table in deployment.s4.ss2.tables:
            for entry in table:
                src = entry.match.get("ipv4_src")
                dst = entry.match.get("ipv4_dst")
                if src and dst and not any(
                    True for i in entry.instructions for _ in getattr(i, "actions", ())
                ):
                    drops.append((src.value, dst.value))
        return drops, int(kid.ip), int(ZONE[SITES[1]]), int(other.ip)

    drops, kid_ip, site_ip, other_ip = benchmark(run)
    assert (kid_ip, site_ip) in drops
    assert all(src != other_ip for src, _ in drops)
