"""UC-PC — use case (c): parental control with mid-stream rule flips.

A user x site blocking matrix enforced at DNS resolution time, plus L3
drops once addresses are learned; then mid-run block/unblock flips
("deny access ... on-the-fly").
"""

import pytest

from repro.apps import LearningSwitchApp, ParentalControlApp
from repro.net import IPv4Address
from repro.net.build import udp_frame
from repro.net.dns import DNS_RCODE_REFUSED, DnsMessage, DnsResourceRecord

from common import (
    build_harmless_site,
    measure_usecase_datapath,
    render_usecase_datapath,
    save_json,
    save_result,
)

USERS = 3
SITES = ["news.example", "games.example", "video.example"]
ZONE = {name: IPv4Address(f"10.0.0.{200 + i}") for i, name in enumerate(SITES)}


def build(return_deployment=False):
    pc = ParentalControlApp()
    sim, hosts, deployment, _ = build_harmless_site(
        USERS + 1, apps_factory=lambda: [pc, LearningSwitchApp()]
    )
    users = hosts[:USERS]
    resolver = hosts[USERS]

    def dns_server(host, src_ip, src_port, dst_port, payload):
        query = DnsMessage.from_bytes(payload)
        name = query.questions[0].name
        if name in ZONE:
            response = query.make_response(
                [DnsResourceRecord.a_record(name, ZONE[name])]
            )
        else:
            response = query.make_response(rcode=3)
        host.send_udp(src_ip, src_port, response.to_bytes(), src_port=53)

    resolver.serve_udp(53, dns_server)
    if return_deployment:
        return sim, users, resolver, pc, deployment
    return sim, users, resolver, pc


def resolve(user, resolver, name, txid, results):
    def on_reply(h, src_ip, src_port, dst_port, payload):
        results.append((user.name, name, DnsMessage.from_bytes(payload).rcode))

    user.serve_udp(5353, on_reply)
    user.send_udp(resolver.ip, 53, DnsMessage.query(txid, name).to_bytes(), src_port=5353)


def run_matrix():
    sim, users, resolver, pc = build()
    # Block matrix: user i blocked from site i.
    for index, user in enumerate(users):
        pc.block(user.ip, SITES[index])
    results = []
    txid = 0
    delay = 0.1
    for user in users:
        for site in SITES:
            txid += 1
            sim.schedule(
                delay,
                lambda u=user, s=site, t=txid: resolve(u, resolver, s, t, results),
            )
            delay += 0.05
    sim.run(until=delay + 3.0)
    refused = [(u, s) for u, s, rcode in results if rcode == DNS_RCODE_REFUSED]
    resolved = [(u, s) for u, s, rcode in results if rcode == 0]
    return results, refused, resolved


def make_datapath_rig(specialize: bool):
    """The PC pipeline as a datapath workload: once site addresses are
    learned and blocks installed, enforcement is pure L3 drop rules on
    the migrated switch — fully compilable (the DNS packet-in rules
    stay as per-entry fallbacks the measured traffic never hits).  L4
    ports vary per packet, so the compiled tier's L3-only shrunk key
    coalesces what the interpreted full-key cache cannot."""
    sim, users, resolver, pc, deployment = build(return_deployment=True)
    results = []
    for txid, site in enumerate(SITES):
        resolve(users[0], resolver, site, txid + 1, results)  # learn the IPs
    sim.run(until=sim.now + 2.0)
    for user in users:
        for site in SITES:
            pc.block(user.ip, site)
    sim.run(until=sim.now + 0.5)
    switch = deployment.s4.ss2
    switch.specialize = specialize
    # 16_384 distinct source ports: longer than any measured run, so
    # the interpreted full-key cache never sees a repeated frame.
    stream = []
    for index in range(16_384):
        user = users[index % len(users)]
        site_ip = ZONE[SITES[(index // len(users)) % len(SITES)]]
        sport = 1024 + (index * 17) % 16_384
        stream.append(
            udp_frame(user.mac, resolver.mac, user.ip, site_ip, sport, 8080, b"x")
        )
    return sim, switch, stream, 1


def run_datapath_suite(packets: int = 12_000) -> list:
    return measure_usecase_datapath("usecase_pc", make_datapath_rig, packets)


def test_datapath_runs_compiled():
    """The L3 enforcement rules compile and serve the steady (blocked)
    traffic from tier 0."""
    rows = run_datapath_suite(packets=3_000)
    specialized = rows[1]
    assert specialized["compiles"] >= 1
    assert specialized["specialized_share"] > 0.5
    assert specialized["speedup_vs_interpreted"] > 0


def test_blocking_matrix(benchmark):
    results, refused, resolved = benchmark(run_matrix)
    lines = [
        "=" * 72,
        f"UC-PC: parental control, {USERS} users x {len(SITES)} sites",
        "=" * 72,
        f"lookups answered: {len(results)} / {USERS * len(SITES)}",
        f"refused (policy hits): {sorted(refused)}",
        f"resolved: {len(resolved)}",
    ]
    save_result("usecase_pc", "\n".join(lines))
    assert len(results) == USERS * len(SITES)
    # Exactly the diagonal is refused.
    assert sorted(refused) == sorted(
        (f"h{i + 1}", SITES[i]) for i in range(USERS)
    )
    assert len(resolved) == USERS * len(SITES) - USERS


def test_on_the_fly_flip(benchmark):
    """Block mid-run, then unblock: the demo's on-the-fly story."""

    def run():
        sim, users, resolver, pc = build()
        kid = users[0]
        outcomes = []
        results = []
        resolve(kid, resolver, SITES[0], 1, results)
        sim.run(until=2.0)
        outcomes.append(("before-block", results[-1][2]))
        pc.block(kid.ip, SITES[0])
        results2 = []
        resolve(kid, resolver, SITES[0], 2, results2)
        sim.run(until=4.0)
        outcomes.append(("after-block", results2[-1][2]))
        pc.unblock(kid.ip, SITES[0])
        results3 = []
        resolve(kid, resolver, SITES[0], 3, results3)
        sim.run(until=6.0)
        outcomes.append(("after-unblock", results3[-1][2]))
        return outcomes

    outcomes = benchmark(run)
    assert outcomes[0][1] == 0
    assert outcomes[1][1] == DNS_RCODE_REFUSED
    assert outcomes[2][1] == 0


def test_l3_drop_after_learning(benchmark):
    """Cached resolutions cannot bypass the filter once IPs are learned."""

    def run():
        sim, users, resolver, pc, deployment = build(return_deployment=True)
        kid, other = users[0], users[1]
        results = []
        resolve(other, resolver, SITES[1], 9, results)  # app learns the IP
        sim.run(until=2.0)
        pc.block(kid.ip, SITES[1])
        sim.run(until=2.5)
        # A drop flow for (kid -> site IP) must now sit on SS_2, scoped
        # to the kid alone.
        drops = []
        for table in deployment.s4.ss2.tables:
            for entry in table:
                src = entry.match.get("ipv4_src")
                dst = entry.match.get("ipv4_dst")
                if src and dst and not any(
                    True for i in entry.instructions for _ in getattr(i, "actions", ())
                ):
                    drops.append((src.value, dst.value))
        return drops, int(kid.ip), int(ZONE[SITES[1]]), int(other.ip)

    drops, kid_ip, site_ip, other_ip = benchmark(run)
    assert (kid_ip, site_ip) in drops
    assert all(src != other_ip for src, _ in drops)


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="CI smoke: fewer packets"
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.fast else "full"
    rows = run_datapath_suite(packets=3_000 if args.fast else 12_000)
    save_result("usecase_pc_datapath", render_usecase_datapath("UC-PC", rows))
    save_json("usecase_pc", rows, mode)


if __name__ == "__main__":
    main()
