"""Bench-regression gate: fresh artefacts vs committed baselines.

CI runs the fastpath and churn benches in smoke mode, then this script
compares the fresh ``results/*.json`` against the committed
``baselines/*.json`` and fails the workflow on a regression.

Comparison rules:

* **pps metrics** are wall-clock and machine-dependent, so raw ratios
  against a baseline recorded on a different machine are meaningless.
  Every pps metric's current/baseline ratio is therefore normalised by
  the *median* ratio across all pps metrics of that artefact — the
  median cancels the machine-speed factor, a genuine regression shows
  up as one row falling away from the pack.  A normalised ratio below
  ``1 - threshold`` (default: 25% regression) fails the gate.
* **hit_rate metrics** are machine-independent fractions and are
  compared absolutely: current below baseline by more than 0.10 fails.
* **speedup metrics** (ratios of two pps numbers measured on the same
  machine) are compared directly against ``1 - threshold``.
* **convergence_s / frames_lost metrics** (bench_resilience) are pure
  simulated time, deterministic on every machine, and lower is better:
  convergence regressing past ``1 + threshold`` of the baseline (plus
  one sweep window of slack) fails, and frames_lost may not exceed the
  baseline by more than ``max(2, threshold * baseline)`` probes.
* **sync-protocol counters** (bench_fabric ``--shards`` rows:
  ``sync_rounds``, ``rounds_skipped``, ``records_exported``) are pure
  functions of the workload — the sharded engine is bit-deterministic,
  so any drift at all means the sync protocol changed behaviour.  They
  are compared for exact equality, with the row's packet count folded
  into the label so smoke and full runs of the same fabric never cross-
  compare.  ``bytes_exchanged`` stays informational: it tracks pickle
  framing, which may legitimately change without a protocol change.

Metrics present only on one side are reported and skipped, so full-mode
local runs can be checked against smoke-mode baselines on their common
rows.  A *results file* with no committed baseline at all, however,
fails the gate loudly: a freshly added bench artefact must land with
its baseline (``--update`` creates it), otherwise the gate would
silently never cover it.

Refresh the baselines after an intentional perf change with::

    PYTHONPATH=src python benchmarks/bench_fastpath.py --fast
    PYTHONPATH=src python benchmarks/bench_churn.py --fast
    PYTHONPATH=src python benchmarks/bench_fabric.py --fast --shards 2
    PYTHONPATH=src python benchmarks/bench_resilience.py --fast
    PYTHONPATH=src python benchmarks/bench_storm.py --fast
    PYTHONPATH=src python benchmarks/bench_usecase_dmz.py --fast
    PYTHONPATH=src python benchmarks/bench_usecase_lb.py --fast
    PYTHONPATH=src python benchmarks/bench_usecase_pc.py --fast
    python benchmarks/check_regression.py --update

and commit the updated ``benchmarks/baselines/*.json``.
"""

import argparse
import json
import pathlib
import shutil
import statistics
import sys

BENCH_DIR = pathlib.Path(__file__).parent
BASELINES_DIR = BENCH_DIR / "baselines"
RESULTS_DIR = BENCH_DIR / "results"

#: Keys that identify a row (workload shape), not measurements.
IDENTITY_KEYS = (
    "bench", "config", "kind", "policy", "flows", "masked_entries", "burst",
    "edges", "shards", "topology", "event", "protection",
)
#: Sync-protocol counters from sharded-fabric rows: bit-deterministic
#: for a given workload, gated by exact equality.
DETERMINISTIC_KEYS = ("sync_rounds", "rounds_skipped", "records_exported")
#: Absolute tolerance for hit-rate metrics (fractions in [0, 1]).
HIT_RATE_TOLERANCE = 0.10
#: Slack added to convergence comparisons: one reachability-sweep
#: window, so a row that converges one sweep later than a tiny baseline
#: does not trip the relative threshold on quantisation alone.
CONVERGENCE_SLACK_S = 0.25
#: Minimum absolute headroom for frames_lost (counts, often small).
FRAMES_LOST_MIN_SLACK = 2


def extract_metrics(node, label="", out=None):
    """Flatten an artefact into {stable label: numeric metric}.

    Labels are built from the identity keys found along the path, so
    the same workload row gets the same label in baseline and current
    artefacts regardless of dict ordering.  Only pps, hit_rate and
    speedup_* leaves are metrics; everything else (packet counts,
    raw counters, timings) is workload description or redundant.
    """
    if out is None:
        out = {}
    if isinstance(node, dict):
        identity = ",".join(
            f"{key}={node[key]}"
            for key in IDENTITY_KEYS
            if key in node and isinstance(node[key], (str, int))
        )
        prefix = f"{label}/{identity}" if identity else label
        for key, value in sorted(node.items()):
            if isinstance(value, (dict, list)):
                extract_metrics(value, f"{prefix}/{key}", out)
            elif isinstance(value, (int, float)) and (
                key in ("pps", "hit_rate", "convergence_s", "frames_lost")
                or key.startswith("speedup")
            ):
                out[f"{prefix}:{key}"] = float(value)
            elif isinstance(value, (int, float)) and key in DETERMINISTIC_KEYS:
                # Deterministic counters scale with the injected load,
                # so the packet count joins the identity: a smoke row
                # must never be equality-compared against a full row of
                # the same fabric shape.
                pkts = node.get("packets")
                qualifier = f"/pkts={pkts}" if isinstance(pkts, int) else ""
                out[f"{prefix}{qualifier}:{key}"] = float(value)
    elif isinstance(node, list):
        for item in node:
            extract_metrics(item, label, out)
    return out


def compare(name, baseline, current, threshold):
    """Compare one artefact pair; returns (failures, report lines)."""
    base = extract_metrics(baseline)
    cur = extract_metrics(current)
    shared = sorted(set(base) & set(cur))
    lines = [f"== {name}: {len(shared)} shared metrics =="]
    for missing in sorted(set(base) - set(cur)):
        lines.append(f"   (baseline-only, skipped: {missing})")
    for fresh in sorted(set(cur) - set(base)):
        lines.append(f"   (new, unbaselined: {fresh})")
    if not shared:
        return [f"{name}: no shared metrics between baseline and current"], lines

    pps_labels = [label for label in shared if label.endswith(":pps")]
    ratios = {label: cur[label] / base[label] for label in pps_labels if base[label]}
    machine_factor = statistics.median(ratios.values()) if ratios else 1.0
    lines.append(f"   machine-speed factor (median pps ratio): {machine_factor:.2f}")

    failures = []
    for label in shared:
        if label.endswith(":pps"):
            if not base[label]:
                continue
            normalised = ratios[label] / machine_factor
            verdict = "ok"
            if normalised < 1.0 - threshold:
                verdict = "REGRESSION"
                failures.append(
                    f"{name}: {label} regressed {1 - normalised:.0%} "
                    f"(baseline {base[label]:.0f} pps, current {cur[label]:.0f} pps, "
                    f"normalised x{normalised:.2f})"
                )
            lines.append(
                f"   {verdict:>10} {label} x{normalised:.2f} (normalised)"
            )
        elif label.endswith(":convergence_s"):
            limit = base[label] * (1.0 + threshold) + CONVERGENCE_SLACK_S
            verdict = "ok"
            if cur[label] > limit:
                verdict = "REGRESSION"
                failures.append(
                    f"{name}: {label} slowed "
                    f"{base[label]:.3f}s -> {cur[label]:.3f}s "
                    f"(limit {limit:.3f}s)"
                )
            lines.append(
                f"   {verdict:>10} {label} {base[label]:.3f}s -> {cur[label]:.3f}s"
            )
        elif label.endswith(":frames_lost"):
            limit = base[label] + max(
                FRAMES_LOST_MIN_SLACK, threshold * base[label]
            )
            verdict = "ok"
            if cur[label] > limit:
                verdict = "REGRESSION"
                failures.append(
                    f"{name}: {label} rose {base[label]:.0f} -> {cur[label]:.0f} "
                    f"(limit {limit:.0f})"
                )
            lines.append(
                f"   {verdict:>10} {label} {base[label]:.0f} -> {cur[label]:.0f}"
            )
        elif label.rsplit(":", 1)[-1] in DETERMINISTIC_KEYS:
            verdict = "ok"
            if cur[label] != base[label]:
                verdict = "MISMATCH"
                failures.append(
                    f"{name}: {label} changed "
                    f"{base[label]:.0f} -> {cur[label]:.0f} "
                    "(deterministic sync counter; exact match required)"
                )
            lines.append(
                f"   {verdict:>10} {label} "
                f"{base[label]:.0f} -> {cur[label]:.0f}"
            )
        elif label.endswith(":hit_rate"):
            delta = cur[label] - base[label]
            verdict = "ok"
            if delta < -HIT_RATE_TOLERANCE:
                verdict = "REGRESSION"
                failures.append(
                    f"{name}: {label} fell {base[label]:.1%} -> {cur[label]:.1%}"
                )
            lines.append(
                f"   {verdict:>10} {label} {base[label]:.1%} -> {cur[label]:.1%}"
            )
        else:  # speedup_*: same-machine ratio, compared directly
            if not base[label]:
                continue
            ratio = cur[label] / base[label]
            verdict = "ok"
            if ratio < 1.0 - threshold:
                verdict = "REGRESSION"
                failures.append(
                    f"{name}: {label} regressed x{ratio:.2f} "
                    f"({base[label]:.2f} -> {cur[label]:.2f})"
                )
            lines.append(f"   {verdict:>10} {label} x{ratio:.2f}")
    return failures, lines


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baselines", type=pathlib.Path, default=BASELINES_DIR)
    parser.add_argument("--results", type=pathlib.Path, default=RESULTS_DIR)
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative pps regression that fails the gate (default 0.25)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy current results over the baselines instead of comparing",
    )
    args = parser.parse_args(argv)

    if args.update:
        result_files = sorted(
            path
            for path in args.results.glob("*.json")
            if path.name != "regression.json"
        )
        if not result_files:
            print(f"no current results under {args.results}", file=sys.stderr)
            return 1
        args.baselines.mkdir(exist_ok=True)
        for result_path in result_files:
            baseline_path = args.baselines / result_path.name
            verb = "refreshed" if baseline_path.exists() else "created"
            shutil.copyfile(result_path, baseline_path)
            print(f"baseline {verb}: {baseline_path}")
        return 0

    baseline_files = sorted(args.baselines.glob("*.json"))
    if not baseline_files:
        print(f"no baselines under {args.baselines}", file=sys.stderr)
        return 1

    all_failures = []
    report = []
    # A fresh result with no committed baseline is a gate hole, not a
    # skip: fail loudly so new benches land with their baselines.
    baseline_names = {path.name for path in baseline_files}
    for result_path in sorted(args.results.glob("*.json")):
        if result_path.name == "regression.json":
            continue
        if result_path.name not in baseline_names:
            all_failures.append(
                f"{result_path.name}: results present but no baseline at "
                f"{args.baselines / result_path.name} — run "
                "check_regression.py --update and commit it"
            )
    for baseline_path in baseline_files:
        result_path = args.results / baseline_path.name
        if not result_path.exists():
            all_failures.append(
                f"{baseline_path.name}: no current result at {result_path} "
                "(did the bench run?)"
            )
            continue
        baseline = json.loads(baseline_path.read_text())
        current = json.loads(result_path.read_text())
        failures, lines = compare(
            baseline_path.stem, baseline, current, args.threshold
        )
        all_failures.extend(failures)
        report.extend(lines)

    report.append("")
    if all_failures:
        report.append(f"FAIL: {len(all_failures)} regression(s)")
        report.extend(f"  - {failure}" for failure in all_failures)
    else:
        report.append("PASS: no bench regressions against committed baselines")
    text = "\n".join(report)
    print(text)
    args.results.mkdir(exist_ok=True)
    (args.results / "regression.txt").write_text(text + "\n")
    return 1 if all_failures else 0


if __name__ == "__main__":
    sys.exit(main())
