"""UC-DMZ — use case (b): multi-tenant VM access policies.

N tenants x M VMs on a migrated switch, intra-tenant traffic allowed,
cross-tenant denied.  Reports enforcement correctness (no leaked
packet) and the rule-count footprint of the policy.
"""

import itertools

import pytest

from repro.apps import DmzPolicyApp, Vm
from repro.net import IPv4Address, MACAddress
from repro.net.build import udp_frame

from common import (
    build_harmless_site,
    measure_usecase_datapath,
    render_usecase_datapath,
    save_json,
    save_result,
)

TENANTS = 3
VMS_PER_TENANT = 2


def build():
    total = TENANTS * VMS_PER_TENANT
    vms = []
    for tenant in range(TENANTS):
        for member in range(VMS_PER_TENANT):
            index = tenant * VMS_PER_TENANT + member
            vms.append(
                Vm(
                    name=f"t{tenant}vm{member}",
                    ip=IPv4Address(f"10.0.0.{index + 1}"),
                    mac=MACAddress(0x020000000001 + index),
                    port=index + 1,
                )
            )
    allowed = set()
    for tenant in range(TENANTS):
        members = [f"t{tenant}vm{m}" for m in range(VMS_PER_TENANT)]
        for a, b in itertools.combinations(members, 2):
            allowed.add((a, b))
    dmz = DmzPolicyApp(vms=vms, allowed_pairs=allowed)
    sim, hosts, deployment, _ = build_harmless_site(
        total, apps_factory=lambda: [dmz]
    )
    return sim, hosts, deployment, dmz


def run_matrix():
    sim, hosts, deployment, dmz = build()
    # Every ordered pair pings once.
    delay = 0.0
    for src in hosts:
        for dst in hosts:
            if src is dst:
                continue
            sim.schedule(delay, lambda s=src, d=dst: s.ping(d.ip))
            delay += 0.005
    sim.run(until=delay + 3.0)

    intra_ok = 0
    intra_total = 0
    leaks = 0
    cross_total = 0
    names = {host.name: i for i, host in enumerate(hosts)}
    for src in hosts:
        oks = len(src.rtts())
        total_pings = len(src.ping_results)
        same_tenant_targets = VMS_PER_TENANT - 1
        cross_targets = total_pings - same_tenant_targets
        intra_total += same_tenant_targets
        cross_total += cross_targets
        intra_ok += min(oks, same_tenant_targets)
        leaks += max(0, oks - same_tenant_targets)
    rules = sum(len(table) for table in deployment.s4.ss2.tables)
    return intra_ok, intra_total, leaks, cross_total, rules


def test_dmz_policy_matrix(benchmark):
    intra_ok, intra_total, leaks, cross_total, rules = benchmark(run_matrix)
    lines = [
        "=" * 72,
        f"UC-DMZ: {TENANTS} tenants x {VMS_PER_TENANT} VMs on HARMLESS",
        "=" * 72,
        f"intra-tenant pings delivered: {intra_ok}/{intra_total}",
        f"cross-tenant leaks: {leaks}/{cross_total}",
        f"flow rules installed on SS_2: {rules}",
    ]
    save_result("usecase_dmz", "\n".join(lines))
    assert intra_ok == intra_total  # policy permits what it should
    assert leaks == 0  # and nothing else


def make_datapath_rig(specialize: bool):
    """The DMZ pipeline as a datapath workload.

    Steady intra-tenant traffic through the proactively installed
    pair-allow rules, with the L4 ports varied per packet: the policy
    matches L3 only, so the compiled tier's shrunk flow key coalesces
    every port combination onto one cached decision per pair, while
    the interpreted microflow cache sees each port pair as a distinct
    full key — the miniflow-shrinking effect the compiled tier exists
    for."""
    sim, hosts, deployment, dmz = build()
    switch = deployment.s4.ss2
    switch.specialize = specialize
    pairs = []
    for a_name, b_name in sorted(dmz.allowed_pairs):
        a, b = dmz.vms[a_name], dmz.vms[b_name]
        pairs.append((a, b))
        pairs.append((b, a))
    # 16_384 distinct port combinations: longer than any measured run,
    # so the interpreted full-key cache never sees a repeated frame
    # (cycling a short stream would let it warm up and mask the
    # shrunk-key coalescing this bench measures).
    stream = []
    for index in range(16_384):
        a, b = pairs[index % len(pairs)]
        sport = 1024 + (index * 7) % 16_384
        dport = 2048 + (index * 13) % 16_384
        stream.append(udp_frame(a.mac, b.mac, a.ip, b.ip, sport, dport, b"x" * 32))
    return sim, switch, stream, 1


def run_datapath_suite(packets: int = 12_000) -> list:
    return measure_usecase_datapath("usecase_dmz", make_datapath_rig, packets)


def test_datapath_runs_compiled():
    """The policy pipeline compiles and serves the steady traffic from
    tier 0, with the compiled-vs-interpreted speedup recorded for the
    regression gate."""
    rows = run_datapath_suite(packets=3_000)
    specialized = rows[1]
    assert specialized["compiles"] >= 1
    assert specialized["specialized_share"] > 0.5
    assert specialized["speedup_vs_interpreted"] > 0


def test_dmz_runtime_policy_flip(benchmark):
    """Fine-tuning VM-level policies at runtime (the demo's pitch)."""

    def run():
        sim, hosts, deployment, dmz = build()
        datapath = deployment.datapath
        a, b = hosts[0], hosts[2]  # different tenants
        a.ping(b.ip)
        sim.run(until=2.0)
        denied_before = a.ping_loss_rate == 1.0
        dmz.allow(datapath, "t0vm0", "t1vm0")
        sim.run(until=2.2)
        a.ping(b.ip)
        sim.run(until=4.0)
        allowed_after = len(a.rtts()) == 1
        dmz.revoke(datapath, "t0vm0", "t1vm0")
        sim.run(until=4.4)
        a.ping(b.ip)
        sim.run(until=7.0)
        denied_again = len(a.rtts()) == 1
        return denied_before, allowed_after, denied_again

    denied_before, allowed_after, denied_again = benchmark(run)
    assert denied_before and allowed_after and denied_again


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="CI smoke: fewer packets"
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.fast else "full"
    rows = run_datapath_suite(packets=3_000 if args.fast else 12_000)
    save_result("usecase_dmz_datapath", render_usecase_datapath("UC-DMZ", rows))
    save_json("usecase_dmz", rows, mode)


if __name__ == "__main__":
    main()
