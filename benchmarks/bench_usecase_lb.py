"""UC-LB — use case (a): source-IP load balancing over HARMLESS.

Clients on a migrated legacy switch send web requests to a VIP; a
select group spreads them over backends by source IP.  Reports balance
quality (Jain fairness) under uniform and Zipf-skewed client activity
and verifies connection affinity.
"""

import pytest

from repro.apps import ArpResponderApp, Backend, LearningSwitchApp, LoadBalancerApp
from repro.net import IPv4Address, MACAddress
from repro.net.build import udp_frame
from repro.traffic import zipf_weights

from common import (
    build_harmless_site,
    measure_usecase_datapath,
    render_usecase_datapath,
    save_json,
    save_result,
)

VIP = IPv4Address("10.0.0.100")
VIP_MAC = MACAddress("02:00:00:00:0f:00")
NUM_CLIENTS = 12
NUM_BACKENDS = 3


def jain_fairness(counts):
    total = sum(counts)
    if total == 0:
        return 0.0
    return total**2 / (len(counts) * sum(c * c for c in counts))


def build(num_clients=NUM_CLIENTS, num_backends=NUM_BACKENDS):
    total = num_clients + num_backends
    lb_backends = [
        Backend(
            ip=IPv4Address(f"10.0.0.{num_clients + 1 + i}"),
            mac=MACAddress(0x020000000001 + num_clients + i),
            port=num_clients + 1 + i,
        )
        for i in range(num_backends)
    ]

    def apps():
        return [
            ArpResponderApp(bindings={VIP: VIP_MAC}),
            LoadBalancerApp(vip=VIP, vip_mac=VIP_MAC, backends=lb_backends),
            LearningSwitchApp(),
        ]

    sim, hosts, deployment, _ = build_harmless_site(total, apps_factory=apps)
    deployment.s4.ss2.select_hash_fields = ("ipv4_src",)
    clients = hosts[:num_clients]
    backends = hosts[num_clients:]
    for backend in backends:
        backend.serve_udp(80, lambda h, ip, sp, dp, pl: None)
    return sim, clients, backends, deployment


def run_workload(weights=None, requests_per_client=4):
    sim, clients, backends, _ = build()
    weights = weights or [1.0] * len(clients)
    for client, weight in zip(clients, weights):
        count = max(1, round(requests_per_client * weight * len(clients)))
        for index in range(count):
            sim.schedule(
                0.01 * index, lambda c=client: c.send_udp(VIP, 80, b"GET /")
            )
    sim.run(until=5.0)
    counts = [len(backend.udp_received) for backend in backends]
    offered = sum(
        max(1, round(requests_per_client * w * len(clients))) for w in weights
    )
    return counts, offered


def make_datapath_rig(specialize: bool):
    """The LB pipeline as a datapath workload: client requests to the
    VIP, spread over backends by the select group's source-IP hash.
    The VIP rule matches L3 only and the hash reads ``ipv4_src``, so
    the compiled tier bakes one bucket choice per client into its
    shrunk-key cache while varying L4 source ports thrash the
    interpreted full-key microflow cache."""
    sim, clients, backends, deployment = build()
    switch = deployment.s4.ss2
    switch.specialize = specialize
    # 16_384 distinct source ports: longer than any measured run, so
    # the interpreted full-key cache never sees a repeated frame.
    stream = []
    for index in range(16_384):
        client = clients[index % len(clients)]
        sport = 1024 + (index * 11) % 16_384
        stream.append(
            udp_frame(client.mac, VIP_MAC, client.ip, VIP, sport, 80, b"GET /")
        )
    return sim, switch, stream, 1


def run_datapath_suite(packets: int = 12_000) -> list:
    return measure_usecase_datapath("usecase_lb", make_datapath_rig, packets)


def test_datapath_runs_compiled():
    """The VIP/select-group pipeline compiles (select-bucket baking)
    and serves the steady client traffic from tier 0."""
    rows = run_datapath_suite(packets=3_000)
    specialized = rows[1]
    assert specialized["compiles"] >= 1
    assert specialized["specialized_share"] > 0.5
    assert specialized["speedup_vs_interpreted"] > 0


def test_load_balancer_uniform(benchmark):
    counts, offered = benchmark(run_workload)
    fairness = jain_fairness(counts)
    lines = [
        "=" * 72,
        "UC-LB: source-IP load balancing over HARMLESS (uniform clients)",
        "=" * 72,
        f"clients={NUM_CLIENTS} backends={NUM_BACKENDS} offered={offered}",
        f"per-backend deliveries: {counts}",
        f"Jain fairness: {fairness:.3f} (1.0 = perfect)",
    ]
    save_result("usecase_lb_uniform", "\n".join(lines))
    assert sum(counts) == offered  # nothing lost
    assert all(count > 0 for count in counts)  # every backend used
    assert fairness > 0.6  # hash-based spread, not perfect but balanced


def test_load_balancer_zipf(benchmark):
    weights = zipf_weights(NUM_CLIENTS, skew=1.2)
    counts, offered = benchmark(run_workload, weights)
    fairness = jain_fairness(counts)
    lines = [
        "=" * 72,
        "UC-LB: source-IP load balancing (Zipf-skewed client activity)",
        "=" * 72,
        f"per-backend deliveries: {counts}",
        f"Jain fairness: {fairness:.3f}",
        "note: source-IP hashing pins heavy hitters, so skewed client",
        "activity shows up as backend imbalance (the known trade-off of",
        "the paper's source-IP scheme vs 5-tuple hashing)",
    ]
    save_result("usecase_lb_zipf", "\n".join(lines))
    assert sum(counts) == offered
    assert jain_fairness(counts) > 0.3  # degraded but functional


def test_affinity_preserved(benchmark):
    def run():
        sim, clients, backends, _ = build(num_clients=4)
        for _ in range(6):
            clients[0].send_udp(VIP, 80, b"GET /same")
        sim.run(until=3.0)
        return [len(b.udp_received) for b in backends]

    counts = benchmark(run)
    assert sorted(counts)[-1] == 6  # all six on one backend
    assert sum(counts) == 6


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="CI smoke: fewer packets"
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.fast else "full"
    rows = run_datapath_suite(packets=3_000 if args.fast else 12_000)
    save_result("usecase_lb_datapath", render_usecase_datapath("UC-LB", rows))
    save_json("usecase_lb", rows, mode)


if __name__ == "__main__":
    main()
