"""SPECIALIZE — the compiled tier 0 vs the interpreted fast path.

ESwitch's headline result [Molnar et al., SIGCOMM 2016] is that
*specializing* the datapath to the installed flow tables beats
interpreting a general-purpose pipeline.  This bench measures our
reproduction of that idea (`softswitch/compiler.py`): the same
zipf-weighted burst stream `bench_batch.py` uses is pushed through the
same switch twice —

* ``interpreted`` — the PR 3 burst-mode fast path (microflow cache +
  staged classifier), specialization disabled;
* ``specialized`` — the compiled program as tier 0: shrunk flow-key
  extraction, unrolled probes, straight-line plans, persistent
  key/frame memos.

Two workload kinds per flow-table size:

* ``steady`` — no control-plane traffic after setup: the program
  compiles once (first burst) and serves everything;
* ``churn`` — one FlowMod into the hot table every ``CHURN_BURSTS``
  bursts: every mod marks the program stale, so throughput shows the
  **churn hysteresis** (`recompile_after_mods`) — the switch degrades
  to interpreted speed between recompiles instead of paying a compile
  per mod, and must never fall meaningfully below the interpreted
  baseline.

Reported pps is the median across ``MEASURE_REPEATS`` passes.  Results
go to ``results/specialized.txt`` (human) and
``results/specialized.json`` (machine, gated by ``check_regression.py``
against ``baselines/specialized.json``).

Run standalone: ``PYTHONPATH=src python benchmarks/bench_specialized.py
[--fast]`` — ``--fast`` is the CI smoke mode.
"""

import json
import statistics
import time

from repro.net.addresses import IPv4Address
from repro.netsim import Simulator
from repro.openflow import ApplyActions, FlowMod, Match, OutputAction
from repro.openflow import consts as c
from repro.softswitch import SoftSwitch

from bench_batch import chunk, make_stream
from bench_fastpath import install_exact_flows
from common import (
    ACTIVE_FLOWS,
    MEASURE_REPEATS,
    RESULTS_DIR,
    ZERO_COST,
    save_result,
    wire_counting_sinks,
)

#: flow-table size -> packets measured per run.
FULL_SIZES = {1_000: 40_000, 10_000: 20_000}
SMOKE_SIZES = {100: 20_000}

BURST_SIZE = 32
#: churn kind: one FlowMod into the hot table every this many bursts.
CHURN_BURSTS = 4


def churn_message(sequence: int) -> FlowMod:
    """Exact adds into the hot table under a 172.16/16 range no bench
    traffic matches — each one still invalidates the compiled program
    (same-table mutation), which is exactly what the hysteresis row
    measures."""
    if sequence % 2:  # delete the flow the previous step installed
        src = IPv4Address((172 << 24) | (16 << 16) | ((sequence - 1) % 65_536))
        return FlowMod(
            command=c.OFPFC_DELETE_STRICT,
            match=Match(eth_type=0x0800, ipv4_src=src),
            priority=50,
        )
    src = IPv4Address((172 << 24) | (16 << 16) | (sequence % 65_536))
    return FlowMod(
        match=Match(eth_type=0x0800, ipv4_src=src),
        priority=50,
        instructions=[ApplyActions(actions=(OutputAction(port=1),))],
    )


def build_dut(num_flows: int, packets: int, config: str):
    sim = Simulator()
    switch = SoftSwitch(
        sim,
        "dut",
        datapath_id=1,
        cost_model=ZERO_COST,
        enable_specialization=(config == "specialized"),
    )
    sinks = wire_counting_sinks(sim, switch, packets)
    install_exact_flows(switch, num_flows)
    return sim, switch, sinks


def run_one(num_flows: int, stream: list, config: str, kind: str) -> dict:
    packets = len(stream)
    sim, switch, sinks = build_dut(num_flows, packets, config)
    bursts = chunk(stream, BURST_SIZE)
    churn_raw = [
        churn_message(sequence).to_bytes()
        for sequence in range(len(bursts) // CHURN_BURSTS + 1)
    ]
    process_batch = switch.process_batch
    handle = switch.handle_message
    churn = kind == "churn"
    mods = 0
    start = time.perf_counter()
    if churn:
        for index, burst in enumerate(bursts):
            if index % CHURN_BURSTS == 0:
                handle(churn_raw[index // CHURN_BURSTS])
                mods += 1
            process_batch(4, burst)
    else:
        for burst in bursts:
            process_batch(4, burst)
    sim.run()
    elapsed = time.perf_counter() - start
    delivered = sum(sink.count for sink in sinks)
    assert delivered == packets, f"{config}/{kind}: {delivered}/{packets}"
    spec = switch.stats()["specialization"]
    return {
        "config": config,
        "kind": kind,
        "flows": num_flows,
        "burst": BURST_SIZE,
        "packets": packets,
        "churn_mods": mods,
        "pps": packets / elapsed,
        "elapsed_s": elapsed,
        "compiles": spec["compiles"],
        "specialized_share": (
            spec["specialized_frames"] / packets if spec["enabled"] else 0.0
        ),
    }


def run_suite(sizes: dict) -> list:
    samples: "dict[tuple, list[dict]]" = {}
    streams = {
        num_flows: make_stream(num_flows, packets)
        for num_flows, packets in sizes.items()
    }
    for _ in range(MEASURE_REPEATS):
        for num_flows in sizes:
            for kind in ("steady", "churn"):
                for config in ("interpreted", "specialized"):
                    row = run_one(num_flows, streams[num_flows], config, kind)
                    samples.setdefault((num_flows, kind, config), []).append(row)
    rows = []
    for (num_flows, kind, config), runs in sorted(samples.items()):
        row = dict(runs[0])
        row["pps"] = statistics.median(run["pps"] for run in runs)
        row.pop("elapsed_s")
        rows.append(row)
    by_key = {(row["flows"], row["kind"], row["config"]): row for row in rows}
    for row in rows:
        if row["config"] == "specialized":
            row["speedup_vs_interpreted"] = (
                row["pps"] / by_key[(row["flows"], row["kind"], "interpreted")]["pps"]
            )
    return rows


def render(rows: list, mode: str) -> str:
    lines = [
        "=" * 76,
        "SPECIALIZE: compiled tier 0 vs interpreted fast path (median wall-clock pps)",
        "=" * 76,
        f"mode: {mode}; zipf burst-{BURST_SIZE} stream over {ACTIVE_FLOWS} active "
        f"flows; churn = 1 FlowMod per {CHURN_BURSTS} bursts",
        "",
        f"{'flows':>7} {'kind':>7} {'config':>12} {'pps':>12} {'speedup':>8} "
        f"{'compiles':>9} {'spec share':>11}",
    ]
    for row in rows:
        speedup = (
            f"{row['speedup_vs_interpreted']:>7.2f}x"
            if "speedup_vs_interpreted" in row
            else f"{'—':>8}"
        )
        lines.append(
            f"{row['flows']:>7} {row['kind']:>7} {row['config']:>12} "
            f"{row['pps']:>12.0f} {speedup} {row['compiles']:>9} "
            f"{row['specialized_share']:>10.1%}"
        )
    return "\n".join(lines)


def save_json(rows: list, mode: str):
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {"bench": "specialized", "mode": mode, "rows": rows}
    path = RESULTS_DIR / "specialized.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def test_specialized_speedup():
    """Acceptance: ≥1.5x median pps over the interpreted fast path on
    the 10k-flow burst-32 workload, and churn hysteresis keeps the
    specialized switch from falling below the interpreted baseline."""
    rows = run_suite(FULL_SIZES)
    save_result("specialized", render(rows, mode="full"))
    save_json(rows, mode="full")
    by_key = {(row["flows"], row["kind"], row["config"]): row for row in rows}
    assert by_key[(10_000, "steady", "specialized")]["speedup_vs_interpreted"] >= 1.5
    assert by_key[(1_000, "steady", "specialized")]["speedup_vs_interpreted"] >= 1.5
    # Steady state: one compile serves the whole run.
    assert by_key[(10_000, "steady", "specialized")]["compiles"] == 1
    assert by_key[(10_000, "steady", "specialized")]["specialized_share"] > 0.99
    # Churn hysteresis: recompiles are bounded by mods/recompile_after_mods
    # (not one per mod), and throughput never drops meaningfully below
    # the interpreted fast path.
    churn_row = by_key[(10_000, "churn", "specialized")]
    assert churn_row["compiles"] <= churn_row["churn_mods"] // 32
    assert churn_row["speedup_vs_interpreted"] >= 0.85


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="CI smoke: small flow counts only"
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.fast else "full"
    rows = run_suite(SMOKE_SIZES if args.fast else FULL_SIZES)
    save_result("specialized", render(rows, mode=mode))
    path = save_json(rows, mode=mode)
    print(f"JSON archived at {path}")


if __name__ == "__main__":
    main()
