"""Shard-count invariance: the differential suite for sharded simulation.

The conservative-lookahead engine promises that sharding is *pure
implementation*: for any shard count N (including N=1) a fabric
delivers bit-identical frames with bit-identical per-switch counters,
FDB contents, host ping outcomes and packet-in multisets.  This suite
proves it with randomized cross-pod burst mixes on all three topology
builders at shards ∈ {1, 2, 4}:

* ``MIXES_PER_TOPOLOGY`` seeded mixes per topology, each run at every
  shard count — 3 topologies x 56 mixes x 3 shard counts = 504
  randomized case-runs — comparing per-mix delivered counts after
  every mix and the full cumulative digest at the end;
* a fork-backend spot check (the pickled-pipe transport must match the
  by-reference thread transport exactly);
* an anchor check that the shards=1 harness equals a plain
  single-process fabric run, RTTs included.

Injection times are randomly staggered (microsecond jitter) — the
engine guarantees identical *event schedules*, and distinct timestamps
keep the comparison free of same-instant tie interleavings, which are
benign (counters and delivery are tie-invariant) but would make
packet-in *sequences* shard-dependent.
"""

import random

import pytest

from repro.fabric import (
    ShardedFabric,
    campus_fabric,
    leaf_spine_fabric,
    ring_fabric,
)
from repro.fabric.partition import PacketInRecorder, site_digest
from repro.legacy import StormControl
from repro.netsim.simulator import Simulator
from repro.traffic.generators import cross_pod_flows, storm_frames, synth_frame

#: 56 mixes x 3 shard counts x 3 topologies = 504 randomized case-runs.
MIXES_PER_TOPOLOGY = 56
SHARD_COUNTS = (1, 2, 4)
PODS = 8

#: Trunk propagation used by the test fabrics.  The default 1 us also
#: works, but the lookahead window (== min cut propagation) then forces
#: a sync barrier every microsecond of busy simulated time; 50 us keeps
#: the thread-backend suite fast without changing any semantics.
TRUNK_PROP_S = 50e-6


def _slow_trunks(fabric):
    for link in fabric.trunk_links:
        link.propagation_delay_s = TRUNK_PROP_S
    return fabric


def build_leaf_spine(sim):
    return _slow_trunks(
        leaf_spine_fabric(
            edges=8, spines=4, hosts_per_edge=1, gen_ports_per_edge=1, sim=sim
        )
    )


def build_ring(sim):
    return _slow_trunks(
        ring_fabric(
            switches=8, hosts_per_switch=1, gen_ports_per_switch=1, sim=sim
        )
    )


def build_campus(sim):
    return _slow_trunks(
        campus_fabric(
            distribution=4,
            access_per_distribution=2,
            hosts_per_access=1,
            gen_ports_per_access=1,
            sim=sim,
        )
    )


BUILDERS = {
    "leaf_spine": build_leaf_spine,
    "ring": build_ring,
    "campus": build_campus,
}


def _make_mix(seed: int, base: float):
    """One randomized cross-pod burst mix: per-pod burst schedules."""
    rng = random.Random(seed)
    flows = cross_pod_flows(PODS, per_pair=1, seed=seed)
    chosen = rng.sample(flows, k=rng.randint(6, 14))
    per_pod = {pod: [] for pod in range(PODS)}
    for flow in chosen:
        frame = synth_frame(flow.spec, payload_len=rng.choice([64, 128, 256]))
        for _ in range(rng.randint(1, 3)):
            start = base + rng.uniform(0.0005, 0.004)
            per_pod[flow.src_pod].append((start, [frame] * rng.randint(2, 8)))
    for bursts in per_pod.values():
        bursts.sort(key=lambda burst: burst[0])
    return per_pod


def _run_mix_series(build, shards, backend="thread", mixes=MIXES_PER_TOPOLOGY):
    """Migrate, then run every seeded mix; returns the comparison data."""
    with ShardedFabric(build, shards=shards, backend=backend) as sharded:
        fleet = sharded.fleet(wave_size=3)
        reports = fleet.migrate_all(verify=True, strict=True)
        edge_names = [site.name for site in sharded.reference.edge_sites()]
        for pod, name in enumerate(edge_names):
            sharded.attach_station(name, f"gen-{pod}")
        per_mix = []
        for seed in range(mixes):
            base = sharded.stats()["now"]
            injected = 0
            mix = _make_mix(seed, base + 0.001)
            for pod, name in enumerate(edge_names):
                if mix[pod]:
                    injected += sharded.start_station(name, 0, mix[pod])
            sharded.run(until=base + 0.012)
            delivered = sharded.delivered()
            per_mix.append((injected, delivered))
        digest = sharded.digest()
        stats = sharded.stats()
    waves = [
        (report["index"], report["migrated"], report["reachability"])
        for report in reports
    ]
    return {
        "waves": waves,
        "per_mix": per_mix,
        "digest": digest,
        "shadow_drops": stats["shadow_drops"],
    }


def _assert_equivalent(reference, candidate, label):
    assert candidate["shadow_drops"] == 0, label
    assert candidate["waves"] == reference["waves"], f"{label}: wave reports"
    for index, (ref_mix, cand_mix) in enumerate(
        zip(reference["per_mix"], candidate["per_mix"])
    ):
        assert cand_mix == ref_mix, f"{label}: mix {index} diverged"
    ref_sites = reference["digest"]["sites"]
    cand_sites = candidate["digest"]["sites"]
    assert set(cand_sites) == set(ref_sites), f"{label}: site coverage"
    for name in ref_sites:
        assert cand_sites[name] == ref_sites[name], f"{label}: site {name}"
    assert (
        candidate["digest"]["packet_ins"] == reference["digest"]["packet_ins"]
    ), f"{label}: packet-in multisets"


@pytest.mark.parametrize("topology", sorted(BUILDERS))
def test_shard_count_invariance(topology):
    build = BUILDERS[topology]
    reference = _run_mix_series(build, shards=1)
    # Frames must actually leave their pods for this to test anything.
    assert sum(injected for injected, _ in reference["per_mix"]) > 1000
    assert reference["per_mix"][-1][1], "no stations visible in digest"
    for shards in SHARD_COUNTS[1:]:
        candidate = _run_mix_series(build, shards=shards)
        _assert_equivalent(reference, candidate, f"{topology}@{shards}")


def _make_idle_heavy_mix(seed: int, base: float):
    """Sparse bursts separated by ~25 ms idle gaps — hundreds of
    lookahead windows of silence between consecutive events."""
    rng = random.Random(seed ^ 0x1D7E)
    flows = cross_pod_flows(PODS, per_pair=1, seed=seed)
    chosen = rng.sample(flows, k=4)
    per_pod = {pod: [] for pod in range(PODS)}
    for slot, flow in enumerate(chosen):
        frame = synth_frame(flow.spec, payload_len=128)
        start = base + slot * 0.025 + rng.uniform(0.0005, 0.002)
        per_pod[flow.src_pod].append((start, [frame] * rng.randint(2, 4)))
    for bursts in per_pod.values():
        bursts.sort(key=lambda burst: burst[0])
    return per_pod


def _run_gap_series(build, shards, mix_maker, horizon_s, mixes=3):
    """Like :func:`_run_mix_series` but with a caller-chosen mix shape
    and run horizon, and with the sync-round counters captured."""
    with ShardedFabric(build, shards=shards, backend="thread") as sharded:
        fleet = sharded.fleet(wave_size=3)
        reports = fleet.migrate_all(verify=True, strict=True)
        edge_names = [site.name for site in sharded.reference.edge_sites()]
        for pod, name in enumerate(edge_names):
            sharded.attach_station(name, f"gen-{pod}")
        per_mix = []
        for seed in range(mixes):
            base = sharded.stats()["now"]
            injected = 0
            mix = mix_maker(seed, base + 0.001)
            for pod, name in enumerate(edge_names):
                if mix[pod]:
                    injected += sharded.start_station(name, 0, mix[pod])
            sharded.run(until=base + horizon_s)
            per_mix.append((injected, sharded.delivered()))
        digest = sharded.digest()
        stats = sharded.stats()
    waves = [
        (report["index"], report["migrated"], report["reachability"])
        for report in reports
    ]
    return {
        "waves": waves,
        "per_mix": per_mix,
        "digest": digest,
        "shadow_drops": stats["shadow_drops"],
        "sync_rounds": stats["sync_rounds"],
        "rounds_skipped": stats["rounds_skipped"],
    }


def test_idle_heavy_mix_skips_windows_and_stays_invariant():
    """Multi-window idle gaps: digests stay bit-identical while the
    skip-ahead counter proves the engine jumped the silence instead of
    grinding a 50 us round through every gap."""
    build = BUILDERS["leaf_spine"]
    reference = _run_gap_series(
        build, 1, _make_idle_heavy_mix, horizon_s=0.12
    )
    assert sum(injected for injected, _ in reference["per_mix"]) > 0
    for shards in SHARD_COUNTS[1:]:
        candidate = _run_gap_series(
            build, shards, _make_idle_heavy_mix, horizon_s=0.12
        )
        _assert_equivalent(reference, candidate, f"idle-heavy@{shards}")
        # 3 mixes x 0.12 s of mostly-idle time / 50 us windows: a
        # fixed-step engine would need thousands of rounds here.
        assert candidate["rounds_skipped"] > 100, f"shards={shards}"
        assert candidate["sync_rounds"] < candidate["rounds_skipped"]


def test_bursty_then_quiet_mix_skips_the_tail():
    """A dense burst phase followed by a long quiet tail before the
    horizon: the busy phase syncs densely, the tail is skipped."""
    build = BUILDERS["ring"]
    reference = _run_gap_series(build, 1, _make_mix, horizon_s=0.1)
    assert sum(injected for injected, _ in reference["per_mix"]) > 0
    for shards in SHARD_COUNTS[1:]:
        candidate = _run_gap_series(build, shards, _make_mix, horizon_s=0.1)
        _assert_equivalent(reference, candidate, f"bursty-quiet@{shards}")
        # Each mix ends with >90 ms of silence — ~1900 windows — that
        # must be jumped, not walked.
        assert candidate["rounds_skipped"] > 100, f"shards={shards}"


def build_ring_with_storm_control(sim):
    """The ring fabric with an armed flood meter on every legacy switch.

    Arming happens inside the build callable — SPMD topology
    configuration, identical on every shard, like propagation delays.
    """
    fabric = build_ring(sim)
    for site in fabric.sites.values():
        # Generous burst: the migration verify sweep's ARP flood and
        # the background mixes stay conforming; only a real storm trips.
        site.switch.storm_control = StormControl(
            rate_fps=2000, burst=256, recovery_s=0.01
        )
    return fabric


def _make_storm_mix(seed: int, base: float):
    """A background cross-pod mix plus a dense broadcast storm from
    pod 0: 480 identical broadcast frames inside 4 ms — far over the
    armed meter's budget."""
    mix = _make_mix(seed, base)
    storm = [
        (base + 0.0002 + index * 1e-4, storm_frames(12)) for index in range(40)
    ]
    mix[0] = sorted(mix[0] + storm, key=lambda burst: burst[0])
    return mix


def test_storm_containment_is_shard_invariant():
    """Storm-control decisions are pure simulated time + per-port
    arrival order, so a storm raging across shard boundaries must
    suppress the *same frames* at every shard count: full digests —
    ``storm_suppressed`` counters included — bit-identical at
    shards ∈ {1, 2}."""
    reference = _run_gap_series(
        build_ring_with_storm_control, 1, _make_storm_mix,
        horizon_s=0.012, mixes=4,
    )
    suppressed = sum(
        site["counters"]["storm_suppressed"]
        for site in reference["digest"]["sites"].values()
    )
    assert suppressed > 0, "the storm never tripped a meter"
    candidate = _run_gap_series(
        build_ring_with_storm_control, 2, _make_storm_mix,
        horizon_s=0.012, mixes=4,
    )
    _assert_equivalent(reference, candidate, "storm@2")


def test_fork_backend_matches_thread_backend():
    """The pickled pipe transport is exactly the by-reference one."""
    build = BUILDERS["leaf_spine"]
    thread = _run_mix_series(build, shards=2, backend="thread", mixes=4)
    fork = _run_mix_series(build, shards=2, backend="fork", mixes=4)
    _assert_equivalent(thread, fork, "fork@2")


def test_single_shard_harness_equals_plain_fabric():
    """shards=1 through the harness == a hand-driven plain fabric,
    down to ping RTTs (no cross-shard ties exist to excuse)."""
    from repro.apps.learning_switch import LearningSwitchApp
    from repro.controller.core import Controller
    from repro.core.manager import HarmlessFleet
    from repro.traffic.generators import BurstSource

    build = BUILDERS["ring"]
    mixes = 6

    # Plain path: same controller shape as ShardWorker.fleet_init.
    sim = Simulator()
    fabric = build(sim)
    controller = Controller(sim, name="controller-s0")
    recorder = PacketInRecorder()
    controller.add_app(recorder)
    controller.add_app(LearningSwitchApp())
    fleet = HarmlessFleet(fabric, controller=controller, wave_size=3)
    fleet.migrate_all(verify=True, strict=True)
    edge_names = [site.name for site in fabric.edge_sites()]
    stations = {}
    for pod, name in enumerate(edge_names):
        station = BurstSource(sim, f"gen-{pod}")
        fabric.attach_station(name, station)
        stations[name] = station
    for seed in range(mixes):
        base = sim.now
        mix = _make_mix(seed, base + 0.001)
        for pod, name in enumerate(edge_names):
            if mix[pod]:
                stations[name].start(mix[pod])
        sim.run(until=base + 0.012)
    plain_sites = {
        name: site_digest(fabric, name, fleet=fleet, include_rtts=True)
        for name in fabric.sites
    }
    plain_packet_ins = recorder.digest()

    # Harness path, shards=1.
    with ShardedFabric(build, shards=1, backend="thread") as sharded:
        sharded_fleet = sharded.fleet(wave_size=3)
        sharded_fleet.migrate_all(verify=True, strict=True)
        for pod, name in enumerate(edge_names):
            sharded.attach_station(name, f"gen-{pod}")
        for seed in range(mixes):
            base = sharded.stats()["now"]
            mix = _make_mix(seed, base + 0.001)
            for pod, name in enumerate(edge_names):
                if mix[pod]:
                    sharded.start_station(name, 0, mix[pod])
            sharded.run(until=base + 0.012)
        digest = sharded.digest(include_rtts=True)

    assert digest["sites"] == plain_sites
    assert digest["packet_ins"] == plain_packet_ins
