"""Tests for the capex model behind the cost-effectiveness claim."""

import pytest

from repro.costmodel import CostModel


class TestStrategies:
    def test_harmless_cheaper_at_enterprise_scale(self):
        """The paper's claim: no substantial price tag at SME port counts."""
        model = CostModel(legacy_owned=True, oversubscription=4.0)
        for ports in (24, 48, 96, 192):
            comparison = model.compare(ports)
            assert (
                comparison["harmless"].total < comparison["cots-hardware"].total
            ), f"HARMLESS not cheaper at {ports} ports"

    def test_harmless_beats_pure_software_on_density(self):
        model = CostModel()
        comparison = model.compare(96)
        assert comparison["harmless"].total < comparison["pure-software"].total

    def test_per_port_decreases_with_scale_for_harmless(self):
        model = CostModel()
        small = model.harmless(24).per_port
        large = model.harmless(192).per_port
        assert large < small

    def test_greenfield_erodes_the_advantage(self):
        """If the legacy gear must be bought, the gap narrows."""
        owned = CostModel(legacy_owned=True).harmless(96).total
        greenfield = CostModel(legacy_owned=False).harmless(96).total
        assert greenfield > owned

    def test_breakdown_itemised(self):
        result = CostModel().harmless(48)
        names = [name for name, _, _ in result.breakdown.items]
        assert "x86-server-2s" in names
        assert "10g-dual-nic" in names
        assert result.total == pytest.approx(
            sum(q * p for _, q, p in result.breakdown.items)
        )

    def test_describe_renders(self):
        text = CostModel().cots_hardware(72).breakdown.describe()
        assert "total" in text
        assert "$" in text

    def test_oversubscription_validation(self):
        with pytest.raises(ValueError):
            CostModel(oversubscription=0.5)

    def test_cpu_bound_scaling(self):
        """At line rate (no oversubscription) more servers are needed."""
        tight = CostModel(oversubscription=1.0).harmless(192).total
        relaxed = CostModel(oversubscription=8.0).harmless(192).total
        assert tight > relaxed

    def test_sweep_shapes(self):
        rows = CostModel().sweep([8, 16, 32])
        assert len(rows) == 3
        assert all(set(row) == {"harmless", "cots-hardware", "pure-software"} for row in rows)

    def test_crossover_search_runs(self):
        crossover = CostModel(oversubscription=1.0).crossover_vs_cots(max_ports=1024)
        # With line-rate CPU provisioning COTS eventually wins (hardware
        # forwards for free); the exact point depends on the catalogue.
        assert crossover is None or crossover > 0
