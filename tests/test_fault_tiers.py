"""Faults crossed with the datapath tiers and the sharded engine.

Fault primitives are only safe if every acceleration layer agrees about
them: a crashed datapath must behave exactly like a factory-fresh one
(microflow cache and compiled tier 0 both invalidated), a boundary-link
flap on a sharded run must be bit-identical to the unsharded run, and a
fault landing mid-rollout must leave the HARMLESS fleet verifiably
clean once it clears.
"""

import random

import pytest

from repro.apps import LearningSwitchApp
from repro.controller import Controller
from repro.core import HarmlessFleet
from repro.fabric import ShardedFabric, leaf_spine_fabric, ring_fabric
from repro.fabric.partition import partition_fabric
from repro.net import IPv4Address, MACAddress
from repro.net.build import udp_frame
from repro.netsim import FaultInjector, Node, Simulator
from repro.netsim.link import wire
from repro.openflow import ApplyActions, FlowMod, Match, OutputAction
from repro.softswitch import DatapathCostModel, SoftSwitch
from repro.traffic.generators import cross_pod_flows, synth_frame

ZERO_COST = DatapathCostModel.zero()


# --------------------------------------------------------------------------
# Crash/restart vs the fast-path tiers: reset mid-burst == factory fresh
# --------------------------------------------------------------------------


class Sink(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, port, frame):
        self.received.append((self.sim.now, frame.to_bytes()))


def tier_rig(enable_specialization):
    sim = Simulator()
    switch = SoftSwitch(
        sim,
        "ss",
        datapath_id=1,
        cost_model=ZERO_COST,
        enable_specialization=enable_specialization,
    )
    switch.recompile_quiescent_s = 0.0  # recompile on the next packet
    sinks = []
    for index in range(2):
        sink = Sink(sim, f"sink{index + 1}")
        wire(switch, sink, bandwidth_bps=None, propagation_delay_s=0.0)
        sinks.append(sink)
    return sim, switch, sinks


def provision(switch):
    for in_port, out_port in ((1, 2), (2, 1)):
        message = FlowMod(
            match=Match(in_port=in_port),
            priority=10,
            instructions=[ApplyActions(actions=(OutputAction(port=out_port),))],
        )
        assert switch.handle_message(message.to_bytes()) == []


def burst(count, dport=2000):
    return [
        udp_frame(
            MACAddress(0x11), MACAddress(0x22),
            IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"),
            1000, dport, b"x" * 32,
        )
        for _ in range(count)
    ]


@pytest.mark.parametrize("specialized", [True, False])
def test_reset_mid_burst_behaves_like_factory_fresh(specialized):
    """reset_pipeline() halfway through a burst: the remaining frames
    must be handled exactly like a never-provisioned switch handles
    them — no stale microflow-cache entry or compiled program may serve
    a single packet of the tail."""
    sim, crashed, sinks = tier_rig(enable_specialization=specialized)
    sim_ref, fresh, sinks_ref = tier_rig(enable_specialization=specialized)
    provision(crashed)

    head, tail = burst(6), burst(6)
    for frame in head:
        crashed.inject(frame.copy(), 1)
    sim.run()
    assert len(sinks[1].received) == 6  # warm: the pipeline forwards
    if specialized:
        assert crashed.program is not None
        assert crashed.specialized_frames > 0
    else:
        assert crashed.flow_cache.hits > 0
        assert len(crashed.flow_cache) > 0

    invalidations_before = crashed.program_invalidations
    crashed.reset_pipeline()  # the crash, mid-burst
    assert len(crashed.flow_cache) == 0
    assert crashed.program is None
    if specialized:
        assert crashed.program_invalidations == invalidations_before + 1
    assert all(len(table) == 0 for table in crashed.tables)

    # The tail hits the wiped switch and, differentially, a fresh one.
    for frame in tail:
        crashed.inject(frame.copy(), 1)
        fresh.inject(frame.copy(), 1)
    sim.run()
    sim_ref.run()
    assert crashed.packets_dropped == fresh.packets_dropped == 6
    assert len(sinks[1].received) == 6  # nothing forwarded post-crash
    assert sinks_ref[1].received == []

    # Recovery: identical re-provisioning yields identical behaviour.
    provision(crashed)
    provision(fresh)
    for frame in burst(4):
        crashed.inject(frame.copy(), 1)
        fresh.inject(frame.copy(), 1)
    sim.run()
    sim_ref.run()
    assert [raw for _, raw in sinks[1].received[6:]] == [
        raw for _, raw in sinks_ref[1].received
    ]
    assert crashed.dump_pipeline() == fresh.dump_pipeline()


# --------------------------------------------------------------------------
# Boundary-link flap under sharding: digest == the unsharded run
# --------------------------------------------------------------------------

TRUNK_PROP_S = 50e-6
#: Well after the 6-site rollout completes (~4.1 s simulated).
FLAP_AT = 5.0
#: Hold must be >= the sync lookahead (50 us here) so the restore lands
#: in a window after the last stale cross-shard record.
FLAP_HOLD_S = 0.004
RING_PODS = 6


def build_ring6(sim):
    fabric = ring_fabric(
        switches=RING_PODS, hosts_per_switch=1, gen_ports_per_switch=1, sim=sim
    )
    for link in fabric.trunk_links:
        link.propagation_delay_s = TRUNK_PROP_S
    return fabric


#: A trunk that the 2-shard partition actually severs, by build index —
#: the builders are deterministic, so this picks the same link in every
#: replica.
BOUNDARY_INDEX = partition_fabric(build_ring6(Simulator()), 2).cuts[0].index


def build_ring6_with_flap(sim):
    """SPMD fault plan: every replica schedules the identical flap."""
    fabric = build_ring6(sim)
    injector = FaultInjector(sim)
    injector.link_flap(
        fabric.trunk_links[BOUNDARY_INDEX], at_s=FLAP_AT, hold_s=FLAP_HOLD_S
    )
    return fabric


def flap_mix():
    """Deterministic cross-pod bursts straddling the flap window."""
    rng = random.Random(0xF1A9)
    flows = cross_pod_flows(RING_PODS, per_pair=1, seed=7)
    per_pod = {pod: [] for pod in range(RING_PODS)}
    for flow in rng.sample(flows, k=12):
        frame = synth_frame(flow.spec, payload_len=128)
        start = FLAP_AT + rng.uniform(-0.002, FLAP_HOLD_S + 0.004)
        per_pod[flow.src_pod].append((start, [frame] * rng.randint(2, 6)))
    for bursts in per_pod.values():
        bursts.sort(key=lambda item: item[0])
    return per_pod


def run_sharded(build, shards):
    with ShardedFabric(build, shards=shards, backend="thread") as sharded:
        fleet = sharded.fleet(wave_size=3)
        reports = fleet.migrate_all(verify=True, strict=True)
        assert sharded.stats()["now"] < FLAP_AT - 0.1, "flap time too early"
        edge_names = [site.name for site in sharded.reference.edge_sites()]
        for pod, name in enumerate(edge_names):
            sharded.attach_station(name, f"gen-{pod}")
        mix = flap_mix()
        for pod, name in enumerate(edge_names):
            if mix[pod]:
                sharded.start_station(name, 0, mix[pod])
        sharded.run(until=FLAP_AT + FLAP_HOLD_S + 0.05)
        digest = sharded.digest()
        delivered = sharded.delivered()
        stats = sharded.stats()
    waves = [
        (report["index"], report["migrated"], report["reachability"])
        for report in reports
    ]
    return {
        "waves": waves,
        "digest": digest,
        "delivered": delivered,
        "shadow_drops": stats["shadow_drops"],
        "boundary_drops": stats["boundary_drops"],
        "boundary_drops_by_id": stats["boundary_drops_by_id"],
    }


def test_boundary_link_flap_is_shard_invariant():
    reference = run_sharded(build_ring6_with_flap, shards=1)
    candidate = run_sharded(build_ring6_with_flap, shards=2)
    assert candidate["shadow_drops"] == 0
    assert candidate["waves"] == reference["waves"]
    assert candidate["digest"]["sites"] == reference["digest"]["sites"]
    assert (
        candidate["digest"]["packet_ins"] == reference["digest"]["packet_ins"]
    )
    assert candidate["delivered"] == reference["delivered"]
    # Boundary drops are attributed per cut id: every drop belongs to
    # the flapped trunk, none to the healthy boundary, and the per-id
    # rows sum back to the aggregate counter.
    drops_by_id = candidate["boundary_drops_by_id"]
    assert set(drops_by_id) <= {BOUNDARY_INDEX}
    assert sum(drops_by_id.values()) == candidate["boundary_drops"]
    # The flap was actually visible: without it the run ends elsewhere.
    clean = run_sharded(build_ring6, shards=1)
    assert clean["digest"]["sites"] != reference["digest"]["sites"]


# --------------------------------------------------------------------------
# Mid-wave fault: the rollout keeps landing and verifies clean after
# --------------------------------------------------------------------------


def test_midwave_flap_leaves_fleet_strictly_clean():
    """The acceptance scenario: a trunk flaps while HARMLESS waves are
    still migrating; the remaining waves land under the fault and the
    fleet reconverges to strict clean sweeps after the restore."""
    fabric = leaf_spine_fabric(edges=3, spines=1, hosts_per_edge=1)
    controller = Controller(fabric.sim)
    controller.add_app(LearningSwitchApp())
    fleet = HarmlessFleet(fabric, controller=controller, wave_size=2)
    fleet.migrate_next_wave(verify=True)

    sim = fabric.sim
    injector = FaultInjector(sim)
    at = sim.now + 0.01
    injector.link_flap(fabric.trunk_links[0], at, hold_s=0.5)
    sim.run(until=at + 0.005)
    while not fleet.complete:  # waves keep landing while the fault is live
        fleet.migrate_next_wave(verify=False)
    sim.run(until=at + 0.5)

    report = fleet.await_reconvergence(
        event="midwave-flap", window_s=0.25, deadline_s=10.0
    )
    assert report.converged, injector.log
    final = fleet.verify_reachability()
    assert final.ok, final.describe()
