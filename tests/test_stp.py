"""Spanning tree on the legacy dataplane: election, blocking, failover.

The ring fabric is the reason this exists — ``ring_fabric(stp=True)``
runs with its closing link live, and 802.1D (not an administratively
blocked port) keeps the loop broken.  These tests pin the properties
the resilience suite leans on: deterministic election, exactly one
blocked port per redundant link, loss-free reconvergence around a cut,
and epoch-deduplicated topology-change flushes.
"""

from repro.legacy import LegacySwitch, PortRole, PortState, SpanningTree
from repro.fabric import ring_fabric
from repro.netsim import FaultInjector, Link, Simulator


def settle(fabric, extra=0.5):
    window = max(tree.settle_s() for tree in fabric.stp.values())
    fabric.sim.run(until=fabric.sim.now + window + extra)


def sweep(fabric, window_s=0.5):
    """All-pairs ping sweep; returns the failed (src, dst) name pairs."""
    sim = fabric.sim
    probes = [
        (src, dst, src.ping(dst.ip))
        for src in fabric.hosts
        for dst in fabric.hosts
        if src is not dst
    ]
    sim.run(until=sim.now + window_s)
    return [(src.name, dst.name) for src, dst, result in probes if result.lost]


def trunk_port_states(fabric):
    """(site, port, role, state) for every trunk port, sorted."""
    rows = []
    for link in fabric.trunk_links:
        for port in (link.port_a, link.port_b):
            tree = fabric.stp[port.node.name]
            rows.append(
                (
                    port.node.name,
                    port.number,
                    tree.port_role(port.number).value,
                    tree.port_state(port.number).value,
                )
            )
    return sorted(rows)


def forwarding_trunk(fabric):
    """A trunk link that is actually carrying traffic (both ends forward)."""
    for link in fabric.trunk_links:
        if all(
            fabric.stp[port.node.name].port_state(port.number)
            is PortState.FORWARDING
            for port in (link.port_a, link.port_b)
        ):
            return link
    raise AssertionError("no fully forwarding trunk link")


class TestRingConvergence:
    def test_closing_link_is_live_not_admin_blocked(self):
        fabric = ring_fabric(switches=4, hosts_per_switch=1, stp=True)
        assert fabric.blocked_links == []
        assert all(link.up for link in fabric.trunk_links)
        # Without STP the builder must still break the loop by hand.
        legacy = ring_fabric(switches=4, hosts_per_switch=1)
        assert len(legacy.blocked_links) == 1

    def test_exactly_one_blocked_port_and_all_pairs_reachable(self):
        fabric = ring_fabric(switches=4, hosts_per_switch=1, stp=True)
        settle(fabric)
        states = trunk_port_states(fabric)
        blocked = [row for row in states if row[3] != "forwarding"]
        assert len(blocked) == 1, states
        assert blocked[0][2] == "alternate"
        assert len([row for row in states if row[2] == "root"]) == 3
        assert sum(tree.is_root for tree in fabric.stp.values()) == 1
        assert sweep(fabric) == []

    def test_no_bpdu_storm_in_steady_state(self):
        fabric = ring_fabric(switches=4, hosts_per_switch=1, stp=True)
        settle(fabric)
        before = sum(tree.bpdus_sent for tree in fabric.stp.values())
        fabric.sim.run(until=fabric.sim.now + 1.0)
        sent = sum(tree.bpdus_sent for tree in fabric.stp.values()) - before
        # Steady state is one config BPDU per designated port per hello:
        # 4 segments x 10 hellos/s.  Anything far above that is a storm.
        assert sent <= 100, sent

    def test_edge_ports_are_unmanaged(self):
        fabric = ring_fabric(switches=4, hosts_per_switch=1, stp=True)
        settle(fabric)
        for site in fabric.sites.values():
            tree = fabric.stp[site.name]
            for number in site.host_ports:
                assert not tree.handles(number)
                assert tree.port_state(number) is None
                assert tree.forwarding_allowed(number)


class TestElectionDeterminism:
    def test_identical_builds_elect_identically(self):
        first = ring_fabric(switches=4, hosts_per_switch=1, stp=True)
        settle(first)
        second = ring_fabric(switches=4, hosts_per_switch=1, stp=True)
        settle(second)
        assert trunk_port_states(first) == trunk_port_states(second)
        root_of = lambda fab: next(  # noqa: E731
            name for name, tree in fab.stp.items() if tree.is_root
        )
        assert root_of(first) == root_of(second)

    def triangle(self, priorities):
        """Three switches in a triangle with explicit bridge priorities."""
        sim = Simulator()
        switches = [
            LegacySwitch(sim, f"s{i}", num_ports=4, processing_delay_s=0.0)
            for i in range(3)
        ]
        for i in range(3):
            Link(switches[i].port(2), switches[(i + 1) % 3].port(1))
        trees = [
            SpanningTree(switch, ports=[1, 2], priority=priority)
            for switch, priority in zip(switches, priorities)
        ]
        sim.run(until=trees[0].settle_s() + 0.5)
        return sim, switches, trees

    def test_explicit_priority_forces_the_root(self):
        _, _, trees = self.triangle([0x8000, 0x8000, 0x1000])
        assert [tree.is_root for tree in trees] == [False, False, True]
        # Three links, three switches: exactly one redundant port blocks.
        states = [
            tree.port_state(n) for tree in trees for n in (1, 2)
        ]
        assert states.count(PortState.FORWARDING) == 5
        roles = [tree.port_role(n) for tree in trees for n in (1, 2)]
        assert roles.count(PortRole.ALTERNATE) == 1
        # The root's own ports are all designated.
        assert trees[2].port_role(1) is PortRole.DESIGNATED
        assert trees[2].port_role(2) is PortRole.DESIGNATED


class TestReconvergence:
    def test_cut_reroutes_through_blocked_port_without_loss(self):
        fabric = ring_fabric(switches=4, hosts_per_switch=1, stp=True)
        settle(fabric)
        assert sweep(fabric) == []
        victim = forwarding_trunk(fabric)
        injector = FaultInjector(fabric.sim)
        injector.cut_link(victim, at_s=fabric.sim.now + 0.01)
        settle(fabric)
        # Every surviving trunk port forwards: no loop remains to block.
        for link in fabric.trunk_links:
            if link is victim:
                continue
            for port in (link.port_a, link.port_b):
                tree = fabric.stp[port.node.name]
                assert tree.port_state(port.number) is PortState.FORWARDING
        assert sweep(fabric) == []  # zero permanent loss

    def test_cut_mints_topology_change_and_flushes_fdbs(self):
        fabric = ring_fabric(switches=4, hosts_per_switch=1, stp=True)
        settle(fabric)
        assert sweep(fabric) == []  # populate the FDBs
        changes_before = sum(t.topology_changes for t in fabric.stp.values())
        flushes_before = sum(t.tc_flushes for t in fabric.stp.values())
        victim = forwarding_trunk(fabric)
        injector = FaultInjector(fabric.sim)
        injector.cut_link(victim, at_s=fabric.sim.now + 0.01)
        settle(fabric)
        trees = list(fabric.stp.values())
        assert sum(t.topology_changes for t in trees) > changes_before
        # The epoch spread: bridges that did not originate the change
        # flushed on hearing it — and only once per epoch, not per BPDU.
        assert sum(t.tc_flushes for t in trees) > flushes_before
        hellos_since = 20  # far more BPDUs than epochs were minted
        assert all(t.tc_flushes < hellos_since for t in trees)

    def test_restart_relearns_the_tree(self):
        fabric = ring_fabric(switches=4, hosts_per_switch=1, stp=True)
        settle(fabric)
        non_root = next(
            tree for tree in fabric.stp.values() if not tree.is_root
        )
        non_root.restart()
        assert non_root.is_root  # cold start: believes it is root...
        settle(fabric)
        assert not non_root.is_root  # ...until the real root's BPDUs land
        assert sweep(fabric) == []
