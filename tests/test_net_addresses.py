"""Unit tests for MAC/IPv4 address value types."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import BROADCAST_MAC, IPv4Address, IPv4Network, MACAddress


class TestMACAddress:
    def test_parse_colon_form(self):
        mac = MACAddress("00:11:22:33:44:55")
        assert int(mac) == 0x001122334455

    def test_parse_dash_form(self):
        assert MACAddress("00-11-22-33-44-55") == MACAddress("00:11:22:33:44:55")

    def test_parse_bytes(self):
        assert MACAddress(b"\x00\x11\x22\x33\x44\x55") == MACAddress(
            "00:11:22:33:44:55"
        )

    def test_str_round_trip(self):
        text = "de:ad:be:ef:00:01"
        assert str(MACAddress(text)) == text

    def test_packed_length(self):
        assert len(MACAddress(0).packed) == 6

    def test_broadcast_is_multicast(self):
        assert BROADCAST_MAC.is_broadcast
        assert BROADCAST_MAC.is_multicast
        assert not BROADCAST_MAC.is_unicast

    def test_multicast_bit(self):
        assert MACAddress("01:00:5e:00:00:01").is_multicast
        assert MACAddress("00:00:5e:00:00:01").is_unicast

    def test_locally_administered(self):
        assert MACAddress("02:00:00:00:00:01").is_locally_administered
        assert not MACAddress("00:00:00:00:00:01").is_locally_administered

    def test_oui(self):
        assert MACAddress("00:11:22:33:44:55").oui == 0x001122

    def test_rejects_bad_strings(self):
        for bad in ("", "00:11:22:33:44", "gg:11:22:33:44:55", "001122334455"):
            with pytest.raises(ValueError):
                MACAddress(bad)

    def test_rejects_out_of_range_int(self):
        with pytest.raises(ValueError):
            MACAddress(1 << 48)
        with pytest.raises(ValueError):
            MACAddress(-1)

    def test_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            MACAddress(3.14)

    def test_ordering(self):
        assert MACAddress(1) < MACAddress(2)
        assert sorted([MACAddress(5), MACAddress(1)])[0] == MACAddress(1)

    def test_hashable_as_dict_key(self):
        table = {MACAddress("00:00:00:00:00:01"): "port1"}
        assert table[MACAddress(1)] == "port1"

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_int_round_trip(self, value):
        assert int(MACAddress(value)) == value

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_str_parse_round_trip(self, value):
        mac = MACAddress(value)
        assert MACAddress(str(mac)) == mac

    @given(st.binary(min_size=6, max_size=6))
    def test_packed_round_trip(self, raw):
        assert MACAddress(raw).packed == raw


class TestIPv4Address:
    def test_parse_dotted_quad(self):
        assert int(IPv4Address("10.0.0.1")) == 0x0A000001

    def test_str_round_trip(self):
        assert str(IPv4Address("192.168.1.254")) == "192.168.1.254"

    def test_rejects_bad_strings(self):
        for bad in ("", "10.0.0", "10.0.0.256", "10.0.0.1.2", "a.b.c.d"):
            with pytest.raises(ValueError):
                IPv4Address(bad)

    def test_rejects_out_of_range_int(self):
        with pytest.raises(ValueError):
            IPv4Address(1 << 32)

    def test_classification(self):
        assert IPv4Address("224.0.0.1").is_multicast
        assert IPv4Address("255.255.255.255").is_broadcast
        assert IPv4Address("0.0.0.0").is_unspecified
        assert IPv4Address("127.0.0.1").is_loopback

    def test_private_ranges(self):
        assert IPv4Address("10.1.2.3").is_private
        assert IPv4Address("172.16.0.1").is_private
        assert IPv4Address("172.31.255.255").is_private
        assert not IPv4Address("172.32.0.1").is_private
        assert IPv4Address("192.168.0.1").is_private
        assert not IPv4Address("8.8.8.8").is_private

    def test_addition_wraps(self):
        assert IPv4Address("10.0.0.1") + 1 == IPv4Address("10.0.0.2")
        assert IPv4Address("255.255.255.255") + 1 == IPv4Address("0.0.0.0")

    def test_ordering(self):
        assert IPv4Address("10.0.0.1") < IPv4Address("10.0.0.2")

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_round_trips(self, value):
        addr = IPv4Address(value)
        assert int(IPv4Address(str(addr))) == value
        assert IPv4Address(addr.packed) == addr


class TestIPv4Network:
    def test_network_base_is_masked(self):
        net = IPv4Network("10.0.0.77/24")
        assert net.network == IPv4Address("10.0.0.0")

    def test_contains(self):
        net = IPv4Network("10.1.0.0/16")
        assert IPv4Address("10.1.200.3") in net
        assert "10.1.0.0" in net
        assert IPv4Address("10.2.0.1") not in net

    def test_netmask_and_broadcast(self):
        net = IPv4Network("192.168.4.0/22")
        assert net.netmask == IPv4Address("255.255.252.0")
        assert net.broadcast == IPv4Address("192.168.7.255")

    def test_num_addresses(self):
        assert IPv4Network("10.0.0.0/30").num_addresses == 4
        assert IPv4Network("0.0.0.0/0").num_addresses == 1 << 32

    def test_hosts_excludes_network_and_broadcast(self):
        hosts = list(IPv4Network("10.0.0.0/30").hosts())
        assert hosts == [IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2")]

    def test_hosts_slash31(self):
        hosts = list(IPv4Network("10.0.0.0/31").hosts())
        assert len(hosts) == 2

    def test_prefix_out_of_range(self):
        with pytest.raises(ValueError):
            IPv4Network("10.0.0.0/33")

    def test_spec_requires_prefix(self):
        with pytest.raises(ValueError):
            IPv4Network("10.0.0.0")

    def test_separate_prefix_arg(self):
        assert IPv4Network("10.0.0.0", 8) == IPv4Network("10.0.0.0/8")

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=32),
    )
    def test_network_contains_own_base(self, value, prefix_len):
        net = IPv4Network(str(IPv4Address(value)), prefix_len)
        assert net.network in net
        assert net.broadcast in net
