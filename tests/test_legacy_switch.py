"""Data-plane tests for the legacy switch: learning, flooding, 802.1Q."""

import pytest

from repro.legacy import LegacySwitch
from repro.net import EthernetFrame, IPv4Address, MACAddress
from repro.netsim import Host, Link, Simulator


def build_network(num_hosts=3, num_ports=8, processing_delay_s=0.0):
    """Hosts h1..hN on ports 1..N of one legacy switch."""
    sim = Simulator()
    switch = LegacySwitch(
        sim, "legacy1", num_ports=num_ports, processing_delay_s=processing_delay_s
    )
    hosts = []
    for index in range(num_hosts):
        host = Host(
            sim,
            f"h{index + 1}",
            MACAddress(0x020000000010 + index),
            IPv4Address(f"10.0.0.{index + 1}"),
        )
        Link(host.port0, switch.port(index + 1))
        hosts.append(host)
    return sim, switch, hosts


class TestBasicSwitching:
    def test_ping_through_switch(self):
        sim, switch, (h1, h2, h3) = build_network()
        h1.ping(h2.ip)
        sim.run(until=0.5)
        assert len(h1.rtts()) == 1

    def test_learning_prevents_flooding(self):
        sim, switch, (h1, h2, h3) = build_network()
        h1.ping(h2.ip)
        sim.run(until=0.5)
        h3_rx_after_learning = h3.port0.rx_frames
        h1.ping(h2.ip)
        sim.run(until=1.0)
        # The second ping is fully unicast: h3 sees nothing new.
        assert h3.port0.rx_frames == h3_rx_after_learning

    def test_arp_broadcast_floods_to_all(self):
        sim, switch, (h1, h2, h3) = build_network()
        h1.ping(h2.ip)  # triggers ARP broadcast
        sim.run(until=0.5)
        assert h3.port0.rx_frames >= 1  # saw the ARP request

    def test_fdb_learns_both_hosts(self):
        sim, switch, (h1, h2, _) = build_network()
        h1.ping(h2.ip)
        sim.run(until=0.5)
        assert switch.fdb.lookup(1, h1.mac, sim.now) == 1
        assert switch.fdb.lookup(1, h2.mac, sim.now) == 2

    def test_no_reflection_to_ingress_port(self):
        sim, switch, (h1, h2, h3) = build_network()
        h1.ping(IPv4Address("10.0.0.200"))  # ARP for absent host floods
        sim.run(until=0.5)
        # h1 never gets its own ARP request back.
        assert h1.port0.rx_frames == 0

    def test_processing_delay_applied(self):
        sim, switch, (h1, h2, _) = build_network(processing_delay_s=50e-6)
        h1.ping(h2.ip)
        sim.run(until=0.5)
        # ARP req + reply + echo req + reply = 4 switch transits >= 200us.
        assert h1.rtts()[0] >= 200e-6


class TestVlanIsolation:
    def test_hosts_in_different_vlans_cannot_talk(self):
        sim, switch, (h1, h2, _) = build_network()
        config = switch.config.copy()
        config.set_access(1, 101)
        config.set_access(2, 102)
        switch.apply_config(config)
        h1.ping(h2.ip)
        sim.run(until=2.0)
        assert h1.ping_loss_rate == 1.0
        assert h2.port0.rx_frames == 0

    def test_same_vlan_still_works(self):
        sim, switch, (h1, h2, h3) = build_network()
        config = switch.config.copy()
        config.set_access(1, 101)
        config.set_access(2, 101)
        config.set_access(3, 102)
        switch.apply_config(config)
        h1.ping(h2.ip)
        sim.run(until=0.5)
        assert len(h1.rtts()) == 1
        assert h3.port0.rx_frames == 0  # flood stayed inside VLAN 101

    def test_tagged_frame_dropped_on_access_port(self):
        sim, switch, (h1, h2, _) = build_network()
        tagged = EthernetFrame(
            dst=h2.mac, src=h1.mac, ethertype=0x0800, payload=b"x" * 50
        ).push_vlan(55)
        h1.port0.send(tagged)
        sim.run(until=0.1)
        assert h2.port0.rx_frames == 0
        assert switch.counters.filtered_ingress == 1


class TestTrunking:
    def test_access_to_trunk_gets_tagged(self):
        """The HARMLESS primitive: per-port VLAN appears as a tag on the trunk."""
        sim = Simulator()
        switch = LegacySwitch(sim, "sw", num_ports=4, processing_delay_s=0.0)
        h1 = Host(sim, "h1", MACAddress(0x02AA), IPv4Address("10.0.0.1"))
        collector = Host(sim, "coll", MACAddress(0x02BB), IPv4Address("10.0.0.99"))
        Link(h1.port0, switch.port(1))
        Link(collector.port0, switch.port(4))

        config = switch.config.copy()
        config.set_access(1, 101)
        config.set_trunk(4, {101})
        switch.apply_config(config)

        h1.ping(IPv4Address("10.0.0.2"))  # ARP will flood to the trunk
        sim.run(until=0.5)
        # The collector host ignores tagged frames, but the port saw them.
        assert collector.port0.rx_frames >= 1

    def test_trunk_to_access_untags(self):
        sim = Simulator()
        switch = LegacySwitch(sim, "sw", num_ports=4, processing_delay_s=0.0)
        sender = Host(sim, "trunk-side", MACAddress(0x02AA), IPv4Address("10.0.0.1"))
        receiver = Host(sim, "h2", MACAddress(0x02BB), IPv4Address("10.0.0.2"))
        Link(sender.port0, switch.port(4))
        Link(receiver.port0, switch.port(2))

        config = switch.config.copy()
        config.set_access(2, 102)
        config.set_trunk(4, {102})
        switch.apply_config(config)

        frame = EthernetFrame(
            dst=receiver.mac, src=sender.mac, ethertype=0x0800, payload=b"x" * 50
        ).push_vlan(102)
        sender.port0.send(frame)
        sim.run(until=0.1)
        assert receiver.port0.rx_frames == 1
        # Receiver's host stack only counts untagged frames as handled.
        assert receiver.rx_unhandled in (0, 1)  # frame is IP junk but untagged

    def test_trunk_drops_unallowed_vlan(self):
        sim = Simulator()
        switch = LegacySwitch(sim, "sw", num_ports=4, processing_delay_s=0.0)
        sender = Host(sim, "t", MACAddress(0x02AA), IPv4Address("10.0.0.1"))
        Link(sender.port0, switch.port(4))
        config = switch.config.copy()
        config.set_trunk(4, {101})
        switch.apply_config(config)

        frame = EthernetFrame(
            dst=MACAddress(0x02BB), src=sender.mac, ethertype=0x0800, payload=b"y" * 50
        ).push_vlan(999)
        sender.port0.send(frame)
        sim.run(until=0.1)
        assert switch.counters.filtered_ingress == 1

    def test_native_vlan_untagged_on_trunk(self):
        sim = Simulator()
        switch = LegacySwitch(sim, "sw", num_ports=4, processing_delay_s=0.0)
        h1 = Host(sim, "h1", MACAddress(0x02AA), IPv4Address("10.0.0.1"))
        h2 = Host(sim, "h2", MACAddress(0x02BB), IPv4Address("10.0.0.2"))
        Link(h1.port0, switch.port(1))
        Link(h2.port0, switch.port(4))
        config = switch.config.copy()
        config.set_access(1, 50)
        config.set_trunk(4, set(), native_vlan=50)
        switch.apply_config(config)
        h1.ping(h2.ip)
        sim.run(until=0.5)
        # Native VLAN frames are untagged, so the plain host stack replies.
        assert len(h1.rtts()) == 1


class TestOperational:
    def test_link_down_flushes_fdb(self):
        sim, switch, (h1, h2, _) = build_network()
        h1.ping(h2.ip)
        sim.run(until=0.5)
        assert switch.fdb.lookup(1, h2.mac, sim.now) == 2
        switch.link_down(2)
        assert switch.fdb.lookup(1, h2.mac, sim.now) is None

    def test_link_down_blocks_traffic_then_up_restores(self):
        sim, switch, (h1, h2, _) = build_network()
        switch.link_down(2)
        h1.ping(h2.ip)
        sim.run(until=2.0)
        assert h1.ping_loss_rate == 1.0
        switch.link_up(2)
        h1.ping(h2.ip)
        sim.run(until=4.0)
        assert len(h1.rtts()) == 1

    def test_apply_config_flushes_changed_ports_only(self):
        sim, switch, (h1, h2, _) = build_network()
        h1.ping(h2.ip)
        sim.run(until=0.5)
        config = switch.config.copy()
        config.set_access(1, 101)
        switch.apply_config(config)
        assert switch.fdb.lookup(1, h1.mac, sim.now) is None
        assert switch.fdb.lookup(1, h2.mac, sim.now) == 2

    def test_counters_accumulate(self):
        sim, switch, (h1, h2, _) = build_network()
        h1.ping(h2.ip)
        sim.run(until=0.5)
        assert switch.counters.rx_frames >= 4
        assert switch.counters.tx_frames >= 4
        assert switch.counters.per_port_rx[1] >= 2
