"""Differential transparency tests: HARMLESS vs ideal OpenFlow switch."""

import pytest

from repro.apps import LearningSwitchApp
from repro.core import TransparencyHarness
from repro.core.verify import random_udp_traffic


def learning_apps():
    return [LearningSwitchApp()]


class TestTransparency:
    def test_seeded_udp_traffic_is_equivalent(self):
        harness = TransparencyHarness(num_hosts=4, app_factory=learning_apps)
        result = harness.run(random_udp_traffic(seed=7, num_messages=30))
        assert result.equivalent, result.mismatches

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_multiple_seeds(self, seed):
        harness = TransparencyHarness(num_hosts=3, app_factory=learning_apps)
        result = harness.run(random_udp_traffic(seed=seed, num_messages=20))
        assert result.equivalent, result.mismatches

    def test_ping_equivalence(self):
        harness = TransparencyHarness(num_hosts=3, app_factory=learning_apps)

        def traffic(env):
            env.sim.schedule(0.1, lambda: env.hosts[0].ping(env.hosts[1].ip))
            env.sim.schedule(0.5, lambda: env.hosts[2].ping(env.hosts[0].ip))
            env.sim.schedule(1.0, lambda: env.hosts[1].ping(env.hosts[2].ip))

        result = harness.run(traffic)
        assert result.equivalent, result.mismatches
        assert result.harmless_obs["h1"]["pings_ok"] == 1

    def test_mismatch_is_reported_when_environments_differ(self):
        """Sanity check the differ itself: different traffic -> mismatch."""
        harness = TransparencyHarness(num_hosts=2, app_factory=learning_apps)
        sent = {"count": 0}

        def skewed_traffic(env):
            # Second environment sends one extra message.
            sent["count"] += 1
            extra = sent["count"] - 1
            for index in range(1 + extra):
                env.sim.schedule(
                    0.1 * (index + 1),
                    lambda i=index: env.hosts[0].send_udp(
                        env.hosts[1].ip, 7000, b"skew", src_port=12000
                    ),
                )

        result = harness.run(skewed_traffic)
        assert not result.equivalent
        assert result.mismatches
