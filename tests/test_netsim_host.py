"""Tests for the host mini-stack: ARP, ping, UDP, simplified TCP."""

import pytest

from repro.net import IPv4Address, MACAddress
from repro.netsim import Host, Simulator
from repro.netsim.link import Link


def make_hosts(n=2):
    """n hosts wired through direct links is wrong for n>2; for 2 it's a cable."""
    sim = Simulator()
    hosts = [
        Host(
            sim,
            f"h{i}",
            MACAddress(0x020000000001 + i),
            IPv4Address(f"10.0.0.{i + 1}"),
        )
        for i in range(n)
    ]
    return sim, hosts


class TestArpAndPing:
    def test_ping_resolves_arp_then_echoes(self):
        sim, (h1, h2) = make_hosts()
        Link(h1.port0, h2.port0)
        h1.ping(h2.ip)
        sim.run(until=0.5)
        rtts = h1.rtts()
        assert len(rtts) == 1
        assert rtts[0] > 0
        # Both ends learned each other.
        assert h1.resolve(h2.ip) == h2.mac
        assert h2.resolve(h1.ip) == h1.mac

    def test_second_ping_skips_arp(self):
        sim, (h1, h2) = make_hosts()
        Link(h1.port0, h2.port0)
        h1.ping(h2.ip)
        sim.run(until=0.5)
        first_tx = h1.port0.tx_frames
        h1.ping(h2.ip)
        sim.run(until=1.0)
        # Only the echo request went out the second time (no ARP).
        assert h1.port0.tx_frames == first_tx + 1
        assert len(h1.rtts()) == 2

    def test_ping_unreachable_is_lost(self):
        sim, (h1, h2) = make_hosts()
        Link(h1.port0, h2.port0)
        h1.ping(IPv4Address("10.0.0.99"))
        sim.run(until=2.0)
        assert h1.ping_loss_rate == 1.0

    def test_arp_entry_expires(self):
        sim, (h1, h2) = make_hosts()
        Link(h1.port0, h2.port0)
        h1.ping(h2.ip)
        sim.run(until=0.5)
        assert h1.resolve(h2.ip) is not None
        sim.schedule(100.0, lambda: None)
        sim.run()
        assert h1.resolve(h2.ip) is None

    def test_pending_frames_flushed_after_reply(self):
        sim, (h1, h2) = make_hosts()
        Link(h1.port0, h2.port0)
        # Two packets before any ARP entry exists: one ARP request total.
        h1.send_udp(h2.ip, 9999, b"one")
        h1.send_udp(h2.ip, 9999, b"two")
        sim.run(until=0.5)
        payloads = [payload for *_, payload in h2.udp_received]
        assert payloads == [b"one", b"two"]


class TestUdp:
    def test_udp_handler_invoked(self):
        sim, (h1, h2) = make_hosts()
        Link(h1.port0, h2.port0)
        seen = []

        def handler(host, src_ip, src_port, dst_port, payload):
            seen.append((src_ip, dst_port, payload))

        h2.serve_udp(5353, handler)
        h1.send_udp(h2.ip, 5353, b"hello")
        sim.run(until=0.5)
        assert seen == [(h1.ip, 5353, b"hello")]

    def test_udp_reply_path(self):
        sim, (h1, h2) = make_hosts()
        Link(h1.port0, h2.port0)

        def echo_server(host, src_ip, src_port, dst_port, payload):
            host.send_udp(src_ip, src_port, payload.upper())

        h2.serve_udp(7, echo_server)
        h1.send_udp(h2.ip, 7, b"shout", src_port=50000)
        sim.run(until=0.5)
        replies = [p for _, _, dst, p in h1.udp_received if dst == 50000]
        assert replies == [b"SHOUT"]

    def test_ephemeral_ports_increment(self):
        sim, (h1, h2) = make_hosts()
        Link(h1.port0, h2.port0)
        p1 = h1.send_udp(h2.ip, 1, b"a")
        p2 = h1.send_udp(h2.ip, 1, b"b")
        assert p2 == p1 + 1


class TestTcp:
    def test_request_response_exchange(self):
        sim, (h1, h2) = make_hosts()
        Link(h1.port0, h2.port0)
        responses = []

        def server(host, src_ip, src_port, request):
            assert request == b"GET /"
            return b"200 OK"

        h2.serve_tcp(80, server)
        h1.tcp_request(h2.ip, 80, b"GET /", on_response=responses.append)
        sim.run(until=0.5)
        assert responses == [b"200 OK"]

    def test_two_parallel_connections(self):
        sim, (h1, h2) = make_hosts()
        Link(h1.port0, h2.port0)
        responses = []
        h2.serve_tcp(80, lambda host, ip, port, req: b"resp:" + req)
        h1.tcp_request(h2.ip, 80, b"a", on_response=responses.append)
        h1.tcp_request(h2.ip, 80, b"b", on_response=responses.append)
        sim.run(until=0.5)
        assert sorted(responses) == [b"resp:a", b"resp:b"]

    def test_no_server_means_no_response(self):
        sim, (h1, h2) = make_hosts()
        Link(h1.port0, h2.port0)
        responses = []
        h1.tcp_request(h2.ip, 8080, b"x", on_response=responses.append)
        sim.run(until=0.5)
        assert responses == []


class TestHostFiltering:
    def test_foreign_unicast_ignored(self):
        sim, (h1, h2) = make_hosts()
        Link(h1.port0, h2.port0)
        from repro.net.build import udp_frame

        stray = udp_frame(
            h1.mac,
            MACAddress("02:00:00:00:99:99"),
            h1.ip,
            h2.ip,
            1,
            2,
            b"not-for-you",
        )
        h1.port0.send(stray)
        sim.run(until=0.1)
        assert h2.udp_received == []
        assert h2.rx_unhandled == 1

    def test_tagged_frame_ignored(self):
        sim, (h1, h2) = make_hosts()
        Link(h1.port0, h2.port0)
        from repro.net.build import udp_frame

        tagged = udp_frame(h1.mac, h2.mac, h1.ip, h2.ip, 1, 2, b"x", vlan_id=101)
        h1.port0.send(tagged)
        sim.run(until=0.1)
        assert h2.udp_received == []

    def test_foreign_ip_ignored(self):
        sim, (h1, h2) = make_hosts()
        Link(h1.port0, h2.port0)
        from repro.net.build import udp_frame

        wrong_ip = udp_frame(
            h1.mac, h2.mac, h1.ip, IPv4Address("10.0.0.50"), 1, 2, b"x"
        )
        h1.port0.send(wrong_ip)
        sim.run(until=0.1)
        assert h2.udp_received == []
