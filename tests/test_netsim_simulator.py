"""Tests for the discrete-event loop, nodes and links."""

import pytest

from repro.net import EthernetFrame, MACAddress
from repro.netsim import Capture, Link, Node, Port, Simulator
from repro.netsim.link import wire


class Sink(Node):
    """A node that just records what it receives."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, port, frame):
        self.received.append((self.sim.now, port.number, frame))


def make_frame(payload=b"x" * 100):
    return EthernetFrame(
        dst=MACAddress(2), src=MACAddress(1), ethertype=0x0800, payload=payload
    )


class TestSimulator:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_are_fifo(self):
        sim = Simulator()
        order = []
        for tag in ("first", "second", "third"):
            sim.schedule(1.0, lambda t=tag: order.append(t))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.25, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [0.25]
        assert sim.now == 0.25

    def test_run_until_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        processed = sim.run(until=2.0)
        assert processed == 1
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 5]

    def test_run_until_advances_clock_when_idle(self):
        sim = Simulator()
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("cancelled"))
        sim.schedule(2.0, lambda: fired.append("kept"))
        event.cancel()
        sim.run()
        assert fired == ["kept"]

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        seen = []

        def chain(depth):
            seen.append(depth)
            if depth < 3:
                sim.schedule(0.1, lambda: chain(depth + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert seen == [0, 1, 2, 3]

    def test_max_events_bound(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.001, forever)

        sim.schedule(0.0, forever)
        processed = sim.run(max_events=50)
        assert processed == 50

    def test_run_until_idle_raises_on_runaway(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.001, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            sim.run_until_idle(max_events=100)

    def test_pending_events_counts_live_only(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.pending_events == 1

    def test_pending_events_is_a_live_counter(self):
        """Maintained by schedule/cancel/pop — not an O(n) heap scan."""
        sim = Simulator()
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert sim.pending_events == 5
        events[0].cancel()
        events[0].cancel()  # double-cancel must not double-decrement
        assert sim.pending_events == 4
        sim.run(until=3.0)  # runs events at t=2 and t=3 (t=1 cancelled)
        assert sim.pending_events == 2
        sim.run()
        assert sim.pending_events == 0

    def test_cancel_after_run_is_harmless(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.pending_events == 0
        event.cancel()  # already executed and popped
        assert sim.pending_events == 0

    def test_schedule_many_matches_sequential_semantics(self):
        sim = Simulator()
        order = []
        events = sim.schedule_many(
            [
                (2.0, lambda: order.append("late")),
                (1.0, lambda: order.append("early")),
                (1.0, lambda: order.append("early-tie")),
            ]
        )
        assert len(events) == 3
        assert sim.pending_events == 3
        sim.run()
        assert order == ["early", "early-tie", "late"]
        assert sim.pending_events == 0

    def test_schedule_many_interleaves_with_schedule_at(self):
        """Ties between the two entry points resolve in call order."""
        sim = Simulator()
        order = []
        sim.schedule_at(1.0, lambda: order.append("single"))
        sim.schedule_many([(1.0, lambda: order.append("batch"))])
        sim.run()
        assert order == ["single", "batch"]

    def test_schedule_many_rejects_past_times(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_many([(2.0, lambda: None), (0.5, lambda: None)])
        # The valid first pair was queued before the bad one raised.
        assert sim.pending_events == 1

    def test_schedule_many_events_cancellable(self):
        sim = Simulator()
        fired = []
        events = sim.schedule_many(
            [(1.0, lambda: fired.append(1)), (2.0, lambda: fired.append(2))]
        )
        events[0].cancel()
        sim.run()
        assert fired == [2]


class TestNodePorts:
    def test_auto_numbering_starts_at_one(self):
        sim = Simulator()
        node = Sink(sim, "s")
        assert node.add_port().number == 1
        assert node.add_port().number == 2

    def test_explicit_number(self):
        node = Sink(Simulator(), "s")
        assert node.add_port(7).number == 7
        assert node.add_port().number == 8

    def test_duplicate_number_rejected(self):
        node = Sink(Simulator(), "s")
        node.add_port(1)
        with pytest.raises(ValueError):
            node.add_port(1)

    def test_port_lookup_error_names_node(self):
        node = Sink(Simulator(), "switch9")
        with pytest.raises(KeyError, match="switch9"):
            node.port(3)

    def test_iter_ports_sorted(self):
        node = Sink(Simulator(), "s")
        node.add_port(5)
        node.add_port(2)
        node.add_port(9)
        assert [p.number for p in node.iter_ports()] == [2, 5, 9]

    def test_send_on_dangling_port_drops(self):
        node = Sink(Simulator(), "s")
        port = node.add_port()
        assert port.send(make_frame()) is False
        assert port.tx_dropped == 1


class TestLink:
    def make_pair(self, **kwargs):
        sim = Simulator()
        a = Sink(sim, "a")
        b = Sink(sim, "b")
        link = wire(a, b, **kwargs)
        return sim, a, b, link

    def test_frame_delivered(self):
        sim, a, b, _ = self.make_pair()
        a.port(1).send(make_frame())
        sim.run()
        assert len(b.received) == 1

    def test_delivery_time_includes_serialization_and_propagation(self):
        sim, a, b, link = self.make_pair(
            bandwidth_bps=1_000_000_000, propagation_delay_s=10e-6
        )
        frame = make_frame(payload=b"z" * 986)  # 1000B on the wire
        a.port(1).send(frame)
        sim.run()
        arrival_time = b.received[0][0]
        assert arrival_time == pytest.approx(1000 * 8 / 1e9 + 10e-6)

    def test_ideal_link_has_no_serialization(self):
        sim, a, b, _ = self.make_pair(bandwidth_bps=None, propagation_delay_s=1e-9)
        a.port(1).send(make_frame(payload=b"z" * 1400))
        sim.run()
        assert b.received[0][0] == pytest.approx(1e-9)

    def test_back_to_back_frames_queue_behind_each_other(self):
        sim, a, b, link = self.make_pair(
            bandwidth_bps=8_000_000, propagation_delay_s=0.0
        )  # 1 byte/us
        frame = make_frame(payload=b"z" * 86)  # 100B -> 100us each
        a.port(1).send(frame)
        a.port(1).send(frame)
        sim.run()
        times = [t for t, _, _ in b.received]
        assert times[0] == pytest.approx(100e-6)
        assert times[1] == pytest.approx(200e-6)

    def test_full_duplex_no_interference(self):
        sim, a, b, link = self.make_pair(
            bandwidth_bps=8_000_000, propagation_delay_s=0.0
        )
        frame = make_frame(payload=b"z" * 86)
        a.port(1).send(frame)
        b.port(1).send(frame)
        sim.run()
        assert a.received[0][0] == pytest.approx(100e-6)
        assert b.received[0][0] == pytest.approx(100e-6)

    def test_queue_overflow_drops(self):
        sim, a, b, link = self.make_pair(
            bandwidth_bps=8_000_000, propagation_delay_s=0.0, queue_frames=2
        )
        for _ in range(5):
            a.port(1).send(make_frame())
        sim.run()
        assert len(b.received) == 2
        assert link.stats(a.port(1)).drops == 3

    def test_stats_track_frames_and_bytes(self):
        sim, a, b, link = self.make_pair()
        frame = make_frame()
        a.port(1).send(frame)
        sim.run()
        stats = link.stats(a.port(1))
        assert stats.frames == 1
        assert stats.bytes == frame.wire_length

    def test_port_down_drops_tx(self):
        sim, a, b, _ = self.make_pair()
        a.port(1).up = False
        assert a.port(1).send(make_frame()) is False
        sim.run()
        assert b.received == []

    def test_port_down_drops_rx(self):
        sim, a, b, _ = self.make_pair()
        b.port(1).up = False
        a.port(1).send(make_frame())
        sim.run()
        assert b.received == []
        assert b.port(1).rx_frames == 0

    def test_double_wire_rejected(self):
        sim = Simulator()
        a, b, c = Sink(sim, "a"), Sink(sim, "b"), Sink(sim, "c")
        wire(a, b)
        with pytest.raises(ValueError):
            Link(a.port(1), c.add_port())

    def test_self_wire_rejected(self):
        sim = Simulator()
        a = Sink(sim, "a")
        port = a.add_port()
        with pytest.raises(ValueError):
            Link(port, port)

    def test_peer_property(self):
        sim, a, b, _ = self.make_pair()
        assert a.port(1).peer is b.port(1)
        assert b.port(1).peer is a.port(1)

    def test_utilization(self):
        sim, a, b, link = self.make_pair(
            bandwidth_bps=8_000_000, propagation_delay_s=0.0
        )
        frame = make_frame(payload=b"z" * 86)  # 100us at 1B/us
        a.port(1).send(frame)
        sim.run()
        assert link.utilization(a.port(1), elapsed=200e-6) == pytest.approx(0.5)


class TestCapture:
    def test_records_both_directions(self):
        sim = Simulator()
        a, b = Sink(sim, "a"), Sink(sim, "b")
        wire(a, b)
        capture = Capture("test").attach(a.port(1), b.port(1))
        a.port(1).send(make_frame())
        sim.run()
        directions = [(entry.port_name, entry.direction) for entry in capture]
        assert ("a:1", "tx") in directions
        assert ("b:1", "rx") in directions

    def test_filter(self):
        sim = Simulator()
        a, b = Sink(sim, "a"), Sink(sim, "b")
        wire(a, b)
        capture = Capture("vlan-only", filter_fn=lambda f: f.vlan_id == 101)
        capture.attach(a.port(1))
        a.port(1).send(make_frame())
        a.port(1).send(make_frame().push_vlan(101))
        sim.run()
        assert len(capture) == 1

    def test_max_entries(self):
        sim = Simulator()
        a, b = Sink(sim, "a"), Sink(sim, "b")
        wire(a, b)
        capture = Capture("small", max_entries=2).attach(a.port(1))
        for _ in range(5):
            a.port(1).send(make_frame())
        sim.run()
        assert len(capture) == 2
        assert capture.dropped == 3

    def test_format_trace_mentions_frames(self):
        sim = Simulator()
        a, b = Sink(sim, "a"), Sink(sim, "b")
        wire(a, b)
        capture = Capture("t").attach(a.port(1))
        a.port(1).send(make_frame())
        sim.run()
        text = capture.format_trace()
        assert "capture t" in text
        assert "tx" in text


class TestCancellationAccounting:
    """Satellite: the O(1) pending_events counter vs cancel/reschedule
    churn — and the heap compaction that keeps lazy deletion bounded."""

    def test_cancel_then_reschedule_same_timestamp(self):
        sim = Simulator()
        fired = []
        stale = sim.schedule_at(1.0, lambda: fired.append("stale"))
        stale.cancel()
        assert sim.pending_events == 0
        sim.schedule_at(1.0, lambda: fired.append("fresh"))
        assert sim.pending_events == 1
        sim.run()
        assert fired == ["fresh"]
        assert sim.pending_events == 0

    def test_repeated_rearm_counter_stays_exact(self):
        # A re-armed timeout: cancel + reschedule at the same deadline,
        # many times over.  The counter must track live events exactly.
        sim = Simulator()
        fired = []
        event = sim.schedule_at(5.0, lambda: fired.append("boom"))
        for _ in range(1000):
            event.cancel()
            assert sim.pending_events == 0
            event = sim.schedule_at(5.0, lambda: fired.append("boom"))
            assert sim.pending_events == 1
        sim.run()
        assert fired == ["boom"]

    def test_double_cancel_does_not_double_decrement(self):
        sim = Simulator()
        keeper = sim.schedule_at(1.0, lambda: None)
        victim = sim.schedule_at(1.0, lambda: None)
        victim.cancel()
        victim.cancel()
        assert sim.pending_events == 1
        keeper.cancel()
        assert sim.pending_events == 0

    def test_compaction_bounds_heap_garbage(self):
        # Without compaction 10k cancel cycles leave 10k dead entries
        # in the heap while pending_events correctly reads ~0.
        sim = Simulator()
        for _ in range(10_000):
            sim.schedule_at(1.0, lambda: None).cancel()
        assert sim.pending_events == 0
        assert len(sim._queue) <= 256

    def test_compaction_preserves_fifo_ties(self):
        sim = Simulator()
        order = []
        keepers = []
        for index in range(50):
            keepers.append(
                sim.schedule_at(1.0, lambda i=index: order.append(i))
            )
            # Interleave garbage so a compaction definitely triggers.
            for _ in range(10):
                sim.schedule_at(1.0, lambda: order.append("dead")).cancel()
        sim.run()
        assert order == list(range(50))

    def test_peek_next_time_skips_cancelled(self):
        sim = Simulator()
        assert sim.peek_next_time() is None
        early = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        assert sim.peek_next_time() == 1.0
        early.cancel()
        assert sim.peek_next_time() == 2.0

    def test_exclusive_horizon_leaves_edge_event_queued(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append("in"))
        sim.schedule_at(2.0, lambda: fired.append("edge"))
        sim.run(until=2.0, inclusive=False)
        assert fired == ["in"]
        assert sim.now == 2.0
        assert sim.pending_events == 1
        sim.run(until=2.0)  # inclusive picks the edge event up
        assert fired == ["in", "edge"]

    def test_exclusive_needs_horizon(self):
        with pytest.raises(ValueError):
            Simulator().run(inclusive=False)
