"""Tests for OXM matches and packet views."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import IPv4Address, MACAddress, TcpSegment
from repro.net.build import tcp_frame, udp_frame
from repro.openflow import Match, OFPVID_PRESENT, PacketView
from repro.openflow.match import OXM_FIELDS, MatchField

MAC_A = MACAddress("02:00:00:00:00:01")
MAC_B = MACAddress("02:00:00:00:00:02")
IP_A = IPv4Address("10.0.0.1")
IP_B = IPv4Address("10.1.2.3")


def view_of(frame, in_port=1):
    return PacketView(frame, in_port=in_port)


def sample_udp(vlan_id=None):
    return udp_frame(MAC_A, MAC_B, IP_A, IP_B, 1234, 53, b"x", vlan_id=vlan_id)


class TestPacketView:
    def test_ethernet_fields(self):
        view = view_of(sample_udp(), in_port=7)
        assert view.get("in_port") == 7
        assert view.get("eth_src") == int(MAC_A)
        assert view.get("eth_dst") == int(MAC_B)
        assert view.get("eth_type") == 0x0800

    def test_vlan_semantics(self):
        assert view_of(sample_udp()).get("vlan_vid") == 0
        assert view_of(sample_udp(vlan_id=101)).get("vlan_vid") == OFPVID_PRESENT | 101

    def test_l3_l4_fields(self):
        view = view_of(sample_udp())
        assert view.get("ipv4_src") == int(IP_A)
        assert view.get("ipv4_dst") == int(IP_B)
        assert view.get("ip_proto") == 17
        assert view.get("udp_src") == 1234
        assert view.get("udp_dst") == 53
        assert view.get("tcp_dst") is None

    def test_tcp_fields(self):
        frame = tcp_frame(MAC_A, MAC_B, IP_A, IP_B, TcpSegment(4000, 80))
        view = view_of(frame)
        assert view.get("tcp_src") == 4000
        assert view.get("tcp_dst") == 80
        assert view.get("udp_dst") is None

    def test_non_ip_frame_has_no_l3(self):
        from repro.net import EthernetFrame

        frame = EthernetFrame(dst=MAC_B, src=MAC_A, ethertype=0x88CC, payload=b"lldp")
        view = view_of(frame)
        assert view.get("ipv4_src") is None
        assert view.get("ip_proto") is None

    def test_unknown_field_raises(self):
        with pytest.raises(KeyError):
            view_of(sample_udp()).get("mpls_label")


class TestMatch:
    def test_empty_match_matches_everything(self):
        assert Match().matches(view_of(sample_udp()))

    def test_exact_field(self):
        assert Match(eth_type=0x0800).matches(view_of(sample_udp()))
        assert not Match(eth_type=0x0806).matches(view_of(sample_udp()))

    def test_in_port(self):
        assert Match(in_port=3).matches(view_of(sample_udp(), in_port=3))
        assert not Match(in_port=3).matches(view_of(sample_udp(), in_port=4))

    def test_mac_accepts_string(self):
        match = Match(eth_src="02:00:00:00:00:01")
        assert match.matches(view_of(sample_udp()))

    def test_ipv4_masked_match(self):
        match = Match(eth_type=0x0800, ipv4_dst=("10.1.0.0", "255.255.0.0"))
        assert match.matches(view_of(sample_udp()))
        miss = Match(eth_type=0x0800, ipv4_dst=("10.2.0.0", "255.255.0.0"))
        assert not miss.matches(view_of(sample_udp()))

    def test_vlan_helpers(self):
        tagged = view_of(sample_udp(vlan_id=101))
        untagged = view_of(sample_udp())
        assert Match.vlan(101).matches(tagged)
        assert not Match.vlan(102).matches(tagged)
        assert not Match.vlan(101).matches(untagged)
        assert Match.untagged().matches(untagged)
        assert not Match.untagged().matches(tagged)

    def test_missing_field_never_matches(self):
        # TCP port match on a UDP packet.
        assert not Match(tcp_dst=80).matches(view_of(sample_udp()))

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            Match(frobnitz=1)

    def test_value_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            Match(eth_type=0x10000)

    def test_subset_relation(self):
        broad = Match(eth_type=0x0800)
        narrow = Match(eth_type=0x0800, ipv4_dst="10.1.2.3")
        assert narrow.is_subset_of(broad)
        assert not broad.is_subset_of(narrow)
        assert narrow.is_subset_of(Match())

    def test_subset_with_masks(self):
        slash16 = Match(ipv4_dst=("10.1.0.0", "255.255.0.0"))
        slash24 = Match(ipv4_dst=("10.1.2.0", "255.255.255.0"))
        assert slash24.is_subset_of(slash16)
        assert not slash16.is_subset_of(slash24)

    def test_describe_readable(self):
        text = Match.vlan(101, in_port=2).describe()
        assert "vlan=101" in text
        assert "in_port=2" in text
        assert Match().describe() == "*"

    def test_equality_and_hash(self):
        assert Match(eth_type=0x0800) == Match(eth_type=0x0800)
        assert hash(Match(in_port=1)) == hash(Match(in_port=1))
        assert Match(in_port=1) != Match(in_port=2)


class TestMatchWire:
    def test_round_trip_simple(self):
        match = Match(in_port=3, eth_type=0x0800)
        raw = match.to_bytes()
        parsed, consumed = Match.from_bytes(raw)
        assert parsed == match
        assert consumed == len(raw)

    def test_round_trip_masked(self):
        match = Match(ipv4_dst=("10.0.0.0", "255.0.0.0"), eth_type=0x0800)
        parsed, _ = Match.from_bytes(match.to_bytes())
        assert parsed == match

    def test_padding_to_8(self):
        assert len(Match(in_port=1).to_bytes()) % 8 == 0
        assert len(Match().to_bytes()) % 8 == 0

    def test_empty_match_wire(self):
        parsed, _ = Match.from_bytes(Match().to_bytes())
        assert parsed == Match()

    @given(
        st.dictionaries(
            st.sampled_from(sorted(OXM_FIELDS)),
            st.integers(min_value=0, max_value=0xFF),
            max_size=5,
        )
    )
    def test_round_trip_property(self, fields):
        match = Match(**fields)
        parsed, consumed = Match.from_bytes(match.to_bytes())
        assert parsed == match
        assert consumed == len(match.to_bytes())


class TestMatchField:
    def test_effective_mask_defaults_to_full_width(self):
        assert MatchField("eth_type", 0x0800).effective_mask == 0xFFFF
        assert MatchField("ipv4_src", 0).effective_mask == 0xFFFFFFFF

    def test_covers(self):
        constraint = MatchField("ipv4_dst", 0x0A000000, 0xFF000000)
        assert constraint.covers(0x0A636363)
        assert not constraint.covers(0x0B000000)
        assert not constraint.covers(None)
