"""Tests for the software OpenFlow datapath."""

import pytest

from repro.net import EthernetFrame, IPv4Address, MACAddress
from repro.net.build import udp_frame
from repro.netsim import Simulator
from repro.netsim.link import wire
from repro.openflow import (
    ApplyActions,
    Bucket,
    FlowMod,
    FlowStatsRequest,
    GotoTable,
    GroupAction,
    GroupMod,
    Hello,
    Match,
    OFPP_CONTROLLER,
    OFPP_FLOOD,
    OutputAction,
    PacketOut,
    PopVlanAction,
    PortStatsRequest,
    PushVlanAction,
    SetFieldAction,
    parse_message,
)
from repro.openflow import consts as c
from repro.openflow.messages import EchoRequest, FeaturesRequest, PacketIn
from repro.softswitch import DatapathCostModel, SoftSwitch
from repro.netsim.node import Node

MAC_A = MACAddress("02:00:00:00:00:01")
MAC_B = MACAddress("02:00:00:00:00:02")
IP_A = IPv4Address("10.0.0.1")
IP_B = IPv4Address("10.0.0.2")


class Sink(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, port, frame):
        self.received.append((self.sim.now, frame))


def build_switch(num_sinks=3, cost_model=None):
    """A switch with *num_sinks* single-port neighbours on ports 1..n."""
    sim = Simulator()
    switch = SoftSwitch(
        sim,
        "ss",
        datapath_id=0x1,
        cost_model=cost_model or DatapathCostModel.zero(),
    )
    sinks = []
    for index in range(num_sinks):
        sink = Sink(sim, f"sink{index + 1}")
        wire(switch, sink, bandwidth_bps=None, propagation_delay_s=0.0)
        sinks.append(sink)
    return sim, switch, sinks


def install(switch, **kwargs):
    responses = switch.handle_message(FlowMod(**kwargs).to_bytes())
    assert responses == [], [parse_message(r) for r in responses]


def frame_ab(vlan_id=None, payload=b"x" * 64):
    return udp_frame(MAC_A, MAC_B, IP_A, IP_B, 1000, 2000, payload, vlan_id=vlan_id)


class TestHandshake:
    def test_hello_and_features(self):
        _, switch, _ = build_switch()
        (hello_reply,) = switch.handle_message(Hello(xid=1).to_bytes())
        assert isinstance(parse_message(hello_reply), Hello)
        (features,) = switch.handle_message(FeaturesRequest(xid=2).to_bytes())
        parsed = parse_message(features)
        assert parsed.datapath_id == 0x1
        assert parsed.n_tables == 4

    def test_echo(self):
        _, switch, _ = build_switch()
        (reply,) = switch.handle_message(EchoRequest(xid=3, payload=b"hi").to_bytes())
        assert parse_message(reply).payload == b"hi"


class TestMatching:
    def test_output_action(self):
        sim, switch, sinks = build_switch()
        install(
            switch,
            match=Match(in_port=1),
            instructions=[ApplyActions(actions=(OutputAction(port=2),))],
        )
        switch.inject(frame_ab(), in_port=1)
        sim.run()
        assert len(sinks[1].received) == 1
        assert sinks[0].received == []

    def test_table_miss_drops(self):
        sim, switch, sinks = build_switch()
        switch.inject(frame_ab(), in_port=1)
        sim.run()
        assert all(sink.received == [] for sink in sinks)
        assert switch.packets_dropped == 1

    def test_priority_order(self):
        sim, switch, sinks = build_switch()
        install(
            switch,
            match=Match(),
            priority=1,
            instructions=[ApplyActions(actions=(OutputAction(port=1),))],
        )
        install(
            switch,
            match=Match(eth_type=0x0800),
            priority=100,
            instructions=[ApplyActions(actions=(OutputAction(port=2),))],
        )
        switch.inject(frame_ab(), in_port=3)
        sim.run()
        assert len(sinks[1].received) == 1
        assert sinks[0].received == []

    def test_flood(self):
        sim, switch, sinks = build_switch()
        install(
            switch,
            match=Match(),
            instructions=[ApplyActions(actions=(OutputAction(port=OFPP_FLOOD),))],
        )
        switch.inject(frame_ab(), in_port=1)
        sim.run()
        assert sinks[0].received == []  # not reflected
        assert len(sinks[1].received) == 1
        assert len(sinks[2].received) == 1

    def test_output_to_unknown_port_drops(self):
        sim, switch, _ = build_switch()
        install(
            switch,
            match=Match(),
            instructions=[ApplyActions(actions=(OutputAction(port=99),))],
        )
        switch.inject(frame_ab(), in_port=1)
        sim.run()
        assert switch.packets_dropped == 1


class TestVlanActions:
    def test_push_set_output(self):
        """The translator's patch->trunk rule shape."""
        sim, switch, sinks = build_switch()
        install(
            switch,
            match=Match(in_port=1),
            instructions=[
                ApplyActions(
                    actions=(
                        PushVlanAction(),
                        SetFieldAction.vlan_vid(102),
                        OutputAction(port=2),
                    )
                )
            ],
        )
        switch.inject(frame_ab(), in_port=1)
        sim.run()
        (_, received) = sinks[1].received[0]
        assert received.vlan_id == 102

    def test_pop_output(self):
        """The translator's trunk->patch rule shape."""
        sim, switch, sinks = build_switch()
        install(
            switch,
            match=Match.vlan(101),
            instructions=[
                ApplyActions(actions=(PopVlanAction(), OutputAction(port=3)))
            ],
        )
        switch.inject(frame_ab(vlan_id=101), in_port=1)
        sim.run()
        (_, received) = sinks[2].received[0]
        assert received.vlan is None

    def test_vlan_match_isolation(self):
        sim, switch, sinks = build_switch()
        install(
            switch,
            match=Match.vlan(101),
            instructions=[ApplyActions(actions=(OutputAction(port=2),))],
        )
        switch.inject(frame_ab(vlan_id=102), in_port=1)
        sim.run()
        assert sinks[1].received == []
        assert switch.packets_dropped == 1


class TestMultiTable:
    def test_goto_table(self):
        sim, switch, sinks = build_switch()
        install(
            switch,
            table_id=0,
            match=Match(in_port=1),
            instructions=[GotoTable(table_id=1)],
        )
        install(
            switch,
            table_id=1,
            match=Match(eth_type=0x0800),
            instructions=[ApplyActions(actions=(OutputAction(port=2),))],
        )
        switch.inject(frame_ab(), in_port=1)
        sim.run()
        assert len(sinks[1].received) == 1

    def test_miss_in_second_table_drops(self):
        sim, switch, sinks = build_switch()
        install(
            switch,
            table_id=0,
            match=Match(),
            instructions=[GotoTable(table_id=2)],
        )
        switch.inject(frame_ab(), in_port=1)
        sim.run()
        assert switch.packets_dropped == 1

    def test_write_actions_execute_at_end(self):
        from repro.openflow import WriteActions

        sim, switch, sinks = build_switch()
        install(
            switch,
            table_id=0,
            match=Match(),
            instructions=[
                WriteActions(actions=(OutputAction(port=2),)),
                GotoTable(table_id=1),
            ],
        )
        install(
            switch,
            table_id=1,
            match=Match(),
            instructions=[],  # no goto: pipeline ends, action set runs
        )
        switch.inject(frame_ab(), in_port=1)
        sim.run()
        assert len(sinks[1].received) == 1

    def test_clear_actions_empties_set(self):
        from repro.openflow import ClearActions, WriteActions

        sim, switch, sinks = build_switch()
        install(
            switch,
            table_id=0,
            match=Match(),
            instructions=[
                WriteActions(actions=(OutputAction(port=2),)),
                GotoTable(table_id=1),
            ],
        )
        install(
            switch,
            table_id=1,
            match=Match(),
            instructions=[ClearActions()],
        )
        switch.inject(frame_ab(), in_port=1)
        sim.run()
        assert sinks[1].received == []


class TestGroups:
    def add_select_group(self, switch, group_id=1, ports=(1, 2), weights=None):
        weights = weights or [1] * len(ports)
        buckets = [
            Bucket(actions=[OutputAction(port=port)], weight=weight)
            for port, weight in zip(ports, weights)
        ]
        responses = switch.handle_message(
            GroupMod(
                command=c.OFPGC_ADD,
                group_type=c.OFPGT_SELECT,
                group_id=group_id,
                buckets=buckets,
            ).to_bytes()
        )
        assert responses == []

    def test_select_group_deterministic_per_flow(self):
        sim, switch, sinks = build_switch()
        self.add_select_group(switch, ports=(2, 3))
        install(
            switch,
            match=Match(),
            instructions=[ApplyActions(actions=(GroupAction(group_id=1),))],
        )
        for _ in range(5):
            switch.inject(frame_ab(), in_port=1)
        sim.run()
        # Same flow key -> same bucket every time.
        counts = (len(sinks[1].received), len(sinks[2].received))
        assert sorted(counts) == [0, 5]

    def test_select_group_spreads_flows(self):
        sim, switch, sinks = build_switch()
        self.add_select_group(switch, ports=(2, 3))
        install(
            switch,
            match=Match(),
            instructions=[ApplyActions(actions=(GroupAction(group_id=1),))],
        )
        for index in range(64):
            frame = udp_frame(
                MAC_A, MAC_B, IPv4Address(int(IP_A) + index), IP_B, 1000, 2000, b"y"
            )
            switch.inject(frame, in_port=1)
        sim.run()
        assert len(sinks[1].received) > 5
        assert len(sinks[2].received) > 5

    def test_all_group_copies(self):
        sim, switch, sinks = build_switch()
        buckets = [
            Bucket(actions=[OutputAction(port=2)]),
            Bucket(actions=[OutputAction(port=3)]),
        ]
        switch.handle_message(
            GroupMod(
                command=c.OFPGC_ADD,
                group_type=c.OFPGT_ALL,
                group_id=9,
                buckets=buckets,
            ).to_bytes()
        )
        install(
            switch,
            match=Match(),
            instructions=[ApplyActions(actions=(GroupAction(group_id=9),))],
        )
        switch.inject(frame_ab(), in_port=1)
        sim.run()
        assert len(sinks[1].received) == 1
        assert len(sinks[2].received) == 1

    def test_missing_group_drops(self):
        sim, switch, _ = build_switch()
        install(
            switch,
            match=Match(),
            instructions=[ApplyActions(actions=(GroupAction(group_id=404),))],
        )
        switch.inject(frame_ab(), in_port=1)
        sim.run()
        assert switch.packets_dropped == 1

    def test_duplicate_group_add_errors(self):
        _, switch, _ = build_switch()
        self.add_select_group(switch, group_id=5)
        message = GroupMod(
            command=c.OFPGC_ADD, group_type=c.OFPGT_SELECT, group_id=5, buckets=[]
        )
        responses = switch.handle_message(message.to_bytes())
        assert len(responses) == 1


class TestControllerInteraction:
    def test_packet_in_on_output_to_controller(self):
        sim, switch, _ = build_switch()
        inbox = []
        switch.to_controller = inbox.append
        install(
            switch,
            match=Match(),
            instructions=[
                ApplyActions(actions=(OutputAction(port=OFPP_CONTROLLER),))
            ],
        )
        original = frame_ab()
        switch.inject(original, in_port=2)
        sim.run()
        assert len(inbox) == 1
        packet_in = parse_message(inbox[0])
        assert isinstance(packet_in, PacketIn)
        assert packet_in.in_port == 2
        assert EthernetFrame.from_bytes(packet_in.data) == original

    def test_packet_out_executes_actions(self):
        sim, switch, sinks = build_switch()
        message = PacketOut(
            actions=[OutputAction(port=3)], data=frame_ab().to_bytes()
        )
        switch.handle_message(message.to_bytes())
        sim.run()
        assert len(sinks[2].received) == 1

    def test_flow_stats(self):
        sim, switch, _ = build_switch()
        install(
            switch,
            match=Match(in_port=1),
            priority=7,
            instructions=[ApplyActions(actions=(OutputAction(port=2),))],
        )
        switch.inject(frame_ab(), in_port=1)
        sim.run()
        (reply_raw,) = switch.handle_message(FlowStatsRequest(xid=5).to_bytes())
        reply = parse_message(reply_raw)
        assert len(reply.entries) == 1
        assert reply.entries[0].packet_count == 1
        assert reply.entries[0].priority == 7

    def test_port_stats(self):
        sim, switch, sinks = build_switch()
        install(
            switch,
            match=Match(),
            instructions=[ApplyActions(actions=(OutputAction(port=2),))],
        )
        switch.inject(frame_ab(), in_port=1)
        sim.run()
        (reply_raw,) = switch.handle_message(PortStatsRequest(xid=6).to_bytes())
        reply = parse_message(reply_raw)
        by_port = {entry.port_no: entry for entry in reply.entries}
        assert by_port[2].tx_packets == 1


class TestFlowLifecycle:
    def test_delete_flows(self):
        sim, switch, sinks = build_switch()
        install(
            switch,
            match=Match(in_port=1),
            instructions=[ApplyActions(actions=(OutputAction(port=2),))],
        )
        switch.handle_message(
            FlowMod(command=c.OFPFC_DELETE, match=Match()).to_bytes()
        )
        switch.inject(frame_ab(), in_port=1)
        sim.run()
        assert sinks[1].received == []

    def test_strict_delete_needs_exact_match(self):
        sim, switch, sinks = build_switch()
        install(
            switch,
            match=Match(in_port=1),
            priority=10,
            instructions=[ApplyActions(actions=(OutputAction(port=2),))],
        )
        switch.handle_message(
            FlowMod(
                command=c.OFPFC_DELETE_STRICT, match=Match(in_port=1), priority=11
            ).to_bytes()
        )
        switch.inject(frame_ab(), in_port=1)
        sim.run()
        assert len(sinks[1].received) == 1  # priority mismatch -> survived

    def test_modify_rewrites_instructions(self):
        sim, switch, sinks = build_switch()
        install(
            switch,
            match=Match(in_port=1),
            instructions=[ApplyActions(actions=(OutputAction(port=2),))],
        )
        switch.handle_message(
            FlowMod(
                command=c.OFPFC_MODIFY,
                match=Match(in_port=1),
                instructions=[ApplyActions(actions=(OutputAction(port=3),))],
            ).to_bytes()
        )
        switch.inject(frame_ab(), in_port=1)
        sim.run()
        assert sinks[1].received == []
        assert len(sinks[2].received) == 1

    def test_idle_timeout_expires(self):
        sim, switch, sinks = build_switch()
        install(
            switch,
            match=Match(in_port=1),
            idle_timeout=2,
            instructions=[ApplyActions(actions=(OutputAction(port=2),))],
        )
        switch.inject(frame_ab(), in_port=1)
        sim.run(until=0.1)
        assert len(sinks[1].received) == 1
        sim.schedule(5.0, lambda: switch.inject(frame_ab(), in_port=1))
        sim.run(until=6.0)
        assert len(sinks[1].received) == 1  # flow aged out, second inject dropped

    def test_flow_removed_notification(self):
        sim, switch, _ = build_switch()
        inbox = []
        switch.to_controller = inbox.append
        install(
            switch,
            match=Match(in_port=1),
            hard_timeout=1,
            flags=1,  # OFPFF_SEND_FLOW_REM
            instructions=[ApplyActions(actions=(OutputAction(port=2),))],
        )
        sim.run(until=3.0)
        removed = [
            parse_message(raw)
            for raw in inbox
            if parse_message(raw).msg_type == c.OFPT_FLOW_REMOVED
        ]
        assert len(removed) == 1
        assert removed[0].reason == c.OFPRR_HARD_TIMEOUT

    def test_add_to_bad_table_errors(self):
        _, switch, _ = build_switch()
        responses = switch.handle_message(FlowMod(table_id=99).to_bytes())
        assert len(responses) == 1

    def test_identical_match_priority_replaces(self):
        sim, switch, sinks = build_switch()
        for port in (2, 3):
            install(
                switch,
                match=Match(in_port=1),
                priority=5,
                instructions=[ApplyActions(actions=(OutputAction(port=port),))],
            )
        assert len(switch.tables[0]) == 1
        switch.inject(frame_ab(), in_port=1)
        sim.run()
        assert len(sinks[2].received) == 1


class TestCostModel:
    def test_processing_delay_applied(self):
        model = DatapathCostModel(
            base_ns=1000.0, lookup_ns=0, action_ns=0, vlan_op_ns=0, group_ns=0, patch_ns=0
        )
        sim, switch, sinks = build_switch(cost_model=model)
        install(
            switch,
            match=Match(),
            instructions=[ApplyActions(actions=(OutputAction(port=2),))],
        )
        switch.inject(frame_ab(), in_port=1)
        sim.run()
        (arrival, _) = sinks[1].received[0]
        assert arrival == pytest.approx(1e-6)

    def test_busy_core_serialises(self):
        model = DatapathCostModel(
            base_ns=1000.0, lookup_ns=0, action_ns=0, vlan_op_ns=0, group_ns=0, patch_ns=0
        )
        sim, switch, sinks = build_switch(cost_model=model)
        install(
            switch,
            match=Match(),
            instructions=[ApplyActions(actions=(OutputAction(port=2),))],
        )
        switch.inject(frame_ab(), in_port=1)
        switch.inject(frame_ab(), in_port=1)
        sim.run()
        arrivals = [t for t, _ in sinks[1].received]
        assert arrivals[0] == pytest.approx(1e-6)
        assert arrivals[1] == pytest.approx(2e-6)

    def test_peak_pps(self):
        from repro.softswitch import ESWITCH_COST_MODEL

        pps = ESWITCH_COST_MODEL.peak_pps(lookups=1, actions=1)
        assert 10e6 < pps < 20e6  # ESwitch-calibrated ballpark
