"""Tests for the traffic generators and the NFPA harness."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim import Simulator
from repro.netsim.link import Link
from repro.nfpa import LatencyStats, make_sink, measure_forwarding, measure_pipeline_rate
from repro.softswitch import DatapathCostModel, ESWITCH_COST_MODEL, SoftSwitch
from repro.openflow import ApplyActions, FlowMod, Match, OutputAction
from repro.traffic import (
    cbr_schedule,
    make_flow_population,
    poisson_schedule,
    zipf_weights,
)


class TestFlowPopulation:
    def test_count_and_uniqueness(self):
        flows = make_flow_population(50, seed=1)
        assert len(flows) == 50
        keys = {(f.src_ip, f.dst_ip, f.src_port, f.dst_port) for f in flows}
        assert len(keys) == 50

    def test_seeded_reproducibility(self):
        assert make_flow_population(10, seed=7) == make_flow_population(10, seed=7)
        assert make_flow_population(10, seed=7) != make_flow_population(10, seed=8)

    def test_fixed_dst_port(self):
        flows = make_flow_population(5, seed=0, dst_port=80)
        assert all(f.dst_port == 80 for f in flows)

    def test_frames_parse(self):
        from repro.net.build import parse_udp

        flow = make_flow_population(1, seed=3)[0]
        frame = flow.frame(payload_len=100)
        result = parse_udp(frame)
        assert result is not None
        packet, datagram = result
        assert packet.src == flow.src_ip
        assert len(datagram.payload) == 100

    def test_vlan_tagging(self):
        flow = make_flow_population(1, seed=3)[0]
        assert flow.frame(vlan_id=101).vlan_id == 101


class TestZipf:
    def test_weights_sum_to_one(self):
        assert sum(zipf_weights(10)) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = zipf_weights(20, skew=1.1)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_skew_zero_is_uniform(self):
        weights = zipf_weights(4, skew=0.0)
        assert all(w == pytest.approx(0.25) for w in weights)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(0)


class TestSchedules:
    def test_cbr_spacing(self):
        times = cbr_schedule(1000.0, 0.01)
        assert len(times) == 10
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(0.001) for g in gaps)

    def test_poisson_mean_rate(self):
        times = poisson_schedule(10_000.0, 1.0, seed=3)
        assert 9_000 < len(times) < 11_000

    def test_poisson_seeded(self):
        assert poisson_schedule(100, 1.0, seed=1) == poisson_schedule(100, 1.0, seed=1)

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            cbr_schedule(0, 1.0)
        with pytest.raises(ValueError):
            poisson_schedule(-1, 1.0)


class TestLatencyStats:
    def test_percentiles(self):
        stats = LatencyStats(samples=[float(i) for i in range(1, 101)])
        assert stats.p50 == pytest.approx(50.0, abs=1.0)
        assert stats.p99 == pytest.approx(99.0, abs=1.0)
        assert stats.maximum == 100.0
        assert stats.mean == pytest.approx(50.5)

    def test_empty_is_nan(self):
        import math

        assert math.isnan(LatencyStats().mean)


class TestHarness:
    def test_measure_forwarding_delivers_and_times(self):
        sim = Simulator()
        switch = SoftSwitch(
            sim, "dut", datapath_id=1,
            cost_model=DatapathCostModel(100.0, 0, 0, 0, 0, 0),
        )
        sink = make_sink(sim, "test")
        switch.add_port(1)
        Link(switch.add_port(2), sink.add_port(1), bandwidth_bps=None)
        switch.handle_message(
            FlowMod(
                match=Match(in_port=1),
                instructions=[ApplyActions(actions=(OutputAction(port=2),))],
            ).to_bytes()
        )
        flows = make_flow_population(4, seed=5)
        result = measure_forwarding(
            sim,
            "test",
            lambda frame: switch.inject(frame, 1),
            sink,
            flows,
            packets_per_flow=25,
            interval_s=1e-5,
        )
        assert result.offered_packets == 100
        assert result.delivered_packets == 100
        assert result.loss_rate == 0.0
        assert result.latency.count == 100
        assert result.latency.mean >= 100e-9

    def test_pipeline_rate_analytic(self):
        rate = measure_pipeline_rate(ESWITCH_COST_MODEL, lookups=1, actions=1)
        assert rate == pytest.approx(1.0 / 65e-9)

    def test_result_row_renders(self):
        sim = Simulator()
        sink = make_sink(sim, "row")
        sink.stats.offered_packets = 10
        sink.stats.delivered_packets = 10
        sink.stats.duration_s = 1.0
        assert "Mpps" in sink.stats.row()
