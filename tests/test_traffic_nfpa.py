"""Tests for the traffic generators and the NFPA harness."""

import pytest

from repro.netsim import Simulator
from repro.netsim.link import Link
from repro.nfpa import LatencyStats, make_sink, measure_forwarding, measure_pipeline_rate
from repro.softswitch import DatapathCostModel, ESWITCH_COST_MODEL, SoftSwitch
from repro.openflow import ApplyActions, FlowMod, Match, OutputAction
from repro.traffic import (
    BurstSource,
    burst_schedule,
    cbr_schedule,
    interleave_bursts,
    make_flow_population,
    poisson_schedule,
    zipf_weights,
)


class TestFlowPopulation:
    def test_count_and_uniqueness(self):
        flows = make_flow_population(50, seed=1)
        assert len(flows) == 50
        keys = {(f.src_ip, f.dst_ip, f.src_port, f.dst_port) for f in flows}
        assert len(keys) == 50

    def test_seeded_reproducibility(self):
        assert make_flow_population(10, seed=7) == make_flow_population(10, seed=7)
        assert make_flow_population(10, seed=7) != make_flow_population(10, seed=8)

    def test_fixed_dst_port(self):
        flows = make_flow_population(5, seed=0, dst_port=80)
        assert all(f.dst_port == 80 for f in flows)

    def test_frames_parse(self):
        from repro.net.build import parse_udp

        flow = make_flow_population(1, seed=3)[0]
        frame = flow.frame(payload_len=100)
        result = parse_udp(frame)
        assert result is not None
        packet, datagram = result
        assert packet.src == flow.src_ip
        assert len(datagram.payload) == 100

    def test_vlan_tagging(self):
        flow = make_flow_population(1, seed=3)[0]
        assert flow.frame(vlan_id=101).vlan_id == 101


class TestZipf:
    def test_weights_sum_to_one(self):
        assert sum(zipf_weights(10)) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        weights = zipf_weights(20, skew=1.1)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_skew_zero_is_uniform(self):
        weights = zipf_weights(4, skew=0.0)
        assert all(w == pytest.approx(0.25) for w in weights)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            zipf_weights(0)


class TestSchedules:
    def test_cbr_spacing(self):
        times = cbr_schedule(1000.0, 0.01)
        assert len(times) == 10
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(0.001) for g in gaps)

    def test_poisson_mean_rate(self):
        times = poisson_schedule(10_000.0, 1.0, seed=3)
        assert 9_000 < len(times) < 11_000

    def test_poisson_seeded(self):
        assert poisson_schedule(100, 1.0, seed=1) == poisson_schedule(100, 1.0, seed=1)

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            cbr_schedule(0, 1.0)
        with pytest.raises(ValueError):
            poisson_schedule(-1, 1.0)


class TestBurstSchedule:
    def test_total_frames_match_cbr(self):
        schedule = burst_schedule(1000.0, 0.1, burst_size=32)
        assert sum(count for _, count in schedule) == len(cbr_schedule(1000.0, 0.1))

    def test_burst_spacing_and_partial_tail(self):
        schedule = burst_schedule(1000.0, 0.1, burst_size=32)
        # 100 frames -> bursts of 32, 32, 32, 4 spaced 32ms apart.
        assert [count for _, count in schedule] == [32, 32, 32, 4]
        starts = [start for start, _ in schedule]
        gaps = [b - a for a, b in zip(starts, starts[1:])]
        assert all(gap == pytest.approx(0.032) for gap in gaps)

    def test_burst_size_one_degenerates_to_cbr(self):
        schedule = burst_schedule(500.0, 0.01, burst_size=1)
        assert all(count == 1 for _, count in schedule)
        assert [start for start, _ in schedule] == pytest.approx(
            cbr_schedule(500.0, 0.01)
        )

    def test_start_offset(self):
        schedule = burst_schedule(100.0, 0.1, burst_size=5, start_s=2.0)
        assert schedule[0][0] == pytest.approx(2.0)

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            burst_schedule(0.0, 1.0, 8)
        with pytest.raises(ValueError):
            burst_schedule(100.0, 1.0, 0)


class TestInterleaveBursts:
    def test_fills_schedule_exactly(self):
        flows = make_flow_population(4, seed=1)
        schedule = burst_schedule(1000.0, 0.05, burst_size=16)
        bursts = interleave_bursts(flows, schedule, seed=2)
        assert [start for start, _ in bursts] == [start for start, _ in schedule]
        assert [len(frames) for _, frames in bursts] == [
            count for _, count in schedule
        ]

    def test_reuses_one_template_frame_per_flow(self):
        """Frames of one flow are the same object — the batch datapath
        decodes each distinct frame object once per burst."""
        flows = make_flow_population(2, seed=1)
        bursts = interleave_bursts(flows, [(0.0, 40)], seed=3)
        distinct = {id(frame) for _, frames in bursts for frame in frames}
        assert len(distinct) <= len(flows)

    def test_seeded_reproducibility(self):
        flows = make_flow_population(4, seed=1)
        schedule = [(0.0, 20)]
        first = interleave_bursts(flows, schedule, seed=9)
        second = interleave_bursts(flows, schedule, seed=9)
        assert [
            [f.to_bytes() for f in frames] for _, frames in first
        ] == [[f.to_bytes() for f in frames] for _, frames in second]

    def test_zipf_weights_skew_the_mix(self):
        flows = make_flow_population(8, seed=1)
        bursts = interleave_bursts(
            flows, [(0.0, 400)], seed=4, weights=zipf_weights(8, skew=1.5)
        )
        from repro.traffic import synth_frame

        top = synth_frame(flows[0]).to_bytes()  # rank-1 flow's frame
        share = sum(
            1 for _, frames in bursts for f in frames if f.to_bytes() == top
        ) / 400
        assert share > 0.3  # rank-1 flow dominates

    def test_misaligned_weights_rejected(self):
        flows = make_flow_population(3, seed=1)
        with pytest.raises(ValueError):
            interleave_bursts(flows, [(0.0, 5)], weights=[0.5, 0.5])
        with pytest.raises(ValueError):
            interleave_bursts([], [(0.0, 5)])


class TestBurstSource:
    def test_plays_bursts_onto_the_wire(self):
        from repro.netsim.link import wire
        from repro.netsim.node import Node

        class Counter(Node):
            def __init__(self, sim, name):
                super().__init__(sim, name)
                self.frames = 0
                self.bursts = 0

            def receive(self, port, frame):
                self.frames += 1

            def receive_burst(self, port, arrivals):
                self.bursts += 1
                self.frames += len(arrivals)

        sim = Simulator()
        source = BurstSource(sim, "gen")
        sink = Counter(sim, "sink")
        wire(source, sink, bandwidth_bps=None, propagation_delay_s=0.0,
             queue_frames=10_000)
        flows = make_flow_population(4, seed=1)
        schedule = burst_schedule(10_000.0, 0.01, burst_size=25)
        bursts = interleave_bursts(flows, schedule, seed=5)
        source.start(bursts)
        sim.run_until_idle()
        assert source.sent == 100
        assert sink.frames == 100
        assert sink.bursts == len(schedule)  # one delivery event per burst


class TestLatencyStats:
    def test_percentiles(self):
        stats = LatencyStats(samples=[float(i) for i in range(1, 101)])
        assert stats.p50 == pytest.approx(50.0, abs=1.0)
        assert stats.p99 == pytest.approx(99.0, abs=1.0)
        assert stats.maximum == 100.0
        assert stats.mean == pytest.approx(50.5)

    def test_empty_is_nan(self):
        import math

        assert math.isnan(LatencyStats().mean)


class TestHarness:
    def test_measure_forwarding_delivers_and_times(self):
        sim = Simulator()
        switch = SoftSwitch(
            sim, "dut", datapath_id=1,
            cost_model=DatapathCostModel(100.0, 0, 0, 0, 0, 0),
        )
        sink = make_sink(sim, "test")
        switch.add_port(1)
        Link(switch.add_port(2), sink.add_port(1), bandwidth_bps=None)
        switch.handle_message(
            FlowMod(
                match=Match(in_port=1),
                instructions=[ApplyActions(actions=(OutputAction(port=2),))],
            ).to_bytes()
        )
        flows = make_flow_population(4, seed=5)
        result = measure_forwarding(
            sim,
            "test",
            lambda frame: switch.inject(frame, 1),
            sink,
            flows,
            packets_per_flow=25,
            interval_s=1e-5,
        )
        assert result.offered_packets == 100
        assert result.delivered_packets == 100
        assert result.loss_rate == 0.0
        assert result.latency.count == 100
        assert result.latency.mean >= 100e-9

    def test_pipeline_rate_analytic(self):
        rate = measure_pipeline_rate(ESWITCH_COST_MODEL, lookups=1, actions=1)
        assert rate == pytest.approx(1.0 / 65e-9)

    def test_result_row_renders(self):
        sim = Simulator()
        sink = make_sink(sim, "row")
        sink.stats.offered_packets = 10
        sink.stats.delivered_packets = 10
        sink.stats.duration_s = 1.0
        assert "Mpps" in sink.stats.row()
