"""Tests for the controller framework and the learning-switch app."""

import pytest

from repro.apps import LearningSwitchApp
from repro.controller import Controller
from repro.net import IPv4Address, MACAddress
from repro.netsim import Host, Link, Simulator
from repro.openflow import FlowStatsRequest, Match, OutputAction
from repro.openflow.messages import FlowStatsReply
from repro.softswitch import DatapathCostModel, SoftSwitch

ZERO_COST = DatapathCostModel.zero()


def build(num_hosts=3, latency_s=10e-6):
    sim = Simulator()
    switch = SoftSwitch(sim, "of1", datapath_id=0xABCD, cost_model=ZERO_COST)
    hosts = []
    for index in range(num_hosts):
        host = Host(
            sim,
            f"h{index + 1}",
            MACAddress(0x020000000001 + index),
            IPv4Address(f"10.0.0.{index + 1}"),
        )
        Link(host.port0, switch.add_port(index + 1))
        hosts.append(host)
    controller = Controller(sim)
    return sim, switch, hosts, controller, latency_s


class TestHandshake:
    def test_datapath_becomes_ready(self):
        sim, switch, _, controller, latency = build()
        datapath = controller.connect(switch, latency_s=latency)
        sim.run(until=0.01)
        assert datapath.ready
        assert datapath.dpid == 0xABCD
        assert controller.datapaths[0xABCD] is datapath
        assert datapath.n_tables == 4

    def test_apps_notified_on_ready(self):
        sim, switch, _, controller, latency = build()
        app = LearningSwitchApp()
        controller.add_app(app)
        controller.connect(switch, latency_s=latency)
        sim.run(until=0.01)
        # Table-miss flow installed by the app.
        assert len(switch.tables[0]) == 1

    def test_app_added_after_connect_still_notified(self):
        sim, switch, _, controller, latency = build()
        controller.connect(switch, latency_s=latency)
        sim.run(until=0.01)
        controller.add_app(LearningSwitchApp())
        sim.run(until=0.02)
        assert len(switch.tables[0]) == 1


class TestLearningSwitch:
    def test_ping_works_and_flows_installed(self):
        sim, switch, (h1, h2, h3), controller, latency = build()
        app = LearningSwitchApp()
        controller.add_app(app)
        controller.connect(switch, latency_s=latency)
        sim.run(until=0.01)

        h1.ping(h2.ip)
        sim.run(until=0.5)
        assert len(h1.rtts()) == 1
        assert app.flows_installed >= 2  # one per direction

    def test_second_ping_stays_in_dataplane(self):
        sim, switch, (h1, h2, _), controller, latency = build()
        app = LearningSwitchApp()
        controller.add_app(app)
        controller.connect(switch, latency_s=latency)
        sim.run(until=0.01)
        h1.ping(h2.ip)
        sim.run(until=0.5)
        packet_ins_before = app.packet_ins_handled
        h1.ping(h2.ip)
        sim.run(until=1.0)
        assert len(h1.rtts()) == 2
        # Echo req/reply now match installed flows; no new packet-ins.
        assert app.packet_ins_handled == packet_ins_before

    def test_reactive_latency_includes_controller(self):
        """First packet pays the controller RTT; later ones don't."""
        sim, switch, (h1, h2, _), controller, _ = build()
        controller.add_app(LearningSwitchApp())
        controller.connect(switch, latency_s=500e-6)
        sim.run(until=0.01)
        h1.ping(h2.ip)
        sim.run(until=0.5)
        h1.ping(h2.ip)
        sim.run(until=1.0)
        first, second = h1.rtts()
        assert first > second
        assert first >= 1e-3  # at least one control RTT in there

    def test_flows_learned_per_datapath(self):
        sim, switch, (h1, h2, _), controller, latency = build()
        app = LearningSwitchApp()
        controller.add_app(app)
        controller.connect(switch, latency_s=latency)
        sim.run(until=0.01)
        h1.ping(h2.ip)
        sim.run(until=0.5)
        table = app.tables[0xABCD]
        assert table[h1.mac] == 1
        assert table[h2.mac] == 2


class TestRequestReply:
    def test_flow_stats_round_trip(self):
        sim, switch, (h1, h2, _), controller, latency = build()
        controller.add_app(LearningSwitchApp())
        datapath = controller.connect(switch, latency_s=latency)
        sim.run(until=0.01)
        h1.ping(h2.ip)
        sim.run(until=0.5)

        replies = []
        datapath.send_with_reply(FlowStatsRequest(), replies.append)
        sim.run(until=1.0)
        assert len(replies) == 1
        assert isinstance(replies[0], FlowStatsReply)
        assert len(replies[0].entries) >= 3  # table-miss + 2 learned flows

    def test_error_collected(self):
        from repro.openflow import FlowMod

        sim, switch, _, controller, latency = build()
        datapath = controller.connect(switch, latency_s=latency)
        sim.run(until=0.01)
        datapath.send(FlowMod(table_id=99, match=Match()))
        sim.run(until=0.1)
        assert len(controller.errors_received) == 1


class TestMultiSwitch:
    def test_two_switches_one_controller(self):
        sim = Simulator()
        controller = Controller(sim)
        app = LearningSwitchApp()
        controller.add_app(app)

        switches = []
        host_pairs = []
        for index in range(2):
            switch = SoftSwitch(
                sim, f"of{index}", datapath_id=index + 1, cost_model=ZERO_COST
            )
            a = Host(
                sim,
                f"a{index}",
                MACAddress(0x02AA00000000 + index),
                IPv4Address(f"10.{index}.0.1"),
            )
            b = Host(
                sim,
                f"b{index}",
                MACAddress(0x02BB00000000 + index),
                IPv4Address(f"10.{index}.0.2"),
            )
            Link(a.port0, switch.add_port(1))
            Link(b.port0, switch.add_port(2))
            controller.connect(switch, latency_s=10e-6)
            switches.append(switch)
            host_pairs.append((a, b))
        sim.run(until=0.01)
        for a, b in host_pairs:
            a.ping(b.ip)
        sim.run(until=0.5)
        for a, _ in host_pairs:
            assert len(a.rtts()) == 1
        assert set(app.tables) == {1, 2}
