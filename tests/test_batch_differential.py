"""Randomized differential proof for the burst-mode datapath.

`SoftSwitch.process_batch` is only allowed to exist because it is
semantics-free: a burst must produce byte-identical emitted frames in
identical order — and identical packet-ins, flow/table/group counters
and cache statistics — to the same frames pushed one at a time through
`receive()`/`inject()`.  The suite drives two identically-provisioned
switches through ≥1000 randomly generated bursts, with control-plane
churn (FlowMod add/delete/modify with timeouts, GroupMod) and simulated
time advancing between bursts so multi-table walks, group selection and
entry expiry (both the sweeper and the lazy replay validation) are all
covered, under both a zero-cost model (batched egress) and the eswitch
cost model (deferred per-frame emission).

Set ``DIFFERENTIAL_SCALE=<n>`` to multiply the randomized case counts
(the nightly extended job runs at 5×).
"""

import os
import random

from repro.net import EthernetFrame, IPv4Address, MACAddress
from repro.net.build import tcp_frame, udp_frame
from repro.net.tcp import TcpSegment
from repro.netsim import Simulator
from repro.netsim.link import wire
from repro.netsim.node import Node
from repro.openflow import (
    ApplyActions,
    Bucket,
    FlowMod,
    GotoTable,
    GroupAction,
    GroupMod,
    Match,
    OutputAction,
    SetFieldAction,
    WriteActions,
)
from repro.openflow import consts as c
from repro.openflow.messages import PacketIn, parse_message
from repro.softswitch import DatapathCostModel, ESWITCH_COST_MODEL, SoftSwitch
from repro.traffic import BurstSource

ZERO_COST = DatapathCostModel.zero()

MACS = [MACAddress(0x020000000001 + i) for i in range(4)]
IPS = [IPv4Address(f"10.0.{i // 4}.{i % 4 + 1}") for i in range(8)]
PORTS = [53, 80, 443, 8080]


class Sink(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, port, frame):
        self.received.append((self.sim.now, frame.to_bytes()))


def random_frame(rng: random.Random) -> EthernetFrame:
    roll = rng.random()
    if roll < 0.1:  # non-IP: every L3/L4 flow-key slot is None
        return EthernetFrame(
            dst=rng.choice(MACS), src=rng.choice(MACS), ethertype=0x0806,
            payload=b"\x00" * 28,
        )
    src_mac, dst_mac = rng.choice(MACS), rng.choice(MACS)
    src_ip, dst_ip = rng.choice(IPS), rng.choice(IPS)
    vlan_id = rng.choice((None, None, 100, 101))
    if roll < 0.6:
        return udp_frame(
            src_mac, dst_mac, src_ip, dst_ip,
            rng.choice(PORTS), rng.choice(PORTS), b"x", vlan_id=vlan_id,
        )
    return tcp_frame(
        src_mac, dst_mac, src_ip, dst_ip,
        TcpSegment(rng.choice(PORTS), rng.choice(PORTS)), vlan_id=vlan_id,
    )


def random_match(rng: random.Random) -> Match:
    fields: dict = {}
    if rng.random() < 0.5:
        fields["in_port"] = rng.randint(1, 3)
    if rng.random() < 0.4:
        fields["eth_type"] = 0x0800
    if rng.random() < 0.3:
        fields["eth_dst"] = int(rng.choice(MACS))
    if rng.random() < 0.4:
        value = int(rng.choice(IPS))
        if rng.random() < 0.5:  # masked -> staged subtable tier
            bits = rng.choice((8, 16, 24))
            mask = (0xFFFFFFFF << (32 - bits)) & 0xFFFFFFFF
            fields["ipv4_dst"] = (value & mask, mask)
        else:
            fields["ipv4_dst"] = value
    if rng.random() < 0.3:
        name = rng.choice(("udp_dst", "udp_src", "tcp_dst", "tcp_src"))
        fields[name] = rng.choice(PORTS)
    return Match(**fields)


def random_instructions(rng: random.Random, table_id: int):
    roll = rng.random()
    if roll < 0.15:
        return []  # explicit drop
    actions = [OutputAction(port=rng.randint(1, 3))]
    if rng.random() < 0.2:
        actions.insert(
            0, SetFieldAction(field="eth_dst", value=int(rng.choice(MACS)))
        )
    if rng.random() < 0.15:
        actions = [GroupAction(group_id=1)]
    if rng.random() < 0.07:
        actions = [OutputAction(port=c.OFPP_CONTROLLER)]  # packet-in path
    instructions = [ApplyActions(actions=tuple(actions))]
    if table_id < 2 and rng.random() < 0.3:
        instructions.append(GotoTable(table_id=rng.randint(table_id + 1, 2)))
    return instructions


def random_churn_message(rng: random.Random):
    """FlowMod add (sometimes mortal) / delete / modify, or a GroupMod."""
    roll = rng.random()
    if roll < 0.55:
        table_id = rng.randint(0, 2)
        return FlowMod(
            table_id=table_id,
            command=c.OFPFC_ADD,
            match=random_match(rng),
            priority=rng.randint(0, 30),
            idle_timeout=rng.choice((0, 0, 0, 1)),
            hard_timeout=rng.choice((0, 0, 1, 2)),
            instructions=random_instructions(rng, table_id),
        )
    if roll < 0.75:
        return FlowMod(
            table_id=rng.randint(0, 2),
            command=rng.choice((c.OFPFC_DELETE, c.OFPFC_DELETE_STRICT)),
            match=random_match(rng),
            priority=rng.randint(0, 30),
        )
    if roll < 0.92:
        table_id = rng.randint(0, 2)
        return FlowMod(
            table_id=table_id,
            command=rng.choice((c.OFPFC_MODIFY, c.OFPFC_MODIFY_STRICT)),
            match=random_match(rng),
            priority=rng.randint(0, 30),
            instructions=random_instructions(rng, table_id),
        )
    return GroupMod(
        command=c.OFPGC_MODIFY,
        group_type=c.OFPGT_SELECT,
        group_id=1,
        buckets=[
            Bucket(actions=[OutputAction(port=rng.randint(1, 3))], weight=1),
            Bucket(
                actions=[OutputAction(port=rng.randint(1, 3))],
                weight=rng.randint(1, 3),
            ),
        ],
    )


def provision(switch):
    """Multi-table pipeline: goto chains, a select group, write-actions,
    a mortal flow, a packet-in rule — every replay shape the cache holds."""
    messages = [
        GroupMod(
            command=c.OFPGC_ADD,
            group_type=c.OFPGT_SELECT,
            group_id=1,
            buckets=[
                Bucket(actions=[OutputAction(port=2)], weight=1),
                Bucket(actions=[OutputAction(port=3)], weight=2),
            ],
        ),
        FlowMod(
            table_id=0,
            priority=10,
            match=Match(in_port=1),
            instructions=[GotoTable(table_id=1)],
        ),
        FlowMod(
            table_id=0,
            priority=5,
            match=Match(eth_type=0x0800, ipv4_dst=("10.0.1.0", "255.255.255.0")),
            instructions=[ApplyActions(actions=(OutputAction(port=3),))],
        ),
        FlowMod(  # expires mid-run: exercises sweeper + lazy validation
            table_id=0,
            priority=7,
            match=Match(eth_type=0x0800, udp_dst=8080),
            hard_timeout=2,
            instructions=[ApplyActions(actions=(OutputAction(port=2),))],
        ),
        FlowMod(
            table_id=1,
            priority=20,
            match=Match(eth_type=0x0800, udp_dst=53),
            instructions=[
                ApplyActions(
                    actions=(
                        SetFieldAction(field="eth_dst", value=int(MACS[3])),
                        GroupAction(group_id=1),
                    )
                )
            ],
        ),
        FlowMod(
            table_id=1,
            priority=15,
            match=Match(eth_type=0x0800, tcp_dst=443),
            instructions=[
                ApplyActions(actions=(OutputAction(port=c.OFPP_CONTROLLER),))
            ],
        ),
        FlowMod(
            table_id=1,
            priority=1,
            match=Match(),
            instructions=[
                WriteActions(actions=(OutputAction(port=2),)),
                GotoTable(table_id=2),
            ],
        ),
        FlowMod(table_id=2, priority=0, match=Match(), instructions=[]),
    ]
    for message in messages:
        assert switch.handle_message(message.to_bytes()) == []


def build_rig(cost_model, num_ports=3):
    """One switch with sinks on every port and a packet-in capture."""
    sim = Simulator()
    switch = SoftSwitch(sim, "ss", datapath_id=1, cost_model=cost_model)
    sinks = []
    for index in range(num_ports):
        sink = Sink(sim, f"sink{index}")
        wire(
            switch,
            sink,
            bandwidth_bps=None,
            propagation_delay_s=0.0,
            queue_frames=100_000,
        )
        sinks.append(sink)
    packet_ins: list[bytes] = []
    switch.to_controller = packet_ins.append
    provision(switch)
    return sim, switch, sinks, packet_ins


def assert_identical(batch_rig, seq_rig):
    sim_a, batch, sinks_a, pins_a = batch_rig
    sim_b, seq, sinks_b, pins_b = seq_rig
    for index, (sink_a, sink_b) in enumerate(zip(sinks_a, sinks_b)):
        assert sink_a.received == sink_b.received, f"sink {index} diverged"
    assert pins_a == pins_b
    assert batch.packets_forwarded == seq.packets_forwarded
    assert batch.packets_dropped == seq.packets_dropped
    assert batch.packets_to_controller == seq.packets_to_controller
    assert batch.dump_pipeline() == seq.dump_pipeline()  # per-entry counters
    for table_a, table_b in zip(batch.tables, seq.tables):
        assert table_a.lookups == table_b.lookups
        assert table_a.matches == table_b.matches
    group_a, group_b = batch.groups.get(1), seq.groups.get(1)
    assert group_a.packet_count == group_b.packet_count
    assert group_a.bucket_packet_counts == group_b.bucket_packet_counts
    assert batch.flow_cache.hits == seq.flow_cache.hits
    assert batch.flow_cache.misses == seq.flow_cache.misses
    assert len(batch.flow_cache) == len(seq.flow_cache)


def run_differential(seed, rounds, bursts_per_round, cost_model):
    """Returns how many bursts were compared."""
    try:
        return _run_differential(seed, rounds, bursts_per_round, cost_model)
    except AssertionError:
        print(
            f"\nDIFFERENTIAL FAILURE: seed=0x{seed:X} rounds={rounds} "
            f"bursts_per_round={bursts_per_round}"
        )
        raise


def _run_differential(seed, rounds, bursts_per_round, cost_model):
    rng = random.Random(seed)
    bursts_done = 0
    for _ in range(rounds):
        batch_rig = build_rig(cost_model)
        seq_rig = build_rig(cost_model)
        sim_a, batch, _, _ = batch_rig
        sim_b, seq, _, _ = seq_rig
        pool = [random_frame(rng) for _ in range(24)]
        clock = 0.0
        for _ in range(bursts_per_round):
            clock += rng.random() * 0.12  # lets timeouts land mid-run
            sim_a.run(until=clock)
            sim_b.run(until=clock)
            if rng.random() < 0.25:
                message = random_churn_message(rng).to_bytes()
                assert batch.handle_message(message) == seq.handle_message(message)
            size = rng.choice((1, 2, 3, 4, 6, 8, 8, 12))
            frames = [pool[rng.randrange(len(pool))] for _ in range(size)]
            in_port = 1 if rng.random() < 0.7 else rng.randint(2, 3)
            batch.process_batch(in_port, list(frames))
            for frame in frames:
                seq.inject(frame, in_port)
            bursts_done += 1
        sim_a.run()
        sim_b.run()
        assert batch.batch_frames > 0  # the batch path actually ran
        assert_identical(batch_rig, seq_rig)
    return bursts_done


#: Case-count multiplier; the nightly extended job sets this to 5.
SCALE = max(1, int(os.environ.get("DIFFERENTIAL_SCALE", "1")))


class TestBatchDifferential:
    def test_zero_cost_batched_egress(self):
        """≥600 bursts with immediate (coalesced) egress."""
        assert run_differential(0xB4757, rounds=6, bursts_per_round=100 * SCALE,
                                cost_model=ZERO_COST) == 600 * SCALE

    def test_eswitch_cost_deferred_emission(self):
        """≥400 bursts where every emission defers past the CPU charge."""
        assert run_differential(0xE5717C4, rounds=4, bursts_per_round=100 * SCALE,
                                cost_model=ESWITCH_COST_MODEL) == 400 * SCALE

    def test_synchronous_reactive_controller_mid_burst(self):
        """A zero-latency controller wired straight back into
        handle_message installs flows *between frames of one burst*
        (packet-in for frame i reprograms the pipeline before frame
        i+1).  The batch path must deliver packet-ins at the same
        per-frame points as sequential processing, so the reactive
        installs — and the cache invalidations they trigger mid-burst —
        land identically."""
        rigs = []
        stat_logs = []
        for _ in range(2):
            rig = build_rig(ZERO_COST)
            _, switch, _, packet_ins = rig
            # What a stats-polling controller would observe at each
            # packet-in: forwarding totals must match sequential exactly.
            stats_seen: list[tuple] = []
            stat_logs.append(stats_seen)

            def reactive(raw, switch=switch, log=packet_ins, seen=stats_seen):
                log.append(raw)
                message = parse_message(raw)
                if not isinstance(message, PacketIn):
                    return
                seen.append(
                    (
                        switch.packets_forwarded,
                        switch.packets_to_controller,
                        tuple(
                            switch.ports[n].tx_frames for n in sorted(switch.ports)
                        ),
                    )
                )
                frame = EthernetFrame.from_bytes(message.data)
                # Learn the source: next frames bypass the controller.
                switch.handle_message(
                    FlowMod(
                        table_id=1,
                        priority=30,
                        match=Match(
                            eth_type=0x0800, tcp_dst=443, eth_src=int(frame.src)
                        ),
                        instructions=[
                            ApplyActions(actions=(OutputAction(port=2),))
                        ],
                    ).to_bytes()
                )

            switch.to_controller = reactive
            rigs.append(rig)
        batch_rig, seq_rig = rigs
        rng = random.Random(0x5EAC7)
        # Mostly tcp/443 (the packet-in rule), several sources, so the
        # same flow repeats within a burst around its learning moment.
        pool = [
            tcp_frame(
                rng.choice(MACS), rng.choice(MACS),
                rng.choice(IPS), rng.choice(IPS),
                TcpSegment(rng.choice(PORTS), 443),
            )
            for _ in range(10)
        ] + [random_frame(rng) for _ in range(4)]
        for _ in range(120):
            frames = [pool[rng.randrange(len(pool))] for _ in range(rng.randint(2, 10))]
            batch_rig[1].process_batch(1, list(frames))
            for frame in frames:
                seq_rig[1].inject(frame, 1)
        batch_rig[0].run()
        seq_rig[0].run()
        assert batch_rig[3]  # the controller actually saw packet-ins
        assert len(batch_rig[1].tables[1]) >= 6  # ...and learned ≥3 sources
        assert stat_logs[0] == stat_logs[1]  # per-packet-in stats parity
        assert_identical(batch_rig, seq_rig)

    def test_burst_of_one_delegates_to_single_frame_path(self):
        rig_a = build_rig(ZERO_COST)
        rig_b = build_rig(ZERO_COST)
        frame = udp_frame(MACS[0], MACS[1], IPS[0], IPS[1], 1000, 53, b"x")
        rig_a[1].process_batch(1, [frame])
        rig_b[1].inject(frame, 1)
        rig_a[0].run()
        rig_b[0].run()
        assert_identical(rig_a, rig_b)
        assert rig_a[1].batch_bursts == 0  # singleton took the plain path

    def test_empty_batch_is_a_no_op(self):
        sim, switch, _, _ = build_rig(ZERO_COST)
        switch.process_batch(1, [])
        sim.run()
        assert switch.packets_forwarded == 0
        assert switch.batch_bursts == 0

    def test_linear_config_batches_identically(self):
        """fast path fully disabled: batch loop must still match."""
        rng = random.Random(0x11E4)
        rigs = []
        for _ in range(2):
            sim = Simulator()
            switch = SoftSwitch(
                sim, "ss", datapath_id=1, cost_model=ZERO_COST,
                enable_fast_path=False,
            )
            sinks = []
            for index in range(3):
                sink = Sink(sim, f"sink{index}")
                wire(switch, sink, bandwidth_bps=None, propagation_delay_s=0.0,
                     queue_frames=100_000)
                sinks.append(sink)
            packet_ins: list[bytes] = []
            switch.to_controller = packet_ins.append
            provision(switch)
            rigs.append((sim, switch, sinks, packet_ins))
        pool = [random_frame(rng) for _ in range(12)]
        for _ in range(60):
            frames = [pool[rng.randrange(len(pool))] for _ in range(rng.randint(2, 8))]
            rigs[0][1].process_batch(1, list(frames))
            for frame in frames:
                rigs[1][1].inject(frame, 1)
        rigs[0][0].run()
        rigs[1][0].run()
        (sim_a, batch, sinks_a, pins_a), (sim_b, seq, sinks_b, pins_b) = rigs
        for sink_a, sink_b in zip(sinks_a, sinks_b):
            assert sink_a.received == sink_b.received
        assert pins_a == pins_b
        assert batch.packets_forwarded == seq.packets_forwarded
        assert batch.dump_pipeline() == seq.dump_pipeline()


def test_cost_model_swap_updates_charge_shortcut():
    """Reassigning cost_model on a live switch must drop/adopt the
    zero-cost charge shortcut (the flag is setter-maintained)."""
    sim, switch, _, _ = build_rig(ZERO_COST)
    frame = udp_frame(MACS[0], MACS[1], IPS[0], IPS[1], 1000, 80, b"x")
    switch.inject(frame, 1)
    assert switch.busy_until == 0.0  # zero model: processing is free
    switch.cost_model = ESWITCH_COST_MODEL
    assert switch.cost_model is ESWITCH_COST_MODEL
    switch.inject(frame, 1)
    assert switch.busy_until > 0.0  # eswitch model charges again
    switch.cost_model = DatapathCostModel.zero()
    busy = switch.busy_until
    switch.inject(frame, 1)
    assert switch.busy_until == busy  # back to free


class TestBurstThroughLinks:
    """The full stack: BurstSource -> link burst -> receive_burst."""

    def build(self, batched: bool):
        sim = Simulator()
        switch = SoftSwitch(sim, "ss", datapath_id=1, cost_model=ZERO_COST)
        source = BurstSource(sim, "gen")
        wire(
            source, switch,
            bandwidth_bps=None, propagation_delay_s=0.0, queue_frames=100_000,
        )
        sinks = []
        for index in range(3):
            sink = Sink(sim, f"sink{index}")
            wire(switch, sink, bandwidth_bps=None, propagation_delay_s=0.0,
                 queue_frames=100_000)
            sinks.append(sink)
        packet_ins: list[bytes] = []
        switch.to_controller = packet_ins.append
        provision(switch)
        return sim, switch, source, sinks, packet_ins

    def test_burst_source_matches_per_frame_sends(self):
        rng = random.Random(0x50C4)
        pool = [random_frame(rng) for _ in range(16)]
        bursts = [
            (round(0.01 * i, 6),
             [pool[rng.randrange(len(pool))] for _ in range(rng.randint(1, 10))])
            for i in range(50)
        ]
        sim_a, batch, source, sinks_a, pins_a = self.build(batched=True)
        source.start(bursts)
        sim_a.run_until_idle()

        sim_b, seq, source_b, sinks_b, pins_b = self.build(batched=False)
        port = source_b.port0
        for start, frames in bursts:
            sim_b.schedule_at(
                start,
                lambda fs=frames, p=port: [p.send(f) for f in fs],
            )
        sim_b.run_until_idle()

        total = sum(len(frames) for _, frames in bursts)
        assert source.sent == total
        assert batch.batch_frames > 0
        for sink_a, sink_b in zip(sinks_a, sinks_b):
            assert sink_a.received == sink_b.received
        assert pins_a == pins_b
        assert batch.packets_forwarded == seq.packets_forwarded
        assert batch.dump_pipeline() == seq.dump_pipeline()
