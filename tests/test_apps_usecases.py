"""Tests for the three demo use cases, each run through real HARMLESS.

Every test here builds the full stack — hosts on a legacy switch,
migrated by the Manager, apps on the SDN controller — because the
paper's demo point is that these OpenFlow programs run unmodified on a
migrated dumb switch.
"""

import pytest

from repro.apps import (
    ArpResponderApp,
    Backend,
    DmzPolicyApp,
    LearningSwitchApp,
    LoadBalancerApp,
    ParentalControlApp,
    Vm,
)
from repro.controller import Controller
from repro.core import HarmlessManager
from repro.core.verify import ZERO_COST
from repro.legacy import LegacySwitch
from repro.mgmt import DeviceConnection, get_network_driver
from repro.net import IPv4Address, MACAddress
from repro.net.dns import DNS_RCODE_REFUSED, DnsMessage, DnsResourceRecord
from repro.netsim import Host, Link, Simulator
from repro.snmp import SnmpAgent, attach_bridge_mib


def build_harmless_site(num_hosts, apps, num_ports=None):
    num_ports = num_ports or num_hosts + 1
    sim = Simulator()
    legacy = LegacySwitch(sim, "edge", num_ports=num_ports, processing_delay_s=0.0)
    hosts = []
    for index in range(num_hosts):
        host = Host(
            sim,
            f"h{index + 1}",
            MACAddress(0x020000000001 + index),
            IPv4Address(f"10.0.0.{index + 1}"),
        )
        Link(host.port0, legacy.port(index + 1))
        hosts.append(host)
    mib, _ = attach_bridge_mib(legacy)
    driver = get_network_driver("sim-ios")(
        DeviceConnection(agent=SnmpAgent(mib), hostname="edge")
    )
    driver.open()
    controller = Controller(sim)
    for app in apps:
        controller.add_app(app)
    manager = HarmlessManager(sim, controller=controller, cost_model=ZERO_COST)
    deployment = manager.migrate(legacy, driver, trunk_port=num_ports)
    sim.run(until=0.05)
    return sim, hosts, deployment


class TestLoadBalancerUseCase:
    """Use case (a): spread web traffic across backends by source IP."""

    VIP = IPv4Address("10.0.0.100")
    VIP_MAC = MACAddress("02:00:00:00:0f:00")

    def build(self, num_clients=6, num_backends=2):
        total = num_clients + num_backends
        apps_holder = []

        # Hosts 1..num_clients are clients; the rest are backends.
        def apps():
            return apps_holder

        sim = Simulator()
        # Build via helper but we need backend ports known first: clients
        # then backends in port order.
        lb_backends = [
            Backend(
                ip=IPv4Address(f"10.0.0.{num_clients + 1 + i}"),
                mac=MACAddress(0x020000000001 + num_clients + i),
                port=num_clients + 1 + i,
            )
            for i in range(num_backends)
        ]
        arp = ArpResponderApp(bindings={self.VIP: self.VIP_MAC})
        lb = LoadBalancerApp(
            vip=self.VIP, vip_mac=self.VIP_MAC, backends=lb_backends
        )
        learning = LearningSwitchApp()
        apps_holder.extend([arp, lb, learning])
        sim, hosts, deployment = build_harmless_site(total, apps_holder)
        # The paper's LB balances "based on matching of the source IP
        # address": configure the select hash accordingly (like OVS's
        # selection_method=hash,fields=ip_src).
        deployment.s4.ss2.select_hash_fields = ("ipv4_src",)
        clients = hosts[:num_clients]
        backends = hosts[num_clients:]
        for backend in backends:
            backend.serve_udp(80, lambda h, ip, sp, dp, pl: None)
        return sim, clients, backends, lb

    def test_all_requests_land_on_backends(self):
        sim, clients, backends, _ = self.build()
        for client in clients:
            client.send_udp(self.VIP, 80, b"GET /")
        sim.run(until=2.0)
        delivered = sum(len(backend.udp_received) for backend in backends)
        assert delivered == len(clients)

    def test_distribution_spreads_clients(self):
        sim, clients, backends, _ = self.build(num_clients=12)
        for client in clients:
            client.send_udp(self.VIP, 80, b"GET /")
        sim.run(until=2.0)
        counts = [len(backend.udp_received) for backend in backends]
        assert all(count > 0 for count in counts), counts

    def test_same_client_sticks_to_one_backend(self):
        sim, clients, backends, _ = self.build(num_clients=4)
        client = clients[0]
        for _ in range(5):
            client.send_udp(self.VIP, 80, b"GET /again")
        sim.run(until=2.0)
        non_empty = [b for b in backends if b.udp_received]
        assert len(non_empty) == 1
        assert len(non_empty[0].udp_received) == 5


class TestDmzUseCase:
    """Use case (b): pairwise VM access policy, default deny."""

    def build(self):
        vms = [
            Vm(
                name=f"vm{i + 1}",
                ip=IPv4Address(f"10.0.0.{i + 1}"),
                mac=MACAddress(0x020000000001 + i),
                port=i + 1,
            )
            for i in range(3)
        ]
        dmz = DmzPolicyApp(vms=vms, allowed_pairs={("vm1", "vm2")})
        sim, hosts, deployment = build_harmless_site(3, [dmz])
        return sim, hosts, dmz, deployment

    def test_allowed_pair_can_talk(self):
        sim, (h1, h2, h3), _, _ = self.build()
        h1.ping(h2.ip)
        sim.run(until=2.0)
        assert len(h1.rtts()) == 1

    def test_denied_pair_cannot_talk(self):
        sim, (h1, h2, h3), _, _ = self.build()
        h1.ping(h3.ip)
        h3.ping(h2.ip)
        sim.run(until=3.0)
        assert h1.ping_loss_rate == 1.0
        assert h3.ping_loss_rate == 1.0

    def test_policy_tightened_at_runtime(self):
        sim, (h1, h2, h3), dmz, deployment = self.build()
        datapath = deployment.datapath
        h1.ping(h2.ip)
        sim.run(until=1.0)
        assert len(h1.rtts()) == 1
        dmz.revoke(datapath, "vm1", "vm2")
        sim.run(until=1.2)
        h1.ping(h2.ip)
        sim.run(until=3.0)
        assert len(h1.rtts()) == 1  # second ping lost

    def test_policy_loosened_at_runtime(self):
        sim, (h1, h2, h3), dmz, deployment = self.build()
        datapath = deployment.datapath
        dmz.allow(datapath, "vm1", "vm3")
        sim.run(until=0.2)
        h1.ping(h3.ip)
        sim.run(until=2.0)
        assert len(h1.rtts()) == 1

    def test_unknown_vm_in_pair_rejected(self):
        vms = [
            Vm(
                name="vm1",
                ip=IPv4Address("10.0.0.1"),
                mac=MACAddress(0x02AA),
                port=1,
            )
        ]
        with pytest.raises(ValueError):
            DmzPolicyApp(vms=vms, allowed_pairs={("vm1", "ghost")})


class TestParentalControlUseCase:
    """Use case (c): per-user site blocking, flipped on the fly."""

    def build(self):
        pc = ParentalControlApp()
        learning = LearningSwitchApp()
        sim, hosts, deployment = build_harmless_site(3, [pc, learning])
        kid, parent, resolver = hosts

        zone = {
            "allowed.example": IPv4Address("10.0.0.200"),
            "blocked.example": IPv4Address("10.0.0.201"),
        }

        def dns_server(host, src_ip, src_port, dst_port, payload):
            query = DnsMessage.from_bytes(payload)
            name = query.questions[0].name
            if name in zone:
                answer = DnsResourceRecord.a_record(name, zone[name])
                response = query.make_response([answer])
            else:
                response = query.make_response(rcode=3)
            host.send_udp(src_ip, src_port, response.to_bytes(), src_port=53)

        resolver.serve_udp(53, dns_server)
        return sim, kid, parent, resolver, pc

    def resolve(self, sim, host, resolver, name, txid):
        results = []

        def on_reply(h, src_ip, src_port, dst_port, payload):
            results.append(DnsMessage.from_bytes(payload))

        host.serve_udp(5353, on_reply)
        query = DnsMessage.query(txid, name)
        host.send_udp(resolver.ip, 53, query.to_bytes(), src_port=5353)
        return results

    def test_unblocked_name_resolves(self):
        sim, kid, parent, resolver, pc = self.build()
        results = self.resolve(sim, kid, resolver, "allowed.example", 1)
        sim.run(until=2.0)
        assert len(results) == 1
        assert results[0].rcode == 0
        assert results[0].answers[0].address == IPv4Address("10.0.0.200")

    def test_blocked_name_refused_for_kid_only(self):
        sim, kid, parent, resolver, pc = self.build()
        pc.block(kid.ip, "blocked.example")
        kid_results = self.resolve(sim, kid, resolver, "blocked.example", 2)
        parent_results = self.resolve(sim, parent, resolver, "blocked.example", 3)
        sim.run(until=2.0)
        assert len(kid_results) == 1
        assert kid_results[0].rcode == DNS_RCODE_REFUSED
        assert len(parent_results) == 1
        assert parent_results[0].rcode == 0
        assert pc.queries_refused == 1

    def test_unblock_on_the_fly(self):
        sim, kid, parent, resolver, pc = self.build()
        pc.block(kid.ip, "blocked.example")
        first = self.resolve(sim, kid, resolver, "blocked.example", 4)
        sim.run(until=2.0)
        assert first[0].rcode == DNS_RCODE_REFUSED
        pc.unblock(kid.ip, "blocked.example")
        second = self.resolve(sim, kid, resolver, "blocked.example", 5)
        sim.run(until=4.0)
        assert len(second) == 1
        assert second[0].rcode == 0

    def test_ip_drop_installed_after_dns_learning(self):
        """Once the name's IP flows past, L3 drops stop cached clients."""
        sim, kid, parent, resolver, pc = self.build()
        # Parent resolves first: the app learns blocked.example -> .201.
        self.resolve(sim, parent, resolver, "blocked.example", 6)
        sim.run(until=2.0)
        pc.block(kid.ip, "blocked.example")
        sim.run(until=2.5)
        # Kid pings the (cached) address directly: dropped at L3.
        kid.ping(IPv4Address("10.0.0.201"))
        sim.run(until=4.5)
        assert kid.ping_loss_rate == 1.0
