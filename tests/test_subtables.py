"""Staged-subtable edge cases: ordering, collisions, tier migration.

The masked tier groups entries into one subtable per distinct mask-set
(``Match.mask_key()``) and probes subtables in descending max-priority
order with early termination.  These tests pin down the cases where
that ordering machinery could silently diverge from the seed linear
scan: equal max-priority subtables, several matches colliding on one
mask-set (and on one masked-value bucket), max-priority recomputation
after removals, and entries moving between the exact and masked tiers.
"""

import random

from repro.net.addresses import IPv4Address, MACAddress
from repro.net.build import udp_frame
from repro.openflow import ApplyActions, FlowMod, Match, OutputAction
from repro.openflow import consts as c
from repro.openflow.packetview import FIELD_INDEX, PacketView
from repro.softswitch.flowtable import FlowEntry, FlowTable

MAC_A = MACAddress("02:00:00:00:00:01")
MAC_B = MACAddress("02:00:00:00:00:02")


def frame_to(dst_ip, src_ip="10.0.0.1", dst_port=2000):
    return udp_frame(
        MAC_A, MAC_B, IPv4Address(src_ip), IPv4Address(dst_ip), 1000, dst_port, b"x"
    )


def masked(value, bits):
    mask = (0xFFFFFFFF << (32 - bits)) & 0xFFFFFFFF
    return (int(IPv4Address(value)) & mask, mask)


def lookup_both(table, frame, now=1.0, in_port=1):
    fast = table.lookup(PacketView(frame, in_port), now)
    linear = table.linear_lookup(PacketView(frame, in_port), now)
    assert fast is linear
    return fast


class TestMaskKey:
    def test_same_shape_shares_fingerprint(self):
        a = Match(eth_type=0x0800, ipv4_dst=masked("10.1.0.0", 16))
        b = Match(eth_type=0x0800, ipv4_dst=masked("10.2.0.0", 16))
        assert a.mask_key()[0] == b.mask_key()[0]
        assert a.mask_key()[1] != b.mask_key()[1]

    def test_different_prefix_lengths_split(self):
        a = Match(ipv4_dst=masked("10.1.0.0", 16))
        b = Match(ipv4_dst=masked("10.1.0.0", 24))
        assert a.mask_key()[0] != b.mask_key()[0]

    def test_slot_order_is_canonical(self):
        a = Match(ipv4_dst=masked("10.1.0.0", 16), in_port=1)
        slots = [slot for slot, _ in a.mask_key()[0]]
        assert slots == sorted(slots)
        assert slots[0] == FIELD_INDEX["in_port"]

    def test_exact_match_carries_full_masks(self):
        a = Match(in_port=3)
        ((slot, mask),), (value,) = a.mask_key()
        assert slot == FIELD_INDEX["in_port"]
        assert mask == 0xFFFFFFFF
        assert value == 3

    def test_values_are_premasked(self):
        a = Match(ipv4_dst=(int(IPv4Address("10.1.2.3")), 0xFFFF0000))
        _, (value,) = a.mask_key()
        assert value == int(IPv4Address("10.1.0.0"))


class TestSubtableStructure:
    def test_one_subtable_per_mask_set(self):
        table = FlowTable(table_id=0)
        for third in range(6):
            table.install(
                FlowEntry(match=Match(ipv4_dst=masked(f"10.{third}.0.0", 16))), 0.0
            )
        assert table.subtable_count == 1  # six entries, one mask-set
        table.install(FlowEntry(match=Match(ipv4_dst=masked("10.0.0.0", 8))), 0.0)
        assert table.subtable_count == 2

    def test_bucket_collision_chain_orders_by_priority(self):
        """Identical masked values, different priorities, one bucket."""
        table = FlowTable(table_id=0)
        low = FlowEntry(
            match=Match(ipv4_dst=masked("10.1.0.0", 16), in_port=1), priority=1
        )
        high = FlowEntry(
            match=Match(ipv4_dst=masked("10.1.0.0", 16), in_port=1), priority=9
        )
        table.install(low, 0.0)
        table.install(high, 0.0)
        assert table.subtable_count == 1
        entry = lookup_both(table, frame_to("10.1.2.3"))
        assert entry is high

    def test_equal_max_priority_subtables_all_probed(self):
        """Early termination must not skip a tied subtable."""
        table = FlowTable(table_id=0)
        # Two subtables, same max priority; the /24 one installed later
        # (larger seq) but matching the same packets.
        wide = FlowEntry(match=Match(ipv4_dst=masked("10.1.0.0", 16)), priority=5)
        narrow = FlowEntry(match=Match(ipv4_dst=masked("10.1.2.0", 24)), priority=5)
        table.install(wide, 0.0)
        table.install(narrow, 1.0)
        # Both match; equal priority resolves to the earlier install.
        assert lookup_both(table, frame_to("10.1.2.3"), now=2.0) is wide
        # A packet only the /16 matches still resolves normally.
        assert lookup_both(table, frame_to("10.1.9.9"), now=2.0) is wide

    def test_tied_subtable_beats_earlier_found_candidate(self):
        """A later-probed subtable with an older entry must still win."""
        table = FlowTable(table_id=0)
        newer = FlowEntry(match=Match(ipv4_dst=masked("10.1.0.0", 16)), priority=5)
        older = FlowEntry(match=Match(ipv4_src=masked("10.0.0.0", 8)), priority=5)
        # Install the winning (older) entry into the subtable created
        # second, so staged probe order and arbitration order disagree.
        table.install(older, 0.0)
        table.install(newer, 1.0)
        assert lookup_both(table, frame_to("10.1.2.3"), now=2.0) is older

    def test_max_priority_recomputed_on_removal(self):
        table = FlowTable(table_id=0)
        high = FlowEntry(match=Match(ipv4_dst=masked("10.1.0.0", 16)), priority=9)
        low = FlowEntry(match=Match(ipv4_dst=masked("10.2.0.0", 16)), priority=2)
        other = FlowEntry(match=Match(ipv4_src=masked("10.0.0.0", 8)), priority=5)
        for entry in (high, low, other):
            table.install(entry, 0.0)
        assert table.staged_order()[0] == high.match.mask_key()[0]
        table.delete(high.match, priority=9, strict=True)
        # The /16 subtable's max priority falls from 9 to 2; the /8
        # subtable (priority 5) must now be probed first.
        assert table.staged_order()[0] == other.match.mask_key()[0]
        assert lookup_both(table, frame_to("10.1.2.3", src_ip="10.9.9.9")) is other

    def test_empty_subtable_is_garbage_collected(self):
        table = FlowTable(table_id=0)
        entry = FlowEntry(match=Match(ipv4_dst=masked("10.1.0.0", 16)))
        table.install(entry, 0.0)
        assert table.subtable_count == 1
        table.delete(entry.match, priority=entry.priority, strict=True)
        assert table.subtable_count == 0
        assert len(table) == 0

    def test_expire_prunes_subtables(self):
        table = FlowTable(table_id=0)
        mortal = FlowEntry(
            match=Match(ipv4_dst=masked("10.1.0.0", 16)), hard_timeout=1.0
        )
        table.install(mortal, 0.0)
        # Expired-but-unswept entries are skipped during probes...
        assert lookup_both(table, frame_to("10.1.2.3"), now=5.0) is None
        # ...and the sweep removes the subtable itself.
        assert table.expire(5.0) == [mortal]
        assert table.subtable_count == 0

    def test_replacement_add_keeps_single_masked_entry(self):
        table = FlowTable(table_id=0)
        match = Match(ipv4_dst=masked("10.1.0.0", 16))
        for _ in range(3):
            table.install(FlowEntry(match=match, priority=7), 0.0)
        assert len(table) == 1
        assert table.subtable_count == 1


class TestTierMigration:
    """Entries moving between the exact and masked tiers.

    A flow's tier is a function of its match, so migration happens when
    a controller replaces a masked rule with an exact one (or back) —
    delete + add, or an OFPFC_ADD carrying the refined match.  The
    indexes on both tiers must stay consistent through the transition.
    """

    def _switch(self):
        from repro.netsim import Simulator
        from repro.softswitch import DatapathCostModel, SoftSwitch

        sim = Simulator()
        return sim, SoftSwitch(
            sim, "ss", datapath_id=1, cost_model=DatapathCostModel.zero()
        )

    def test_masked_to_exact_refinement(self):
        sim, switch = self._switch()
        table = switch.tables[0]
        coarse = Match(eth_type=0x0800, ipv4_dst=masked("10.1.0.0", 16))
        switch.handle_message(
            FlowMod(
                match=coarse,
                priority=5,
                instructions=[ApplyActions(actions=(OutputAction(port=1),))],
            ).to_bytes()
        )
        assert table.subtable_count == 1
        # The controller refines the rule: drop the prefix match,
        # install the exact host route at the same priority.
        switch.handle_message(
            FlowMod(command=c.OFPFC_DELETE, match=coarse, priority=5).to_bytes()
        )
        exact = Match(eth_type=0x0800, ipv4_dst="10.1.2.3")
        switch.handle_message(
            FlowMod(
                match=exact,
                priority=5,
                instructions=[ApplyActions(actions=(OutputAction(port=2),))],
            ).to_bytes()
        )
        assert table.subtable_count == 0  # masked tier emptied
        assert len(table) == 1
        entry = lookup_both(table, frame_to("10.1.2.3"), now=sim.now)
        assert entry.match == exact

    def test_exact_to_masked_widening(self):
        sim, switch = self._switch()
        table = switch.tables[0]
        exact = Match(eth_type=0x0800, ipv4_dst="10.1.2.3")
        switch.handle_message(
            FlowMod(match=exact, priority=5, instructions=[]).to_bytes()
        )
        assert table.subtable_count == 0
        switch.handle_message(
            FlowMod(command=c.OFPFC_DELETE_STRICT, match=exact, priority=5).to_bytes()
        )
        wide = Match(eth_type=0x0800, ipv4_dst=masked("10.1.0.0", 16))
        switch.handle_message(
            FlowMod(match=wide, priority=5, instructions=[]).to_bytes()
        )
        assert table.subtable_count == 1
        assert len(table) == 1
        assert lookup_both(table, frame_to("10.1.9.9"), now=sim.now) is not None

    def test_modify_on_masked_entry_keeps_index_intact(self):
        """OFPFC_MODIFY rewrites instructions in place — the entry must
        stay in its subtable bucket and keep winning lookups."""
        sim, switch = self._switch()
        table = switch.tables[0]
        match = Match(eth_type=0x0800, ipv4_dst=masked("10.1.0.0", 16))
        switch.handle_message(
            FlowMod(
                match=match,
                priority=5,
                instructions=[ApplyActions(actions=(OutputAction(port=1),))],
            ).to_bytes()
        )
        switch.handle_message(
            FlowMod(
                command=c.OFPFC_MODIFY,
                match=match,
                instructions=[ApplyActions(actions=(OutputAction(port=2),))],
            ).to_bytes()
        )
        assert table.subtable_count == 1
        entry = lookup_both(table, frame_to("10.1.2.3"), now=sim.now)
        assert entry.match == match
        (instruction,) = entry.instructions
        assert instruction.actions[0].port == 2


class TestRandomizedSubtableChurn:
    def test_install_delete_churn_stays_linear_identical(self):
        """Random masked installs/deletes; every lookup cross-checked."""
        rng = random.Random(0xC0FFEE)
        table = FlowTable(table_id=0)
        live = []
        prefixes = ["10.%d.0.0" % i for i in range(4)]
        for step in range(300):
            roll = rng.random()
            if roll < 0.55 or not live:
                bits = rng.choice((8, 16, 24))
                fields = {"ipv4_dst": masked(rng.choice(prefixes), bits)}
                if rng.random() < 0.4:
                    fields["in_port"] = rng.randint(1, 2)
                entry = FlowEntry(match=Match(**fields), priority=rng.randint(0, 5))
                table.install(entry, now=float(step))
            else:
                victim = rng.choice(live)
                table.delete(victim.match, priority=victim.priority, strict=True)
            live = list(table)
            frame = frame_to(
                "10.%d.%d.%d" % (rng.randrange(4), rng.randrange(4), rng.randrange(4))
            )
            lookup_both(table, frame, now=float(step), in_port=rng.randint(1, 2))
        assert table.subtable_count >= 1
