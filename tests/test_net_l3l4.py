"""Tests for ARP / IPv4 / ICMP / UDP / TCP wire formats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import (
    ARP_OP_REPLY,
    ARP_OP_REQUEST,
    ArpPacket,
    IcmpPacket,
    IPv4Address,
    IPv4Packet,
    MACAddress,
    PacketDecodeError,
    TCP_FLAG_ACK,
    TCP_FLAG_SYN,
    TcpSegment,
    UdpDatagram,
)
from repro.net.checksum import internet_checksum, verify_checksum

IP_A = IPv4Address("10.0.0.1")
IP_B = IPv4Address("10.0.0.2")
MAC_A = MACAddress("00:00:00:00:00:0a")
MAC_B = MACAddress("00:00:00:00:00:0b")


class TestChecksum:
    def test_rfc1071_example(self):
        # Example from RFC 1071 §3: words 0001 f203 f4f5 f6f7
        data = bytes.fromhex("0001f203f4f5f6f7")
        assert internet_checksum(data) == ~0xDDF2 & 0xFFFF

    def test_zero_buffer(self):
        assert internet_checksum(b"\x00" * 8) == 0xFFFF

    def test_odd_length_padding(self):
        assert internet_checksum(b"\x12") == internet_checksum(b"\x12\x00")

    @given(st.binary(min_size=0, max_size=128))
    def test_embedding_checksum_verifies(self, data):
        # Real headers place the checksum at an even offset, so align first.
        if len(data) % 2:
            data += b"\x00"
        checksum = internet_checksum(data)
        assert verify_checksum(data + checksum.to_bytes(2, "big"))


class TestArp:
    def test_request_round_trip(self):
        request = ArpPacket.request(MAC_A, IP_A, IP_B)
        parsed = ArpPacket.from_bytes(request.to_bytes())
        assert parsed == request
        assert parsed.opcode == ARP_OP_REQUEST

    def test_reply_swaps_direction(self):
        request = ArpPacket.request(MAC_A, IP_A, IP_B)
        reply = request.make_reply(MAC_B)
        assert reply.opcode == ARP_OP_REPLY
        assert reply.sender_ip == IP_B
        assert reply.sender_mac == MAC_B
        assert reply.target_ip == IP_A
        assert reply.target_mac == MAC_A

    def test_cannot_reply_to_reply(self):
        reply = ArpPacket.request(MAC_A, IP_A, IP_B).make_reply(MAC_B)
        with pytest.raises(ValueError):
            reply.make_reply(MAC_A)

    def test_short_packet_raises(self):
        with pytest.raises(PacketDecodeError):
            ArpPacket.from_bytes(b"\x00" * 27)

    def test_wrong_htype_raises(self):
        raw = bytearray(ArpPacket.request(MAC_A, IP_A, IP_B).to_bytes())
        raw[0:2] = b"\x00\x02"
        with pytest.raises(PacketDecodeError):
            ArpPacket.from_bytes(bytes(raw))

    def test_bad_opcode_rejected(self):
        with pytest.raises(ValueError):
            ArpPacket(
                opcode=9,
                sender_mac=MAC_A,
                sender_ip=IP_A,
                target_mac=MAC_B,
                target_ip=IP_B,
            )


class TestIPv4Packet:
    def test_round_trip(self):
        packet = IPv4Packet(src=IP_A, dst=IP_B, protocol=17, payload=b"data", ttl=33)
        parsed = IPv4Packet.from_bytes(packet.to_bytes())
        assert parsed == packet

    def test_checksum_is_valid(self):
        raw = IPv4Packet(src=IP_A, dst=IP_B, protocol=6).to_bytes()
        assert internet_checksum(raw[:20]) == 0

    def test_corrupted_header_raises(self):
        raw = bytearray(IPv4Packet(src=IP_A, dst=IP_B, protocol=6).to_bytes())
        raw[8] ^= 0xFF  # flip TTL without fixing checksum
        with pytest.raises(PacketDecodeError):
            IPv4Packet.from_bytes(bytes(raw))

    def test_total_length(self):
        packet = IPv4Packet(src=IP_A, dst=IP_B, protocol=17, payload=b"12345")
        assert packet.total_length == 25
        assert len(packet.to_bytes()) == 25

    def test_options_round_trip(self):
        packet = IPv4Packet(
            src=IP_A, dst=IP_B, protocol=6, options=b"\x94\x04\x00\x00"
        )
        parsed = IPv4Packet.from_bytes(packet.to_bytes())
        assert parsed.options == b"\x94\x04\x00\x00"
        assert parsed.ihl == 6

    def test_unpadded_options_rejected(self):
        with pytest.raises(ValueError):
            IPv4Packet(src=IP_A, dst=IP_B, protocol=6, options=b"\x01")

    def test_decrement_ttl(self):
        packet = IPv4Packet(src=IP_A, dst=IP_B, protocol=6, ttl=2)
        assert packet.decrement_ttl().ttl == 1
        with pytest.raises(ValueError):
            IPv4Packet(src=IP_A, dst=IP_B, protocol=6, ttl=0).decrement_ttl()

    def test_non_v4_rejected(self):
        raw = bytearray(IPv4Packet(src=IP_A, dst=IP_B, protocol=6).to_bytes())
        raw[0] = (6 << 4) | 5
        with pytest.raises(PacketDecodeError):
            IPv4Packet.from_bytes(bytes(raw))

    def test_short_buffer_rejected(self):
        with pytest.raises(PacketDecodeError):
            IPv4Packet.from_bytes(b"\x45" + b"\x00" * 10)

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=1, max_value=255),
        st.binary(max_size=64),
    )
    def test_round_trip_property(self, src, dst, protocol, ttl, payload):
        packet = IPv4Packet(
            src=IPv4Address(src),
            dst=IPv4Address(dst),
            protocol=protocol,
            ttl=ttl,
            payload=payload,
        )
        assert IPv4Packet.from_bytes(packet.to_bytes()) == packet


class TestIcmp:
    def test_echo_round_trip(self):
        echo = IcmpPacket.echo_request(identifier=7, sequence=3, payload=b"ping")
        parsed = IcmpPacket.from_bytes(echo.to_bytes())
        assert parsed == echo

    def test_reply_mirrors_request(self):
        echo = IcmpPacket.echo_request(identifier=7, sequence=3, payload=b"ping")
        reply = echo.make_reply()
        assert reply.icmp_type == 0
        assert reply.identifier == 7
        assert reply.sequence == 3
        assert reply.payload == b"ping"

    def test_reply_to_reply_raises(self):
        with pytest.raises(ValueError):
            IcmpPacket.echo_request(1, 1).make_reply().make_reply()

    def test_corruption_detected(self):
        raw = bytearray(IcmpPacket.echo_request(1, 1, b"abc").to_bytes())
        raw[-1] ^= 0x55
        with pytest.raises(PacketDecodeError):
            IcmpPacket.from_bytes(bytes(raw))

    @given(
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=0xFFFF),
        st.binary(max_size=64),
    )
    def test_round_trip_property(self, identifier, sequence, payload):
        echo = IcmpPacket.echo_request(identifier, sequence, payload)
        assert IcmpPacket.from_bytes(echo.to_bytes()) == echo


class TestUdp:
    def test_round_trip(self):
        datagram = UdpDatagram(src_port=5000, dst_port=53, payload=b"query")
        raw = datagram.to_bytes(IP_A, IP_B)
        parsed = UdpDatagram.from_bytes(raw, IP_A, IP_B)
        assert parsed == datagram

    def test_length_field(self):
        datagram = UdpDatagram(src_port=1, dst_port=2, payload=b"12345")
        assert datagram.length == 13
        assert len(datagram.to_bytes(IP_A, IP_B)) == 13

    def test_checksum_mismatch_detected(self):
        raw = bytearray(UdpDatagram(1, 2, b"abc").to_bytes(IP_A, IP_B))
        raw[-1] ^= 0xFF
        with pytest.raises(PacketDecodeError):
            UdpDatagram.from_bytes(bytes(raw), IP_A, IP_B)

    def test_parse_without_ips_skips_checksum(self):
        raw = bytearray(UdpDatagram(1, 2, b"abc").to_bytes(IP_A, IP_B))
        raw[-1] ^= 0xFF
        parsed = UdpDatagram.from_bytes(bytes(raw))
        assert parsed.src_port == 1

    def test_port_range_enforced(self):
        with pytest.raises(ValueError):
            UdpDatagram(src_port=70000, dst_port=1)

    @given(
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=0xFFFF),
        st.binary(max_size=128),
    )
    def test_round_trip_property(self, src_port, dst_port, payload):
        datagram = UdpDatagram(src_port, dst_port, payload)
        raw = datagram.to_bytes(IP_A, IP_B)
        assert UdpDatagram.from_bytes(raw, IP_A, IP_B) == datagram


class TestTcp:
    def test_round_trip(self):
        segment = TcpSegment(
            src_port=40000,
            dst_port=80,
            seq=1000,
            ack=2000,
            flags=TCP_FLAG_SYN | TCP_FLAG_ACK,
            payload=b"GET",
        )
        raw = segment.to_bytes(IP_A, IP_B)
        assert TcpSegment.from_bytes(raw, IP_A, IP_B) == segment

    def test_syn_detection(self):
        assert TcpSegment(1, 2, flags=TCP_FLAG_SYN).is_syn
        assert not TcpSegment(1, 2, flags=TCP_FLAG_SYN | TCP_FLAG_ACK).is_syn

    def test_flag_names(self):
        segment = TcpSegment(1, 2, flags=TCP_FLAG_SYN | TCP_FLAG_ACK)
        assert segment.flag_names() == "SYN|ACK"
        assert TcpSegment(1, 2).flag_names() == "none"

    def test_options_round_trip(self):
        segment = TcpSegment(1, 2, options=b"\x02\x04\x05\xb4")
        raw = segment.to_bytes(IP_A, IP_B)
        parsed = TcpSegment.from_bytes(raw, IP_A, IP_B)
        assert parsed.options == b"\x02\x04\x05\xb4"
        assert parsed.data_offset == 6

    def test_checksum_mismatch_detected(self):
        raw = bytearray(TcpSegment(1, 2, payload=b"xyz").to_bytes(IP_A, IP_B))
        raw[-2] ^= 0x0F
        with pytest.raises(PacketDecodeError):
            TcpSegment.from_bytes(bytes(raw), IP_A, IP_B)

    def test_unpadded_options_rejected(self):
        with pytest.raises(ValueError):
            TcpSegment(1, 2, options=b"\x01\x02")

    @given(
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=0xFFFF),
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=0x3F),
        st.binary(max_size=64),
    )
    def test_round_trip_property(self, src_port, dst_port, seq, flags, payload):
        segment = TcpSegment(
            src_port=src_port, dst_port=dst_port, seq=seq, flags=flags, payload=payload
        )
        raw = segment.to_bytes(IP_A, IP_B)
        assert TcpSegment.from_bytes(raw, IP_A, IP_B) == segment
