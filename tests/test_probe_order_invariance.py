"""Property test: table-0 probe order never changes a lookup result.

The compiler orders its generated probe blocks by profile hits (the
default), by priority alone, or — as a test hook — by a seeded
shuffle.  Ordering is only a performance lever: each probe block's
guard skips work solely when the running best already beats the
probe's *maximum* priority, and the winner is the global minimum of a
total order ``(-priority, installed_at, seq)``, so every permutation
must select the same entry for every packet.  This suite compiles the
same randomized rule sets under all three orderings (several shuffle
seeds) and asserts decision-for-decision equality across ≥1000
randomized lookups, including mortal entries probed at times before
and after their expiry.
"""

import random

from test_specialized_differential import (
    build_rig,
    compilable_instructions,
    random_churn_message,
    random_frame,
    random_match,
)

from repro.openflow import FlowMod
from repro.softswitch import DatapathCostModel, compile_datapath

#: Orderings compared against the "priority" baseline.
ORDERS = ("profile", 0, 1, 17, 0xC0FFEE)


def build_random_switch(rng: random.Random):
    rig = build_rig(DatapathCostModel.zero(), specialize=True)
    _, switch, _, _ = rig
    for _ in range(rng.randint(4, 14)):
        message = random_churn_message(rng)
        switch.handle_message(message.to_bytes())
    # A couple of mortal rules so the mortal probe loops get permuted too.
    for _ in range(rng.randint(0, 3)):
        switch.handle_message(
            FlowMod(
                match=random_match(rng),
                priority=rng.randint(0, 30),
                hard_timeout=rng.choice((1, 2)),
                instructions=compilable_instructions(rng),
            ).to_bytes()
        )
    return rig, switch


def test_probe_order_invariance():
    rng = random.Random(0x0D0E)
    cases = 0
    rulesets = 0
    while cases < 1000:
        rulesets += 1
        _, switch = build_random_switch(rng)
        # Warm the profile counters through interpreted traffic so the
        # "profile" ordering actually differs from "priority".
        for _ in range(8):
            switch.inject(random_frame(rng), rng.randint(1, 3))
        base = compile_datapath(switch, probe_order="priority")
        assert base is not None
        variants = []
        for order in ORDERS:
            program = compile_datapath(switch, probe_order=order)
            assert program is not None and program.probe_order == order
            variants.append(program)
        for _ in range(12):
            frame = random_frame(rng)
            in_port = rng.randint(1, 3)
            now = rng.choice((0.0, 0.4, 1.5, 3.0))  # straddles mortal expiry
            expected = base.classify(frame, in_port, now)
            for order, program in zip(ORDERS, variants):
                got = program.classify(frame, in_port, now)
                assert got == expected, (
                    f"probe order {order!r} diverged (ruleset {rulesets}, "
                    f"now={now}): {got} != {expected}"
                )
                cases += 1
    assert cases >= 1000
