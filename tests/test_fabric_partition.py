"""Tests for fabric partitioning and the sharded execution harness."""

import pytest

from repro.fabric import (
    ShardedFabric,
    campus_fabric,
    leaf_spine_fabric,
    partition_fabric,
    ring_fabric,
)
from repro.net import EthernetFrame, MACAddress
from repro.netsim import Link, Node, Simulator
from repro.netsim.sharded import (
    ShardedSimulator,
    ShardSimulator,
    ThreadMesh,
    run_collective,
    sever_link,
)


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------


class TestPartition:
    def test_leaf_spine_cuts_only_the_spine_chain(self):
        fabric = leaf_spine_fabric(
            edges=8, spines=4, hosts_per_edge=1, sim=Simulator()
        )
        partition = partition_fabric(fabric, 2)
        # Edge-to-spine bundles must never be cut — only the single
        # spine2<->spine3 chain link crosses the shard boundary.
        assert len(partition.cuts) == 1
        cut = partition.cuts[0]
        assert {cut.site_a, cut.site_b} == {"spine2", "spine3"}
        # Each spine travels with the edges homed onto it.
        assignment = partition.assignment
        assert assignment["spine1"] == assignment["edge1"] == assignment["edge5"]
        assert assignment["spine4"] == assignment["edge4"] == assignment["edge8"]

    def test_ring_splits_into_contiguous_arcs(self):
        fabric = ring_fabric(switches=8, hosts_per_switch=1, sim=Simulator())
        partition = partition_fabric(fabric, 4)
        assert len(partition.cuts) == 4
        for shard in range(4):
            owned = partition.owned_sites(shard)
            assert owned == [f"ring{2 * shard + 1}", f"ring{2 * shard + 2}"]

    def test_campus_keeps_subtrees_whole(self):
        fabric = campus_fabric(
            distribution=4, access_per_distribution=2,
            hosts_per_access=1, sim=Simulator(),
        )
        partition = partition_fabric(fabric, 2)
        assignment = partition.assignment
        for dist in range(1, 5):
            shard = assignment[f"dist{dist}"]
            for access in range(1, 3):
                assert assignment[f"acc{dist}-{access}"] == shard
        # Cuts are dist-to-core only.
        for cut in partition.cuts:
            assert "core" in (cut.site_a, cut.site_b)

    def test_every_site_is_assigned_exactly_once(self):
        fabric = campus_fabric(sim=Simulator())
        partition = partition_fabric(fabric, 2)
        assert set(partition.assignment) == set(fabric.sites)
        flattened = [name for cluster in partition.clusters for name in cluster]
        assert sorted(flattened) == sorted(fabric.sites)

    def test_more_shards_than_clusters_rejected(self):
        fabric = leaf_spine_fabric(edges=4, spines=2, sim=Simulator())
        with pytest.raises(ValueError, match="cluster"):
            partition_fabric(fabric, 5)

    def test_zero_propagation_cut_rejected(self):
        fabric = ring_fabric(
            switches=4, hosts_per_switch=1, sim=Simulator(),
            trunk_bandwidth_bps=None,
        )
        for link in fabric.trunk_links:
            link.propagation_delay_s = 0.0
        with pytest.raises(ValueError, match="propagation"):
            partition_fabric(fabric, 2)

    def test_single_shard_owns_everything(self):
        fabric = ring_fabric(switches=4, sim=Simulator())
        partition = partition_fabric(fabric, 1)
        assert partition.cuts == []
        assert set(partition.owned_sites(0)) == set(fabric.sites)


# ---------------------------------------------------------------------------
# The sync engine
# ---------------------------------------------------------------------------


class _Recorder(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.got = []

    def receive(self, port, frame):
        self.got.append((self.sim.now, frame))

    def receive_burst(self, port, arrivals):
        for _, frame in arrivals:
            self.got.append((self.sim.now, frame))


def _two_shard_pair(lookahead=1e-6):
    """Two shards, each holding a replica of A<->B; shard 0 owns A."""
    mesh = ThreadMesh(2, timeout_s=10)
    sims = [
        ShardSimulator(shard=i, nshards=2, lookahead_s=lookahead,
                       transport=mesh.endpoint(i))
        for i in range(2)
    ]
    replicas = []
    for sim in sims:
        a, b = _Recorder(sim, "A"), _Recorder(sim, "B")
        link = Link(a.add_port(), b.add_port(),
                    bandwidth_bps=1e9, propagation_delay_s=lookahead)
        replicas.append((a, b, link))
    sever_link(replicas[0][2], sims[0], 0, peer_shard=1,
               owned_port=replicas[0][2].port_a)
    sever_link(replicas[1][2], sims[1], 0, peer_shard=0,
               owned_port=replicas[1][2].port_b)
    return sims, replicas


def _frame(payload=b"y" * 80):
    return EthernetFrame(
        dst=MACAddress(2), src=MACAddress(1), ethertype=0x0800, payload=payload
    )


class TestShardSync:
    def test_boundary_frame_timing_matches_local_link(self):
        sims, replicas = _two_shard_pair()
        frame = _frame()
        sims[0].schedule_at(1e-3, lambda: replicas[0][2].port_a.send(frame))
        run_collective(sims, until=0.01)

        ref = Simulator()
        a, b = _Recorder(ref, "A"), _Recorder(ref, "B")
        Link(a.add_port(), b.add_port(), bandwidth_bps=1e9,
             propagation_delay_s=1e-6)
        ref.schedule_at(1e-3, lambda: a.ports[1].send(frame))
        ref.run(until=0.01)

        assert [t for t, _ in replicas[1][1].got] == [t for t, _ in b.got]
        assert sims[0].frames_exported == 1
        assert sims[1].frames_imported == 1

    def test_boundary_burst_preserves_per_frame_arrivals(self):
        sims, replicas = _two_shard_pair()
        frame = _frame()
        burst = [frame] * 16
        sims[0].schedule_at(
            1e-3, lambda: replicas[0][2].port_a.send_burst(burst)
        )
        run_collective(sims, until=0.01)
        receiver = replicas[1][1]
        assert len(receiver.got) == 16
        # tail-drop stats live on the owning side's link object
        stats = replicas[0][2].stats(replicas[0][2].port_a)
        assert stats.frames == 16
        assert stats.queue_hwm == 16

    def test_clocks_converge_after_every_collective_run(self):
        sims, replicas = _two_shard_pair()
        sims[0].schedule_at(1e-3, lambda: None)  # shard 1 stays idle
        run_collective(sims, until=None)
        assert sims[0].now == sims[1].now
        run_collective(sims, until=sims[0].now + 0.5)
        assert sims[0].now == sims[1].now

    def test_foreign_transmit_counts_shadow_drop(self):
        sims, replicas = _two_shard_pair()
        frame = _frame()
        # Shard 0 does not own B; its replica of B must not export.
        sims[0].schedule_at(1e-3, lambda: replicas[0][2].port_b.send(frame))
        run_collective(sims, until=0.01)
        assert sims[0].shadow_drops == 1
        assert replicas[1][0].got == []

    def test_max_events_cap_is_collective_and_clean(self):
        """A capped collective run stops at the global count — no abort,
        every shard returns, and the clocks still equalise."""
        sims, replicas = _two_shard_pair()
        for k in range(50):
            sims[0].schedule_at(1e-3 + k * 1e-5, lambda: None)
        counts = run_collective(sims, until=1.0, max_events=5)
        assert sum(counts) == 5
        assert sims[0].pending_events == 45
        assert sims[0].now == sims[1].now
        # The cap is global: the idle shard contributes its zero count
        # to the same sum every round, so both break at one barrier.
        counts = run_collective(sims, until=1.0, max_events=10)
        assert sum(counts) == 10
        assert sims[0].pending_events == 35

    def test_sharded_simulator_facade(self):
        sharded = ShardedSimulator(shards=2, lookahead_s=1e-6)
        order = []
        sharded.schedule_at(0.002, lambda: order.append("b"), shard=1)
        sharded.schedule_at(0.001, lambda: order.append("a"), shard=0)
        assert sharded.pending_events == 2
        processed = sharded.run(until=0.01)
        assert processed == 2
        assert order == ["a", "b"]
        assert sharded.now == 0.01
        stats = sharded.stats()
        assert stats["shards"] == 2
        assert len(stats["per_shard"]) == 2

    def test_shard_simulator_needs_lookahead_and_transport(self):
        with pytest.raises(ValueError, match="lookahead"):
            ShardSimulator(shard=0, nshards=2, lookahead_s=None,
                           transport=object())
        with pytest.raises(ValueError, match="transport"):
            ShardSimulator(shard=0, nshards=2, lookahead_s=1e-6)


# ---------------------------------------------------------------------------
# Harness end-to-end
# ---------------------------------------------------------------------------


def _small_leaf_spine(sim):
    return leaf_spine_fabric(edges=4, spines=2, hosts_per_edge=1, sim=sim)


class TestShardedFabric:
    def test_thread_backend_migrates_and_sweeps(self):
        with ShardedFabric(_small_leaf_spine, shards=2,
                           backend="thread") as sharded:
            fleet = sharded.fleet(wave_size=2)
            reports = fleet.migrate_all(verify=True, strict=True)
            assert fleet.complete
            migrated = sorted(
                name for report in reports for name in report["migrated"]
            )
            assert migrated == sorted(sharded.reference.sites)
            sweep = fleet.verify_reachability()
            assert sweep["ok"]
            # 4 hosts -> 12 ordered pairs, partitioned across shards.
            assert sweep["pairs"] == 12
            stats = sharded.stats()
            assert stats["shadow_drops"] == 0
            assert stats["sync_rounds"] > 0

    def test_fork_backend_migrates_and_sweeps(self):
        with ShardedFabric(_small_leaf_spine, shards=2,
                           backend="fork") as sharded:
            fleet = sharded.fleet(wave_size=3)
            fleet.migrate_all(verify=False)
            sweep = fleet.verify_reachability()
            assert sweep["ok"]
            assert sweep["pairs"] == 12
            digest = sharded.digest()
            assert set(digest["sites"]) == set(sharded.reference.sites)

    def test_digest_covers_every_site_exactly_once(self):
        with ShardedFabric(_small_leaf_spine, shards=2,
                           backend="thread") as sharded:
            owned = [
                set(sharded.partition.owned_sites(shard))
                for shard in range(2)
            ]
            assert owned[0] & owned[1] == set()
            assert owned[0] | owned[1] == set(sharded.reference.sites)
            digest = sharded.digest()
            assert set(digest["sites"]) == set(sharded.reference.sites)

    def test_worker_failure_propagates_not_hangs(self):
        with ShardedFabric(_small_leaf_spine, shards=2,
                           backend="thread", timeout_s=30) as sharded:
            with pytest.raises(AttributeError):
                sharded.backend.broadcast("no_such_method")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            ShardedFabric(_small_leaf_spine, shards=1, backend="mpi")


def _static_fdb_leaf_spine(sim):
    """Two-pod leaf-spine whose host MACs are pinned in the edge FDBs.

    Static entries keep same-switch unicast from flooding: a flood
    would cross the spine cut and add landed/import events, making the
    global event count shard-dependent.  With the pins, the two-phase
    station workload below is fully pod-local on every shard count.
    """
    fabric = leaf_spine_fabric(
        edges=8, spines=4, hosts_per_edge=1, gen_ports_per_edge=1, sim=sim
    )
    for site in fabric.sites.values():
        for host, port in zip(site.hosts, site.host_ports):
            site.switch.fdb.add_static(1, host.mac, port)
    return fabric


_PHASE1_T = 1e-3
_PHASE2_T = 0.2  # the gap dwarfs every sync window: a globally quiet point


def _start_two_phase_traffic(sharded):
    """Same-switch unicast bursts at t1 and t2 from two far-apart pods."""
    queued = 0
    for site_name in ("edge1", "edge4"):
        port = sharded.attach_station(site_name, f"gen-{site_name}")
        host = sharded.reference.sites[site_name].hosts[0]
        frame = EthernetFrame(
            dst=host.mac,
            src=MACAddress(0xAA0000 + port),
            ethertype=0x0800,
            payload=b"x" * 100,
        )
        queued += sharded.start_station(
            site_name,
            0,
            [(_PHASE1_T, [frame] * 8), (_PHASE2_T, [frame] * 8)],
        )
    return queued


class TestCollectiveMaxEvents:
    def test_capped_run_stops_at_same_global_count_at_any_shard_count(self):
        """run(max_events=C) lands on exactly C events at shards 1/2/4.

        C is the phase-1 event count measured uncapped; since phase 1
        drains before the quiet gap, the collective cap check fires at
        the same barrier on every shard layout, before any phase-2
        event runs.
        """
        with ShardedFabric(
            _static_fdb_leaf_spine, shards=1, backend="thread"
        ) as sharded:
            assert _start_two_phase_traffic(sharded) == 32
            cap = sharded.run(until=(_PHASE1_T + _PHASE2_T) / 2)
        assert cap > 0

        for shards in (1, 2, 4):
            with ShardedFabric(
                _static_fdb_leaf_spine, shards=shards, backend="thread"
            ) as sharded:
                _start_two_phase_traffic(sharded)
                processed = sharded.run(until=1.0, max_events=cap)
                stats = sharded.stats()
                assert processed == cap, f"shards={shards}"
                assert stats["events_processed"] == cap
                # Stopped in the gap: phase 2 still queued everywhere,
                # and the workload never touched a cut link.
                assert stats["now"] < _PHASE2_T
                assert stats["pending_events"] > 0
                assert stats["frames_exported"] == 0
                assert stats["shadow_drops"] == 0


class TestFleetOwnedSites:
    def test_owned_sites_limits_migrations_and_sweep_sources(self):
        from repro.core.manager import HarmlessFleet

        fabric = leaf_spine_fabric(
            edges=2, spines=1, hosts_per_edge=1, sim=Simulator()
        )
        fleet = HarmlessFleet(fabric, wave_size=1, owned_sites={"edge1"})
        report = fleet.migrate_next_wave(verify=False)
        assert report.sites == ["edge1"]
        assert list(fleet.deployments) == ["edge1"]
        # Wave 2 plans edge2, which this replica does not own.
        report = fleet.migrate_next_wave(verify=False)
        assert report.sites == ["edge2"]
        assert list(fleet.deployments) == ["edge1"]
        sweep = fleet.verify_reachability()
        # Only edge1's host probes: 1 source x 1 other host.
        assert sweep.pairs == 1
