"""Failure injection and cross-module integration tests.

These exercise the unhappy paths a production deployment hits: trunk
link failure mid-traffic, translator recovery, FDB pressure on the
legacy switch under the HARMLESS VLAN scheme, and management-plane
faults surfacing as clean errors rather than silent misconfiguration.
"""

import pytest

from repro.apps import LearningSwitchApp
from repro.controller import Controller
from repro.core import HarmlessError, HarmlessManager, PortVlanMap
from repro.core.s4 import HarmlessS4
from repro.core.verify import ZERO_COST
from repro.legacy import LegacySwitch
from repro.mgmt import DeviceConnection, DriverError, get_network_driver
from repro.net import IPv4Address, MACAddress
from repro.netsim import Host, Link, Simulator
from repro.snmp import SnmpAgent, attach_bridge_mib


def build_site(num_hosts=3, vendor="sim-ios"):
    sim = Simulator()
    legacy = LegacySwitch(sim, "edge", num_ports=num_hosts + 1, processing_delay_s=0.0)
    hosts = []
    for index in range(num_hosts):
        host = Host(
            sim,
            f"h{index + 1}",
            MACAddress(0x020000000001 + index),
            IPv4Address(f"10.0.0.{index + 1}"),
        )
        Link(host.port0, legacy.port(index + 1))
        hosts.append(host)
    mib, _ = attach_bridge_mib(legacy)
    driver = get_network_driver(vendor)(
        DeviceConnection(agent=SnmpAgent(mib), hostname="edge")
    )
    driver.open()
    controller = Controller(sim)
    controller.add_app(LearningSwitchApp())
    manager = HarmlessManager(sim, controller=controller, cost_model=ZERO_COST)
    return sim, legacy, hosts, driver, manager


class TestTrunkFailure:
    def test_trunk_down_stops_everything(self):
        """With HARMLESS, the trunk is the artery: cut it, island dies."""
        sim, legacy, (h1, h2, _), driver, manager = build_site()
        manager.migrate(legacy, driver, trunk_port=4)
        sim.run(until=0.05)
        h1.ping(h2.ip)
        sim.run(until=1.0)
        assert len(h1.rtts()) == 1
        legacy.port(4).up = False  # trunk link failure
        h1.ping(h2.ip)
        sim.run(until=3.0)
        assert len(h1.rtts()) == 1  # second ping lost

    def test_trunk_recovery_restores_service(self):
        sim, legacy, (h1, h2, _), driver, manager = build_site()
        manager.migrate(legacy, driver, trunk_port=4)
        sim.run(until=0.05)
        legacy.port(4).up = False
        h1.ping(h2.ip)
        sim.run(until=2.0)
        legacy.port(4).up = True
        h1.ping(h2.ip)
        sim.run(until=4.0)
        assert len(h1.rtts()) == 1

    def test_teardown_returns_island_to_legacy_operation(self):
        """After teardown hosts talk again *without* the S4 (plain L2)."""
        sim, legacy, (h1, h2, _), driver, manager = build_site()
        deployment = manager.migrate(legacy, driver, trunk_port=4)
        sim.run(until=0.05)
        deployment.teardown()
        h1.ping(h2.ip)
        sim.run(until=1.0)
        assert len(h1.rtts()) == 1  # direct legacy switching, no OF


class TestAccessPortFailure:
    def test_single_port_down_isolates_one_host_only(self):
        sim, legacy, (h1, h2, h3), driver, manager = build_site()
        manager.migrate(legacy, driver, trunk_port=4)
        sim.run(until=0.05)
        legacy.link_down(2)
        h1.ping(h2.ip)  # victim unreachable
        h1.ping(h3.ip)  # bystander fine
        sim.run(until=3.0)
        assert len(h1.rtts()) == 1
        assert h1.ping_results[0].lost
        assert not h1.ping_results[1].lost


class TestManagementFaults:
    def test_wrong_community_fails_cleanly(self):
        sim = Simulator()
        legacy = LegacySwitch(sim, "edge", num_ports=4)
        mib, _ = attach_bridge_mib(legacy)
        agent = SnmpAgent(mib, read_community="r", write_community="w")
        driver = get_network_driver("sim-ios")(
            DeviceConnection(agent=agent, write_community="guess")
        )
        with pytest.raises(DriverError):
            driver.open()

    def test_failed_migration_rolls_back_device(self):
        """If S4 setup fails the legacy switch config must be restored."""
        sim, legacy, hosts, driver, manager = build_site()
        # Sabotage: pre-wire the trunk port so Link() creation fails.
        blocker = Host(sim, "blocker", MACAddress(0x02FF), IPv4Address("10.9.9.9"))
        Link(blocker.port0, legacy.port(4))
        with pytest.raises(HarmlessError, match="rolled back"):
            manager.migrate(legacy, driver, trunk_port=4)
        # Device configuration is back to defaults.
        assert legacy.config.port(1).pvid == 1
        assert all(vlan < 100 for vlan in legacy.config.vlans)

    def test_migrating_port_map_mismatch_rejected(self):
        sim = Simulator()
        s4 = HarmlessS4(sim, "s4", access_ports=[1, 2], datapath_id=5)
        with pytest.raises(ValueError, match="S4 manages"):
            s4.install_translator(PortVlanMap({1: 101, 3: 103}))


class TestFdbPressure:
    def test_legacy_fdb_overflow_floods_but_harmless_still_works(self):
        """Tiny FDB: evictions cause floods, but delivery still succeeds."""
        sim = Simulator()
        legacy = LegacySwitch(sim, "edge", num_ports=4, fdb_capacity=2,
                              processing_delay_s=0.0)
        hosts = []
        for index in range(3):
            host = Host(
                sim,
                f"h{index + 1}",
                MACAddress(0x02AA00000001 + index),
                IPv4Address(f"10.0.0.{index + 1}"),
            )
            Link(host.port0, legacy.port(index + 1))
            hosts.append(host)
        mib, _ = attach_bridge_mib(legacy)
        driver = get_network_driver("sim-ios")(
            DeviceConnection(agent=SnmpAgent(mib), hostname="edge")
        )
        driver.open()
        controller = Controller(sim)
        controller.add_app(LearningSwitchApp())
        manager = HarmlessManager(sim, controller=controller, cost_model=ZERO_COST)
        manager.migrate(legacy, driver, trunk_port=4)
        sim.run(until=0.05)
        hosts[0].ping(hosts[1].ip)
        hosts[2].ping(hosts[0].ip)
        sim.run(until=2.0)
        assert len(hosts[0].rtts()) == 1
        assert len(hosts[2].rtts()) == 1
        # The tiny CAM really was under pressure.
        assert legacy.fdb.evictions > 0


class TestControllerChurn:
    def test_flows_survive_after_app_installs_and_host_restarts(self):
        sim, legacy, (h1, h2, _), driver, manager = build_site()
        manager.migrate(legacy, driver, trunk_port=4)
        sim.run(until=0.05)
        h1.ping(h2.ip)
        sim.run(until=1.0)
        # "Restart" h2's networking: its ARP cache clears, flows remain.
        h2.arp_table.clear()
        h2.ping(h1.ip)
        sim.run(until=2.5)
        assert len(h2.rtts()) == 1

    def test_snmp_counters_visible_during_harmless_operation(self):
        """Operators keep their SNMP monitoring after migration."""
        sim, legacy, (h1, h2, _), driver, manager = build_site()
        manager.migrate(legacy, driver, trunk_port=4)
        sim.run(until=0.05)
        h1.ping(h2.ip)
        sim.run(until=1.0)
        interfaces = driver.get_interfaces()
        trunk_name = driver.interface_name(4)
        assert interfaces[trunk_name]["tx_octets"] > 0
        assert interfaces[trunk_name]["rx_octets"] > 0
        table = driver.get_mac_address_table()
        assert len(table) >= 2  # both hosts learned, visible over SNMP
