"""Fault-injection primitives: link loss, power cycles, channel loss.

These are the building blocks the resilience suite and
``benchmarks/bench_resilience.py`` compose: every primitive must lose
exactly what a real failure loses (queued and in-flight frames, dynamic
learned state, in-transit control messages) and nothing else, and must
recover to a clean slate.
"""

import pytest

from repro.apps import LearningSwitchApp
from repro.controller import Controller
from repro.legacy import LegacySwitch, StormControl
from repro.net import EthernetFrame, IPv4Address, MACAddress
from repro.netsim import FaultInjector, Host, Link, Node, Simulator
from repro.netsim.link import wire
from repro.softswitch import SoftSwitch


class Sink(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.count = 0

    def receive(self, port, frame):
        self.count += 1

    def receive_burst(self, port, arrivals):
        self.count += len(arrivals)


def make_frame(tag=0):
    # 86B payload -> 100B on the wire.
    return EthernetFrame(
        dst=MACAddress(2), src=MACAddress(10 + tag), ethertype=0x0800,
        payload=b"z" * 86,
    )


def slow_pair(queue_frames=10):
    """8 Mbit/s link: a 100-byte frame serialises in 100 us."""
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    link = wire(
        a, b,
        bandwidth_bps=8_000_000,
        propagation_delay_s=50e-6,
        queue_frames=queue_frames,
    )
    return sim, a, b, link


class TestLinkSetDown:
    def test_in_flight_and_queued_frames_are_lost(self):
        sim, a, b, link = slow_pair()
        for tag in range(5):  # one serialising + four queued
            assert a.port(1).send(make_frame(tag)) is True
        sim.run(until=160e-6)  # first frame has landed (100us + 50us prop)
        assert b.count == 1
        link.set_down()
        sim.run(until=0.1)
        assert b.count == 1  # nothing else ever lands
        stats = link.stats(a.port(1))
        assert stats.frames == 5  # all five made it onto the wire...
        assert stats.drops == 4  # ...but the failure ate the rest

    def test_down_link_refuses_new_frames(self):
        sim, a, b, link = slow_pair()
        link.set_down()
        assert a.port(1).send(make_frame()) is False
        assert a.port(1).send_burst([make_frame(1), make_frame(2)]) == 0
        sim.run(until=0.1)
        assert b.count == 0
        assert link.stats(a.port(1)).drops == 3

    def test_burst_in_flight_lost_on_set_down(self):
        sim, a, b, link = slow_pair(queue_frames=100)
        a.port(1).send_burst([make_frame(t) for t in range(8)])
        sim.run(until=100e-6)  # burst still serialising
        link.set_down()
        sim.run(until=0.1)
        assert b.count == 0
        assert link.stats(a.port(1)).drops == 8

    def test_restore_carries_traffic_again(self):
        sim, a, b, link = slow_pair()
        link.set_down()
        assert a.port(1).send(make_frame()) is False
        link.set_up()
        assert a.port(1).send(make_frame()) is True
        sim.run(until=0.1)
        assert b.count == 1

    def test_queue_state_sane_across_flap_cycles(self):
        """Repeated flaps never corrupt the queue accounting: occupancy
        resets to empty on every failure, so a full window fits again
        after each restore and the high-water mark never exceeds the
        configured queue."""
        sim, a, b, link = slow_pair(queue_frames=4)
        for _ in range(5):
            sent = [a.port(1).send(make_frame(t)) for t in range(6)]
            assert sent.count(False) == 2  # tail-drop past the window
            link.set_down()
            link.set_up()
        sent = [a.port(1).send(make_frame(t)) for t in range(4)]
        assert all(sent)
        sim.run(until=1.0)
        assert b.count == 4  # only the post-restore window delivers
        assert link.stats(a.port(1)).queue_hwm <= 4

    def test_set_down_idempotent(self):
        sim, a, b, link = slow_pair()
        a.port(1).send(make_frame())
        link.set_down()
        drops = link.stats(a.port(1)).drops
        link.set_down()
        assert link.stats(a.port(1)).drops == drops


class TestSwitchPowerCycle:
    def build(self):
        sim = Simulator()
        switch = LegacySwitch(sim, "sw", num_ports=4, processing_delay_s=0.0)
        hosts = []
        for index in range(2):
            host = Host(
                sim,
                f"h{index + 1}",
                MACAddress(0x02_00_00_00_00_21 + index),
                IPv4Address(f"10.9.0.{index + 1}"),
            )
            Link(host.port0, switch.port(index + 1))
            hosts.append(host)
        return sim, switch, hosts

    def test_crashed_switch_black_holes(self):
        sim, switch, (h1, h2) = self.build()
        h1.ping(h2.ip)
        sim.run(until=0.5)
        assert len(h1.rtts()) == 1
        switch.power_off()
        h1.ping(h2.ip)
        sim.run(until=2.0)
        assert len(h1.rtts()) == 1  # second ping died in the switch

    def test_restart_clears_dynamic_fdb_keeps_static(self):
        sim, switch, (h1, h2) = self.build()
        switch.fdb.add_static(1, MACAddress(0xBEEF), 3)
        h1.ping(h2.ip)
        sim.run(until=0.5)
        assert switch.fdb.lookup(1, h1.mac, sim.now) == 1
        switch.power_off()
        switch.power_on()
        assert switch.fdb.lookup(1, h1.mac, sim.now) is None
        assert switch.fdb.lookup(1, MACAddress(0xBEEF), sim.now) == 3

    def test_traffic_flows_after_restart(self):
        sim, switch, (h1, h2) = self.build()
        h1.ping(h2.ip)
        sim.run(until=0.5)
        switch.power_off()
        sim.run(until=1.0)
        switch.power_on()
        h1.ping(h2.ip)
        sim.run(until=4.0)  # allow an ARP retry round
        assert len(h1.rtts()) >= 2

    def test_injector_schedules_crash_and_restore(self):
        sim, switch, _ = self.build()
        injector = FaultInjector(sim)
        injector.switch_crash(switch, at_s=0.1, hold_s=0.2)
        sim.run(until=0.15)
        assert not switch.running
        sim.run(until=0.35)
        assert switch.running
        assert [entry[1] for entry in injector.log] == [
            "switch crash: sw", "switch restart: sw",
        ]


class TestControllerChannelLoss:
    def build(self):
        sim = Simulator()
        switch = SoftSwitch(sim, "ss", datapath_id=0x77)
        hosts = []
        for index in range(2):
            host = Host(
                sim,
                f"h{index + 1}",
                MACAddress(0x02_00_00_00_00_31 + index),
                IPv4Address(f"10.8.0.{index + 1}"),
            )
            Link(host.port0, switch.add_port(index + 1))
            hosts.append(host)
        controller = Controller(sim)
        app = controller.add_app(LearningSwitchApp())
        datapath = controller.connect(switch)
        sim.run(until=0.05)  # handshake + table-miss install
        return sim, hosts, app, datapath

    def test_packet_ins_black_holed_while_down(self):
        sim, (h1, h2), app, datapath = self.build()
        datapath.channel.set_down()
        handled_before = app.packet_ins_handled
        h1.ping(h2.ip)
        sim.run(until=2.0)
        assert app.packet_ins_handled == handled_before
        assert datapath.channel.dropped_to_controller > 0
        assert len(h1.rtts()) == 0

    def test_in_flight_messages_lost_at_failure_instant(self):
        sim, (h1, h2), app, datapath = self.build()
        handled_before = app.packet_ins_handled
        h1.ping(h2.ip)
        # The ARP packet-in is inside the channel latency when the
        # failure hits; it must die in transit, not be delivered.
        sim.schedule(datapath.channel.latency_s / 2, datapath.channel.set_down)
        sim.run(until=2.0)
        assert app.packet_ins_handled == handled_before
        assert datapath.channel.dropped_to_controller > 0

    def test_recovers_cleanly_after_restore(self):
        sim, (h1, h2), app, datapath = self.build()
        datapath.channel.set_down()
        h1.ping(h2.ip)
        sim.run(until=2.5)
        assert len(h1.rtts()) == 0
        datapath.channel.set_up()
        h1.ping(h2.ip)
        sim.run(until=5.0)
        assert len(h1.rtts()) == 1
        assert app.packet_ins_handled > 0


class TestStormInjection:
    def build(self):
        sim = Simulator()
        switch = LegacySwitch(sim, "sw", num_ports=4, processing_delay_s=0.0)
        hosts, links = [], []
        for index in range(2):
            host = Host(
                sim,
                f"h{index + 1}",
                MACAddress(0x02_00_00_00_00_61 + index),
                IPv4Address(f"10.5.0.{index + 1}"),
            )
            links.append(Link(host.port0, switch.port(index + 1)))
            hosts.append(host)
        return sim, switch, hosts, links

    def test_storm_melts_an_unprotected_switch(self):
        sim, switch, (h1, h2), _ = self.build()
        injector = FaultInjector(sim)
        total = injector.storm(
            h1.port0, at_s=0.01, duration_s=0.02, rate_fps=2000, burst=8
        )
        sim.run(until=0.1)
        assert total == 40
        assert injector.storm_frames_sent == 40
        assert injector.storm_frames_lost == 0
        # Every storm frame flooded: the meltdown the meter prevents.
        assert switch.counters.flooded == 40
        descriptions = [entry[1] for entry in injector.log]
        assert descriptions[0].startswith("storm start: h1:0")
        assert descriptions[-1] == "storm end: h1:0 (40 frames)"

    def test_storm_contained_by_armed_meter(self):
        sim, switch, (h1, h2), _ = self.build()
        switch.storm_control = StormControl(
            rate_fps=100, burst=4, recovery_s=0.05
        )
        injector = FaultInjector(sim)
        total = injector.storm(
            h1.port0, at_s=0.01, duration_s=0.02, rate_fps=2000, burst=8
        )
        sim.run(until=0.1)
        assert injector.storm_frames_sent == total  # source never blocked
        assert switch.counters.storm_suppressed > 0
        assert switch.counters.flooded < total
        assert (
            switch.counters.flooded + switch.counters.storm_suppressed == total
        )

    def test_down_port_counts_losses_at_the_source(self):
        sim, switch, (h1, h2), (l1, _) = self.build()
        l1.set_down()
        injector = FaultInjector(sim)
        total = injector.storm(
            h1.port0, at_s=0.01, duration_s=0.02, rate_fps=2000, burst=8
        )
        sim.run(until=0.1)
        assert injector.storm_frames_sent == 0
        assert injector.storm_frames_lost == total
        assert switch.counters.flooded == 0

    def test_storm_requires_positive_duration(self):
        sim = Simulator()
        injector = FaultInjector(sim)
        with pytest.raises(ValueError):
            injector.storm(object(), at_s=0.0, duration_s=0.0, rate_fps=100)


class TestInjectorLinkFaults:
    def build_two_switches(self):
        sim = Simulator()
        left = LegacySwitch(sim, "left", num_ports=4, processing_delay_s=0.0)
        right = LegacySwitch(sim, "right", num_ports=4, processing_delay_s=0.0)
        trunk = Link(left.port(3), right.port(3), name="trunk")
        h1 = Host(sim, "h1", MACAddress(0x41), IPv4Address("10.7.0.1"))
        h2 = Host(sim, "h2", MACAddress(0x42), IPv4Address("10.7.0.2"))
        Link(h1.port0, left.port(1))
        Link(h2.port0, right.port(1))
        return sim, left, right, trunk, h1, h2

    def test_flap_notifies_switches_and_flushes_fdb(self):
        sim, left, right, trunk, h1, h2 = self.build_two_switches()
        h1.ping(h2.ip)
        sim.run(until=0.5)
        assert left.fdb.lookup(1, h2.mac, sim.now) == 3
        injector = FaultInjector(sim)
        injector.link_flap(trunk, at_s=0.6, hold_s=0.1)
        sim.run(until=0.65)
        assert not left.port(3).up and not right.port(3).up
        assert left.fdb.lookup(1, h2.mac, sim.now) is None
        sim.run(until=0.8)
        assert left.port(3).up and right.port(3).up
        h1.ping(h2.ip)
        sim.run(until=4.0)
        assert len(h1.rtts()) >= 2

    def test_admin_blocked_port_not_resurrected_by_restore(self):
        sim, left, right, trunk, h1, h2 = self.build_two_switches()
        left.link_down(3)  # administratively blocked before the fault
        injector = FaultInjector(sim)
        injector.link_flap(trunk, at_s=0.01, hold_s=0.1)
        sim.run(until=0.5)
        assert not left.port(3).up  # admin block survives the restore
        assert right.port(3).up

    def test_flap_requires_positive_hold(self):
        sim = Simulator()
        injector = FaultInjector(sim)
        with pytest.raises(ValueError):
            injector.link_flap(object(), at_s=0.0, hold_s=0.0)
