"""Tests for OIDs, the MIB tree and agent/client semantics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.snmp import (
    MibTree,
    OID,
    PduType,
    SnmpAgent,
    SnmpClient,
    SnmpError,
    SnmpErrorStatus,
    SnmpPdu,
)
from repro.snmp.client import SnmpTimeout


class TestOID:
    def test_parse_dotted(self):
        assert OID("1.3.6.1").parts == (1, 3, 6, 1)

    def test_leading_dot_ok(self):
        assert OID(".1.3.6") == OID("1.3.6")

    def test_from_tuple(self):
        assert OID((1, 3, 6)) == OID("1.3.6")

    def test_str_round_trip(self):
        assert str(OID("1.3.6.1.2.1")) == "1.3.6.1.2.1"

    def test_child(self):
        assert OID("1.3").child(6, 1) == OID("1.3.6.1")

    def test_prefix(self):
        assert OID("1.3.6").is_prefix_of(OID("1.3.6.1.2"))
        assert OID("1.3.6").is_prefix_of(OID("1.3.6"))
        assert not OID("1.3.6").is_prefix_of(OID("1.3.7"))
        assert not OID("1.3.6").is_prefix_of(OID("1.3"))

    def test_strip_prefix(self):
        assert OID("1.3.6.1.5").strip_prefix(OID("1.3.6")) == (1, 5)
        with pytest.raises(ValueError):
            OID("1.3.6").strip_prefix(OID("2"))

    def test_lexicographic_order(self):
        assert OID("1.3.6") < OID("1.3.6.0")
        assert OID("1.3.6.2") < OID("1.3.10")
        assert OID("1.3") < OID("2")

    def test_malformed_rejected(self):
        for bad in ("", "1..3", "1.a.3"):
            with pytest.raises(ValueError):
                OID(bad)

    def test_hashable(self):
        assert len({OID("1.2"), OID("1.2"), OID("1.3")}) == 2

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=8))
    def test_round_trip_property(self, parts):
        oid = OID(tuple(parts))
        assert OID(str(oid)) == oid


def build_tree():
    tree = MibTree()
    state = {"name": "sw1", "rw": 0}
    tree.scalar(OID("1.3.6.1.2.1.1.1"), read=lambda: "a test device")
    tree.scalar(
        OID("1.3.6.1.2.1.1.5"),
        read=lambda: state["name"],
        write=lambda v: state.__setitem__("name", v),
    )
    rows_data = {(1, 1): "row-a", (1, 2): "row-b", (2, 1): 10, (2, 2): 20}
    tree.table(
        OID("1.3.6.1.2.1.2.2.1"),
        rows=lambda: sorted(rows_data.items()),
        write=lambda suffix, value: rows_data.__setitem__(suffix, value),
    )
    return tree, state, rows_data


class TestMibTree:
    def test_scalar_get_at_instance(self):
        tree, _, _ = build_tree()
        found, value = tree.get(OID("1.3.6.1.2.1.1.1.0"))
        assert found and value == "a test device"

    def test_scalar_get_without_instance_fails(self):
        tree, _, _ = build_tree()
        found, _ = tree.get(OID("1.3.6.1.2.1.1.1"))
        assert not found

    def test_table_get(self):
        tree, _, _ = build_tree()
        found, value = tree.get(OID("1.3.6.1.2.1.2.2.1.1.2"))
        assert found and value == "row-b"

    def test_set_scalar(self):
        tree, state, _ = build_tree()
        exists, written = tree.set(OID("1.3.6.1.2.1.1.5.0"), "renamed")
        assert exists and written
        assert state["name"] == "renamed"

    def test_set_readonly_scalar(self):
        tree, _, _ = build_tree()
        exists, written = tree.set(OID("1.3.6.1.2.1.1.1.0"), "nope")
        assert exists and not written

    def test_successor_chain_is_sorted_walk(self):
        tree, _, _ = build_tree()
        cursor = OID("1.3.6.1.2.1.2.2.1")
        seen = []
        while True:
            successor = tree.successor(cursor)
            if successor is None or not OID("1.3.6.1.2.1.2.2.1").is_prefix_of(
                successor[0]
            ):
                break
            seen.append(successor[0])
            cursor = successor[0]
        assert seen == sorted(seen)
        assert len(seen) == 4

    def test_region_conflict_rejected(self):
        tree, _, _ = build_tree()
        with pytest.raises(ValueError):
            tree.scalar(OID("1.3.6.1.2.1.1.1.0"), read=lambda: 1)
        with pytest.raises(ValueError):
            tree.scalar(OID("1.3.6.1.2.1"), read=lambda: 1)


class TestAgentClient:
    def make(self):
        tree, state, rows = build_tree()
        agent = SnmpAgent(tree, read_community="public", write_community="secret")
        return agent, state, rows

    def test_get(self):
        agent, _, _ = self.make()
        client = SnmpClient(agent, community="public")
        assert client.get("1.3.6.1.2.1.1.5.0") == "sw1"

    def test_get_many(self):
        agent, _, _ = self.make()
        client = SnmpClient(agent, community="public")
        values = client.get_many(["1.3.6.1.2.1.1.1.0", "1.3.6.1.2.1.1.5.0"])
        assert values == ["a test device", "sw1"]

    def test_get_missing_raises_no_such_name(self):
        agent, _, _ = self.make()
        client = SnmpClient(agent)
        with pytest.raises(SnmpError) as excinfo:
            client.get("1.3.6.9.9.9.0")
        assert excinfo.value.status is SnmpErrorStatus.NO_SUCH_NAME

    def test_wrong_community_times_out(self):
        agent, _, _ = self.make()
        client = SnmpClient(agent, community="wrong")
        with pytest.raises(SnmpTimeout):
            client.get("1.3.6.1.2.1.1.5.0")
        assert agent.auth_failures == 1

    def test_set_needs_write_community(self):
        agent, state, _ = self.make()
        reader = SnmpClient(agent, community="public")
        with pytest.raises(SnmpTimeout):
            reader.set("1.3.6.1.2.1.1.5.0", "x")
        writer = SnmpClient(agent, community="secret")
        writer.set("1.3.6.1.2.1.1.5.0", "x")
        assert state["name"] == "x"

    def test_set_readonly_raises(self):
        agent, _, _ = self.make()
        writer = SnmpClient(agent, community="secret")
        with pytest.raises(SnmpError) as excinfo:
            writer.set("1.3.6.1.2.1.1.1.0", "derp")
        assert excinfo.value.status is SnmpErrorStatus.READ_ONLY

    def test_set_atomicity_on_missing_oid(self):
        agent, state, _ = self.make()
        writer = SnmpClient(agent, community="secret")
        with pytest.raises(SnmpError):
            writer.set_many(
                [("1.3.6.1.2.1.1.5.0", "changed"), ("1.3.6.9.9.9.0", "missing")]
            )
        assert state["name"] == "sw1"  # first write did not happen

    def test_walk_table(self):
        agent, _, _ = self.make()
        client = SnmpClient(agent)
        results = client.walk("1.3.6.1.2.1.2.2.1")
        assert [str(oid) for oid, _ in results] == [
            "1.3.6.1.2.1.2.2.1.1.1",
            "1.3.6.1.2.1.2.2.1.1.2",
            "1.3.6.1.2.1.2.2.1.2.1",
            "1.3.6.1.2.1.2.2.1.2.2",
        ]

    def test_walk_whole_mib(self):
        agent, _, _ = self.make()
        client = SnmpClient(agent)
        results = client.walk("1")
        oids = [oid for oid, _ in results]
        assert oids == sorted(oids)
        assert len(results) == 2 + 4  # two scalars + four table cells

    def test_table_rows_keyed_by_suffix(self):
        agent, _, _ = self.make()
        client = SnmpClient(agent)
        rows = client.table_rows("1.3.6.1.2.1.2.2.1")
        assert rows[(1, 1)] == "row-a"
        assert rows[(2, 2)] == 20

    def test_getnext_past_end(self):
        agent, _, _ = self.make()
        client = SnmpClient(agent)
        with pytest.raises(SnmpError):
            client.get_next("9.9.9")

    def test_response_echoes_request_id(self):
        agent, _, _ = self.make()
        request = SnmpPdu(pdu_type=PduType.GET, request_id=77, community="public")
        request.bind("1.3.6.1.2.1.1.5.0")
        response = agent.handle(request)
        assert response is not None
        assert response.request_id == 77
