"""Tests for the port<->VLAN bijection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import PortVlanMap


class TestAssignment:
    def test_basic_bijection(self):
        pmap = PortVlanMap({1: 101, 2: 102})
        assert pmap.vlan_of(1) == 101
        assert pmap.port_of(102) == 2
        assert len(pmap) == 2

    def test_duplicate_port_rejected(self):
        pmap = PortVlanMap({1: 101})
        with pytest.raises(ValueError):
            pmap.assign(1, 200)

    def test_duplicate_vlan_rejected(self):
        pmap = PortVlanMap({1: 101})
        with pytest.raises(ValueError):
            pmap.assign(2, 101)

    def test_vlan_range_enforced(self):
        with pytest.raises(ValueError):
            PortVlanMap({1: 1})  # default VLAN not usable
        with pytest.raises(ValueError):
            PortVlanMap({1: 4095})

    def test_port_range_enforced(self):
        with pytest.raises(ValueError):
            PortVlanMap({0: 101})

    def test_unknown_lookups_raise(self):
        pmap = PortVlanMap({1: 101})
        with pytest.raises(KeyError, match="port 9"):
            pmap.vlan_of(9)
        with pytest.raises(KeyError, match="VLAN 999"):
            pmap.port_of(999)
        assert pmap.get_vlan(9) is None
        assert pmap.get_port(999) is None


class TestAllocation:
    def test_dense_allocation_from_base(self):
        pmap = PortVlanMap.allocate([3, 1, 2], base=101)
        assert pmap.vlan_of(1) == 101
        assert pmap.vlan_of(2) == 102
        assert pmap.vlan_of(3) == 103

    def test_reserved_vlans_skipped(self):
        pmap = PortVlanMap.allocate([1, 2], base=101, reserved={101, 103})
        assert pmap.vlan_of(1) == 102
        assert pmap.vlan_of(2) == 104

    def test_exhaustion_raises(self):
        with pytest.raises(ValueError):
            PortVlanMap.allocate([1, 2], base=4094)

    def test_duplicate_ports_deduped(self):
        pmap = PortVlanMap.allocate([1, 1, 2])
        assert len(pmap) == 2

    @given(
        st.lists(
            st.integers(min_value=1, max_value=500), min_size=1, max_size=64, unique=True
        ),
        st.integers(min_value=2, max_value=3000),
    )
    def test_allocation_is_always_bijective(self, ports, base):
        pmap = PortVlanMap.allocate(ports, base=base)
        pmap.validate()
        assert sorted(pmap.ports) == sorted(ports)
        for port in ports:
            assert pmap.port_of(pmap.vlan_of(port)) == port


class TestPersistence:
    def test_json_round_trip(self):
        pmap = PortVlanMap({1: 101, 24: 199})
        assert PortVlanMap.from_json(pmap.to_json()) == pmap

    def test_iteration_order(self):
        pmap = PortVlanMap({5: 105, 1: 101, 3: 103})
        assert list(pmap) == [(1, 101), (3, 103), (5, 105)]

    def test_describe(self):
        assert "1->101" in PortVlanMap({1: 101}).describe()
