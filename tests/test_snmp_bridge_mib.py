"""Tests for the BRIDGE/Q-BRIDGE MIB adapter over the legacy switch."""

import pytest

from repro.legacy import LegacySwitch, PortMode
from repro.net import IPv4Address, MACAddress
from repro.netsim import Host, Link, Simulator
from repro.snmp import SnmpAgent, SnmpClient, attach_bridge_mib
from repro.snmp.bridge_mib import (
    DOT1Q_PORT_VLAN_ENTRY,
    DOT1Q_VLAN_STATIC_ENTRY,
    IF_TABLE_ENTRY,
    ROW_CREATE_AND_GO,
    ROW_DESTROY,
    VLAN_EGRESS,
    VLAN_ROW_STATUS,
    VLAN_UNTAGGED,
    portlist_from_bytes,
    portlist_to_bytes,
)


def build(num_ports=8):
    sim = Simulator()
    switch = LegacySwitch(sim, "sw1", num_ports=num_ports, processing_delay_s=0.0)
    mib, adapter = attach_bridge_mib(switch)
    agent = SnmpAgent(mib, read_community="public", write_community="private")
    client = SnmpClient(agent, community="private")
    return sim, switch, client


class TestPortList:
    def test_port1_is_high_bit(self):
        assert portlist_to_bytes({1}, 8) == b"\x80"

    def test_port8_is_low_bit(self):
        assert portlist_to_bytes({8}, 8) == b"\x01"

    def test_port9_starts_second_octet(self):
        assert portlist_to_bytes({9}, 16) == b"\x00\x80"

    def test_round_trip(self):
        ports = {1, 3, 8, 9, 24}
        assert portlist_from_bytes(portlist_to_bytes(ports, 24)) == ports

    def test_out_of_width_rejected(self):
        with pytest.raises(ValueError):
            portlist_to_bytes({9}, 8)

    def test_empty(self):
        assert portlist_from_bytes(portlist_to_bytes(set(), 8)) == set()


class TestSystemGroup:
    def test_sysname_read_write(self):
        _, switch, client = build()
        assert client.get("1.3.6.1.2.1.1.5.0") == "sw1"
        client.set("1.3.6.1.2.1.1.5.0", "renamed")
        assert switch.config.hostname == "renamed"

    def test_sysdescr_mentions_ports(self):
        _, _, client = build(num_ports=12)
        assert "12 ports" in client.get("1.3.6.1.2.1.1.1.0")


class TestIfTable:
    def test_walk_lists_every_port(self):
        _, _, client = build(num_ports=4)
        rows = client.table_rows(IF_TABLE_ENTRY)
        if_indices = [suffix[1] for suffix in rows if suffix[0] == 1]
        assert if_indices == [1, 2, 3, 4]

    def test_oper_status_reflects_wiring(self):
        sim, switch, client = build(num_ports=2)
        host = Host(sim, "h", MACAddress(0x02AA), IPv4Address("10.0.0.1"))
        Link(host.port0, switch.port(1))
        rows = client.table_rows(IF_TABLE_ENTRY)
        assert rows[(8, 1)] == 1  # wired -> up
        assert rows[(8, 2)] == 2  # dangling -> down

    def test_admin_down_via_set(self):
        _, switch, client = build()
        client.set(IF_TABLE_ENTRY.child(7, 3), 2)
        assert not switch.config.port(3).enabled
        client.set(IF_TABLE_ENTRY.child(7, 3), 1)
        assert switch.config.port(3).enabled

    def test_octet_counters_grow(self):
        sim, switch, client = build(num_ports=2)
        h1 = Host(sim, "h1", MACAddress(0x02AA), IPv4Address("10.0.0.1"))
        h2 = Host(sim, "h2", MACAddress(0x02BB), IPv4Address("10.0.0.2"))
        Link(h1.port0, switch.port(1))
        Link(h2.port0, switch.port(2))
        h1.ping(h2.ip)
        sim.run(until=0.5)
        rows = client.table_rows(IF_TABLE_ENTRY)
        assert rows[(10, 1)] > 0  # ifInOctets port 1
        assert rows[(16, 2)] > 0  # ifOutOctets port 2


class TestFdbTable:
    def test_learned_entries_visible(self):
        sim, switch, client = build(num_ports=2)
        h1 = Host(sim, "h1", MACAddress(0x02AA), IPv4Address("10.0.0.1"))
        h2 = Host(sim, "h2", MACAddress(0x02BB), IPv4Address("10.0.0.2"))
        Link(h1.port0, switch.port(1))
        Link(h2.port0, switch.port(2))
        h1.ping(h2.ip)
        sim.run(until=0.5)
        rows = client.table_rows("1.3.6.1.2.1.17.7.1.2.2.1")
        port_rows = {
            suffix: value for suffix, value in rows.items() if suffix[0] == 2
        }
        learned_macs = {bytes(suffix[2:8]) for suffix in port_rows}
        assert h1.mac.packed in learned_macs
        assert h2.mac.packed in learned_macs


class TestVlanConfigViaSnmp:
    def test_create_vlan(self):
        _, switch, client = build()
        client.set(DOT1Q_VLAN_STATIC_ENTRY.child(VLAN_ROW_STATUS, 101), ROW_CREATE_AND_GO)
        assert 101 in switch.config.vlans

    def test_destroy_vlan(self):
        _, switch, client = build()
        client.set(DOT1Q_VLAN_STATIC_ENTRY.child(VLAN_ROW_STATUS, 101), ROW_CREATE_AND_GO)
        client.set(DOT1Q_VLAN_STATIC_ENTRY.child(VLAN_ROW_STATUS, 101), ROW_DESTROY)
        assert 101 not in switch.config.vlans

    def test_make_access_port_via_membership(self):
        """Setting egress+untagged for a port makes it an access port."""
        _, switch, client = build(num_ports=8)
        client.set(DOT1Q_VLAN_STATIC_ENTRY.child(VLAN_ROW_STATUS, 101), ROW_CREATE_AND_GO)
        client.set(
            DOT1Q_VLAN_STATIC_ENTRY.child(VLAN_UNTAGGED, 101),
            portlist_to_bytes({3}, 8),
        )
        port = switch.config.port(3)
        assert port.mode is PortMode.ACCESS
        assert port.pvid == 101

    def test_make_trunk_port_via_membership(self):
        """Tagged (egress-not-untagged) membership makes a trunk."""
        _, switch, client = build(num_ports=8)
        for vlan in (101, 102):
            client.set(
                DOT1Q_VLAN_STATIC_ENTRY.child(VLAN_ROW_STATUS, vlan), ROW_CREATE_AND_GO
            )
            client.set(
                DOT1Q_VLAN_STATIC_ENTRY.child(VLAN_EGRESS, vlan),
                portlist_to_bytes({8}, 8),
            )
        port = switch.config.port(8)
        assert port.mode is PortMode.TRUNK
        assert port.allowed_vlans == {101, 102}

    def test_pvid_read(self):
        _, switch, client = build()
        config = switch.config.copy()
        config.set_access(2, 77)
        switch.apply_config(config)
        rows = client.table_rows(DOT1Q_PORT_VLAN_ENTRY)
        assert rows[(1, 2)] == 77

    def test_pvid_write(self):
        _, switch, client = build()
        client.set(DOT1Q_PORT_VLAN_ENTRY.child(1, 4), 55)
        assert switch.config.port(4).pvid == 55
        assert 55 in switch.config.vlans

    def test_untagged_membership_moves_port(self):
        """Untagged membership in a new VLAN moves the port (access semantics)."""
        _, switch, client = build(num_ports=8)
        client.set(DOT1Q_VLAN_STATIC_ENTRY.child(VLAN_ROW_STATUS, 101), ROW_CREATE_AND_GO)
        client.set(
            DOT1Q_VLAN_STATIC_ENTRY.child(VLAN_UNTAGGED, 101),
            portlist_to_bytes({3}, 8),
        )
        client.set(DOT1Q_VLAN_STATIC_ENTRY.child(VLAN_ROW_STATUS, 102), ROW_CREATE_AND_GO)
        client.set(
            DOT1Q_VLAN_STATIC_ENTRY.child(VLAN_UNTAGGED, 102),
            portlist_to_bytes({3}, 8),
        )
        port = switch.config.port(3)
        assert port.mode is PortMode.ACCESS
        assert port.pvid == 102
        assert 3 not in switch.config.ports_in_vlan(101)

    def test_traffic_respects_snmp_pushed_vlans(self):
        """End to end: configure isolation via SNMP, verify in data plane."""
        sim, switch, client = build(num_ports=8)
        h1 = Host(sim, "h1", MACAddress(0x02AA), IPv4Address("10.0.0.1"))
        h2 = Host(sim, "h2", MACAddress(0x02BB), IPv4Address("10.0.0.2"))
        Link(h1.port0, switch.port(1))
        Link(h2.port0, switch.port(2))
        client.set(DOT1Q_VLAN_STATIC_ENTRY.child(VLAN_ROW_STATUS, 101), ROW_CREATE_AND_GO)
        client.set(DOT1Q_VLAN_STATIC_ENTRY.child(VLAN_ROW_STATUS, 102), ROW_CREATE_AND_GO)
        client.set(
            DOT1Q_VLAN_STATIC_ENTRY.child(VLAN_UNTAGGED, 101),
            portlist_to_bytes({1}, 8),
        )
        client.set(
            DOT1Q_VLAN_STATIC_ENTRY.child(VLAN_UNTAGGED, 102),
            portlist_to_bytes({2}, 8),
        )
        h1.ping(h2.ip)
        sim.run(until=2.0)
        assert h1.ping_loss_rate == 1.0  # isolated by SNMP-pushed VLANs
