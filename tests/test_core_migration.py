"""Tests for the incremental migration planner."""

import pytest

from repro.core import MigrationPlanner, MigrationStrategy, SwitchSite


def sites(n=6):
    return [
        SwitchSite(name=f"edge{i}", ports=24, ports_in_use=20) for i in range(n)
    ]


class TestPlanShapes:
    def test_flag_day_is_one_wave(self):
        plan = MigrationPlanner(sites()).plan(MigrationStrategy.FLAG_DAY)
        assert plan.num_waves == 1
        assert len(plan.waves[0].sites) == 6

    def test_incremental_waves_respect_size(self):
        plan = MigrationPlanner(sites(7)).plan(
            MigrationStrategy.HARMLESS_WAVES, wave_size=2
        )
        assert plan.num_waves == 4
        assert [len(w.sites) for w in plan.waves] == [2, 2, 2, 1]

    def test_coverage_monotone(self):
        plan = MigrationPlanner(sites()).plan(
            MigrationStrategy.INCREMENTAL_COTS, wave_size=2
        )
        curve = plan.coverage_curve()
        values = [ports for _, ports in curve]
        assert values == sorted(values)
        assert values[-1] == 6 * 20

    def test_empty_sites_rejected(self):
        with pytest.raises(ValueError):
            MigrationPlanner([])

    def test_bad_wave_size_rejected(self):
        with pytest.raises(ValueError):
            MigrationPlanner(sites()).plan(
                MigrationStrategy.HARMLESS_WAVES, wave_size=0
            )


class TestEconomics:
    def test_harmless_cheapest(self):
        plans = MigrationPlanner(sites()).compare_all(wave_size=2)
        assert (
            plans["harmless-waves"].total_capex
            < plans["incremental-cots"].total_capex
        )
        assert (
            plans["harmless-waves"].total_capex <= plans["flag-day"].total_capex
        )

    def test_harmless_least_downtime(self):
        plans = MigrationPlanner(sites()).compare_all(wave_size=2)
        assert (
            plans["harmless-waves"].total_downtime_s
            < plans["flag-day"].total_downtime_s
        )

    def test_flag_day_worst_single_event(self):
        plans = MigrationPlanner(sites()).compare_all(wave_size=2)
        assert (
            plans["flag-day"].max_single_downtime_s
            >= plans["incremental-cots"].max_single_downtime_s
        )

    def test_describe(self):
        plan = MigrationPlanner(sites(2)).plan(MigrationStrategy.HARMLESS_WAVES)
        text = plan.describe()
        assert "wave 1" in text
        assert "harmless-waves" in text
