"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout  # every example narrates what it does


def test_example_inventory():
    names = {path.stem for path in EXAMPLES}
    # The deliverable: a quickstart plus the paper's three use cases.
    assert {
        "quickstart",
        "load_balancer",
        "dmz_policy",
        "parental_control",
    } <= names
    assert len(EXAMPLES) >= 4
