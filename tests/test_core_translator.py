"""Tests for SS_1 rule generation and verification."""

import pytest

from repro.core import PortVlanMap, verify_translator_rules
from repro.core.translator import generate_translator_rules
from repro.openflow import FlowMod, Match
from repro.openflow.actions import OutputAction, PopVlanAction
from repro.openflow.instructions import ApplyActions
from repro.openflow.consts import OFPVID_PRESENT


def make_rules(ports=(1, 2, 3), trunk=1000):
    pmap = PortVlanMap.allocate(list(ports))
    patch = {port: port for port in ports}
    return generate_translator_rules(pmap, trunk_port=trunk, patch_port_of=patch)


class TestGeneration:
    def test_two_rules_per_port(self):
        rules = make_rules(ports=(1, 2, 3, 4))
        assert len(rules.flow_mods) == 8

    def test_trunk_rule_shape(self):
        rules = make_rules(ports=(1,))
        trunk_rules = [
            fm
            for fm in rules.flow_mods
            if fm.match.get("in_port").value == 1000
        ]
        assert len(trunk_rules) == 1
        fm = trunk_rules[0]
        assert fm.match.get("vlan_vid").value == OFPVID_PRESENT | 101
        actions = fm.instructions[0].actions
        assert isinstance(actions[0], PopVlanAction)
        assert actions[1] == OutputAction(port=1)

    def test_patch_rule_shape(self):
        rules = make_rules(ports=(1,))
        patch_rules = [
            fm for fm in rules.flow_mods if fm.match.get("in_port").value == 1
        ]
        assert len(patch_rules) == 1
        actions = patch_rules[0].instructions[0].actions
        from repro.openflow.actions import PushVlanAction, SetFieldAction

        assert isinstance(actions[0], PushVlanAction)
        assert isinstance(actions[1], SetFieldAction)
        assert actions[1].value & 0xFFF == 101
        assert actions[2] == OutputAction(port=1000)

    def test_missing_patch_port_rejected(self):
        pmap = PortVlanMap.allocate([1, 2])
        with pytest.raises(ValueError, match="no patch port"):
            generate_translator_rules(pmap, trunk_port=1000, patch_port_of={1: 1})

    def test_duplicate_patch_ports_rejected(self):
        pmap = PortVlanMap.allocate([1, 2])
        with pytest.raises(ValueError, match="distinct"):
            generate_translator_rules(
                pmap, trunk_port=1000, patch_port_of={1: 5, 2: 5}
            )

    def test_trunk_collision_rejected(self):
        pmap = PortVlanMap.allocate([1])
        with pytest.raises(ValueError, match="collides"):
            generate_translator_rules(pmap, trunk_port=1, patch_port_of={1: 1})

    def test_describe_mentions_all_ports(self):
        rules = make_rules(ports=(1, 2))
        text = rules.describe()
        assert "vlan=101" in text
        assert "vlan=102" in text
        assert "push_vlan 101" in text


class TestVerification:
    def test_generated_rules_verify(self):
        check = verify_translator_rules(make_rules(ports=(1, 2, 3, 4, 5)))
        assert check.ok, check.problems

    def test_missing_rule_detected(self):
        rules = make_rules(ports=(1, 2))
        rules.flow_mods = rules.flow_mods[:-1]  # drop one patch rule
        check = verify_translator_rules(rules)
        assert not check.ok
        assert any("does not tag" in p for p in check.problems)

    def test_wrong_vlan_detected(self):
        rules = make_rules(ports=(1, 2))
        # Corrupt a trunk rule's dispatch target.
        for fm in rules.flow_mods:
            constraint = fm.match.get("in_port")
            if constraint.value == 1000:
                fm.instructions = [
                    ApplyActions(
                        actions=(PopVlanAction(), OutputAction(port=99))
                    )
                ]
                break
        check = verify_translator_rules(rules)
        assert not check.ok

    def test_stray_rule_detected(self):
        rules = make_rules(ports=(1,))
        rules.flow_mods.append(
            FlowMod(
                match=Match(in_port=1000, vlan_vid=OFPVID_PRESENT | 999),
                instructions=[
                    ApplyActions(actions=(PopVlanAction(), OutputAction(port=7)))
                ],
            )
        )
        check = verify_translator_rules(rules)
        assert not check.ok
        assert any("stray" in p for p in check.problems)

    def test_swapped_dispatch_detected(self):
        """Swapping two ports' patch outputs breaks the bijection."""
        rules = make_rules(ports=(1, 2))
        trunk_rules = [
            fm for fm in rules.flow_mods if fm.match.get("in_port").value == 1000
        ]
        a, b = trunk_rules
        a_out = a.instructions[0].actions[1]
        b_out = b.instructions[0].actions[1]
        a.instructions = [ApplyActions(actions=(PopVlanAction(), b_out))]
        b.instructions = [ApplyActions(actions=(PopVlanAction(), a_out))]
        check = verify_translator_rules(rules)
        assert not check.ok
