"""Tests for the forwarding database."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.legacy import ForwardingDatabase
from repro.net import MACAddress

MAC1 = MACAddress(0x020000000001)
MAC2 = MACAddress(0x020000000002)


class TestLearning:
    def test_learn_and_lookup(self):
        fdb = ForwardingDatabase()
        fdb.learn(10, MAC1, 3, now=0.0)
        assert fdb.lookup(10, MAC1, now=1.0) == 3

    def test_lookup_is_per_vlan(self):
        fdb = ForwardingDatabase()
        fdb.learn(10, MAC1, 3, now=0.0)
        assert fdb.lookup(20, MAC1, now=0.0) is None

    def test_station_move_updates_port(self):
        fdb = ForwardingDatabase()
        fdb.learn(10, MAC1, 3, now=0.0)
        fdb.learn(10, MAC1, 7, now=1.0)
        assert fdb.lookup(10, MAC1, now=1.0) == 7
        assert fdb.move_events == 1

    def test_multicast_never_learned(self):
        fdb = ForwardingDatabase()
        fdb.learn(10, MACAddress("01:00:5e:00:00:01"), 3, now=0.0)
        assert len(fdb) == 0

    def test_refresh_resets_age(self):
        fdb = ForwardingDatabase(aging_s=10.0)
        fdb.learn(10, MAC1, 3, now=0.0)
        fdb.learn(10, MAC1, 3, now=8.0)
        assert fdb.lookup(10, MAC1, now=15.0) == 3


class TestAging:
    def test_expired_entry_gone(self):
        fdb = ForwardingDatabase(aging_s=10.0)
        fdb.learn(10, MAC1, 3, now=0.0)
        assert fdb.lookup(10, MAC1, now=11.0) is None

    def test_expire_sweep(self):
        fdb = ForwardingDatabase(aging_s=10.0)
        fdb.learn(10, MAC1, 3, now=0.0)
        fdb.learn(10, MAC2, 4, now=5.0)
        assert fdb.expire(now=12.0) == 1
        assert len(fdb) == 1

    def test_static_never_ages(self):
        fdb = ForwardingDatabase(aging_s=10.0)
        fdb.add_static(10, MAC1, 3)
        assert fdb.lookup(10, MAC1, now=1e9) == 3


class TestCapacity:
    def test_eviction_at_capacity(self):
        fdb = ForwardingDatabase(capacity=2)
        fdb.learn(1, MACAddress(0x02_00_00_00_00_01), 1, now=0.0)
        fdb.learn(1, MACAddress(0x02_00_00_00_00_02), 2, now=1.0)
        fdb.learn(1, MACAddress(0x02_00_00_00_00_03), 3, now=2.0)
        assert len(fdb) == 2
        assert fdb.evictions == 1
        # Oldest entry was the victim.
        assert fdb.lookup(1, MACAddress(0x02_00_00_00_00_01), now=2.0) is None
        assert fdb.lookup(1, MACAddress(0x02_00_00_00_00_03), now=2.0) == 3

    def test_full_of_statics_raises(self):
        fdb = ForwardingDatabase(capacity=1)
        fdb.add_static(1, MAC1, 1)
        with pytest.raises(RuntimeError):
            fdb.learn(1, MAC2, 2, now=0.0)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ForwardingDatabase(capacity=0)


class TestStats:
    def test_stats_pins_the_policy_counters(self):
        fdb = ForwardingDatabase(capacity=2)
        fdb.learn(1, MACAddress(0x02_00_00_00_00_01), 1, now=0.0)
        fdb.learn(1, MACAddress(0x02_00_00_00_00_02), 2, now=1.0)
        fdb.learn(1, MACAddress(0x02_00_00_00_00_03), 3, now=2.0)  # evicts
        fdb.learn(1, MACAddress(0x02_00_00_00_00_02), 4, now=3.0)  # moves
        assert fdb.stats() == {
            "size": 2,
            "capacity": 2,
            "inserts": 3,
            "moves": 1,
            "evictions": 1,
            "flood_fallbacks": 0,
        }

    def test_churn_stays_bounded_and_degrades_to_flooding(self):
        """MAC churn far beyond capacity: memory bounded, never refuses
        to learn, and the evicted MACs resolve to None — the dataplane
        floods (counting ``flood_fallbacks``) instead of crashing."""
        fdb = ForwardingDatabase(capacity=64, aging_s=1e9)
        for index in range(4096):
            fdb.learn(
                1,
                MACAddress(0x02_00_00_10_00_00 + index),
                1 + index % 8,
                now=float(index),
            )
        stats = fdb.stats()
        assert len(fdb) == 64
        assert stats["size"] == 64 <= stats["capacity"]
        assert stats["inserts"] == 4096
        assert stats["evictions"] == 4096 - 64
        assert fdb.lookup(1, MACAddress(0x02_00_00_10_00_00), now=4096.0) is None
        assert (
            fdb.lookup(1, MACAddress(0x02_00_00_10_00_00 + 4095), now=4096.0)
            == 4095 % 8 + 1
        )


class TestFlush:
    def test_flush_port(self):
        fdb = ForwardingDatabase()
        fdb.learn(1, MAC1, 3, now=0.0)
        fdb.learn(1, MAC2, 4, now=0.0)
        assert fdb.flush_port(3) == 1
        assert fdb.lookup(1, MAC1, now=0.0) is None
        assert fdb.lookup(1, MAC2, now=0.0) == 4

    def test_flush_vlan(self):
        fdb = ForwardingDatabase()
        fdb.learn(1, MAC1, 3, now=0.0)
        fdb.learn(2, MAC2, 3, now=0.0)
        assert fdb.flush_vlan(1) == 1
        assert fdb.lookup(2, MAC2, now=0.0) == 3

    def test_flush_spares_static(self):
        fdb = ForwardingDatabase()
        fdb.add_static(1, MAC1, 3)
        assert fdb.flush_port(3) == 0
        assert fdb.lookup(1, MAC1, now=0.0) == 3


class TestIteration:
    def test_entries_sorted_by_vlan_then_mac(self):
        fdb = ForwardingDatabase()
        fdb.learn(2, MAC1, 1, now=0.0)
        fdb.learn(1, MAC2, 2, now=0.0)
        fdb.learn(1, MAC1, 3, now=0.0)
        keys = [(entry.vlan_id, int(entry.mac)) for entry in fdb.entries()]
        assert keys == sorted(keys)

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=5),
                st.integers(min_value=0, max_value=0xFF).map(
                    lambda v: MACAddress(0x020000000000 + v)
                ),
                st.integers(min_value=1, max_value=48),
            ),
            max_size=50,
        )
    )
    def test_lookup_always_returns_last_learned_port(self, events):
        fdb = ForwardingDatabase(capacity=1000, aging_s=1e9)
        expected = {}
        for time, (vlan, mac, port) in enumerate(events):
            fdb.learn(vlan, mac, port, now=float(time))
            expected[(vlan, mac)] = port
        for (vlan, mac), port in expected.items():
            assert fdb.lookup(vlan, mac, now=len(events)) == port
