"""Fabric-scale scenarios: topology builders + fleet-wide rollout.

Covers the three builder families, reachability before/during/after
every migration wave, the legacy-vs-migrated differential (a 2-switch
fabric must deliver bit-identical frames either way), cross-pod burst
traffic across chains of migrated SoftSwitches, and the legacy
switch's burst-path equivalence to sequential receive().
"""

import pytest

from repro.core import HarmlessError, HarmlessFleet
from repro.fabric import campus_fabric, leaf_spine_fabric, ring_fabric
from repro.net.addresses import BROADCAST_MAC, IPv4Address, MACAddress
from repro.net.build import udp_frame
from repro.net.ethernet import ETHERTYPE_IPV4
from repro.netsim import Capture, Simulator
from repro.netsim.node import Node
from repro.softswitch import DatapathCostModel
from repro.traffic import (
    BurstSource,
    announcement_frame,
    burst_schedule,
    cross_pod_flows,
    interleave_bursts,
    station_mac,
    zipf_weights,
)

ZERO = DatapathCostModel.zero()


# ---------------------------------------------------------------- builders


def test_leaf_spine_shape():
    fabric = leaf_spine_fabric(edges=4, spines=1, hosts_per_edge=2)
    assert len(fabric.sites) == 5
    assert len(fabric.hosts) == 8
    assert [site.name for site in fabric.edge_sites()] == [
        "edge1", "edge2", "edge3", "edge4",
    ]
    spine = fabric.site("spine1")
    for name in ("edge1", "edge2", "edge3", "edge4"):
        edge = fabric.site(name)
        # Exactly one uplink, wired to the spine.
        (uplink,) = edge.uplink_ports
        peer = edge.switch.port(uplink).peer
        assert peer is not None and peer.node is spine.switch
        # The HARMLESS trunk port is reserved and unwired.
        assert edge.switch.port(edge.trunk_port).link is None
        assert edge.trunk_port not in edge.access_ports
        # Hosts are wired to their access ports.
        for host, port in zip(edge.hosts, edge.host_ports):
            assert host.port0.peer is edge.switch.port(port)


def test_leaf_spine_multi_spine_is_loop_free():
    fabric = leaf_spine_fabric(edges=4, spines=2, hosts_per_edge=1)
    # A tree over N switches has N-1 links: 4 edge uplinks + 1 chain.
    assert len(fabric.trunk_links) == len(fabric.sites) - 1
    # Broadcast terminates (a loop would run the event cap out).
    fabric.hosts[0].ping(fabric.hosts[3].ip)
    fabric.sim.run_until_idle(max_events=50_000)


def test_ring_closing_link_is_blocked():
    fabric = ring_fabric(switches=4, hosts_per_switch=1)
    assert len(fabric.trunk_links) == 4
    assert len(fabric.blocked_links) == 1
    blocked = fabric.blocked_links[0]
    assert not blocked.port_a.up and not blocked.port_b.up
    # Flooding terminates despite the physical ring.
    fabric.hosts[0].ping(fabric.hosts[2].ip)
    fabric.sim.run_until_idle(max_events=50_000)
    assert fabric.hosts[0].rtts()


def test_campus_tree_shape():
    fabric = campus_fabric(
        distribution=2, access_per_distribution=2, hosts_per_access=2
    )
    assert len(fabric.sites) == 7  # 4 access + 2 distribution + 1 core
    assert len(fabric.trunk_links) == len(fabric.sites) - 1
    roles = [site.role for site in fabric.sites.values()]
    assert roles.count("access") == 4
    assert roles.count("distribution") == 2
    assert roles.count("core") == 1
    # Pod order puts the host-bearing access tier first.
    assert [site.pod for site in fabric.edge_sites()] == [0, 1, 2, 3]


def test_builders_validate_arguments():
    with pytest.raises(ValueError):
        leaf_spine_fabric(edges=0)
    with pytest.raises(ValueError):
        ring_fabric(switches=1)
    with pytest.raises(ValueError):
        campus_fabric(distribution=0)


# ------------------------------------------------- wave-by-wave migration


def test_fleet_reachability_before_during_after_each_wave():
    fabric = leaf_spine_fabric(edges=4, spines=1, hosts_per_edge=1)
    fleet = HarmlessFleet(fabric, wave_size=2)

    # Before: the pure-legacy fabric is fully connected.
    assert fleet.verify_reachability().ok

    # During: after each wave the hybrid fabric still is.
    expected_waves = fleet.plan.num_waves
    assert expected_waves == 3  # edge pairs, then the spine
    seen_sites = []
    while not fleet.complete:
        report = fleet.migrate_next_wave(verify=True)
        assert report.reachability is not None and report.reachability.ok
        seen_sites.extend(report.sites)
        # The not-yet-migrated switches are still plain legacy bridges.
        for name, site in fabric.sites.items():
            if name not in seen_sites:
                assert name not in fleet.deployments
                assert site.switch.port(site.trunk_port).link is None

    # After: every site migrated exactly once, read-back is clean.
    assert sorted(seen_sites) == sorted(fabric.sites)
    assert fleet.verify_reachability().ok
    assert fleet.verify_deployments() == {}
    with pytest.raises(HarmlessError):
        fleet.migrate_next_wave()


def test_fleet_plan_mirrors_fabric():
    fabric = campus_fabric(
        distribution=2, access_per_distribution=1, hosts_per_access=1
    )
    fleet = HarmlessFleet(fabric, wave_size=2)
    planned = [site.name for wave in fleet.plan.waves for site in wave.sites]
    assert planned == list(fabric.sites)
    assert fleet.plan.total_capex > 0
    # Access tier migrates before distribution and core.
    assert planned[:2] == ["acc1-1", "acc2-1"]
    assert planned[-1] == "core"


def test_fleet_failed_wave_rolls_back_and_is_retryable():
    fabric = leaf_spine_fabric(edges=2, spines=1, hosts_per_edge=1)
    fleet = HarmlessFleet(fabric, wave_size=2)
    # Sabotage the second site of wave 1: its config commit fails after
    # the first site has already fully migrated.
    saboteur = fabric.site("edge2").driver
    original_commit = saboteur.commit_config
    saboteur.commit_config = lambda: (_ for _ in ()).throw(RuntimeError("boom"))
    with pytest.raises(HarmlessError, match="rolled back"):
        fleet.migrate_next_wave()
    # The partial progress was unwound: no deployments recorded, the
    # wave is still pending, and edge1's trunk port is free again.
    assert fleet.deployments == {}
    assert fleet.manager.deployments == []
    assert len(fleet.pending_waves) == fleet.plan.num_waves
    edge1 = fabric.site("edge1")
    assert edge1.switch.port(edge1.trunk_port).link is None
    # The legacy config was restored (still connected, pure legacy).
    assert fleet.verify_reachability().ok
    # Fixing the fault lets the same wave run to completion.
    saboteur.commit_config = original_commit
    fleet.migrate_all(verify=True, strict=True)
    assert sorted(fleet.deployments) == sorted(fabric.sites)


def test_fleet_strict_raises_when_fabric_breaks():
    fabric = leaf_spine_fabric(edges=2, spines=1, hosts_per_edge=1)
    fleet = HarmlessFleet(fabric, wave_size=2)
    # Sabotage: cut edge2's uplink after planning, before migrating.
    uplink = fabric.site("edge2").uplink_ports[0]
    fabric.site("edge2").switch.link_down(uplink)
    with pytest.raises(HarmlessError):
        fleet.migrate_all(verify=True, strict=True)


# ---------------------------------------------- legacy/migrated differential


def _run_two_switch_scenario(migrate: bool) -> "list[bytes]":
    """Identical traffic through a 2-switch fabric; returns the exact
    bytes of every IPv4 frame the destination host received."""
    fabric = ring_fabric(switches=2, hosts_per_switch=1, break_loop=True)
    src, dst = fabric.hosts
    if migrate:
        fleet = HarmlessFleet(fabric, wave_size=2, cost_model=ZERO)
        fleet.migrate_all(verify=False)
    capture = Capture(
        "dst-rx",
        filter_fn=lambda frame: frame.ethertype == ETHERTYPE_IPV4
        and frame.dst == dst.mac,
    ).attach(dst.port0)

    sim = fabric.sim
    src.ping(dst.ip)  # resolves ARP, seeds learning everywhere
    sim.run(until=sim.now + 1.0)
    for index in range(5):
        src.send_udp(dst.ip, 4000 + index, bytes([index]) * 16)
    sim.run(until=sim.now + 1.0)
    return [entry.frame.to_bytes() for entry in capture if entry.direction == "rx"]


def test_two_switch_fabric_forwards_bit_identically():
    """Hops legacy or migrated: the delivered frames are byte-equal."""
    legacy_frames = _run_two_switch_scenario(migrate=False)
    migrated_frames = _run_two_switch_scenario(migrate=True)
    assert len(legacy_frames) == 6  # 1 echo request + 5 UDP datagrams
    assert legacy_frames == migrated_frames


# ------------------------------------------- multi-hop burst-mode traffic


def _migrated_burst_fabric(edges: int):
    fabric = leaf_spine_fabric(
        edges=edges, spines=1, hosts_per_edge=1, gen_ports_per_edge=1,
        processing_delay_s=0.0, queue_frames=100_000,
    )
    fleet = HarmlessFleet(
        fabric, wave_size=2, cost_model=ZERO, queue_frames=100_000
    )
    fleet.migrate_all(verify=True, strict=True)
    stations = []
    for index, site in enumerate(fabric.edge_sites()):
        station = BurstSource(fabric.sim, f"gen{index}")
        fabric.attach_station(site.name, station, bandwidth_bps=None)
        stations.append(station)
    return fabric, fleet, stations


def test_cross_pod_bursts_cross_migrated_chains():
    fabric, fleet, stations = _migrated_burst_fabric(edges=2)
    sim = fabric.sim
    flows = cross_pod_flows(pods=2, per_pair=3, seed=7)
    for flow in flows:
        stations[flow.dst_pod].port0.send(announcement_frame(flow.spec))
    sim.run(until=sim.now + 0.5)

    injected = 0
    for pod, station in enumerate(stations):
        specs = [flow.spec for flow in flows if flow.src_pod == pod]
        schedule = burst_schedule(
            rate_pps=1e6, duration_s=0.002, burst_size=32, start_s=sim.now + 1e-3
        )
        bursts = interleave_bursts(
            specs, schedule, seed=pod, weights=zipf_weights(len(specs))
        )
        station.start(bursts)
        injected += sum(len(frames) for _, frames in bursts)
    before = sum(station.rx_count for station in stations)
    sim.run(until=sim.now + 1.0)
    delivered = sum(station.rx_count for station in stations) - before
    assert delivered == injected

    # Every hop's S4 actually ran the fast path: the SS_1 translator is
    # specialization-eligible (compiled tier), SS_2 serves cache hits.
    for deployment in fleet.deployments.values():
        stats = deployment.s4.ss1.stats()
        assert stats["specialization"]["specialized_frames"] > 0
        assert deployment.s4.ss2.stats()["cache"]["hits"] > 0


def test_cross_pod_flow_population():
    flows = cross_pod_flows(pods=3, per_pair=2, seed=0)
    assert len(flows) == 3 * 2 * 2  # ordered pairs x per_pair
    tuples = {
        (f.spec.src_ip, f.spec.dst_ip, f.spec.src_port, f.spec.dst_port)
        for f in flows
    }
    assert len(tuples) == len(flows)  # every 5-tuple distinct
    for flow in flows:
        assert flow.src_pod != flow.dst_pod
        assert flow.spec.src_mac == station_mac(flow.src_pod)
        assert flow.spec.dst_mac == station_mac(flow.dst_pod)
    announcement = announcement_frame(flows[0].spec)
    assert announcement.src == flows[0].spec.dst_mac
    assert announcement.dst == BROADCAST_MAC
    with pytest.raises(ValueError):
        cross_pod_flows(pods=1)


# ------------------------------------------ legacy burst-path equivalence


class _Recorder(Node):
    """Counts and captures whatever its single port receives."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.add_port(1)
        self.frames = []

    def receive(self, port, frame):
        self.frames.append(frame.to_bytes())


def _legacy_dut(burst: bool):
    """One zero-delay legacy switch, 3 recorder peers, a frame mix."""
    from repro.legacy import LegacySwitch
    from repro.netsim import Link

    sim = Simulator()
    switch = LegacySwitch(sim, "sw", num_ports=4, processing_delay_s=0.0)
    peers = []
    for number in range(1, 5):
        peer = _Recorder(sim, f"peer{number}")
        Link(peer.port(1), switch.port(number), queue_frames=10_000)
        peers.append(peer)

    macs = [MACAddress(0x02_00_00_00_10_00 + n) for n in range(4)]
    frames = []
    # Announce MACs 1..3 so some traffic is known-unicast, some flooded.
    for n in (1, 2, 3):
        frames.append(
            udp_frame(macs[n], BROADCAST_MAC, IPv4Address(f"10.9.0.{n}"),
                      IPv4Address("10.9.0.250"), 1000 + n, 53, b"a")
        )
    for n in (1, 2, 3, 1, 2, 999):
        dst = macs[n % 4] if n != 999 else MACAddress(0x02_00_00_00_99_99)
        frames.append(
            udp_frame(macs[0], dst, IPv4Address("10.9.0.100"),
                      IPv4Address(f"10.9.0.{n % 250}"), 2000, 4000 + n,
                      bytes([n % 251]) * 8)
        )
    arrivals = [(sim.now, frame) for frame in frames]
    if burst:
        switch.receive_burst(switch.port(4), arrivals)
    else:
        for _, frame in arrivals:
            switch.receive(switch.port(4), frame)
    sim.run_until_idle()
    return switch, peers


def test_legacy_burst_matches_sequential_receive():
    seq_switch, seq_peers = _legacy_dut(burst=False)
    burst_switch, burst_peers = _legacy_dut(burst=True)
    # Identical counters...
    assert seq_switch.counters == burst_switch.counters
    # ...and identical frame bytes, in order, on every egress port.
    for seq_peer, burst_peer in zip(seq_peers, burst_peers):
        assert seq_peer.frames == burst_peer.frames
    # The burst actually coalesced: flooding the 3 announcements put
    # more than one frame into a single egress link event somewhere.
    hwm = max(
        burst_switch.port(n).link.stats(burst_switch.port(n)).queue_hwm
        for n in range(1, 4)
    )
    assert hwm > 1
