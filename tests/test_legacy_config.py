"""Tests for the legacy switch configuration model."""

import pytest

from repro.legacy import PortMode, PortVlanConfig, RunningConfig, VlanDecl


class TestPortVlanConfig:
    def test_defaults_are_access_vlan1(self):
        config = PortVlanConfig()
        assert config.mode is PortMode.ACCESS
        assert config.pvid == 1
        assert config.carries(1)
        assert not config.carries(2)

    def test_trunk_carries_allowed_and_native(self):
        config = PortVlanConfig(
            mode=PortMode.TRUNK, allowed_vlans={10, 20}, native_vlan=99
        )
        assert config.carries(10)
        assert config.carries(20)
        assert config.carries(99)
        assert not config.carries(30)

    def test_disabled_port_carries_nothing(self):
        config = PortVlanConfig(enabled=False)
        assert not config.carries(1)

    def test_access_with_tagged_vlans_rejected(self):
        with pytest.raises(ValueError):
            PortVlanConfig(mode=PortMode.ACCESS, allowed_vlans={5})

    def test_pvid_range(self):
        with pytest.raises(ValueError):
            PortVlanConfig(pvid=4095)
        with pytest.raises(ValueError):
            PortVlanConfig(pvid=0)

    def test_copy_is_deep_for_sets(self):
        config = PortVlanConfig(mode=PortMode.TRUNK, allowed_vlans={10})
        clone = config.copy()
        clone.allowed_vlans.add(20)
        assert config.allowed_vlans == {10}


class TestVlanDecl:
    def test_default_name(self):
        assert VlanDecl(101).name == "VLAN0101"

    def test_explicit_name(self):
        assert VlanDecl(101, "harmless-p1").name == "harmless-p1"

    def test_range_check(self):
        with pytest.raises(ValueError):
            VlanDecl(0)
        with pytest.raises(ValueError):
            VlanDecl(4095)


class TestRunningConfig:
    def test_default_vlan_exists(self):
        config = RunningConfig()
        assert 1 in config.vlans
        assert config.vlans[1].name == "default"

    def test_set_access_declares_vlan(self):
        config = RunningConfig()
        config.set_access(3, 101)
        assert 101 in config.vlans
        assert config.port(3).pvid == 101
        assert config.port(3).mode is PortMode.ACCESS

    def test_set_trunk(self):
        config = RunningConfig()
        config.set_trunk(24, {101, 102}, native_vlan=1)
        port = config.port(24)
        assert port.mode is PortMode.TRUNK
        assert port.allowed_vlans == {101, 102}
        assert port.native_vlan == 1

    def test_set_access_clears_trunk_state(self):
        config = RunningConfig()
        config.set_trunk(5, {10, 20})
        config.set_access(5, 30)
        assert config.port(5).allowed_vlans == set()
        assert config.port(5).mode is PortMode.ACCESS

    def test_ports_in_vlan(self):
        config = RunningConfig()
        config.set_access(1, 101)
        config.set_access(2, 101)
        config.set_access(3, 102)
        config.set_trunk(24, {101, 102})
        assert config.ports_in_vlan(101) == [1, 2, 24]
        assert config.ports_in_vlan(102) == [3, 24]

    def test_remove_vlan_in_use_rejected(self):
        config = RunningConfig()
        config.set_access(1, 101)
        with pytest.raises(ValueError):
            config.remove_vlan(101)

    def test_remove_unused_vlan(self):
        config = RunningConfig()
        config.declare_vlan(200)
        config.remove_vlan(200)
        assert 200 not in config.vlans

    def test_cannot_remove_default_vlan(self):
        with pytest.raises(ValueError):
            RunningConfig().remove_vlan(1)

    def test_copy_is_independent(self):
        config = RunningConfig()
        config.set_access(1, 101)
        clone = config.copy()
        clone.set_access(1, 999)
        assert config.port(1).pvid == 101

    def test_diff_reports_changes(self):
        config = RunningConfig()
        modified = config.copy()
        modified.set_access(1, 101)
        changes = config.diff(modified)
        assert any("vlan 101" in change for change in changes)
        assert any("port 1" in change for change in changes)

    def test_diff_empty_for_identical(self):
        config = RunningConfig()
        assert config.diff(config.copy()) == []
