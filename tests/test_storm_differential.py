"""Bit-identity differentials for the storm-hardening features.

Storm control, the datapath flood guard and the packet-in limiter are
all **off by default**, and the acceptance bar is strict: a fabric with
the features disabled — or attached but configured permissively enough
never to trigger — must reproduce today's digests *bit-identically*:
same emitted frames in the same order, same packet-ins, same counters,
same FDB contents, same ping RTTs.  This suite proves it at two levels:

* a :class:`~repro.softswitch.SoftSwitch` rig at both specialization
  tiers (guarded-permissive vs unguarded, seeded broadcast/unicast
  mixes through ``inject`` and ``process_batch``) — including a
  compilable pipeline where the attached guard must not inhibit
  specialization;
* a part-migrated (hybrid) ring fabric, comparing full per-site
  digests and the packet-in multiset between a protected-but-permissive
  run and a bare one.

It also pins the *active* invariant: with a tight guard actually
suppressing, batch and sequential execution still agree frame-for-frame
(meter decisions depend only on simulated time and arrival order).
"""

import random

from repro.apps import LearningSwitchApp
from repro.controller import Controller
from repro.core.manager import HarmlessFleet
from repro.fabric import ring_fabric
from repro.fabric.partition import PacketInRecorder, site_digest
from repro.legacy import StormControl
from repro.net import MACAddress
from repro.netsim import Simulator
from repro.netsim.link import wire
from repro.openflow import ApplyActions, FlowMod, Match, OutputAction
from repro.openflow import consts as c
from repro.softswitch import SoftSwitch
from repro.traffic.generators import (
    BurstSource,
    cross_pod_flows,
    storm_frames,
    synth_frame,
)

#: A meter this permissive never trips — attach-without-effect config.
PERMISSIVE = dict(rate_fps=1e9, burst=1_000_000)


def build_rig(specialize, guard=None, flood=True):
    """A SoftSwitch with sinks, a unicast rule and (optionally) a
    flood fallback; returns (sim, switch, sinks, packet_ins)."""
    from repro.netsim.node import Node

    class RecordingSink(Node):
        def __init__(self, sim, name):
            super().__init__(sim, name)
            self.received = []

        def receive(self, port, frame):
            self.received.append((self.sim.now, frame.to_bytes()))

    sim = Simulator()
    switch = SoftSwitch(
        sim, "ss", datapath_id=1, enable_specialization=specialize
    )
    switch.recompile_after_mods = 1
    switch.recompile_quiescent_s = 0.0
    switch.flood_guard = guard
    sinks = []
    for index in range(3):
        sink = RecordingSink(sim, f"sink{index}")
        wire(
            switch, sink,
            bandwidth_bps=None, propagation_delay_s=0.0,
            queue_frames=100_000,
        )
        sinks.append(sink)
    packet_ins: "list[bytes]" = []
    switch.to_controller = packet_ins.append
    switch.handle_message(FlowMod(
        match=Match(eth_dst=0x02_00_00_00_00_02), priority=10,
        instructions=[ApplyActions(actions=(OutputAction(port=2),))],
    ).to_bytes())
    if flood:
        switch.handle_message(FlowMod(
            match=Match(), priority=0,
            instructions=[
                ApplyActions(actions=(OutputAction(port=c.OFPP_FLOOD),))
            ],
        ).to_bytes())
    return sim, switch, sinks, packet_ins


def seeded_mix(seed, rounds=40):
    """(in_port, frames, use_batch) triples mixing floods and unicasts."""
    rng = random.Random(seed)
    flows = cross_pod_flows(3, per_pair=1, seed=seed)
    unicast_pool = [synth_frame(flow.spec) for flow in flows]
    steps = []
    for _ in range(rounds):
        roll = rng.random()
        if roll < 0.4:
            frames = storm_frames(rng.randint(1, 12))
        else:
            frames = [
                unicast_pool[rng.randrange(len(unicast_pool))]
                for _ in range(rng.randint(1, 6))
            ]
        steps.append((rng.randint(1, 3), frames, rng.random() < 0.5))
    return steps


def drive(rig, steps, gap_s=0.001):
    sim, switch, _, _ = rig
    clock = 0.0
    for in_port, frames, use_batch in steps:
        clock += gap_s
        sim.run(until=clock)
        if use_batch and len(frames) > 1:
            switch.process_batch(in_port, list(frames))
        else:
            for frame in frames:
                switch.inject(frame, in_port)
    sim.run()


def assert_rigs_identical(rig_a, rig_b):
    _, switch_a, sinks_a, pins_a = rig_a
    _, switch_b, sinks_b, pins_b = rig_b
    for index, (sink_a, sink_b) in enumerate(zip(sinks_a, sinks_b)):
        assert sink_a.received == sink_b.received, f"sink {index} diverged"
    assert pins_a == pins_b
    assert switch_a.packets_forwarded == switch_b.packets_forwarded
    assert switch_a.packets_dropped == switch_b.packets_dropped
    assert switch_a.packets_to_controller == switch_b.packets_to_controller
    assert switch_a.dump_pipeline() == switch_b.dump_pipeline()


class TestSoftSwitchTiers:
    def test_permissive_guard_is_invisible_interpreted_tier(self):
        steps = seeded_mix(0x510)
        bare = build_rig(specialize=False)
        guarded = build_rig(specialize=False, guard=StormControl(**PERMISSIVE))
        drive(bare, steps)
        drive(guarded, steps)
        assert_rigs_identical(bare, guarded)
        assert guarded[1].floods_suppressed == 0

    def test_permissive_guard_is_invisible_specialized_tier(self):
        steps = seeded_mix(0x511)
        bare = build_rig(specialize=True)
        guarded = build_rig(specialize=True, guard=StormControl(**PERMISSIVE))
        drive(bare, steps)
        drive(guarded, steps)
        assert_rigs_identical(bare, guarded)

    def test_guard_does_not_inhibit_specialization(self):
        """A flood-free (compilable) pipeline with a guard attached
        still compiles and runs specialized, bit-identical to bare."""
        steps = [
            (1, [synth_frame(flow.spec) for flow in cross_pod_flows(3, seed=7)]
             * 4, True)
            for _ in range(10)
        ]
        bare = build_rig(specialize=True, flood=False)
        guarded = build_rig(
            specialize=True, guard=StormControl(**PERMISSIVE), flood=False
        )
        drive(bare, steps)
        drive(guarded, steps)
        assert_rigs_identical(bare, guarded)
        assert guarded[1].specialized_frames > 0
        assert guarded[1].specialized_frames == bare[1].specialized_frames

    def test_active_guard_batch_equals_sequential(self):
        """With a tight meter actually suppressing, a burst through
        process_batch equals the same frames injected one at a time."""
        tight = dict(rate_fps=200, burst=4, recovery_s=0.01)
        steps = seeded_mix(0x512)
        batch_rig = build_rig(specialize=False, guard=StormControl(**tight))
        seq_rig = build_rig(specialize=False, guard=StormControl(**tight))
        drive(batch_rig, steps)
        drive(seq_rig, [(p, f, False) for p, f, _ in steps])
        assert_rigs_identical(batch_rig, seq_rig)
        assert batch_rig[1].floods_suppressed > 0
        assert (
            batch_rig[1].floods_suppressed == seq_rig[1].floods_suppressed
        )


PODS = 4


def _make_fabric_mix(seed, base):
    rng = random.Random(seed)
    flows = cross_pod_flows(PODS, per_pair=1, seed=seed)
    chosen = rng.sample(flows, k=rng.randint(4, 8))
    per_pod = {pod: [] for pod in range(PODS)}
    for flow in chosen:
        frame = synth_frame(flow.spec, payload_len=rng.choice([64, 128]))
        for _ in range(rng.randint(1, 3)):
            start = base + rng.uniform(0.0005, 0.004)
            per_pod[flow.src_pod].append((start, [frame] * rng.randint(2, 6)))
    for bursts in per_pod.values():
        bursts.sort(key=lambda burst: burst[0])
    return per_pod


def run_hybrid_fabric(protect: bool, mixes=6):
    """A half-migrated ring driving seeded mixes; returns its digests."""
    sim = Simulator()
    fabric = ring_fabric(
        switches=PODS, hosts_per_switch=1, gen_ports_per_switch=1, sim=sim
    )
    controller = Controller(sim, name="c0")
    recorder = PacketInRecorder()
    controller.add_app(recorder)
    controller.add_app(LearningSwitchApp())
    fleet = HarmlessFleet(fabric, controller=controller, wave_size=2)
    fleet.migrate_next_wave(verify=True)  # 2 of 4 sites: a hybrid ring
    if protect:
        for site in fabric.sites.values():
            site.switch.storm_control = StormControl(**PERMISSIVE)
        for deployment in fleet.deployments.values():
            deployment.s4.ss1.flood_guard = StormControl(**PERMISSIVE)
            deployment.s4.ss2.flood_guard = StormControl(**PERMISSIVE)
            deployment.datapath.channel.configure_packetin_limit(
                rate_pps=1e9, burst=1_000_000
            )
    stations = {}
    edge_names = [site.name for site in fabric.edge_sites()]
    for pod, name in enumerate(edge_names):
        station = BurstSource(sim, f"gen-{pod}")
        fabric.attach_station(name, station)
        stations[name] = station
    for seed in range(mixes):
        base = sim.now
        mix = _make_fabric_mix(seed, base + 0.001)
        for pod, name in enumerate(edge_names):
            if mix[pod]:
                stations[name].start(mix[pod])
        sim.run(until=base + 0.012)
    digests = {
        name: site_digest(fabric, name, fleet=fleet, include_rtts=True)
        for name in fabric.sites
    }
    return digests, recorder.digest()


class TestHybridFabric:
    def test_permissive_protection_reproduces_bare_digests(self):
        bare_sites, bare_pins = run_hybrid_fabric(protect=False)
        protected_sites, protected_pins = run_hybrid_fabric(protect=True)
        assert set(protected_sites) == set(bare_sites)
        for name in bare_sites:
            assert protected_sites[name] == bare_sites[name], name
        assert protected_pins == bare_pins
        # The runs actually moved traffic between sites.
        flooded = sum(
            dict(digest["counters"])["flooded"]
            for digest in bare_sites.values()
        )
        assert flooded > 0
