"""Tests for the NAPALM-like driver layer over simulated SNMP."""

import pytest

from repro.legacy import LegacySwitch, PortMode
from repro.mgmt import (
    ConfigSessionError,
    DeviceConnection,
    DriverError,
    SimEOSDriver,
    SimIOSDriver,
    SimProCurveDriver,
    get_network_driver,
)
from repro.mgmt.base import ConfigOp
from repro.net import IPv4Address, MACAddress
from repro.netsim import Host, Link, Simulator
from repro.snmp import SnmpAgent, attach_bridge_mib


def build(vendor="sim-ios", num_ports=8):
    sim = Simulator()
    switch = LegacySwitch(sim, "edge1", num_ports=num_ports, processing_delay_s=0.0)
    mib, _ = attach_bridge_mib(switch)
    agent = SnmpAgent(mib)
    connection = DeviceConnection(agent=agent, hostname="edge1")
    driver = get_network_driver(vendor)(connection)
    driver.open()
    return sim, switch, driver


class TestDriverRegistry:
    def test_lookup(self):
        assert get_network_driver("sim-ios") is SimIOSDriver
        assert get_network_driver("sim-eos") is SimEOSDriver
        assert get_network_driver("sim-procurve") is SimProCurveDriver

    def test_unknown_vendor(self):
        with pytest.raises(ValueError, match="unknown vendor"):
            get_network_driver("junos")


class TestConnection:
    def test_open_checks_reachability(self):
        sim, switch, driver = build()
        assert driver.is_alive()

    def test_wrong_community_fails_open(self):
        sim = Simulator()
        switch = LegacySwitch(sim, "sw", num_ports=4)
        mib, _ = attach_bridge_mib(switch)
        agent = SnmpAgent(mib, read_community="rd", write_community="wr")
        connection = DeviceConnection(agent=agent, write_community="wrong")
        driver = SimIOSDriver(connection)
        with pytest.raises(DriverError):
            driver.open()

    def test_context_manager(self):
        sim = Simulator()
        switch = LegacySwitch(sim, "sw", num_ports=4)
        mib, _ = attach_bridge_mib(switch)
        connection = DeviceConnection(agent=SnmpAgent(mib))
        with SimIOSDriver(connection) as driver:
            assert driver.is_alive()
        assert not driver.is_alive()

    def test_unopened_driver_raises(self):
        sim = Simulator()
        switch = LegacySwitch(sim, "sw", num_ports=4)
        mib, _ = attach_bridge_mib(switch)
        driver = SimIOSDriver(DeviceConnection(agent=SnmpAgent(mib)))
        with pytest.raises(DriverError):
            driver.get_facts()


class TestGetters:
    def test_get_facts(self):
        _, _, driver = build()
        facts = driver.get_facts()
        assert facts["hostname"] == "edge1"
        assert facts["vendor"] == "sim-ios"
        assert len(facts["interface_list"]) == 8

    def test_interface_names_per_vendor(self):
        _, _, ios = build("sim-ios")
        assert "GigabitEthernet0/1" in ios.get_interfaces()
        _, _, eos = build("sim-eos")
        assert "Ethernet1" in eos.get_interfaces()
        _, _, hp = build("sim-procurve")
        assert "1" in hp.get_interfaces()

    def test_parse_interface_round_trip(self):
        for vendor in ("sim-ios", "sim-eos", "sim-procurve"):
            _, _, driver = build(vendor)
            for port in (1, 5, 8):
                assert driver.parse_interface(driver.interface_name(port)) == port

    def test_parse_interface_rejects_garbage(self):
        _, _, driver = build("sim-ios")
        with pytest.raises(ConfigSessionError):
            driver.parse_interface("Vlan1")

    def test_get_vlans_reflects_switch(self):
        _, switch, driver = build()
        config = switch.config.copy()
        config.set_access(1, 101)
        config.set_access(2, 101)
        config.set_trunk(8, {101})
        switch.apply_config(config)
        vlans = driver.get_vlans()
        assert vlans[101].untagged == [1, 2]
        assert vlans[101].tagged == [8]

    def test_get_mac_address_table(self):
        sim, switch, driver = build()
        h1 = Host(sim, "h1", MACAddress(0x02AA), IPv4Address("10.0.0.1"))
        h2 = Host(sim, "h2", MACAddress(0x02BB), IPv4Address("10.0.0.2"))
        Link(h1.port0, switch.port(1))
        Link(h2.port0, switch.port(2))
        h1.ping(h2.ip)
        sim.run(until=0.5)
        table = driver.get_mac_address_table()
        macs = {entry["mac"] for entry in table}
        assert str(h1.mac) in macs
        interfaces = {
            entry["interface"] for entry in table if entry["mac"] == str(h1.mac)
        }
        assert interfaces == {"GigabitEthernet0/1"}


class TestApplyOps:
    def test_access_op(self):
        _, switch, driver = build()
        driver.apply_ops(
            [
                ConfigOp(kind="vlan", vlan_id=101, name="harmless-p1"),
                ConfigOp(kind="access", vlan_id=101, port=1),
            ]
        )
        assert switch.config.port(1).pvid == 101
        assert switch.config.vlans[101].name == "harmless-p1"

    def test_trunk_op(self):
        _, switch, driver = build()
        driver.apply_ops(
            [
                ConfigOp(kind="vlan", vlan_id=101),
                ConfigOp(kind="vlan", vlan_id=102),
                ConfigOp(kind="trunk", port=8, allowed_vlans=(101, 102)),
            ]
        )
        port = switch.config.port(8)
        assert port.mode is PortMode.TRUNK
        assert port.allowed_vlans == {101, 102}

    def test_vlan_removal_op(self):
        _, switch, driver = build()
        driver.apply_ops([ConfigOp(kind="vlan", vlan_id=300)])
        driver.apply_ops([ConfigOp(kind="no-vlan", vlan_id=300)])
        assert 300 not in switch.config.vlans


IOS_CONFIG = """\
vlan 101
 name port1
vlan 102
interface GigabitEthernet0/1
 switchport mode access
 switchport access vlan 101
interface GigabitEthernet0/2
 switchport mode access
 switchport access vlan 102
interface GigabitEthernet0/8
 switchport mode trunk
 switchport trunk allowed vlan 101,102
"""

PROCURVE_CONFIG = """\
vlan 101
   name "port1"
   untagged 1
   tagged 8
   exit
vlan 102
   untagged 2
   tagged 8
   exit
"""


class TestConfigSession:
    def test_ios_candidate_commit(self):
        _, switch, driver = build("sim-ios")
        driver.load_merge_candidate(IOS_CONFIG)
        preview = driver.compare_config()
        assert "switchport access vlan 101" in preview
        driver.commit_config()
        assert switch.config.port(1).pvid == 101
        assert switch.config.port(2).pvid == 102
        assert switch.config.port(8).mode is PortMode.TRUNK
        assert switch.config.port(8).allowed_vlans == {101, 102}

    def test_procurve_candidate_commit(self):
        _, switch, driver = build("sim-procurve")
        driver.load_merge_candidate(PROCURVE_CONFIG)
        driver.commit_config()
        assert switch.config.port(1).pvid == 101
        assert switch.config.port(8).allowed_vlans == {101, 102}
        assert switch.config.vlans[101].name == "port1"

    def test_eos_round_trip_render_parse(self):
        _, _, driver = build("sim-eos")
        ops = [
            ConfigOp(kind="vlan", vlan_id=101, name="x"),
            ConfigOp(kind="access", vlan_id=101, port=3),
            ConfigOp(kind="trunk", port=8, allowed_vlans=(101,), native_vlan=1),
        ]
        text = driver.render_config(ops)
        parsed = driver.parse_config(text)
        kinds = sorted(op.kind for op in parsed)
        assert kinds == ["access", "trunk", "vlan"]
        trunk = next(op for op in parsed if op.kind == "trunk")
        assert trunk.allowed_vlans == (101,)
        assert trunk.native_vlan == 1

    def test_procurve_round_trip_render_parse(self):
        _, _, driver = build("sim-procurve")
        ops = [
            ConfigOp(kind="vlan", vlan_id=101, name="x"),
            ConfigOp(kind="access", vlan_id=101, port=3),
            ConfigOp(kind="trunk", port=8, allowed_vlans=(101,)),
        ]
        parsed = driver.parse_config(driver.render_config(ops))
        assert any(op.kind == "trunk" and op.port == 8 for op in parsed)
        assert any(
            op.kind == "access" and op.port == 3 and op.vlan_id == 101
            for op in parsed
        )

    def test_procurve_port_ranges(self):
        _, switch, driver = build("sim-procurve")
        driver.load_merge_candidate("vlan 200\n   untagged 1-3\n   exit\n")
        driver.commit_config()
        for port in (1, 2, 3):
            assert switch.config.port(port).pvid == 200

    def test_commit_without_candidate_raises(self):
        _, _, driver = build()
        with pytest.raises(ConfigSessionError):
            driver.commit_config()

    def test_discard(self):
        _, switch, driver = build()
        driver.load_merge_candidate(IOS_CONFIG)
        driver.discard_config()
        with pytest.raises(ConfigSessionError):
            driver.commit_config()
        assert switch.config.port(1).pvid == 1  # nothing applied

    def test_parse_error_is_informative(self):
        _, _, driver = build()
        with pytest.raises(ConfigSessionError, match="cannot parse"):
            driver.load_merge_candidate("frobnicate the flux capacitor\n")

    def test_rollback_restores_previous_state(self):
        _, switch, driver = build()
        driver.load_merge_candidate(IOS_CONFIG)
        driver.commit_config()
        assert switch.config.port(1).pvid == 101
        driver.rollback()
        assert switch.config.port(1).pvid == 1
        assert switch.config.port(8).mode is PortMode.ACCESS
        assert 101 not in switch.config.vlans

    def test_rollback_without_commit_raises(self):
        _, _, driver = build()
        with pytest.raises(ConfigSessionError):
            driver.rollback()
