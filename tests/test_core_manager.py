"""End-to-end tests of the HARMLESS Manager: the paper's workflow."""

import pytest

from repro.apps import LearningSwitchApp
from repro.controller import Controller
from repro.core import HarmlessError, HarmlessManager
from repro.core.verify import ZERO_COST
from repro.legacy import LegacySwitch, PortMode
from repro.mgmt import DeviceConnection, get_network_driver
from repro.net import IPv4Address, MACAddress
from repro.netsim import Capture, Host, Link, Simulator
from repro.snmp import SnmpAgent, attach_bridge_mib


def build_site(vendor="sim-ios", num_ports=8, num_hosts=3):
    """A legacy switch with hosts on ports 1..N and a free trunk port."""
    sim = Simulator()
    legacy = LegacySwitch(sim, "edge1", num_ports=num_ports, processing_delay_s=0.0)
    hosts = []
    for index in range(num_hosts):
        host = Host(
            sim,
            f"h{index + 1}",
            MACAddress(0x020000000001 + index),
            IPv4Address(f"10.0.0.{index + 1}"),
        )
        Link(host.port0, legacy.port(index + 1))
        hosts.append(host)
    mib, _ = attach_bridge_mib(legacy)
    driver = get_network_driver(vendor)(
        DeviceConnection(agent=SnmpAgent(mib), hostname="edge1")
    )
    driver.open()
    controller = Controller(sim)
    controller.add_app(LearningSwitchApp())
    manager = HarmlessManager(sim, controller=controller, cost_model=ZERO_COST)
    return sim, legacy, hosts, driver, controller, manager


class TestMigrationWorkflow:
    def test_migrate_configures_legacy_switch(self):
        sim, legacy, hosts, driver, _, manager = build_site()
        deployment = manager.migrate(legacy, driver, trunk_port=8)
        # Access ports tagged per the map.
        for port, vlan in deployment.port_map:
            config = legacy.config.port(port)
            assert config.mode is PortMode.ACCESS
            assert config.pvid == vlan
        # Trunk carries all the mapped VLANs.
        trunk = legacy.config.port(8)
        assert trunk.mode is PortMode.TRUNK
        assert trunk.allowed_vlans == set(deployment.port_map.vlans)

    def test_migrate_defaults_to_wired_ports(self):
        sim, legacy, hosts, driver, _, manager = build_site(num_hosts=3)
        deployment = manager.migrate(legacy, driver, trunk_port=8)
        assert deployment.port_map.ports == [1, 2, 3]

    def test_verify_deployment_clean(self):
        sim, legacy, _, driver, _, manager = build_site()
        deployment = manager.migrate(legacy, driver, trunk_port=8)
        assert manager.verify_deployment(deployment) == []

    def test_end_to_end_ping_through_harmless(self):
        """The headline demo: hosts talk through legacy+S4 under OF control."""
        sim, legacy, (h1, h2, h3), driver, _, manager = build_site()
        manager.migrate(legacy, driver, trunk_port=8)
        sim.run(until=0.05)  # handshake
        h1.ping(h2.ip)
        sim.run(until=1.0)
        assert len(h1.rtts()) == 1

    def test_traffic_is_tagged_on_trunk(self):
        sim, legacy, (h1, h2, _), driver, _, manager = build_site()
        deployment = manager.migrate(legacy, driver, trunk_port=8)
        capture = Capture("trunk").attach(legacy.port(8))
        sim.run(until=0.05)
        h1.ping(h2.ip)
        sim.run(until=1.0)
        tagged = [e for e in capture if e.frame.vlan is not None]
        assert tagged, "no tagged frames on the trunk"
        vlans_seen = {e.frame.vlan_id for e in tagged}
        assert vlans_seen <= set(deployment.port_map.vlans)

    def test_hosts_never_see_tags(self):
        sim, legacy, (h1, h2, _), driver, _, manager = build_site()
        manager.migrate(legacy, driver, trunk_port=8)
        capture = Capture("h2side").attach(h2.port0)
        sim.run(until=0.05)
        h1.ping(h2.ip)
        sim.run(until=1.0)
        assert all(entry.frame.vlan is None for entry in capture)

    def test_vlan_allocation_avoids_existing(self):
        sim, legacy, _, driver, _, manager = build_site()
        config = legacy.config.copy()
        config.declare_vlan(101)
        config.declare_vlan(102)
        legacy.apply_config(config)
        deployment = manager.migrate(legacy, driver, trunk_port=8)
        assert 101 not in deployment.port_map.vlans
        assert 102 not in deployment.port_map.vlans

    def test_teardown_restores_config(self):
        sim, legacy, _, driver, _, manager = build_site()
        deployment = manager.migrate(legacy, driver, trunk_port=8)
        deployment.teardown()
        assert legacy.config.port(1).pvid == 1
        assert legacy.config.port(8).mode is PortMode.ACCESS
        assert not deployment.active

    def test_describe_and_log(self):
        sim, legacy, _, driver, _, manager = build_site()
        deployment = manager.migrate(legacy, driver, trunk_port=8)
        assert "edge1" in deployment.describe()
        assert any("S4 instantiated" in line for line in deployment.log)
        assert "switchport mode trunk" in deployment.vendor_config


class TestMigrationErrors:
    def test_bad_trunk_port(self):
        sim, legacy, _, driver, _, manager = build_site()
        with pytest.raises(HarmlessError, match="trunk port 99"):
            manager.migrate(legacy, driver, trunk_port=99)

    def test_trunk_in_access_list(self):
        sim, legacy, _, driver, _, manager = build_site()
        with pytest.raises(HarmlessError, match="cannot also be"):
            manager.migrate(legacy, driver, trunk_port=8, access_ports=[1, 8])

    def test_no_access_ports(self):
        sim, legacy, _, driver, _, manager = build_site(num_hosts=0)
        with pytest.raises(HarmlessError, match="no access ports"):
            manager.migrate(legacy, driver, trunk_port=8)


class TestMultiVendor:
    @pytest.mark.parametrize("vendor", ["sim-ios", "sim-eos", "sim-procurve"])
    def test_migration_works_on_every_vendor(self, vendor):
        sim, legacy, (h1, h2, _), driver, _, manager = build_site(vendor=vendor)
        manager.migrate(legacy, driver, trunk_port=8)
        sim.run(until=0.05)
        h1.ping(h2.ip)
        sim.run(until=1.0)
        assert len(h1.rtts()) == 1


class TestMultiSwitch:
    def test_two_legacy_switches_one_manager(self):
        sim = Simulator()
        controller = Controller(sim)
        controller.add_app(LearningSwitchApp())
        manager = HarmlessManager(sim, controller=controller, cost_model=ZERO_COST)
        pairs = []
        for site in range(2):
            legacy = LegacySwitch(
                sim, f"edge{site}", num_ports=4, processing_delay_s=0.0
            )
            a = Host(
                sim,
                f"a{site}",
                MACAddress(0x02AA000000 + site),
                IPv4Address(f"10.{site}.0.1"),
            )
            b = Host(
                sim,
                f"b{site}",
                MACAddress(0x02BB000000 + site),
                IPv4Address(f"10.{site}.0.2"),
            )
            Link(a.port0, legacy.port(1))
            Link(b.port0, legacy.port(2))
            mib, _ = attach_bridge_mib(legacy)
            driver = get_network_driver("sim-ios")(
                DeviceConnection(agent=SnmpAgent(mib), hostname=f"edge{site}")
            )
            driver.open()
            manager.migrate(legacy, driver, trunk_port=4, access_ports=[1, 2])
            pairs.append((a, b))
        sim.run(until=0.05)
        for a, b in pairs:
            a.ping(b.ip)
        sim.run(until=1.0)
        for a, _ in pairs:
            assert len(a.rtts()) == 1
        assert len(manager.deployments) == 2
        dpids = {d.s4.ss2.datapath_id for d in manager.deployments}
        assert len(dpids) == 2
