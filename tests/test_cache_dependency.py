"""Dependency-indexed microflow invalidation.

The microflow cache no longer flushes wholesale on control-plane
mutations: each memoised walk registers against the tables it visited
(with its per-table lookup key), the entries it matched and the groups
those entries reference, and FlowMod/GroupMod/expiry drop only the
dependent walks.  These tests pin the scoping rules — what *must*
survive a mutation and what *must not* — plus the stats contract that
lets benchmarks prove invalidation really is partial.
"""

from repro.net.addresses import IPv4Address, MACAddress
from repro.net.build import udp_frame
from repro.netsim import Simulator
from repro.netsim.link import wire
from repro.netsim.node import Node
from repro.openflow import (
    ApplyActions,
    Bucket,
    FlowMod,
    GotoTable,
    GroupAction,
    GroupMod,
    Match,
    OutputAction,
    SetFieldAction,
)
from repro.openflow import consts as c
from repro.softswitch import DatapathCostModel, SoftSwitch
from repro.softswitch.fastpath import CachedPath, DatapathFlowCache
from repro.softswitch.flowtable import FlowEntry

ZERO_COST = DatapathCostModel.zero()

MAC_A = MACAddress("02:00:00:00:00:01")
MAC_B = MACAddress("02:00:00:00:00:02")
MAC_C = MACAddress("02:00:00:00:00:03")


class Sink(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, port, frame):
        self.received.append(frame.to_bytes())


def build_switch(num_sinks=3, num_tables=4):
    sim = Simulator()
    # This file pins the *interpreted* tier's cache scoping; the
    # specialized tier 0 would intercept the traffic before the cache
    # (its own differential suite lives in test_specialization*.py).
    switch = SoftSwitch(
        sim,
        "ss",
        datapath_id=1,
        cost_model=ZERO_COST,
        num_tables=num_tables,
        enable_specialization=False,
    )
    sinks = []
    for index in range(num_sinks):
        sink = Sink(sim, f"sink{index + 1}")
        wire(switch, sink, bandwidth_bps=None, propagation_delay_s=0.0)
        sinks.append(sink)
    return sim, switch, sinks


def send(switch, message):
    assert switch.handle_message(message.to_bytes()) == []


def install(switch, **kwargs):
    send(switch, FlowMod(**kwargs))


def flow_frame(dst_ip="10.0.0.2", dst_port=2000):
    return udp_frame(
        MAC_A, MAC_B, IPv4Address("10.0.0.1"), IPv4Address(dst_ip), 1000, dst_port, b"x"
    )


def output(port):
    return [ApplyActions(actions=(OutputAction(port=port),))]


class TestScopedFlowModAdd:
    def _warm(self, switch):
        """One forwarding rule in table 0, two cached flows."""
        install(switch, match=Match(in_port=1), priority=1, instructions=output(2))
        switch.inject(flow_frame("10.0.0.2"), 1)
        switch.inject(flow_frame("10.0.0.3"), 1)
        assert len(switch.flow_cache) == 2

    def test_unrelated_table_add_keeps_cache(self):
        _, switch, _ = build_switch()
        self._warm(switch)
        install(
            switch,
            table_id=2,
            match=Match(in_port=1),
            priority=9,
            instructions=output(3),
        )
        assert len(switch.flow_cache) == 2  # walks never visited table 2
        switch.inject(flow_frame("10.0.0.2"), 1)
        assert switch.flow_cache.hits == 1

    def test_unrelated_mask_add_keeps_cache(self):
        _, switch, _ = build_switch()
        self._warm(switch)
        # Higher priority, same table — but a prefix no cached key hits.
        install(
            switch,
            match=Match(eth_type=0x0800, ipv4_dst=("192.168.0.0", "255.255.0.0")),
            priority=9,
            instructions=output(3),
        )
        assert len(switch.flow_cache) == 2

    def test_related_mask_add_drops_only_matching_walks(self):
        _, switch, _ = build_switch()
        self._warm(switch)
        install(
            switch,
            match=Match(eth_type=0x0800, ipv4_dst="10.0.0.3"),
            priority=9,
            instructions=output(3),
        )
        assert len(switch.flow_cache) == 1  # only the .3 walk depended

    def test_lower_priority_add_keeps_cache(self):
        _, switch, _ = build_switch()
        self._warm(switch)
        # Matches every cached key but can never win the arbitration.
        install(switch, match=Match(), priority=0, instructions=output(3))
        assert len(switch.flow_cache) == 2

    def test_equal_priority_add_is_conservative(self):
        """Ties resolve to the incumbent, but a replacement ADD carries
        the incumbent's priority — equal priority must invalidate."""
        _, switch, _ = build_switch()
        self._warm(switch)
        install(switch, match=Match(in_port=1), priority=1, instructions=output(3))
        assert len(switch.flow_cache) == 0

    def test_higher_priority_add_redirects(self):
        sim, switch, sinks = build_switch()
        self._warm(switch)
        install(switch, match=Match(in_port=1), priority=9, instructions=output(3))
        assert len(switch.flow_cache) == 0
        switch.inject(flow_frame("10.0.0.2"), 1)
        sim.run()
        assert len(sinks[1].received) == 2  # the two pre-add packets
        assert len(sinks[2].received) == 1  # redirected after the add

    def test_miss_walk_invalidated_by_matching_add(self):
        sim, switch, sinks = build_switch()
        switch.inject(flow_frame(), 1)  # table-miss drop, memoised
        switch.inject(flow_frame(), 1)
        assert switch.flow_cache.hits == 1
        assert switch.packets_dropped == 2
        install(switch, match=Match(in_port=1), priority=0, instructions=output(2))
        assert len(switch.flow_cache) == 0  # any matching add redirects a miss
        switch.inject(flow_frame(), 1)
        sim.run()
        assert len(sinks[1].received) == 1

    def test_miss_walk_survives_unrelated_add(self):
        _, switch, _ = build_switch()
        switch.inject(flow_frame(), 1)
        install(switch, match=Match(in_port=2), priority=9, instructions=output(2))
        assert len(switch.flow_cache) == 1

    def test_rewritten_key_tested_against_adds(self):
        """Set-field rewrites mid-walk: the dependency record must hold
        the *rewritten* key for later tables, or an ADD matching only
        the rewritten packet would leave a stale walk behind."""
        sim, switch, sinks = build_switch()
        install(
            switch,
            match=Match(in_port=1),
            priority=5,
            instructions=[
                ApplyActions(actions=(SetFieldAction(field="eth_dst", value=int(MAC_C)),)),
                GotoTable(table_id=1),
            ],
        )
        install(switch, table_id=1, match=Match(), priority=0, instructions=output(2))
        switch.inject(flow_frame(), 1)
        assert len(switch.flow_cache) == 1
        # This match misses the ingress key (eth_dst=MAC_B) but hits the
        # rewritten key seen by table 1 (eth_dst=MAC_C).
        install(
            switch,
            table_id=1,
            match=Match(eth_dst=int(MAC_C)),
            priority=9,
            instructions=output(3),
        )
        assert len(switch.flow_cache) == 0
        switch.inject(flow_frame(), 1)
        sim.run()
        assert len(sinks[1].received) == 1
        assert len(sinks[2].received) == 1


class TestScopedDeleteModifyExpiry:
    def _two_flows(self, switch):
        install(
            switch,
            match=Match(eth_type=0x0800, udp_dst=2000),
            priority=5,
            instructions=output(2),
        )
        install(
            switch,
            match=Match(eth_type=0x0800, udp_dst=3000),
            priority=5,
            instructions=output(3),
        )
        switch.inject(flow_frame(dst_port=2000), 1)
        switch.inject(flow_frame(dst_port=3000), 1)
        assert len(switch.flow_cache) == 2

    def test_delete_drops_only_dependent_walks(self):
        _, switch, _ = build_switch()
        self._two_flows(switch)
        send(
            switch,
            FlowMod(
                command=c.OFPFC_DELETE,
                match=Match(eth_type=0x0800, udp_dst=3000),
            ),
        )
        assert len(switch.flow_cache) == 1
        switch.inject(flow_frame(dst_port=2000), 1)
        assert switch.flow_cache.hits == 1  # the surviving walk still serves

    def test_noop_delete_keeps_cache_warm(self):
        _, switch, _ = build_switch()
        self._two_flows(switch)
        invalidations = switch.flow_cache.invalidations
        send(
            switch,
            FlowMod(command=c.OFPFC_DELETE, match=Match(eth_type=0x0800, udp_dst=4000)),
        )
        assert len(switch.flow_cache) == 2
        assert switch.flow_cache.invalidations == invalidations

    def test_modify_drops_only_dependent_walks(self):
        _, switch, _ = build_switch()
        self._two_flows(switch)
        send(
            switch,
            FlowMod(
                command=c.OFPFC_MODIFY,
                match=Match(eth_type=0x0800, udp_dst=3000),
                instructions=output(1),
            ),
        )
        assert len(switch.flow_cache) == 1

    def test_expiry_drops_only_dependent_walks(self):
        sim, switch, _ = build_switch()
        install(
            switch,
            match=Match(eth_type=0x0800, udp_dst=2000),
            priority=5,
            instructions=output(2),
        )
        install(
            switch,
            match=Match(eth_type=0x0800, udp_dst=3000),
            priority=5,
            hard_timeout=1,
            instructions=output(3),
        )
        switch.inject(flow_frame(dst_port=2000), 1)
        switch.inject(flow_frame(dst_port=3000), 1)
        assert len(switch.flow_cache) == 2
        sim.run(until=3.0)  # sweeper expires the mortal flow
        assert len(switch.flow_cache) == 1
        switch.inject(flow_frame(dst_port=2000), 1)
        assert switch.flow_cache.hits == 1


class TestScopedGroupMod:
    def _group(self, switch, group_id, port):
        send(
            switch,
            GroupMod(
                command=c.OFPGC_ADD,
                group_type=c.OFPGT_INDIRECT,
                group_id=group_id,
                buckets=[Bucket(actions=[OutputAction(port=port)])],
            ),
        )

    def test_group_mod_drops_only_walks_using_the_group(self):
        sim, switch, sinks = build_switch()
        self._group(switch, 1, 2)
        self._group(switch, 2, 3)
        install(
            switch,
            match=Match(eth_type=0x0800, udp_dst=2000),
            priority=5,
            instructions=[ApplyActions(actions=(GroupAction(group_id=1),))],
        )
        install(
            switch,
            match=Match(eth_type=0x0800, udp_dst=3000),
            priority=5,
            instructions=[ApplyActions(actions=(GroupAction(group_id=2),))],
        )
        switch.inject(flow_frame(dst_port=2000), 1)
        switch.inject(flow_frame(dst_port=3000), 1)
        assert len(switch.flow_cache) == 2
        send(
            switch,
            GroupMod(
                command=c.OFPGC_MODIFY,
                group_type=c.OFPGT_INDIRECT,
                group_id=1,
                buckets=[Bucket(actions=[OutputAction(port=1)])],
            ),
        )
        assert len(switch.flow_cache) == 1  # only the group-1 walk dropped
        switch.inject(flow_frame(dst_port=3000), 1)
        sim.run()
        assert switch.flow_cache.hits == 1


class TestStatsContract:
    def test_scoped_vs_full_counters(self):
        _, switch, _ = build_switch()
        install(switch, match=Match(in_port=1), priority=1, instructions=output(2))
        switch.inject(flow_frame(), 1)
        cache = switch.flow_cache
        stats = cache.stats()
        assert stats["full_invalidations"] == 0
        assert stats["scoped_invalidations"] == 1  # the install above
        install(
            switch, table_id=2, match=Match(in_port=1), priority=9, instructions=[]
        )
        cache.invalidate()
        stats = cache.stats()
        assert stats["scoped_invalidations"] == 2
        assert stats["full_invalidations"] == 1
        assert stats["invalidations"] == 3
        assert stats["paths_dropped"] == 1  # only the full flush dropped it
        assert stats["size"] == 0

    def test_paths_dropped_counts_scoped_work(self):
        cache = DatapathFlowCache()
        entry = FlowEntry(match=Match(in_port=1), priority=1)
        entry.sort_key = (-1, 0.0, 0)
        path = CachedPath(
            steps=((0, entry),), visits=((0, (1,) + (None,) * 13),)
        )
        cache.store((1,) + (None,) * 13, path)
        dropped = cache.invalidate_entries([entry])
        assert dropped == 1
        assert cache.stats()["paths_dropped"] == 1
        assert len(cache) == 0

    def test_eviction_deregisters_dependencies(self):
        cache = DatapathFlowCache(max_entries=1)
        first = FlowEntry(match=Match(in_port=1), priority=1)
        second = FlowEntry(match=Match(in_port=2), priority=1)
        key_a = (1,) + (None,) * 13
        key_b = (2,) + (None,) * 13
        cache.store(key_a, CachedPath(steps=((0, first),), visits=((0, key_a),)))
        cache.store(key_b, CachedPath(steps=((0, second),), visits=((0, key_b),)))
        assert len(cache) == 1
        assert cache.get(key_a) is None  # FIFO evicted
        # The evicted walk's dependencies must be gone with it.
        assert cache.invalidate_entries([first]) == 0
        assert cache.invalidate_entries([second]) == 1

    def test_store_overwrite_replaces_dependencies(self):
        cache = DatapathFlowCache()
        old = FlowEntry(match=Match(in_port=1), priority=1)
        new = FlowEntry(match=Match(in_port=1), priority=2)
        key = (1,) + (None,) * 13
        cache.store(key, CachedPath(steps=((0, old),), visits=((0, key),)))
        cache.store(key, CachedPath(steps=((0, new),), visits=((0, key),)))
        assert len(cache) == 1
        assert cache.invalidate_entries([old]) == 0
        assert cache.invalidate_entries([new]) == 1


class TestChurnSteadyState:
    def test_hit_rate_survives_unrelated_table_churn(self):
        """The acceptance scenario in miniature: steady traffic over
        installed flows while a controller hammers an unrelated table.
        Whole-cache invalidation would pin the hit rate near zero."""
        _, switch, _ = build_switch()
        num_flows = 100
        for index in range(num_flows):
            install(
                switch,
                match=Match(eth_type=0x0800, ipv4_dst=f"10.0.{index // 250}.{index % 250 + 1}"),
                priority=5,
                instructions=output(index % 3 + 1),
            )
        install(switch, match=Match(), priority=0, instructions=[])
        working_set = [
            flow_frame(f"10.0.{index // 250}.{index % 250 + 1}")
            for index in range(16)
        ]
        churn_seq = 0
        for round_index in range(50):
            for frame in working_set:
                switch.inject(frame, 1)
            # One unrelated-table FlowMod per 16 packets — sustained churn.
            churn_seq += 1
            install(
                switch,
                table_id=3,
                match=Match(eth_type=0x0800, udp_dst=(churn_seq % 60000) + 1),
                priority=7,
                instructions=[],
            )
        cache = switch.flow_cache
        assert cache.stats()["scoped_invalidations"] >= 50
        assert cache.hit_rate > 0.9, cache.stats()
