"""Unit tests for the ESwitch-style datapath compiler.

Covers the three contracts the specialized tier 0 lives by:

* **miniflow shrinking** — the partial flow-key extractor must agree
  with the full ``PacketView`` decode on every slot subset, including
  malformed packets whose decode errors the full path swallows;
* **eligibility** — goto-table chains, groups and mortal flows now
  compile; rules the executor cannot reproduce bit-identically
  (packet-ins, floods, action-set instructions) become per-entry
  FALLBACK decisions routed through the interpreter, and only a
  subclassed cost model (or an empty pipeline) rejects the whole
  program;
* **churn hysteresis / invalidation** — FlowMod, GroupMod and
  cost-model swaps mark the program stale *synchronously* (a stale
  program is never executed), mods are counted towards the recompile
  trigger, and recompiles pick up the new table shape.
"""

import random

from repro.net import EthernetFrame, IPv4Address, MACAddress
from repro.net.build import tcp_frame, udp_frame
from repro.net.tcp import TcpSegment
from repro.netsim import Simulator
from repro.netsim.link import wire
from repro.netsim.node import Node
from repro.openflow import (
    ApplyActions,
    Bucket,
    FlowMod,
    GotoTable,
    GroupAction,
    GroupMod,
    Match,
    OutputAction,
    PushVlanAction,
    SetFieldAction,
)
from repro.openflow import consts as c
from repro.openflow.packetview import (
    FLOW_KEY_FIELDS,
    PacketView,
    compile_flow_key_extractor,
)
from repro.softswitch import DatapathCostModel, SoftSwitch, compile_datapath

ZERO_COST = DatapathCostModel.zero()

MACS = [MACAddress(0x020000000001 + i) for i in range(4)]
IPS = [IPv4Address(f"10.0.{i // 4}.{i % 4 + 1}") for i in range(8)]


class Sink(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, port, frame):
        self.received.append(frame.to_bytes())


def random_frame(rng: random.Random) -> EthernetFrame:
    roll = rng.random()
    if roll < 0.1:  # non-IP: every L3/L4 slot must come back None
        return EthernetFrame(
            dst=rng.choice(MACS), src=rng.choice(MACS), ethertype=0x0806,
            payload=b"\x00" * 28,
        )
    if roll < 0.18:  # malformed L3: decode error swallowed identically
        return EthernetFrame(
            dst=rng.choice(MACS), src=rng.choice(MACS), ethertype=0x0800,
            payload=b"\x45\x00",
        )
    src_mac, dst_mac = rng.choice(MACS), rng.choice(MACS)
    src_ip, dst_ip = rng.choice(IPS), rng.choice(IPS)
    vlan_id = rng.choice((None, None, 100, 101))
    if roll < 0.55:
        frame = udp_frame(
            src_mac, dst_mac, src_ip, dst_ip,
            rng.choice((53, 80)), rng.choice((53, 80)), b"x", vlan_id=vlan_id,
        )
    else:
        frame = tcp_frame(
            src_mac, dst_mac, src_ip, dst_ip,
            TcpSegment(rng.choice((53, 80)), rng.choice((53, 80))), vlan_id=vlan_id,
        )
    if rng.random() < 0.3:
        return corrupt(rng, frame)
    return frame


def corrupt(rng: random.Random, frame: EthernetFrame) -> EthernetFrame:
    """Break one header invariant; the partial extractor must swallow
    decode failures exactly where the full decode does."""
    payload = bytearray(frame.payload)
    kind = rng.randrange(6)
    if kind == 0:  # flip a byte (usually a checksum mismatch)
        payload[rng.randrange(len(payload))] ^= 0xFF
    elif kind == 1:  # truncate mid-header or mid-L4
        payload = payload[: rng.randrange(len(payload))]
    elif kind == 2:  # absurd total length
        payload[2] = 0xFF
        payload[3] = rng.randrange(256)
    elif kind == 3:  # wrong IP version nibble
        payload[0] = (6 << 4) | (payload[0] & 0x0F)
    elif kind == 4:  # bad IHL (too small or pointing past the buffer)
        payload[0] = (payload[0] & 0xF0) | rng.choice((0, 3, 15))
    else:  # L4 mangling: UDP length field / TCP data offset
        if len(payload) >= 26:
            payload[24] = rng.choice((0x00, 0xF0))
    broken = frame.copy()
    broken.payload = bytes(payload)
    return broken


class TestMiniflowShrinking:
    def test_partial_extraction_matches_full_decode(self):
        """Random slot subsets vs the full decode: slot-exact agreement."""
        rng = random.Random(0x511CE)
        cases = 0
        all_slots = range(len(FLOW_KEY_FIELDS))
        for _ in range(120):
            frame = random_frame(rng)
            in_port = rng.randint(1, 4)
            full = PacketView(frame, in_port).flow_key()
            for _ in range(6):
                slots = tuple(
                    sorted(rng.sample(list(all_slots), rng.randint(0, 8)))
                )
                fresh = PacketView(frame, in_port)  # no cached key
                assert fresh.flow_key_for(slots) == tuple(
                    full[slot] for slot in slots
                ), (frame, slots)
                cases += 1
        assert cases >= 700

    def test_flow_key_for_uses_cached_key(self):
        frame = udp_frame(MACS[0], MACS[1], IPS[0], IPS[1], 53, 80, b"x")
        view = PacketView(frame, 2)
        full = view.flow_key()
        assert view.flow_key_for((0, 9, 13)) == (2, full[9], full[13])

    def test_extractor_compiled_once_per_slot_set(self):
        first = compile_flow_key_extractor((3, 9))
        again = compile_flow_key_extractor([9, 3, 9])  # order/dupes normalised
        assert first is again
        assert "internet_checksum" in first.__source__  # L3 validation emitted
        # A pipeline not touching L3 must not emit the L3 decode at all.
        l2_only = compile_flow_key_extractor((0, 1, 3))
        assert "internet_checksum" not in l2_only.__source__
        assert "payload" not in l2_only.__source__


def output(port):
    return [ApplyActions(actions=(OutputAction(port=port),))]


def build_switch(num_sinks=3, **kwargs):
    sim = Simulator()
    switch = SoftSwitch(
        sim, "ss", datapath_id=1, cost_model=ZERO_COST, **kwargs
    )
    sinks = []
    for index in range(num_sinks):
        sink = Sink(sim, f"sink{index + 1}")
        wire(switch, sink, bandwidth_bps=None, propagation_delay_s=0.0)
        sinks.append(sink)
    return sim, switch, sinks


def install(switch, **kwargs):
    assert switch.handle_message(FlowMod(**kwargs).to_bytes()) == []


def frame_ab(dst_port=2000):
    return udp_frame(MACS[0], MACS[1], IPS[0], IPS[1], 1000, dst_port, b"x" * 32)


class TestEligibility:
    def test_single_table_output_pipeline_compiles(self):
        _, switch, _ = build_switch()
        install(switch, match=Match(in_port=1), instructions=output(2))
        install(switch, match=Match(), priority=0, instructions=[])
        program = compile_datapath(switch)
        assert program is not None
        assert program.used_slots == (0,)  # only in_port is matched
        assert len(program.plans) == 0  # plans build lazily per selected entry

    def test_vlan_and_setfield_sequences_compile(self):
        _, switch, _ = build_switch()
        install(
            switch,
            match=Match(in_port=1),
            instructions=[
                ApplyActions(
                    actions=(
                        PushVlanAction(),
                        SetFieldAction.vlan_vid(101),
                        OutputAction(port=2),
                        OutputAction(port=3),
                    )
                )
            ],
        )
        assert compile_datapath(switch) is not None

    def test_multi_table_pipeline_compiles_as_chain(self):
        sim, switch, sinks = build_switch()
        switch.recompile_after_mods = 1
        switch.recompile_quiescent_s = 0.0
        install(switch, match=Match(in_port=1), instructions=[GotoTable(table_id=1)])
        install(switch, table_id=1, match=Match(), instructions=output(2))
        switch.inject(frame_ab(), 1)
        assert switch.program is not None
        assert switch.program.fallback_reason is None
        assert switch.specialized_frames == 1
        sim.run()
        assert len(sinks[1].received) == 1
        # Both tables' counters advance exactly as under interpretation.
        assert switch.tables[0].matches == 1
        assert switch.tables[1].matches == 1

    def test_mortal_flow_compiles_and_expiry_is_honoured(self):
        sim, switch, sinks = build_switch()
        switch.recompile_after_mods = 1
        switch.recompile_quiescent_s = 0.0
        install(switch, match=Match(in_port=1), hard_timeout=5, instructions=output(2))
        switch.inject(frame_ab(), 1)
        program = switch.program
        assert program is not None and program.mortal
        sim.run(until=10.0)  # the flow's hard timeout lands
        switch.inject(frame_ab(), 1)  # same flow key: cached decision revalidated
        sim.run()
        assert len(sinks[1].received) == 1  # only the pre-expiry frame got out
        assert switch.specialized_frames == 2

    def test_group_action_compiles(self):
        sim, switch, sinks = build_switch()
        switch.recompile_after_mods = 1
        switch.recompile_quiescent_s = 0.0
        switch.handle_message(
            GroupMod(
                command=c.OFPGC_ADD,
                group_type=c.OFPGT_INDIRECT,
                group_id=1,
                buckets=[Bucket(actions=[OutputAction(port=2)])],
            ).to_bytes()
        )
        install(
            switch,
            match=Match(in_port=1),
            instructions=[ApplyActions(actions=(GroupAction(group_id=1),))],
        )
        switch.inject(frame_ab(), 1)
        assert switch.program is not None
        sim.run()
        assert len(sinks[1].received) == 1
        group = switch.groups.get(1)
        assert group.packet_count == 1
        assert group.bucket_packet_counts == [1]

    def test_controller_output_compiles_to_fallback(self):
        _, switch, _ = build_switch()
        switch.recompile_after_mods = 1
        switch.recompile_quiescent_s = 0.0
        install(
            switch,
            match=Match(),
            priority=0,
            instructions=[ApplyActions(actions=(OutputAction(port=c.OFPP_CONTROLLER),))],
        )
        program = compile_datapath(switch)
        assert program is not None
        assert "controller" in program.fallback_reason
        assert "controller" in switch.compile_ineligible_reason
        switch.inject(frame_ab(), 1)
        # The frame routed through the interpreter and raised a packet-in.
        assert switch.fallback_frames == 1
        assert switch.specialized_frames == 0
        assert switch.packets_to_controller == 1

    def test_subclassed_cost_model_rejected(self):
        class WeirdModel(DatapathCostModel):
            pass

        _, switch, _ = build_switch()
        switch.cost_model = WeirdModel.zero()
        install(switch, match=Match(in_port=1), instructions=output(2))
        assert compile_datapath(switch) is None

    def test_masked_pipeline_compiles_with_subtable_probes(self):
        _, switch, _ = build_switch()
        install(
            switch,
            match=Match(eth_type=0x0800, ipv4_dst=("10.0.1.0", "255.255.255.0")),
            priority=5,
            instructions=output(2),
        )
        program = compile_datapath(switch)
        assert program is not None
        assert "& 0xffffff00" in program.source  # the baked subtable mask


class TestHysteresisAndInvalidation:
    def _specialized(self, after_mods=1, quiescent=0.0):
        sim, switch, sinks = build_switch()
        switch.recompile_after_mods = after_mods
        switch.recompile_quiescent_s = quiescent
        return sim, switch, sinks

    def test_flowmod_invalidates_and_recompile_waits_for_threshold(self):
        sim, switch, sinks = self._specialized(after_mods=3, quiescent=100.0)
        for index in range(3):
            install(
                switch,
                match=Match(in_port=index + 1),
                priority=1,
                instructions=output(2),
            )
        switch.inject(frame_ab(), 1)  # 3 pending mods >= 3: compiles
        assert switch.program is not None
        first = switch.program
        assert switch.specialized_frames == 1
        install(switch, match=Match(in_port=1), priority=9, instructions=output(3))
        # Stale synchronously: the program is gone before any packet.
        assert switch.program is None
        assert switch.program_invalidations == 1
        switch.inject(frame_ab(), 1)  # 1 pending mod < 3: interpreted
        assert switch.program is None
        assert switch.fallback_frames == 1
        install(switch, match=Match(in_port=2), priority=9, instructions=output(3))
        install(switch, match=Match(in_port=3), priority=9, instructions=output(3))
        switch.inject(frame_ab(), 1)  # threshold reached again
        assert switch.program is not None
        assert switch.program is not first  # a fresh compile, not the stale one
        assert switch.program_compiles == 2
        sim.run()
        # Traffic went out port 2 twice (pre-mod program + fallback) and
        # then port 3 once under the higher-priority redirect.
        assert len(sinks[1].received) == 1
        assert len(sinks[2].received) == 2

    def test_quiescent_interval_triggers_recompile(self):
        sim, switch, _ = self._specialized(after_mods=1000, quiescent=0.5)
        install(switch, match=Match(in_port=1), instructions=output(2))
        switch.inject(frame_ab(), 1)
        assert switch.program is None  # 1 mod, not yet quiet long enough
        sim.run(until=1.0)
        switch.inject(frame_ab(), 1)
        assert switch.program is not None
        assert switch.program_compiles == 1

    def test_mod_counting_feeds_pending_mods(self):
        _, switch, _ = self._specialized(after_mods=100, quiescent=100.0)
        install(switch, match=Match(in_port=1), instructions=output(2))
        install(switch, match=Match(in_port=2), instructions=output(2))
        # A no-op delete mutates nothing and must not count as churn.
        switch.handle_message(
            FlowMod(command=c.OFPFC_DELETE, match=Match(in_port=7)).to_bytes()
        )
        assert switch.stats()["specialization"]["pending_mods"] == 2
        switch.handle_message(
            FlowMod(command=c.OFPFC_DELETE, match=Match(in_port=2)).to_bytes()
        )
        assert switch.stats()["specialization"]["pending_mods"] == 3

    def test_recompile_picks_up_table_shape_change(self):
        _, switch, _ = self._specialized()
        install(switch, match=Match(eth_dst=int(MACS[1])), instructions=output(2))
        switch.inject(frame_ab(), 1)
        assert switch.program.used_slots == (1,)
        install(
            switch,
            match=Match(eth_type=0x0800, udp_dst=2000),
            priority=9,
            instructions=output(3),
        )
        switch.inject(frame_ab(), 1)
        assert switch.program.used_slots == (1, 3, 13)  # shape recompiled

    def test_group_mod_marks_stale(self):
        _, switch, _ = self._specialized()
        install(switch, match=Match(in_port=1), instructions=output(2))
        switch.inject(frame_ab(), 1)
        assert switch.program is not None
        switch.handle_message(
            GroupMod(
                command=c.OFPGC_ADD,
                group_type=c.OFPGT_INDIRECT,
                group_id=9,
                buckets=[Bucket(actions=[OutputAction(port=2)])],
            ).to_bytes()
        )
        assert switch.program is None
        assert switch.program_invalidations == 1

    def test_cost_model_swap_marks_stale(self):
        _, switch, _ = self._specialized()
        install(switch, match=Match(in_port=1), instructions=output(2))
        switch.inject(frame_ab(), 1)
        assert switch.program is not None
        switch.cost_model = DatapathCostModel()
        assert switch.program is None
        switch.inject(frame_ab(), 1)  # recompiles with the new constants
        assert switch.program is not None

    def test_uncompilable_pipeline_stays_interpreted_without_retry_storm(self):
        class HookedModel(DatapathCostModel):
            pass

        _, switch, _ = self._specialized()
        switch.cost_model = HookedModel.zero()
        install(switch, match=Match(in_port=1), instructions=output(2))
        switch.inject(frame_ab(), 1)
        assert switch.program is None
        assert switch.program_compile_failures == 1
        assert "subclassed" in switch.compile_ineligible_reason
        switch.inject(frame_ab(), 1)  # no pending mods: no second attempt
        assert switch.program_compile_failures == 1
        assert switch.fallback_frames == 2

    def test_specialization_disabled_never_compiles(self):
        _, switch, _ = build_switch(enable_specialization=False)
        switch.recompile_after_mods = 1
        switch.recompile_quiescent_s = 0.0
        install(switch, match=Match(in_port=1), instructions=output(2))
        switch.inject(frame_ab(), 1)
        assert switch.program is None
        assert switch.program_compiles == 0
        assert switch.fallback_frames == 0  # counter reserved for enabled switches

    def test_stats_surface_ineligible_reason(self):
        _, switch, _ = self._specialized()
        install(switch, match=Match(in_port=1), instructions=output(2))
        switch.inject(frame_ab(), 1)
        assert switch.stats()["specialization"]["ineligible_reason"] is None
        install(
            switch,
            match=Match(in_port=2),
            priority=7,
            instructions=[ApplyActions(actions=(OutputAction(port=c.OFPP_FLOOD),))],
        )
        switch.inject(frame_ab(), 1)
        reason = switch.stats()["specialization"]["ineligible_reason"]
        assert "table 0 priority 7" in reason
        assert "flood" in reason

    def test_interpreted_hits_feed_profile_cells(self):
        _, switch, _ = build_switch(enable_specialization=False)
        install(switch, match=Match(eth_dst=int(MACS[1])), instructions=output(2))
        for port in (2000, 2001, 2002):  # distinct keys: bypass the microflow cache
            switch.inject(frame_ab(dst_port=port), 1)
        hits = switch.tables[0].profile_hits()
        assert hits[("exact", ("eth_dst",))] == 3

    def test_probe_order_is_behaviour_preserving(self):
        rng = random.Random(0xBEEF)
        _, switch, _ = build_switch()
        install(
            switch, match=Match(eth_dst=int(MACS[1])), priority=5, instructions=output(2)
        )
        install(
            switch,
            match=Match(eth_type=0x0800, ipv4_dst=("10.0.1.0", "255.255.255.0")),
            priority=5,
            instructions=output(3),
        )
        install(switch, match=Match(in_port=2), priority=3, instructions=output(2))
        install(switch, match=Match(), priority=0, instructions=[])
        base = compile_datapath(switch, probe_order="priority")
        for order in ("profile", 0, 1, 7):
            variant = compile_datapath(switch, probe_order=order)
            assert variant.probe_order == order
            for _ in range(50):
                frame = random_frame(rng)
                in_port = rng.randint(1, 4)
                assert variant.classify(frame, in_port, 0.0) == base.classify(
                    frame, in_port, 0.0
                ), (frame, in_port, order)

    def test_stats_shape(self):
        _, switch, _ = self._specialized()
        install(switch, match=Match(in_port=1), instructions=output(2))
        switch.inject(frame_ab(), 1)
        stats = switch.stats()
        spec = stats["specialization"]
        assert spec["enabled"] and spec["active"]
        assert spec["compiles"] == 1
        assert spec["specialized_frames"] == 1
        assert stats["cache"]["size"] == 0  # tier 0 never touched the cache
