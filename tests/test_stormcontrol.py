"""Storm containment on both dataplanes, plus control-plane overload.

Three layers of defence, each tested in isolation and wired in:

* :class:`repro.legacy.StormControl` — the per-port flood meter
  (token bucket in simulated time, suppress + timed recovery) and its
  ingress wiring in :class:`repro.legacy.LegacySwitch`;
* the same meter as ``flood_guard`` on a migrated
  :class:`repro.softswitch.SoftSwitch` (consulted before expanding
  ``OFPP_FLOOD``/``OFPP_ALL``), plus table-miss *suppression* (a
  negative cache keyed on the miss signature);
* the per-datapath packet-in token bucket on
  :class:`repro.controller.ControllerChannel`, which bounds controller
  work without starving echoes or barriers.

Everything is off by default; the differential suite
(``test_storm_differential.py``) proves the off/permissive paths are
bit-identical to a fabric without the feature.
"""

import pytest

from repro.apps import LearningSwitchApp
from repro.controller import Controller
from repro.legacy import LegacySwitch, StormControl
from repro.net import IPv4Address, MACAddress
from repro.net.build import udp_frame
from repro.netsim import Host, Link, Node, Simulator
from repro.netsim.link import wire
from repro.openflow import ApplyActions, FlowMod, Match, OutputAction
from repro.openflow import consts as c
from repro.softswitch import SoftSwitch
from repro.traffic.generators import BurstSource, storm_frames


class TestMeter:
    """The token bucket itself, driven with an explicit clock."""

    def test_conforming_traffic_never_notices(self):
        meter = StormControl(rate_fps=100, burst=4)
        clock = 0.0
        for _ in range(50):  # well under 100 fps
            assert meter.allow(1, clock) is True
            clock += 0.05
        assert meter.storms_detected == 0
        assert meter.frames_suppressed == 0

    def test_burst_depth_then_trip(self):
        meter = StormControl(rate_fps=10, burst=3, recovery_s=0.5)
        assert [meter.allow(1, 0.0) for _ in range(5)] == [
            True, True, True, False, False,
        ]
        assert meter.storms_detected == 1
        assert meter.frames_suppressed == 2
        assert meter.suppressed(1, 0.4)
        assert not meter.suppressed(1, 0.6)

    def test_timed_recovery_refills_the_bucket(self):
        meter = StormControl(rate_fps=10, burst=2, recovery_s=0.1)
        for _ in range(3):
            meter.allow(1, 0.0)  # two admitted, third trips
        # Inside the hold: suppressed regardless of elapsed refill.
        assert meter.allow(1, 0.05) is False
        # Past the hold: recovery, full bucket again.
        assert meter.allow(1, 0.2) is True
        assert meter.allow(1, 0.2) is True
        assert meter.allow(1, 0.2) is False  # still storming: trips again
        assert meter.recoveries == 1
        assert meter.storms_detected == 2

    def test_partial_refill_between_frames(self):
        meter = StormControl(rate_fps=10, burst=4, recovery_s=1.0)
        for _ in range(4):
            assert meter.allow(1, 0.0) is True
        # 0.1 s at 10 fps buys exactly one token.
        assert meter.allow(1, 0.1) is True
        assert meter.allow(1, 0.1) is False

    def test_refill_caps_at_burst_depth(self):
        meter = StormControl(rate_fps=1000, burst=2)
        meter.allow(1, 0.0)
        # A long idle gap must not bank more than `burst` tokens.
        results = [meter.allow(1, 100.0) for _ in range(3)]
        assert results == [True, True, False]

    def test_ports_are_metered_independently(self):
        meter = StormControl(rate_fps=10, burst=1, recovery_s=1.0)
        assert meter.allow(1, 0.0) is True
        assert meter.allow(1, 0.0) is False  # port 1 tripped
        assert meter.allow(2, 0.0) is True  # port 2 untouched
        assert meter.triggered_ports() == [1]

    def test_stats_shape(self):
        meter = StormControl(rate_fps=10, burst=1, recovery_s=0.25)
        meter.allow(3, 0.0)
        meter.allow(3, 0.0)
        stats = meter.stats()
        assert stats["rate_fps"] == 10.0
        assert stats["burst"] == 1
        assert stats["recovery_s"] == 0.25
        assert stats["storms_detected"] == 1
        assert stats["frames_suppressed"] == 1
        assert stats["ports"][3]["storms_detected"] == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            StormControl(rate_fps=0)
        with pytest.raises(ValueError):
            StormControl(rate_fps=10, burst=0)
        with pytest.raises(ValueError):
            StormControl(rate_fps=10, recovery_s=0.0)


class TestLegacySwitchStormControl:
    """The meter wired into the legacy flood decision."""

    def build(self, storm_control=None):
        sim = Simulator()
        switch = LegacySwitch(sim, "sw", num_ports=4, processing_delay_s=0.0)
        switch.storm_control = storm_control
        gen = BurstSource(sim, "gen")
        sinks = [BurstSource(sim, f"sink{i}") for i in range(2)]
        Link(gen.port0, switch.port(1))
        for index, sink in enumerate(sinks):
            Link(sink.port0, switch.port(index + 2))
        return sim, switch, gen, sinks

    def blast(self, gen, frames_per_burst=8, bursts=5):
        """A dense broadcast train: 40 frames inside half a millisecond."""
        gen.start([
            (0.001 + index * 1e-4, storm_frames(frames_per_burst))
            for index in range(bursts)
        ])
        return frames_per_burst * bursts

    def test_storm_suppressed_at_ingress(self):
        meter = StormControl(rate_fps=100, burst=4, recovery_s=0.05)
        sim, switch, gen, sinks = self.build(meter)
        total = self.blast(gen)
        sim.run(until=0.1)
        admitted = switch.counters.flooded
        assert admitted < 10  # burst depth plus a trickle of refill
        assert switch.counters.storm_suppressed == total - admitted
        for sink in sinks:
            assert sink.rx_count == admitted
        assert meter.triggered_ports() == [1]

    def test_no_meter_means_full_meltdown(self):
        sim, switch, gen, sinks = self.build(storm_control=None)
        total = self.blast(gen)
        sim.run(until=0.1)
        assert switch.counters.flooded == total
        assert switch.counters.storm_suppressed == 0
        for sink in sinks:
            assert sink.rx_count == total

    def test_known_unicast_rides_through_a_suppressed_port(self):
        meter = StormControl(rate_fps=100, burst=2, recovery_s=10.0)
        sim, switch, gen, sinks = self.build(meter)
        target = MACAddress(0x02_00_00_00_0A_01)
        switch.fdb.add_static(1, target, 2)
        self.blast(gen)  # trips port 1 into a long suppression hold
        unicast = udp_frame(
            MACAddress(0x02_00_00_00_0B_01), target,
            IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"),
            1000, 2000, b"x",
        )
        sim.schedule_at(0.01, lambda: gen.port0.send(unicast))
        sim.run(until=0.1)
        assert meter.suppressed(1, sim.now)  # hold still active...
        assert sinks[0].rx_count >= 3  # ...but the known unicast landed

    def test_unknown_unicast_counts_flood_fallback(self):
        sim, switch, gen, sinks = self.build()
        stranger = udp_frame(
            MACAddress(0x02_00_00_00_0B_02), MACAddress(0x02_00_00_00_0C_03),
            IPv4Address("10.0.0.3"), IPv4Address("10.0.0.4"),
            1000, 2000, b"x",
        )
        gen.port0.send(stranger)
        sim.run(until=0.01)
        assert switch.fdb.flood_fallbacks == 1
        assert switch.counters.flooded == 1


def build_softswitch(num_ports=3, specialize=False):
    sim = Simulator()
    switch = SoftSwitch(
        sim, "ss", datapath_id=1, enable_specialization=specialize
    )
    sinks = []
    for index in range(num_ports):
        sink = BurstSource(sim, f"sink{index}")
        wire(
            switch, sink,
            bandwidth_bps=None, propagation_delay_s=0.0,
            queue_frames=100_000,
        )
        sinks.append(sink)
    return sim, switch, sinks


def install_flood(switch):
    switch.handle_message(FlowMod(
        match=Match(), priority=0,
        instructions=[ApplyActions(actions=(OutputAction(port=c.OFPP_FLOOD),))],
    ).to_bytes())


def install_miss_to_controller(switch):
    switch.handle_message(FlowMod(
        match=Match(), priority=0,
        instructions=[
            ApplyActions(actions=(OutputAction(port=c.OFPP_CONTROLLER),))
        ],
    ).to_bytes())


class TestDatapathFloodGuard:
    """The same meter guarding OFPP_FLOOD expansion on a migrated hop."""

    def test_guard_suppresses_flood_expansion(self):
        sim, switch, sinks = build_softswitch()
        install_flood(switch)
        switch.flood_guard = StormControl(rate_fps=100, burst=4, recovery_s=0.05)
        switch.process_batch(1, storm_frames(16))
        sim.run()
        assert switch.floods_suppressed == 12
        assert switch.stats()["floods_suppressed"] == 12
        # Four admitted frames flooded to the two non-ingress ports.
        assert sinks[1].rx_count == 4 and sinks[2].rx_count == 4
        assert sinks[0].rx_count == 0  # flood never reflects to ingress

    def test_no_guard_floods_everything(self):
        sim, switch, sinks = build_softswitch()
        install_flood(switch)
        switch.process_batch(1, storm_frames(16))
        sim.run()
        assert switch.floods_suppressed == 0
        assert sinks[1].rx_count == 16 and sinks[2].rx_count == 16

    def test_guard_meters_the_openflow_ingress_port(self):
        sim, switch, sinks = build_softswitch()
        install_flood(switch)
        guard = StormControl(rate_fps=100, burst=2, recovery_s=10.0)
        switch.flood_guard = guard
        switch.process_batch(1, storm_frames(8))  # trips port 1
        switch.inject(storm_frames(1)[0], 2)  # port 2 conforms
        sim.run()
        assert guard.triggered_ports() == [1]
        assert sinks[0].rx_count == 1  # port 2's flood reached port 1's sink


class TestMissSuppression:
    """The packet-in negative cache on the datapath."""

    def miss_frame(self, tag=0):
        return udp_frame(
            MACAddress(0x02_00_00_00_0D_01), MACAddress(0x02_00_00_00_0E_01 + tag),
            IPv4Address("10.0.1.1"), IPv4Address("10.0.1.2"),
            1000, 2000, b"x",
        )

    def build(self, window):
        sim, switch, _ = build_softswitch()
        install_miss_to_controller(switch)
        switch.miss_suppression_s = window
        pins = []
        switch.to_controller = pins.append
        return sim, switch, pins

    def test_repeat_misses_inside_window_cost_one_packet_in(self):
        sim, switch, pins = self.build(window=0.01)
        for _ in range(5):
            switch.inject(self.miss_frame(), 1)
        sim.run()
        assert len(pins) == 1
        assert switch.packet_ins_suppressed == 4
        assert switch.packets_to_controller == 1
        assert switch.stats()["packet_ins_suppressed"] == 4

    def test_window_expiry_readmits_the_signature(self):
        sim, switch, pins = self.build(window=0.01)
        switch.inject(self.miss_frame(), 1)
        sim.run(until=0.02)
        switch.inject(self.miss_frame(), 1)
        sim.run()
        assert len(pins) == 2
        assert switch.packet_ins_suppressed == 0

    def test_distinct_signatures_all_reach_the_controller(self):
        sim, switch, pins = self.build(window=0.01)
        for tag in range(4):
            switch.inject(self.miss_frame(tag), 1)
        switch.inject(self.miss_frame(0), 2)  # same flow, other port
        sim.run()
        assert len(pins) == 5
        assert switch.packet_ins_suppressed == 0

    def test_disabled_by_default(self):
        sim, switch, pins = self.build(window=0.0)
        for _ in range(5):
            switch.inject(self.miss_frame(), 1)
        sim.run()
        assert len(pins) == 5
        assert switch.packet_ins_suppressed == 0

    def test_pipeline_reset_clears_the_cache(self):
        sim, switch, pins = self.build(window=1e9)
        switch.inject(self.miss_frame(), 1)
        switch.reset_pipeline()
        install_miss_to_controller(switch)
        switch.inject(self.miss_frame(), 1)
        sim.run()
        assert len(pins) == 2  # fresh dynamic state after the crash


class TestPacketInLimiter:
    """The per-datapath packet-in token bucket on the control channel."""

    def build(self):
        sim = Simulator()
        switch = SoftSwitch(sim, "ss", datapath_id=0x88)
        hosts = []
        for index in range(2):
            host = Host(
                sim,
                f"h{index + 1}",
                MACAddress(0x02_00_00_00_00_51 + index),
                IPv4Address(f"10.6.0.{index + 1}"),
            )
            Link(host.port0, switch.add_port(index + 1))
            hosts.append(host)
        controller = Controller(sim)
        app = controller.add_app(LearningSwitchApp())
        datapath = controller.connect(switch)
        sim.run(until=0.05)  # handshake + table-miss install
        return sim, hosts, app, datapath

    def miss_train(self, host, count):
        """Frames to *count* distinct unknown MACs: every one a miss."""
        for tag in range(count):
            host.port0.send(udp_frame(
                host.mac, MACAddress(0x02_00_00_00_6000 + tag),
                host.ip, IPv4Address("10.6.0.200"),
                1000, 2000, b"x",
            ))

    def test_miss_storm_costs_bounded_controller_work(self):
        sim, (h1, _), app, datapath = self.build()
        channel = datapath.channel
        channel.configure_packetin_limit(rate_pps=50, burst=2)
        handled_before = app.packet_ins_handled
        self.miss_train(h1, 20)
        sim.run(until=0.2)
        assert channel.packet_ins_limited >= 15
        assert app.packet_ins_handled - handled_before <= 5

    def test_non_packet_in_messages_ride_past_an_empty_bucket(self):
        sim, (h1, _), app, datapath = self.build()
        channel = datapath.channel
        channel.configure_packetin_limit(rate_pps=1, burst=1)
        self.miss_train(h1, 10)
        sim.run(until=0.1)
        assert channel.packet_ins_limited > 0  # bucket is exhausted...
        before = channel.messages_to_controller
        echo = bytes([4, c.OFPT_ECHO_REPLY, 0, 8, 0, 0, 0, 0])
        channel._from_switch_async(echo)  # ...but an echo still passes
        assert channel.messages_to_controller == before + 1

    def test_generous_limit_leaves_steady_state_untouched(self):
        sim, (h1, h2), app, datapath = self.build()
        datapath.channel.configure_packetin_limit(rate_pps=10_000, burst=64)
        h1.ping(h2.ip)
        sim.run(until=2.0)
        assert len(h1.rtts()) == 1
        assert datapath.channel.packet_ins_limited == 0

    def test_disarm_restores_unlimited_delivery(self):
        sim, (h1, _), app, datapath = self.build()
        channel = datapath.channel
        channel.configure_packetin_limit(rate_pps=1, burst=1)
        channel.configure_packetin_limit(None)
        handled_before = app.packet_ins_handled
        self.miss_train(h1, 10)
        sim.run(until=0.2)
        assert channel.packet_ins_limited == 0
        assert app.packet_ins_handled - handled_before == 10

    def test_validation(self):
        sim, _, _, datapath = self.build()
        with pytest.raises(ValueError):
            datapath.channel.configure_packetin_limit(rate_pps=0)
        with pytest.raises(ValueError):
            datapath.channel.configure_packetin_limit(rate_pps=10, burst=0)
