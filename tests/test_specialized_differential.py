"""Randomized differential proof for the specialized datapath (tier 0).

The compiled program is only allowed to exist because it is
semantics-free: a switch with specialization enabled must produce
byte-identical emitted frames in identical order — and identical
packet-ins, flow/table/group counters and drop totals — to an
identically-provisioned switch running the PR 1-3 interpreted fast
path.  The suite drives both through ≥1000 randomly generated bursts
while control-plane churn flips the pipeline between compilable and
uncompilable shapes, so every phase is exercised: compiled execution,
compile-fallback windows (uncompilable rules, pending-mod hysteresis),
recompiles landing between bursts of live traffic, and — via a
synchronous reactive controller — mutations landing *mid-burst* while
the fallback interpreter is serving the remaining frames.
"""

import random

from repro.net import EthernetFrame, IPv4Address, MACAddress
from repro.net.build import tcp_frame, udp_frame
from repro.net.tcp import TcpSegment
from repro.netsim import Simulator
from repro.netsim.link import wire
from repro.netsim.node import Node
from repro.openflow import (
    ApplyActions,
    Bucket,
    FlowMod,
    GotoTable,
    GroupAction,
    GroupMod,
    Match,
    OutputAction,
    PopVlanAction,
    PushVlanAction,
    SetFieldAction,
)
from repro.openflow import consts as c
from repro.openflow.messages import PacketIn, parse_message
from repro.softswitch import DatapathCostModel, ESWITCH_COST_MODEL, SoftSwitch

ZERO_COST = DatapathCostModel.zero()

MACS = [MACAddress(0x020000000001 + i) for i in range(4)]
IPS = [IPv4Address(f"10.0.{i // 4}.{i % 4 + 1}") for i in range(8)]
PORTS = [53, 80, 443, 8080]


class Sink(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, port, frame):
        self.received.append((self.sim.now, frame.to_bytes()))


def random_frame(rng: random.Random) -> EthernetFrame:
    roll = rng.random()
    if roll < 0.1:  # non-IP: every L3/L4 flow-key slot is None
        return EthernetFrame(
            dst=rng.choice(MACS), src=rng.choice(MACS), ethertype=0x0806,
            payload=b"\x00" * 28,
        )
    src_mac, dst_mac = rng.choice(MACS), rng.choice(MACS)
    src_ip, dst_ip = rng.choice(IPS), rng.choice(IPS)
    vlan_id = rng.choice((None, None, 100, 101))
    if roll < 0.6:
        return udp_frame(
            src_mac, dst_mac, src_ip, dst_ip,
            rng.choice(PORTS), rng.choice(PORTS), b"x", vlan_id=vlan_id,
        )
    return tcp_frame(
        src_mac, dst_mac, src_ip, dst_ip,
        TcpSegment(rng.choice(PORTS), rng.choice(PORTS)), vlan_id=vlan_id,
    )


def random_match(rng: random.Random) -> Match:
    fields: dict = {}
    if rng.random() < 0.5:
        fields["in_port"] = rng.randint(1, 3)
    if rng.random() < 0.4:
        fields["eth_type"] = 0x0800
    if rng.random() < 0.3:
        fields["eth_dst"] = int(rng.choice(MACS))
    if rng.random() < 0.3:
        fields["vlan_vid"] = (
            0 if rng.random() < 0.3 else c.OFPVID_PRESENT | rng.randint(100, 101)
        )
    if rng.random() < 0.4:
        value = int(rng.choice(IPS))
        if rng.random() < 0.5:  # masked -> staged subtable probes
            bits = rng.choice((8, 16, 24))
            mask = (0xFFFFFFFF << (32 - bits)) & 0xFFFFFFFF
            fields["ipv4_dst"] = (value & mask, mask)
        else:
            fields["ipv4_dst"] = value
    if rng.random() < 0.3:
        name = rng.choice(("udp_dst", "udp_src", "tcp_dst", "tcp_src"))
        fields[name] = rng.choice(PORTS)
    return Match(**fields)


def compilable_instructions(rng: random.Random):
    """Instruction lists the compiler supports, weighted to each plan kind."""
    roll = rng.random()
    if roll < 0.12:
        return []  # matched-drop (no-op plan)
    if roll < 0.2:
        # Output to a port that does not exist: the drop-at-output path.
        return [ApplyActions(actions=(OutputAction(port=9),))]
    actions = [OutputAction(port=rng.randint(1, 3))]
    extra = rng.random()
    if extra < 0.2:
        actions.insert(
            0, SetFieldAction(field="eth_dst", value=int(rng.choice(MACS)))
        )
    elif extra < 0.35:
        actions = [
            PushVlanAction(),
            SetFieldAction.vlan_vid(rng.randint(100, 101)),
            OutputAction(port=rng.randint(1, 3)),
        ]
    elif extra < 0.45:
        actions = [PopVlanAction(), OutputAction(port=rng.randint(1, 3))]
    elif extra < 0.55:
        actions.append(OutputAction(port=rng.randint(1, 3)))  # two outputs
    return [ApplyActions(actions=tuple(actions))]


def uncompilable_flow_mod(rng: random.Random) -> FlowMod:
    """An install that forces the switch back onto the interpreter."""
    roll = rng.random()
    if roll < 0.3:  # multi-table walk
        return FlowMod(
            table_id=0,
            match=random_match(rng),
            priority=rng.randint(0, 30),
            instructions=[GotoTable(table_id=1)],
        )
    if roll < 0.5:  # second-table occupancy
        return FlowMod(
            table_id=1,
            match=random_match(rng),
            priority=rng.randint(0, 30),
            instructions=[ApplyActions(actions=(OutputAction(port=rng.randint(1, 3)),))],
        )
    if roll < 0.7:  # group execution
        return FlowMod(
            match=random_match(rng),
            priority=rng.randint(0, 30),
            instructions=[ApplyActions(actions=(GroupAction(group_id=1),))],
        )
    if roll < 0.85:  # packet-in
        return FlowMod(
            match=random_match(rng),
            priority=rng.randint(0, 30),
            instructions=[ApplyActions(actions=(OutputAction(port=c.OFPP_CONTROLLER),))],
        )
    return FlowMod(  # mortal flow: expiry re-arbitration
        match=random_match(rng),
        priority=rng.randint(0, 30),
        hard_timeout=rng.choice((1, 2)),
        instructions=[ApplyActions(actions=(OutputAction(port=rng.randint(1, 3)),))],
    )


def random_churn_message(rng: random.Random):
    roll = rng.random()
    if roll < 0.45:
        return FlowMod(
            match=random_match(rng),
            priority=rng.randint(0, 30),
            instructions=compilable_instructions(rng),
        )
    if roll < 0.57:
        return uncompilable_flow_mod(rng)
    if roll < 0.68:  # purge the second table: flips goto pipelines back
        return FlowMod(
            table_id=1, command=c.OFPFC_DELETE, match=Match()
        )
    if roll < 0.8:  # random deletes (empty matches wipe whole tables)
        return FlowMod(
            table_id=rng.choice((0, 0, 0, 1)),
            command=rng.choice((c.OFPFC_DELETE, c.OFPFC_DELETE_STRICT)),
            match=random_match(rng),
            priority=rng.randint(0, 30),
        )
    if roll < 0.93:
        return FlowMod(
            command=rng.choice((c.OFPFC_MODIFY, c.OFPFC_MODIFY_STRICT)),
            match=random_match(rng),
            priority=rng.randint(0, 30),
            instructions=compilable_instructions(rng),
        )
    return GroupMod(
        command=c.OFPGC_MODIFY,
        group_type=c.OFPGT_SELECT,
        group_id=1,
        buckets=[
            Bucket(actions=[OutputAction(port=rng.randint(1, 3))], weight=1),
            Bucket(
                actions=[OutputAction(port=rng.randint(1, 3))],
                weight=rng.randint(1, 3),
            ),
        ],
    )


def build_rig(cost_model, specialize, num_ports=3):
    sim = Simulator()
    switch = SoftSwitch(
        sim,
        "ss",
        datapath_id=1,
        cost_model=cost_model,
        enable_specialization=specialize,
    )
    # Tight hysteresis: recompile on the first packet after any mod, so
    # the suite flips between compiled and interpreted constantly.
    switch.recompile_after_mods = 1
    switch.recompile_quiescent_s = 0.0
    sinks = []
    for index in range(num_ports):
        sink = Sink(sim, f"sink{index}")
        wire(
            switch,
            sink,
            bandwidth_bps=None,
            propagation_delay_s=0.0,
            queue_frames=100_000,
        )
        sinks.append(sink)
    packet_ins: list[bytes] = []
    switch.to_controller = packet_ins.append
    base = [
        GroupMod(
            command=c.OFPGC_ADD,
            group_type=c.OFPGT_SELECT,
            group_id=1,
            buckets=[
                Bucket(actions=[OutputAction(port=2)], weight=1),
                Bucket(actions=[OutputAction(port=3)], weight=2),
            ],
        ),
        FlowMod(
            match=Match(in_port=1),
            priority=3,
            instructions=[ApplyActions(actions=(OutputAction(port=2),))],
        ),
        FlowMod(match=Match(), priority=0, instructions=[]),
    ]
    for message in base:
        assert switch.handle_message(message.to_bytes()) == []
    return sim, switch, sinks, packet_ins


def assert_identical(spec_rig, interp_rig):
    _, spec, sinks_a, pins_a = spec_rig
    _, interp, sinks_b, pins_b = interp_rig
    for index, (sink_a, sink_b) in enumerate(zip(sinks_a, sinks_b)):
        assert sink_a.received == sink_b.received, f"sink {index} diverged"
    assert pins_a == pins_b
    assert spec.packets_forwarded == interp.packets_forwarded
    assert spec.packets_dropped == interp.packets_dropped
    assert spec.packets_to_controller == interp.packets_to_controller
    assert spec.dump_pipeline() == interp.dump_pipeline()  # per-entry counters
    for table_a, table_b in zip(spec.tables, interp.tables):
        assert table_a.lookups == table_b.lookups
        assert table_a.matches == table_b.matches
    group_a, group_b = spec.groups.get(1), interp.groups.get(1)
    assert group_a.packet_count == group_b.packet_count
    assert group_a.bucket_packet_counts == group_b.bucket_packet_counts


def run_differential(seed, rounds, bursts_per_round, cost_model):
    """Returns (bursts compared, aggregated specialization stats)."""
    rng = random.Random(seed)
    bursts_done = 0
    totals = {
        "specialized_frames": 0,
        "fallback_frames": 0,
        "compiles": 0,
        "compile_failures": 0,
        "invalidations": 0,
    }
    for _ in range(rounds):
        spec_rig = build_rig(cost_model, specialize=True)
        interp_rig = build_rig(cost_model, specialize=False)
        sim_a, spec, _, _ = spec_rig
        sim_b, interp, _, _ = interp_rig
        pool = [random_frame(rng) for _ in range(24)]
        clock = 0.0
        for _ in range(bursts_per_round):
            clock += rng.random() * 0.12  # lets mortal flows expire mid-run
            sim_a.run(until=clock)
            sim_b.run(until=clock)
            if rng.random() < 0.3:
                message = random_churn_message(rng).to_bytes()
                assert spec.handle_message(message) == interp.handle_message(message)
            size = rng.choice((1, 2, 3, 4, 6, 8, 8, 12))
            frames = [pool[rng.randrange(len(pool))] for _ in range(size)]
            in_port = 1 if rng.random() < 0.7 else rng.randint(2, 3)
            if size == 1 and rng.random() < 0.5:
                spec.inject(frames[0], in_port)
                interp.inject(frames[0], in_port)
            else:
                spec.process_batch(in_port, list(frames))
                interp.process_batch(in_port, list(frames))
            bursts_done += 1
        sim_a.run()
        sim_b.run()
        assert_identical(spec_rig, interp_rig)
        stats = spec.stats()["specialization"]
        for key in totals:
            totals[key] += stats[key]
    return bursts_done, totals


class TestSpecializedDifferential:
    def test_zero_cost_differential(self):
        """≥600 bursts with immediate (coalesced) egress."""
        bursts, totals = run_differential(
            0x5BEC, rounds=4, bursts_per_round=150, cost_model=ZERO_COST
        )
        assert bursts == 600
        # Every phase was actually exercised (deterministic seed).
        assert totals["specialized_frames"] > 400
        assert totals["fallback_frames"] > 1000
        assert totals["compiles"] >= 15
        assert totals["compile_failures"] > 50  # uncompilable windows
        assert totals["invalidations"] >= 15  # recompiles amid live traffic

    def test_eswitch_cost_deferred_emission(self):
        """≥400 bursts where every emission defers past the CPU charge."""
        bursts, totals = run_differential(
            0xE5C0DE, rounds=4, bursts_per_round=110, cost_model=ESWITCH_COST_MODEL
        )
        assert bursts == 440
        assert totals["specialized_frames"] > 500
        assert totals["fallback_frames"] > 500

    def test_mid_burst_mutation_via_reactive_controller(self):
        """A zero-latency controller wired straight back into
        handle_message reacts to a packet-in *between frames of one
        burst*: it deletes the packet-in rule and installs a concrete
        forwarding flow, so the pipeline becomes compilable while the
        fallback interpreter is still serving the rest of the burst.
        The next burst then runs compiled.  Both switches must agree on
        every frame, packet-in and counter through the transition."""
        rigs = []
        for specialize in (True, False):
            rig = build_rig(ZERO_COST, specialize=specialize)
            _, switch, _, packet_ins = rig

            def reactive(raw, switch=switch, log=packet_ins):
                log.append(raw)
                message = parse_message(raw)
                if not isinstance(message, PacketIn):
                    return
                frame = EthernetFrame.from_bytes(message.data)
                switch.handle_message(
                    FlowMod(
                        command=c.OFPFC_DELETE_STRICT,
                        match=Match(in_port=2),
                        priority=8,
                    ).to_bytes()
                )
                switch.handle_message(
                    FlowMod(
                        match=Match(eth_dst=int(frame.dst)),
                        priority=9,
                        instructions=[ApplyActions(actions=(OutputAction(port=3),))],
                    ).to_bytes()
                )

            switch.to_controller = reactive
            switch.handle_message(
                FlowMod(
                    match=Match(in_port=2),
                    priority=8,
                    instructions=[
                        ApplyActions(actions=(OutputAction(port=c.OFPP_CONTROLLER),))
                    ],
                ).to_bytes()
            )
            rigs.append(rig)

        spec_rig, interp_rig = rigs
        _, spec, _, _ = spec_rig
        _, interp, _, _ = interp_rig
        frame = udp_frame(MACS[0], MACS[1], IPS[0], IPS[1], 53, 80, b"x")
        burst = [frame] * 6
        for rig_switch in (spec, interp):
            rig_switch.process_batch(2, list(burst))  # packet-in at frame 1
        assert spec.program is None or spec.specialized_frames == 0
        # After the reactive rewrite the pipeline is compilable: the
        # follow-up burst (eth_dst now has a concrete rule) compiles.
        follow = [frame] * 6
        for rig_switch in (spec, interp):
            rig_switch.process_batch(2, list(follow))
        spec_rig[0].run()
        interp_rig[0].run()
        assert spec.program is not None
        assert spec.specialized_frames == 6
        assert_identical(spec_rig, interp_rig)

    def test_compiled_burst_equals_compiled_sequential(self):
        """run_burst vs run_one on the *same* compiled engine: a burst
        through the specialized tier must match the same frames pushed
        one at a time through it, across churn-driven recompiles."""
        rng = random.Random(0xB0B5)
        burst_rig = build_rig(ZERO_COST, specialize=True)
        seq_rig = build_rig(ZERO_COST, specialize=True)
        sim_a, burst_switch, _, _ = burst_rig
        sim_b, seq_switch, _, _ = seq_rig
        pool = [random_frame(rng) for _ in range(16)]
        clock = 0.0
        for _ in range(200):
            clock += rng.random() * 0.05
            sim_a.run(until=clock)
            sim_b.run(until=clock)
            if rng.random() < 0.2:
                message = FlowMod(
                    match=random_match(rng),
                    priority=rng.randint(0, 30),
                    instructions=compilable_instructions(rng),
                ).to_bytes()
                assert burst_switch.handle_message(message) == (
                    seq_switch.handle_message(message)
                )
            size = rng.choice((2, 3, 4, 6, 8, 12))
            frames = [pool[rng.randrange(len(pool))] for _ in range(size)]
            in_port = rng.randint(1, 3)
            burst_switch.process_batch(in_port, list(frames))
            for frame in frames:
                seq_switch.inject(frame, in_port)
        sim_a.run()
        sim_b.run()
        # Both engines actually ran compiled (pipeline stays compilable).
        assert burst_switch.specialized_frames > 500
        assert seq_switch.specialized_frames == burst_switch.specialized_frames
        assert_identical(burst_rig, seq_rig)

    def test_case_count_meets_acceptance(self):
        """The two randomized suites together exceed 1000 compared bursts."""
        assert 600 + 440 >= 1000
