"""Randomized differential proof for the specialized datapath (tier 0).

The compiled program is only allowed to exist because it is
semantics-free: a switch with specialization enabled must produce
byte-identical emitted frames in identical order — and identical
packet-ins, flow/table/group counters and drop totals — to an
identically-provisioned switch running the PR 1-3 interpreted fast
path.  Each case family drives both through ≥1000 randomly generated
churn-interleaved bursts along one eligibility dimension the compiler
now covers — goto-table chains, group execution (all / select /
indirect / dead references), idle- and hard-timeout expiry — plus the
mixed suite that flips between compiled execution, per-entry FALLBACK
windows (packet-ins, floods, transform-before-goto), recompiles
landing between bursts of live traffic, and — via a synchronous
reactive controller — mutations landing *mid-burst* while the
fallback interpreter is serving the remaining frames.

Set ``DIFFERENTIAL_SCALE=<n>`` to multiply every family's case count
(the nightly job runs at 5×).  On any divergence the failing seed is
printed so the case reproduces standalone.
"""

import os
import random

from repro.net import EthernetFrame, IPv4Address, MACAddress
from repro.net.build import tcp_frame, udp_frame
from repro.net.tcp import TcpSegment
from repro.netsim import Simulator
from repro.netsim.link import wire
from repro.netsim.node import Node
from repro.openflow import (
    ApplyActions,
    Bucket,
    FlowMod,
    GotoTable,
    GroupAction,
    GroupMod,
    Match,
    OutputAction,
    PopVlanAction,
    PushVlanAction,
    SetFieldAction,
)
from repro.openflow import consts as c
from repro.openflow.messages import PacketIn, parse_message
from repro.softswitch import DatapathCostModel, ESWITCH_COST_MODEL, SoftSwitch

ZERO_COST = DatapathCostModel.zero()

#: Case-count multiplier; the nightly extended job sets this to 5.
SCALE = max(1, int(os.environ.get("DIFFERENTIAL_SCALE", "1")))

MACS = [MACAddress(0x020000000001 + i) for i in range(4)]
IPS = [IPv4Address(f"10.0.{i // 4}.{i % 4 + 1}") for i in range(8)]
PORTS = [53, 80, 443, 8080]


class Sink(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, port, frame):
        self.received.append((self.sim.now, frame.to_bytes()))


def random_frame(rng: random.Random) -> EthernetFrame:
    roll = rng.random()
    if roll < 0.1:  # non-IP: every L3/L4 flow-key slot is None
        return EthernetFrame(
            dst=rng.choice(MACS), src=rng.choice(MACS), ethertype=0x0806,
            payload=b"\x00" * 28,
        )
    src_mac, dst_mac = rng.choice(MACS), rng.choice(MACS)
    src_ip, dst_ip = rng.choice(IPS), rng.choice(IPS)
    vlan_id = rng.choice((None, None, 100, 101))
    if roll < 0.6:
        return udp_frame(
            src_mac, dst_mac, src_ip, dst_ip,
            rng.choice(PORTS), rng.choice(PORTS), b"x", vlan_id=vlan_id,
        )
    return tcp_frame(
        src_mac, dst_mac, src_ip, dst_ip,
        TcpSegment(rng.choice(PORTS), rng.choice(PORTS)), vlan_id=vlan_id,
    )


def random_match(rng: random.Random) -> Match:
    fields: dict = {}
    if rng.random() < 0.5:
        fields["in_port"] = rng.randint(1, 3)
    if rng.random() < 0.4:
        fields["eth_type"] = 0x0800
    if rng.random() < 0.3:
        fields["eth_dst"] = int(rng.choice(MACS))
    if rng.random() < 0.3:
        fields["vlan_vid"] = (
            0 if rng.random() < 0.3 else c.OFPVID_PRESENT | rng.randint(100, 101)
        )
    if rng.random() < 0.4:
        value = int(rng.choice(IPS))
        if rng.random() < 0.5:  # masked -> staged subtable probes
            bits = rng.choice((8, 16, 24))
            mask = (0xFFFFFFFF << (32 - bits)) & 0xFFFFFFFF
            fields["ipv4_dst"] = (value & mask, mask)
        else:
            fields["ipv4_dst"] = value
    if rng.random() < 0.3:
        name = rng.choice(("udp_dst", "udp_src", "tcp_dst", "tcp_src"))
        fields[name] = rng.choice(PORTS)
    return Match(**fields)


def compilable_instructions(rng: random.Random):
    """Instruction lists the compiler supports, weighted to each plan kind."""
    roll = rng.random()
    if roll < 0.12:
        return []  # matched-drop (no-op plan)
    if roll < 0.2:
        # Output to a port that does not exist: the drop-at-output path.
        return [ApplyActions(actions=(OutputAction(port=9),))]
    actions = [OutputAction(port=rng.randint(1, 3))]
    extra = rng.random()
    if extra < 0.2:
        actions.insert(
            0, SetFieldAction(field="eth_dst", value=int(rng.choice(MACS)))
        )
    elif extra < 0.35:
        actions = [
            PushVlanAction(),
            SetFieldAction.vlan_vid(rng.randint(100, 101)),
            OutputAction(port=rng.randint(1, 3)),
        ]
    elif extra < 0.45:
        actions = [PopVlanAction(), OutputAction(port=rng.randint(1, 3))]
    elif extra < 0.55:
        actions.append(OutputAction(port=rng.randint(1, 3)))  # two outputs
    return [ApplyActions(actions=tuple(actions))]


def fallback_flow_mod(rng: random.Random) -> FlowMod:
    """An install the compiler must route through a FALLBACK decision.

    These shapes (packet-ins, floods, transforms before a goto) are the
    only per-entry escapes left now that chains, groups and timeouts
    compile; they keep the mixed suite flipping between tier 0 and the
    interpreter mid-traffic.
    """
    roll = rng.random()
    if roll < 0.4:  # packet-in
        return FlowMod(
            match=random_match(rng),
            priority=rng.randint(0, 30),
            instructions=[ApplyActions(actions=(OutputAction(port=c.OFPP_CONTROLLER),))],
        )
    if roll < 0.7:  # flood
        return FlowMod(
            match=random_match(rng),
            priority=rng.randint(0, 30),
            instructions=[ApplyActions(actions=(OutputAction(port=c.OFPP_FLOOD),))],
        )
    return FlowMod(  # frame transform before a table walk continues
        table_id=0,
        match=random_match(rng),
        priority=rng.randint(0, 30),
        instructions=[
            ApplyActions(
                actions=(SetFieldAction(field="eth_dst", value=int(rng.choice(MACS))),)
            ),
            GotoTable(table_id=1),
        ],
    )


def chain_churn_message(rng: random.Random):
    """Multi-table family: goto chains, later-table rules, mid-walk misses."""
    roll = rng.random()
    if roll < 0.3:  # a goto hop deeper into the pipeline
        src = rng.choice((0, 0, 0, 1))
        return FlowMod(
            table_id=src,
            match=random_match(rng),
            priority=rng.randint(0, 30),
            instructions=[GotoTable(table_id=rng.randint(src + 1, 3))],
        )
    if roll < 0.55:  # terminal rule in a later table
        return FlowMod(
            table_id=rng.randint(1, 3),
            match=random_match(rng),
            priority=rng.randint(0, 30),
            instructions=compilable_instructions(rng),
        )
    if roll < 0.65:  # an output before the hop (legal: no transform)
        return FlowMod(
            table_id=rng.choice((0, 1)),
            match=random_match(rng),
            priority=rng.randint(0, 30),
            instructions=[
                ApplyActions(actions=(OutputAction(port=rng.randint(1, 3)),)),
                GotoTable(table_id=rng.randint(2, 3)),
            ],
        )
    if roll < 0.75:  # transform-before-goto: per-entry fallback inside the family
        return fallback_flow_mod(rng)
    if roll < 0.88:  # wipe a later table: live chains start missing mid-walk
        return FlowMod(
            table_id=rng.randint(1, 3), command=c.OFPFC_DELETE, match=Match()
        )
    return FlowMod(
        table_id=rng.choice((0, 1, 2)),
        command=rng.choice((c.OFPFC_DELETE, c.OFPFC_DELETE_STRICT)),
        match=random_match(rng),
        priority=rng.randint(0, 30),
    )


def random_buckets(rng: random.Random) -> "list[Bucket]":
    buckets = []
    for _ in range(rng.randint(1, 3)):
        actions = [OutputAction(port=rng.randint(1, 3))]
        if rng.random() < 0.4:  # rewrite-then-forward, as the LB use case does
            actions.insert(
                0, SetFieldAction(field="eth_dst", value=int(rng.choice(MACS)))
            )
        buckets.append(Bucket(actions=actions, weight=rng.randint(1, 3)))
    return buckets


def group_churn_message(rng: random.Random):
    """Group family: all/select/indirect execution, remaps, dead references."""
    roll = rng.random()
    if roll < 0.4:  # point a flow at a group — sometimes one that never exists
        return FlowMod(
            match=random_match(rng),
            priority=rng.randint(0, 30),
            instructions=[
                ApplyActions(
                    actions=(GroupAction(group_id=rng.choice((1, 2, 3, 3, 9))),)
                )
            ],
        )
    if roll < 0.5:  # group execution at the end of a chain
        return FlowMod(
            table_id=rng.choice((0, 1)),
            match=random_match(rng),
            priority=rng.randint(0, 30),
            instructions=[GotoTable(table_id=rng.randint(1, 3))]
            if rng.random() < 0.5
            else [ApplyActions(actions=(GroupAction(group_id=rng.choice((1, 2)),),))],
        )
    if roll < 0.85:  # reshape a group (type flips included)
        group_type = rng.choice((c.OFPGT_ALL, c.OFPGT_SELECT, c.OFPGT_SELECT))
        buckets = random_buckets(rng)
        if group_type == c.OFPGT_INDIRECT:
            buckets = buckets[:1]
        return GroupMod(
            command=rng.choice((c.OFPGC_ADD, c.OFPGC_MODIFY, c.OFPGC_MODIFY)),
            group_type=group_type,
            group_id=rng.choice((1, 2, 3)),
            buckets=buckets,
        )
    if roll < 0.93:  # indirect group (single bucket by definition)
        return GroupMod(
            command=rng.choice((c.OFPGC_ADD, c.OFPGC_MODIFY)),
            group_type=c.OFPGT_INDIRECT,
            group_id=rng.choice((2, 3)),
            buckets=random_buckets(rng)[:1],
        )
    return GroupMod(  # delete: flows referencing it now drop (dead group)
        command=c.OFPGC_DELETE,
        group_type=c.OFPGT_ALL,
        group_id=rng.choice((2, 3)),
        buckets=[],
    )


def mortal_churn_message(rng: random.Random):
    """Timeout family: idle/hard expiry landing between live bursts."""
    roll = rng.random()
    if roll < 0.65:
        return FlowMod(
            table_id=rng.choice((0, 0, 0, 1)),
            match=random_match(rng),
            priority=rng.randint(0, 30),
            idle_timeout=rng.choice((0, 0, 1)),
            hard_timeout=rng.choice((0, 1, 1, 2)),
            instructions=compilable_instructions(rng),
        )
    if roll < 0.8:  # a mortal hop: the chain dies when the goto rule does
        return FlowMod(
            table_id=0,
            match=random_match(rng),
            priority=rng.randint(0, 30),
            hard_timeout=rng.choice((1, 2)),
            instructions=[GotoTable(table_id=1)],
        )
    if roll < 0.9:  # immortal churn mixed in: recompiles amid expiry
        return FlowMod(
            match=random_match(rng),
            priority=rng.randint(0, 30),
            instructions=compilable_instructions(rng),
        )
    return FlowMod(
        table_id=rng.choice((0, 1)),
        command=c.OFPFC_DELETE,
        match=random_match(rng),
        priority=rng.randint(0, 30),
    )


def random_churn_message(rng: random.Random):
    roll = rng.random()
    if roll < 0.45:
        return FlowMod(
            match=random_match(rng),
            priority=rng.randint(0, 30),
            instructions=compilable_instructions(rng),
        )
    if roll < 0.57:
        return fallback_flow_mod(rng)
    if roll < 0.68:  # purge the second table: flips goto pipelines back
        return FlowMod(
            table_id=1, command=c.OFPFC_DELETE, match=Match()
        )
    if roll < 0.8:  # random deletes (empty matches wipe whole tables)
        return FlowMod(
            table_id=rng.choice((0, 0, 0, 1)),
            command=rng.choice((c.OFPFC_DELETE, c.OFPFC_DELETE_STRICT)),
            match=random_match(rng),
            priority=rng.randint(0, 30),
        )
    if roll < 0.93:
        return FlowMod(
            command=rng.choice((c.OFPFC_MODIFY, c.OFPFC_MODIFY_STRICT)),
            match=random_match(rng),
            priority=rng.randint(0, 30),
            instructions=compilable_instructions(rng),
        )
    return GroupMod(
        command=c.OFPGC_MODIFY,
        group_type=c.OFPGT_SELECT,
        group_id=1,
        buckets=[
            Bucket(actions=[OutputAction(port=rng.randint(1, 3))], weight=1),
            Bucket(
                actions=[OutputAction(port=rng.randint(1, 3))],
                weight=rng.randint(1, 3),
            ),
        ],
    )


def build_rig(cost_model, specialize, num_ports=3):
    sim = Simulator()
    switch = SoftSwitch(
        sim,
        "ss",
        datapath_id=1,
        cost_model=cost_model,
        enable_specialization=specialize,
    )
    # Tight hysteresis: recompile on the first packet after any mod, so
    # the suite flips between compiled and interpreted constantly.
    switch.recompile_after_mods = 1
    switch.recompile_quiescent_s = 0.0
    sinks = []
    for index in range(num_ports):
        sink = Sink(sim, f"sink{index}")
        wire(
            switch,
            sink,
            bandwidth_bps=None,
            propagation_delay_s=0.0,
            queue_frames=100_000,
        )
        sinks.append(sink)
    packet_ins: list[bytes] = []
    switch.to_controller = packet_ins.append
    base = [
        GroupMod(
            command=c.OFPGC_ADD,
            group_type=c.OFPGT_SELECT,
            group_id=1,
            buckets=[
                Bucket(actions=[OutputAction(port=2)], weight=1),
                Bucket(actions=[OutputAction(port=3)], weight=2),
            ],
        ),
        FlowMod(
            match=Match(in_port=1),
            priority=3,
            instructions=[ApplyActions(actions=(OutputAction(port=2),))],
        ),
        FlowMod(match=Match(), priority=0, instructions=[]),
    ]
    for message in base:
        assert switch.handle_message(message.to_bytes()) == []
    return sim, switch, sinks, packet_ins


def assert_identical(spec_rig, interp_rig):
    _, spec, sinks_a, pins_a = spec_rig
    _, interp, sinks_b, pins_b = interp_rig
    for index, (sink_a, sink_b) in enumerate(zip(sinks_a, sinks_b)):
        assert sink_a.received == sink_b.received, f"sink {index} diverged"
    assert pins_a == pins_b
    assert spec.packets_forwarded == interp.packets_forwarded
    assert spec.packets_dropped == interp.packets_dropped
    assert spec.packets_to_controller == interp.packets_to_controller
    assert spec.dump_pipeline() == interp.dump_pipeline()  # per-entry counters
    for table_a, table_b in zip(spec.tables, interp.tables):
        assert table_a.lookups == table_b.lookups
        assert table_a.matches == table_b.matches
    assert spec.groups.dump() == interp.groups.dump()
    for group_id in range(10):
        group_a, group_b = spec.groups.get(group_id), interp.groups.get(group_id)
        assert (group_a is None) == (group_b is None), f"group {group_id} presence"
        if group_a is not None:
            assert group_a.packet_count == group_b.packet_count, f"group {group_id}"
            assert group_a.bucket_packet_counts == group_b.bucket_packet_counts


def run_differential(
    seed,
    rounds,
    bursts_per_round,
    cost_model,
    churn=random_churn_message,
    churn_prob=0.3,
    clock_step=0.12,
):
    """Returns (bursts compared, aggregated specialization stats).

    *churn* picks the case family; on any divergence the seed and the
    family are printed so the failing case reproduces standalone.
    """
    rng = random.Random(seed)
    bursts_done = 0
    totals = {
        "specialized_frames": 0,
        "fallback_frames": 0,
        "compiles": 0,
        "compile_failures": 0,
        "invalidations": 0,
    }
    try:
        for _ in range(rounds):
            spec_rig = build_rig(cost_model, specialize=True)
            interp_rig = build_rig(cost_model, specialize=False)
            sim_a, spec, _, _ = spec_rig
            sim_b, interp, _, _ = interp_rig
            pool = [random_frame(rng) for _ in range(24)]
            clock = 0.0
            for _ in range(bursts_per_round):
                clock += rng.random() * clock_step  # lets mortal flows expire
                sim_a.run(until=clock)
                sim_b.run(until=clock)
                if rng.random() < churn_prob:
                    message = churn(rng).to_bytes()
                    assert spec.handle_message(message) == (
                        interp.handle_message(message)
                    )
                size = rng.choice((1, 2, 3, 4, 6, 8, 8, 12))
                frames = [pool[rng.randrange(len(pool))] for _ in range(size)]
                in_port = 1 if rng.random() < 0.7 else rng.randint(2, 3)
                if size == 1 and rng.random() < 0.5:
                    spec.inject(frames[0], in_port)
                    interp.inject(frames[0], in_port)
                else:
                    spec.process_batch(in_port, list(frames))
                    interp.process_batch(in_port, list(frames))
                bursts_done += 1
            sim_a.run()
            sim_b.run()
            assert_identical(spec_rig, interp_rig)
            stats = spec.stats()["specialization"]
            for key in totals:
                totals[key] += stats[key]
    except AssertionError:
        print(
            f"\nDIFFERENTIAL FAILURE: seed=0x{seed:X} family={churn.__name__} "
            f"rounds={rounds} bursts_per_round={bursts_per_round} "
            f"cost_model={'zero' if cost_model is ZERO_COST else 'eswitch'} "
            f"burst_index={bursts_done}"
        )
        raise
    return bursts_done, totals


class TestSpecializedDifferential:
    def test_zero_cost_differential(self):
        """≥600 mixed bursts with immediate (coalesced) egress."""
        bursts, totals = run_differential(
            0x5BEC, rounds=4, bursts_per_round=150 * SCALE, cost_model=ZERO_COST
        )
        assert bursts == 600 * SCALE
        # Every phase was actually exercised (deterministic seed).
        assert totals["specialized_frames"] > 400
        assert totals["fallback_frames"] > 100  # packet-in / flood escapes
        assert totals["compiles"] >= 10
        assert totals["invalidations"] >= 10  # recompiles amid live traffic

    def test_eswitch_cost_deferred_emission(self):
        """≥400 bursts where every emission defers past the CPU charge."""
        bursts, totals = run_differential(
            0xE5C0DE,
            rounds=4,
            bursts_per_round=110 * SCALE,
            cost_model=ESWITCH_COST_MODEL,
        )
        assert bursts == 440 * SCALE
        assert totals["specialized_frames"] > 500
        assert totals["fallback_frames"] > 100

    def test_multi_table_chain_family(self):
        """≥1000 bursts of goto-chain churn: hops up to table 3, chains
        dying mid-walk as later tables are wiped, outputs before hops,
        and transform-before-goto entries falling back per entry."""
        bursts, totals = run_differential(
            0xC4A1,
            rounds=4,
            bursts_per_round=250 * SCALE,
            cost_model=ZERO_COST,
            churn=chain_churn_message,
            churn_prob=0.35,
        )
        assert bursts == 1000 * SCALE
        assert totals["specialized_frames"] > 1000
        assert totals["compiles"] >= 10

    def test_group_family(self):
        """≥1000 bursts of group churn: all/select/indirect execution,
        type flips, bucket remaps landing between bursts, and flows
        pointed at groups that never existed (dead-group drops)."""
        bursts, totals = run_differential(
            0x6B0B,
            rounds=4,
            bursts_per_round=250 * SCALE,
            cost_model=ZERO_COST,
            churn=group_churn_message,
            churn_prob=0.35,
        )
        assert bursts == 1000 * SCALE
        assert totals["specialized_frames"] > 1000
        assert totals["invalidations"] >= 10  # group mods mark stale

    def test_timeout_family(self):
        """≥1000 bursts with idle/hard timeouts armed: expiry lands
        between bursts while compiled decisions for the dead entries
        are still cached, forcing the mortal revalidation path."""
        bursts, totals = run_differential(
            0x7E0D,
            rounds=4,
            bursts_per_round=250 * SCALE,
            cost_model=ZERO_COST,
            churn=mortal_churn_message,
            churn_prob=0.35,
            clock_step=0.3,  # wider steps: timeouts actually land
        )
        assert bursts == 1000 * SCALE
        assert totals["specialized_frames"] > 1000
        assert totals["compiles"] >= 10

    def test_mid_burst_mutation_via_reactive_controller(self):
        """A zero-latency controller wired straight back into
        handle_message reacts to a packet-in *between frames of one
        burst*: it deletes the packet-in rule and installs a concrete
        forwarding flow, so the pipeline becomes compilable while the
        fallback interpreter is still serving the rest of the burst.
        The next burst then runs compiled.  Both switches must agree on
        every frame, packet-in and counter through the transition."""
        rigs = []
        for specialize in (True, False):
            rig = build_rig(ZERO_COST, specialize=specialize)
            _, switch, _, packet_ins = rig

            def reactive(raw, switch=switch, log=packet_ins):
                log.append(raw)
                message = parse_message(raw)
                if not isinstance(message, PacketIn):
                    return
                frame = EthernetFrame.from_bytes(message.data)
                switch.handle_message(
                    FlowMod(
                        command=c.OFPFC_DELETE_STRICT,
                        match=Match(in_port=2),
                        priority=8,
                    ).to_bytes()
                )
                switch.handle_message(
                    FlowMod(
                        match=Match(eth_dst=int(frame.dst)),
                        priority=9,
                        instructions=[ApplyActions(actions=(OutputAction(port=3),))],
                    ).to_bytes()
                )

            switch.to_controller = reactive
            switch.handle_message(
                FlowMod(
                    match=Match(in_port=2),
                    priority=8,
                    instructions=[
                        ApplyActions(actions=(OutputAction(port=c.OFPP_CONTROLLER),))
                    ],
                ).to_bytes()
            )
            rigs.append(rig)

        spec_rig, interp_rig = rigs
        _, spec, _, _ = spec_rig
        _, interp, _, _ = interp_rig
        frame = udp_frame(MACS[0], MACS[1], IPS[0], IPS[1], 53, 80, b"x")
        burst = [frame] * 6
        for rig_switch in (spec, interp):
            rig_switch.process_batch(2, list(burst))  # packet-in at frame 1
        assert spec.program is None or spec.specialized_frames == 0
        # After the reactive rewrite the pipeline is compilable: the
        # follow-up burst (eth_dst now has a concrete rule) compiles.
        follow = [frame] * 6
        for rig_switch in (spec, interp):
            rig_switch.process_batch(2, list(follow))
        spec_rig[0].run()
        interp_rig[0].run()
        assert spec.program is not None
        assert spec.specialized_frames == 6
        assert_identical(spec_rig, interp_rig)

    def test_compiled_burst_equals_compiled_sequential(self):
        """run_burst vs run_one on the *same* compiled engine: a burst
        through the specialized tier must match the same frames pushed
        one at a time through it, across churn-driven recompiles."""
        rng = random.Random(0xB0B5)
        burst_rig = build_rig(ZERO_COST, specialize=True)
        seq_rig = build_rig(ZERO_COST, specialize=True)
        sim_a, burst_switch, _, _ = burst_rig
        sim_b, seq_switch, _, _ = seq_rig
        pool = [random_frame(rng) for _ in range(16)]
        clock = 0.0
        for _ in range(200):
            clock += rng.random() * 0.05
            sim_a.run(until=clock)
            sim_b.run(until=clock)
            if rng.random() < 0.2:
                message = FlowMod(
                    match=random_match(rng),
                    priority=rng.randint(0, 30),
                    instructions=compilable_instructions(rng),
                ).to_bytes()
                assert burst_switch.handle_message(message) == (
                    seq_switch.handle_message(message)
                )
            size = rng.choice((2, 3, 4, 6, 8, 12))
            frames = [pool[rng.randrange(len(pool))] for _ in range(size)]
            in_port = rng.randint(1, 3)
            burst_switch.process_batch(in_port, list(frames))
            for frame in frames:
                seq_switch.inject(frame, in_port)
        sim_a.run()
        sim_b.run()
        # Both engines actually ran compiled (pipeline stays compilable).
        assert burst_switch.specialized_frames > 500
        assert seq_switch.specialized_frames == burst_switch.specialized_frames
        assert_identical(burst_rig, seq_rig)

    def test_case_count_meets_acceptance(self):
        """Every new eligibility dimension gets ≥1000 compared bursts,
        and the mixed suites together add another 1000+."""
        assert 600 + 440 >= 1000  # mixed churn (zero-cost + eswitch-cost)
        for family_bursts in (1000, 1000, 1000):  # chains, groups, timeouts
            assert family_bursts * SCALE >= 1000
