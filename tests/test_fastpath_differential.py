"""Differential + invalidation tests for the two-tier datapath fast path.

The classifier (hash-bucketed exact tier + masked linear fallback) and
the microflow cache are only allowed to exist because they are
semantics-free: every test here checks them against the seed's linear
scan, either per-lookup (randomized flow tables and packets) or
end-to-end (two switches, one with the fast path disabled, fed the same
traffic).

Set ``DIFFERENTIAL_SCALE=<n>`` to multiply the randomized case counts
(the nightly extended job runs at 5×).
"""

import os
import random

import pytest

from repro.net import EthernetFrame, IPv4Address, MACAddress
from repro.net.build import tcp_frame, udp_frame
from repro.net.tcp import TcpSegment
from repro.netsim import Simulator
from repro.netsim.link import wire
from repro.netsim.node import Node
from repro.openflow import (
    ApplyActions,
    Bucket,
    FlowMod,
    GotoTable,
    GroupAction,
    GroupMod,
    Match,
    OutputAction,
    PacketOut,
    SetFieldAction,
    WriteActions,
)
from repro.openflow import consts as c
from repro.openflow.packetview import FLOW_KEY_FIELDS, PacketView
from repro.softswitch import DatapathCostModel, SoftSwitch
from repro.softswitch.fastpath import CachedPath, DatapathFlowCache
from repro.softswitch.flowtable import FlowEntry, FlowTable

ZERO_COST = DatapathCostModel.zero()

MACS = [MACAddress(0x020000000001 + i) for i in range(4)]
IPS = [IPv4Address(f"10.0.{i // 4}.{i % 4 + 1}") for i in range(8)]
PORTS = [53, 80, 443, 8080]


# --------------------------------------------------------------------------
# Randomized differential: classifier lookup vs an independent linear scan
# --------------------------------------------------------------------------


def random_match(rng: random.Random) -> Match:
    """A random mix of exact, masked and VLAN constraints."""
    fields: dict = {}
    if rng.random() < 0.5:
        fields["in_port"] = rng.randint(1, 3)
    if rng.random() < 0.4:
        fields["eth_type"] = 0x0800
    if rng.random() < 0.3:
        fields["eth_src"] = int(rng.choice(MACS))
    if rng.random() < 0.3:
        fields["eth_dst"] = int(rng.choice(MACS))
    if rng.random() < 0.3:
        fields["vlan_vid"] = (
            0 if rng.random() < 0.3 else c.OFPVID_PRESENT | rng.randint(100, 103)
        )
    if rng.random() < 0.4:
        value = int(rng.choice(IPS))
        if rng.random() < 0.5:  # masked -> lands on the linear fallback tier
            bits = rng.choice((8, 16, 24))
            mask = (0xFFFFFFFF << (32 - bits)) & 0xFFFFFFFF
            fields["ipv4_src"] = (value & mask, mask)
        else:
            fields["ipv4_src"] = value
    if rng.random() < 0.4:
        value = int(rng.choice(IPS))
        if rng.random() < 0.5:
            bits = rng.choice((8, 16, 24))
            mask = (0xFFFFFFFF << (32 - bits)) & 0xFFFFFFFF
            fields["ipv4_dst"] = (value & mask, mask)
        else:
            fields["ipv4_dst"] = value
    if rng.random() < 0.3:
        name = rng.choice(("udp_dst", "udp_src", "tcp_dst", "tcp_src"))
        fields[name] = rng.choice(PORTS)
    return Match(**fields)


def random_frame(rng: random.Random) -> EthernetFrame:
    src_mac, dst_mac = rng.choice(MACS), rng.choice(MACS)
    src_ip, dst_ip = rng.choice(IPS), rng.choice(IPS)
    vlan_id = rng.choice((None, None, 100, 101, 102, 103))
    if rng.random() < 0.5:
        return udp_frame(
            src_mac, dst_mac, src_ip, dst_ip,
            rng.choice(PORTS), rng.choice(PORTS), b"x", vlan_id=vlan_id,
        )
    return tcp_frame(
        src_mac, dst_mac, src_ip, dst_ip,
        TcpSegment(rng.choice(PORTS), rng.choice(PORTS)), vlan_id=vlan_id,
    )


def reference_lookup(table: FlowTable, view: PacketView, now: float):
    """Seed semantics re-derived from first principles.

    Sorts by (-priority, installed_at, seq) and tests each constraint
    with MatchField.covers over per-field view access — independent of
    both the bucketed classifier and the compiled matcher.
    """
    ordered = sorted(table, key=lambda e: (-e.priority, e.installed_at, e.seq))
    for entry in ordered:
        if entry.is_expired(now):
            continue
        if all(
            constraint.covers(view.get(name))
            for name, constraint in entry.match.fields.items()
        ):
            return entry
    return None


#: Case-count multiplier; the nightly extended job sets this to 5.
SCALE = max(1, int(os.environ.get("DIFFERENTIAL_SCALE", "1")))


class TestRandomizedDifferential:
    def test_classifier_matches_linear_reference(self):
        """≥1000 random (flow table, packet) cases, zero divergence."""
        rng = random.Random(0x4A12)
        cases = 0
        for round_index in range(25 * SCALE):
            table = FlowTable(table_id=0)
            for i in range(rng.randint(5, 40)):
                entry = FlowEntry(
                    match=random_match(rng),
                    priority=rng.randint(0, 4),  # deliberate collisions
                    instructions=[],
                )
                # Staggered install times with repeats (bulk-push shape).
                table.install(entry, now=float(rng.randint(0, 2)))
            for _ in range(60):
                frame = random_frame(rng)
                in_port = rng.randint(1, 3)
                now = 3.0
                fast = table.lookup(PacketView(frame, in_port), now)
                linear = table.linear_lookup(PacketView(frame, in_port), now)
                reference = reference_lookup(table, PacketView(frame, in_port), now)
                assert fast is reference, (
                    f"round {round_index}: classifier diverged for {frame} "
                    f"in_port={in_port}\n{table.dump()}"
                )
                assert linear is reference
                cases += 1
        assert cases >= 1000

    def test_classifier_after_deletes_and_expiry(self):
        rng = random.Random(0xBEEF)
        table = FlowTable(table_id=0)
        entries = []
        for _ in range(40):
            entry = FlowEntry(
                match=random_match(rng),
                priority=rng.randint(0, 3),
                idle_timeout=rng.choice((0.0, 0.0, 2.0)),
                hard_timeout=rng.choice((0.0, 0.0, 1.5)),
            )
            table.install(entry, now=0.0)
            entries.append(entry)
        # Delete a random subset through the OpenFlow non-strict path.
        for entry in rng.sample(entries, 10):
            table.delete(entry.match, strict=False)
        for now in (0.5, 1.0, 1.6, 2.5):
            for _ in range(30):
                frame = random_frame(rng)
                view = PacketView(frame, rng.randint(1, 3))
                assert table.lookup(view, now) is reference_lookup(table, view, now)

    def test_install_order_is_seed_identical(self):
        """bisect.insort keeps the (-priority, installed_at, seq) order."""
        table = FlowTable(table_id=0)
        specs = [(5, 0.0), (1, 0.0), (5, 0.0), (9, 1.0), (5, 0.5), (1, 0.0)]
        for index, (priority, when) in enumerate(specs):
            table.install(
                FlowEntry(match=Match(in_port=index + 1), priority=priority), when
            )
        keys = [(-e.priority, e.installed_at, e.seq) for e in table]
        assert keys == sorted(keys)
        # Equal (priority, installed_at) resolves by install sequence.
        same = [e for e in table if e.priority == 5 and e.installed_at == 0.0]
        assert [e.match.get("in_port").value for e in same] == [1, 3]

    def test_replace_keeps_single_entry(self):
        table = FlowTable(table_id=0)
        for _ in range(3):
            table.install(FlowEntry(match=Match(in_port=1), priority=7), 0.0)
        assert len(table) == 1


# --------------------------------------------------------------------------
# End-to-end differential: cached switch vs fast-path-disabled switch
# --------------------------------------------------------------------------


class Sink(Node):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def receive(self, port, frame):
        self.received.append((self.sim.now, frame.to_bytes()))


def build_pair(num_ports=3):
    """Two identically-provisioned switches: fast path on vs off."""
    rigs = []
    for enable in (True, False):
        sim = Simulator()
        switch = SoftSwitch(
            sim, "ss", datapath_id=1, cost_model=ZERO_COST, enable_fast_path=enable
        )
        sinks = []
        for index in range(num_ports):
            sink = Sink(sim, f"sink{index}")
            wire(
                switch,
                sink,
                bandwidth_bps=None,
                propagation_delay_s=0.0,
                queue_frames=10_000,  # burst-injected traffic must not tail-drop
            )
            sinks.append(sink)
        rigs.append((sim, switch, sinks))
    return rigs


def provision(switch):
    """A multi-table pipeline with masked flows, write-actions, a group."""
    messages = [
        GroupMod(
            command=c.OFPGC_ADD,
            group_type=c.OFPGT_SELECT,
            group_id=1,
            buckets=[
                Bucket(actions=[OutputAction(port=2)], weight=1),
                Bucket(actions=[OutputAction(port=3)], weight=2),
            ],
        ),
        # Table 0: exact ingress steering + masked subnet rule.
        FlowMod(
            table_id=0,
            priority=10,
            match=Match(in_port=1),
            instructions=[GotoTable(table_id=1)],
        ),
        FlowMod(
            table_id=0,
            priority=5,
            match=Match(eth_type=0x0800, ipv4_dst=("10.0.1.0", "255.255.255.0")),
            instructions=[ApplyActions(actions=(OutputAction(port=3),))],
        ),
        # Table 1: L4 classification into the select group + rewrite.
        FlowMod(
            table_id=1,
            priority=20,
            match=Match(eth_type=0x0800, udp_dst=53),
            instructions=[
                ApplyActions(
                    actions=(
                        SetFieldAction(field="eth_dst", value=int(MACS[3])),
                        GroupAction(group_id=1),
                    )
                )
            ],
        ),
        FlowMod(
            table_id=1,
            priority=1,
            match=Match(),
            instructions=[
                WriteActions(actions=(OutputAction(port=2),)),
                GotoTable(table_id=2),
            ],
        ),
        FlowMod(table_id=2, priority=0, match=Match(), instructions=[]),
    ]
    for message in messages:
        assert switch.handle_message(message.to_bytes()) == []


class TestEndToEndDifferential:
    def test_pipeline_outputs_and_counters_identical(self):
        (sim_a, fast, sinks_a), (sim_b, slow, sinks_b) = build_pair()
        provision(fast)
        provision(slow)
        rng = random.Random(0x5EED)
        frames = [random_frame(rng) for _ in range(40)]
        # Steady-state mix: every frame replayed several times so the
        # microflow cache actually serves hits.
        schedule = [frames[rng.randrange(len(frames))] for _ in range(400 * SCALE)]
        for frame in schedule:
            in_port = 1 if rng.random() < 0.7 else 2
            fast.inject(frame.copy(), in_port)
            slow.inject(frame.copy(), in_port)
        sim_a.run()
        sim_b.run()
        assert fast.flow_cache.hits > 200  # the cache did serve the walk
        for sink_a, sink_b in zip(sinks_a, sinks_b):
            assert sink_a.received == sink_b.received
        assert fast.packets_forwarded == slow.packets_forwarded
        assert fast.packets_dropped == slow.packets_dropped
        # Per-flow counters, group/bucket counters, table stats.
        assert fast.dump_pipeline() == slow.dump_pipeline()
        for table_f, table_s in zip(fast.tables, slow.tables):
            assert table_f.lookups == table_s.lookups
            assert table_f.matches == table_s.matches
        group_f, group_s = fast.groups.get(1), slow.groups.get(1)
        assert group_f.packet_count == group_s.packet_count
        assert group_f.bucket_packet_counts == group_s.bucket_packet_counts

    def test_table_miss_is_cached_and_identical(self):
        (sim_a, fast, _), (sim_b, slow, _) = build_pair()
        provision(fast)
        provision(slow)
        frame = udp_frame(MACS[0], MACS[1], IPS[0], IPS[1], 1000, 9999, b"x")
        for _ in range(5):
            fast.inject(frame.copy(), in_port=3)  # no table-0 rule matches
            slow.inject(frame.copy(), in_port=3)
        sim_a.run()
        sim_b.run()
        assert fast.packets_dropped == slow.packets_dropped == 5
        assert fast.flow_cache.hits == 4  # misses memoised too


# --------------------------------------------------------------------------
# Churn-interleaved differential: control-plane mutations mid-traffic
# --------------------------------------------------------------------------


def random_instructions(rng: random.Random, table_id: int):
    """Random but well-formed instruction lists (goto only increases)."""
    roll = rng.random()
    if roll < 0.15:
        return []  # explicit drop
    actions = [OutputAction(port=rng.randint(1, 3))]
    if rng.random() < 0.2:
        actions.insert(
            0, SetFieldAction(field="eth_dst", value=int(rng.choice(MACS)))
        )
    if rng.random() < 0.15:
        actions = [GroupAction(group_id=1)]
    instructions = [ApplyActions(actions=tuple(actions))]
    if table_id < 2 and rng.random() < 0.3:
        instructions.append(GotoTable(table_id=rng.randint(table_id + 1, 2)))
    return instructions


def random_churn_message(rng: random.Random):
    """A random control-plane mutation (FlowMod add/delete/modify,
    GroupMod) — the churn stream both switches must absorb identically."""
    roll = rng.random()
    if roll < 0.5:
        table_id = rng.randint(0, 2)
        return FlowMod(
            table_id=table_id,
            command=c.OFPFC_ADD,
            match=random_match(rng),
            priority=rng.randint(0, 30),
            instructions=random_instructions(rng, table_id),
        )
    if roll < 0.7:
        return FlowMod(
            table_id=rng.randint(0, 2),
            command=rng.choice((c.OFPFC_DELETE, c.OFPFC_DELETE_STRICT)),
            match=random_match(rng),
            priority=rng.randint(0, 30),
        )
    if roll < 0.9:
        table_id = rng.randint(0, 2)
        return FlowMod(
            table_id=table_id,
            command=rng.choice((c.OFPFC_MODIFY, c.OFPFC_MODIFY_STRICT)),
            match=random_match(rng),
            priority=rng.randint(0, 30),
            instructions=random_instructions(rng, table_id),
        )
    return GroupMod(
        command=c.OFPGC_MODIFY,
        group_type=c.OFPGT_SELECT,
        group_id=1,
        buckets=[
            Bucket(actions=[OutputAction(port=rng.randint(1, 3))], weight=1),
            Bucket(actions=[OutputAction(port=rng.randint(1, 3))], weight=rng.randint(1, 3)),
        ],
    )


class TestChurnInterleavedDifferential:
    def test_outputs_identical_under_sustained_churn(self):
        """Packets and control-plane mutations interleaved at random:
        the dependency-indexed cache must stay bit-identical to the
        uncached pipeline through adds, deletes, modifies and group
        rewrites — including mutations that *should* leave memoised
        walks untouched (the whole point of scoped invalidation)."""
        (sim_a, fast, sinks_a), (sim_b, slow, sinks_b) = build_pair()
        provision(fast)
        provision(slow)
        rng = random.Random(0xC0DE)
        frames = [random_frame(rng) for _ in range(30)]
        packets = 0
        for _ in range(700 * SCALE):
            if rng.random() < 0.15:
                message = random_churn_message(rng).to_bytes()
                replies_fast = fast.handle_message(message)
                replies_slow = slow.handle_message(message)
                assert replies_fast == replies_slow
            else:
                frame = frames[rng.randrange(len(frames))]
                in_port = 1 if rng.random() < 0.7 else 2
                fast.inject(frame.copy(), in_port)
                slow.inject(frame.copy(), in_port)
                packets += 1
        sim_a.run()
        sim_b.run()
        assert packets > 500
        for sink_a, sink_b in zip(sinks_a, sinks_b):
            assert sink_a.received == sink_b.received
        assert fast.packets_forwarded == slow.packets_forwarded
        assert fast.packets_dropped == slow.packets_dropped
        assert fast.dump_pipeline() == slow.dump_pipeline()
        for table_f, table_s in zip(fast.tables, slow.tables):
            assert table_f.lookups == table_s.lookups
            assert table_f.matches == table_s.matches
        # Scoped invalidation earned its keep: the cache kept serving
        # hits between mutations instead of rebuilding from scratch.
        stats = fast.flow_cache.stats()
        assert stats["scoped_invalidations"] > 50
        assert stats["full_invalidations"] == 0
        assert fast.flow_cache.hits > 200

    def test_repeated_adds_to_quiet_table_never_touch_cache(self):
        (sim_a, fast, _), (sim_b, slow, _) = build_pair()
        provision(fast)
        provision(slow)
        rng = random.Random(0xFADE)
        frames = [random_frame(rng) for _ in range(10)]
        for frame in frames:
            fast.inject(frame.copy(), 1)
            slow.inject(frame.copy(), 1)
        warm = len(fast.flow_cache)
        for index in range(40):
            message = FlowMod(
                table_id=3,  # never reached by the provisioned pipeline
                match=Match(eth_type=0x0800, udp_dst=1000 + index),
                priority=20,
                instructions=[],
            ).to_bytes()
            fast.handle_message(message)
            slow.handle_message(message)
        assert len(fast.flow_cache) == warm  # not one walk dropped
        for frame in frames:
            fast.inject(frame.copy(), 1)
            slow.inject(frame.copy(), 1)
        assert fast.flow_cache.hits >= len(frames)
        sim_a.run()
        sim_b.run()
        assert fast.dump_pipeline() == slow.dump_pipeline()


# --------------------------------------------------------------------------
# Cache invalidation: FlowMod, GroupMod, expiry
# --------------------------------------------------------------------------


def build_switch(num_sinks=3):
    sim = Simulator()
    switch = SoftSwitch(sim, "ss", datapath_id=1, cost_model=ZERO_COST)
    sinks = []
    for index in range(num_sinks):
        sink = Sink(sim, f"sink{index + 1}")
        wire(switch, sink, bandwidth_bps=None, propagation_delay_s=0.0)
        sinks.append(sink)
    return sim, switch, sinks


def install(switch, **kwargs):
    assert switch.handle_message(FlowMod(**kwargs).to_bytes()) == []


def frame_ab(dst_port=2000):
    return udp_frame(MACS[0], MACS[1], IPS[0], IPS[1], 1000, dst_port, b"x" * 32)


class TestCacheInvalidation:
    def test_flow_mod_add_invalidates(self):
        sim, switch, sinks = build_switch()
        install(
            switch,
            match=Match(),
            priority=1,
            instructions=[ApplyActions(actions=(OutputAction(port=2),))],
        )
        switch.inject(frame_ab(), 1)
        switch.inject(frame_ab(), 1)  # cache hit
        assert switch.flow_cache.hits == 1
        install(
            switch,
            match=Match(in_port=1),
            priority=9,
            instructions=[ApplyActions(actions=(OutputAction(port=3),))],
        )
        assert len(switch.flow_cache) == 0
        switch.inject(frame_ab(), 1)
        sim.run()
        assert len(sinks[1].received) == 2  # before the higher-priority add
        assert len(sinks[2].received) == 1  # after it

    def test_flow_mod_modify_redirects_cached_flow(self):
        sim, switch, sinks = build_switch()
        install(
            switch,
            match=Match(in_port=1),
            instructions=[ApplyActions(actions=(OutputAction(port=2),))],
        )
        switch.inject(frame_ab(), 1)
        switch.inject(frame_ab(), 1)
        switch.handle_message(
            FlowMod(
                command=c.OFPFC_MODIFY,
                match=Match(in_port=1),
                instructions=[ApplyActions(actions=(OutputAction(port=3),))],
            ).to_bytes()
        )
        assert len(switch.flow_cache) == 0
        switch.inject(frame_ab(), 1)
        sim.run()
        assert len(sinks[1].received) == 2
        assert len(sinks[2].received) == 1

    def test_flow_mod_delete_invalidates(self):
        sim, switch, sinks = build_switch()
        install(
            switch,
            match=Match(in_port=1),
            instructions=[ApplyActions(actions=(OutputAction(port=2),))],
        )
        switch.inject(frame_ab(), 1)
        switch.handle_message(
            FlowMod(command=c.OFPFC_DELETE, match=Match()).to_bytes()
        )
        assert len(switch.flow_cache) == 0
        switch.inject(frame_ab(), 1)
        sim.run()
        assert len(sinks[1].received) == 1
        assert switch.packets_dropped == 1

    def test_group_mod_rebinds_cached_walks(self):
        sim, switch, sinks = build_switch()
        switch.handle_message(
            GroupMod(
                command=c.OFPGC_ADD,
                group_type=c.OFPGT_INDIRECT,
                group_id=7,
                buckets=[Bucket(actions=[OutputAction(port=2)])],
            ).to_bytes()
        )
        install(
            switch,
            match=Match(in_port=1),
            instructions=[ApplyActions(actions=(GroupAction(group_id=7),))],
        )
        switch.inject(frame_ab(), 1)
        switch.inject(frame_ab(), 1)
        invalidations_before = switch.flow_cache.invalidations
        switch.handle_message(
            GroupMod(
                command=c.OFPGC_MODIFY,
                group_type=c.OFPGT_INDIRECT,
                group_id=7,
                buckets=[Bucket(actions=[OutputAction(port=3)])],
            ).to_bytes()
        )
        assert switch.flow_cache.invalidations == invalidations_before + 1
        assert len(switch.flow_cache) == 0
        switch.inject(frame_ab(), 1)
        sim.run()
        assert len(sinks[1].received) == 2
        assert len(sinks[2].received) == 1

    def test_replay_validates_expiry_between_sweeps(self):
        """A hard timeout landing between sweeper runs must not be served
        from the cache — replay validation catches it lazily."""
        sim, switch, sinks = build_switch()
        # A decoy mortal flow pins the sweeper to fire at 1.0, 2.0, ...
        install(
            switch,
            match=Match(in_port=3),
            hard_timeout=9,
            instructions=[],
        )
        # The flow under test is installed at t=0.5, so it expires at
        # t=1.5 — squarely between the sweeps at 1.0 and 2.0.
        sim.schedule(
            0.5,
            lambda: install(
                switch,
                match=Match(in_port=1),
                hard_timeout=1,
                instructions=[ApplyActions(actions=(OutputAction(port=2),))],
            ),
        )
        sim.schedule(0.7, lambda: switch.inject(frame_ab(), 1))
        sim.schedule(1.2, lambda: switch.inject(frame_ab(), 1))  # cache hit
        sim.schedule(1.6, lambda: switch.inject(frame_ab(), 1))  # stale!
        sim.run(until=1.9)
        assert len(sinks[1].received) == 2
        assert switch.packets_dropped == 1

    def test_sweep_invalidates_cache(self):
        sim, switch, _ = build_switch()
        install(
            switch,
            match=Match(in_port=1),
            hard_timeout=1,
            instructions=[ApplyActions(actions=(OutputAction(port=2),))],
        )
        switch.inject(frame_ab(), 1)
        assert len(switch.flow_cache) == 1
        sim.run(until=3.0)  # sweeper fires, flow expires
        assert len(switch.flow_cache) == 0


# --------------------------------------------------------------------------
# Satellites: modify-cookie, packet-out buffering, cache unit behaviour
# --------------------------------------------------------------------------


class TestModifyCookie:
    def _install_with_cookie(self, switch, cookie):
        install(
            switch,
            match=Match(in_port=1),
            cookie=cookie,
            instructions=[ApplyActions(actions=(OutputAction(port=2),))],
        )

    def test_nonzero_cookie_updates(self):
        _, switch, _ = build_switch()
        self._install_with_cookie(switch, cookie=0x11)
        switch.handle_message(
            FlowMod(
                command=c.OFPFC_MODIFY,
                match=Match(in_port=1),
                cookie=0x99,
                instructions=[ApplyActions(actions=(OutputAction(port=3),))],
            ).to_bytes()
        )
        (entry,) = list(switch.tables[0])
        assert entry.cookie == 0x99

    def test_zero_cookie_preserved(self):
        _, switch, _ = build_switch()
        self._install_with_cookie(switch, cookie=0x11)
        switch.handle_message(
            FlowMod(
                command=c.OFPFC_MODIFY_STRICT,
                match=Match(in_port=1),
                cookie=0,
                instructions=[ApplyActions(actions=(OutputAction(port=3),))],
            ).to_bytes()
        )
        (entry,) = list(switch.tables[0])
        assert entry.cookie == 0x11


class TestPacketOutBuffering:
    def test_packet_out_preserves_in_flight_buffers(self):
        """A packet-out handled mid-walk must not clobber the walk's
        buffered outputs (the seed reset self._tx_buffer unconditionally)."""
        sim, switch, sinks = build_switch()
        pending = (2, EthernetFrame.from_bytes(frame_ab().to_bytes()))
        switch._tx_buffer.append(pending)  # an in-flight walk's output
        switch.handle_message(
            PacketOut(
                actions=[OutputAction(port=3)], data=frame_ab().to_bytes()
            ).to_bytes()
        )
        sim.run()
        assert switch._tx_buffer == [pending]  # still owned by the walk
        assert len(sinks[2].received) == 1  # packet-out still delivered

    def test_packet_out_still_emits(self):
        sim, switch, sinks = build_switch()
        switch.handle_message(
            PacketOut(
                actions=[OutputAction(port=2)], data=frame_ab().to_bytes()
            ).to_bytes()
        )
        sim.run()
        assert len(sinks[1].received) == 1


class TestFlowCacheUnit:
    def test_fifo_eviction_bounds_size(self):
        cache = DatapathFlowCache(max_entries=2)
        cache.store((1,), CachedPath(steps=()))
        cache.store((2,), CachedPath(steps=()))
        cache.store((3,), CachedPath(steps=()))
        assert len(cache) == 2
        assert cache.get((1,)) is None  # oldest evicted
        assert cache.get((3,)) is not None

    def test_restore_does_not_evict(self):
        cache = DatapathFlowCache(max_entries=2)
        cache.store((1,), CachedPath(steps=()))
        cache.store((2,), CachedPath(steps=()))
        cache.store((2,), CachedPath(steps=(), miss_table=0))  # overwrite
        assert len(cache) == 2
        assert cache.get((1,)) is not None

    def test_stats_shape(self):
        cache = DatapathFlowCache()
        cache.hits, cache.misses = 3, 1
        stats = cache.stats()
        assert stats["hit_rate"] == pytest.approx(0.75)
        assert stats["size"] == 0

    def test_disabled_fast_path_has_no_cache(self):
        sim = Simulator()
        switch = SoftSwitch(
            sim, "ss", datapath_id=1, cost_model=ZERO_COST, enable_fast_path=False
        )
        assert switch.flow_cache is None
        assert switch.fast_path is False


def test_flow_key_field_order_is_stable():
    """The flow-key layout is a fast-path contract (append-only)."""
    assert FLOW_KEY_FIELDS[:4] == ("in_port", "eth_dst", "eth_src", "eth_type")
    assert len(FLOW_KEY_FIELDS) == 14
