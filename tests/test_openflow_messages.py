"""Wire-format round-trip tests for OpenFlow messages."""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.openflow import (
    ApplyActions,
    BarrierReply,
    BarrierRequest,
    Bucket,
    ClearActions,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    FlowStatsEntry,
    FlowStatsReply,
    FlowStatsRequest,
    GotoTable,
    GroupAction,
    GroupMod,
    Hello,
    Match,
    OFP_VERSION,
    OFPP_CONTROLLER,
    OutputAction,
    PacketIn,
    PacketOut,
    PopVlanAction,
    PortStatsEntry,
    PortStatsReply,
    PortStatsRequest,
    PushVlanAction,
    SetFieldAction,
    WriteActions,
    parse_message,
)
from repro.openflow import consts as c


def round_trip(message):
    raw = message.to_bytes()
    parsed = parse_message(raw)
    assert type(parsed) is type(message)
    return parsed, raw


class TestHeader:
    def test_header_layout(self):
        raw = Hello(xid=0x1234).to_bytes()
        version, msg_type, length, xid = struct.unpack_from("!BBHI", raw)
        assert version == OFP_VERSION
        assert msg_type == 0
        assert length == len(raw) == 8
        assert xid == 0x1234

    def test_bad_version_rejected(self):
        raw = bytearray(Hello().to_bytes())
        raw[0] = 0x01
        with pytest.raises(ValueError):
            parse_message(bytes(raw))

    def test_length_mismatch_rejected(self):
        raw = Hello().to_bytes() + b"trailing"
        with pytest.raises(ValueError):
            parse_message(raw)

    def test_short_buffer_rejected(self):
        with pytest.raises(ValueError):
            parse_message(b"\x04\x00")


class TestSimpleMessages:
    def test_hello(self):
        parsed, _ = round_trip(Hello(xid=9))
        assert parsed.xid == 9

    def test_echo_carries_payload(self):
        parsed, _ = round_trip(EchoRequest(xid=1, payload=b"ping!"))
        assert parsed.payload == b"ping!"
        parsed, _ = round_trip(EchoReply(xid=1, payload=b"pong!"))
        assert parsed.payload == b"pong!"

    def test_error(self):
        parsed, _ = round_trip(ErrorMsg(xid=2, error_type=3, code=7, data=b"ctx"))
        assert (parsed.error_type, parsed.code, parsed.data) == (3, 7, b"ctx")

    def test_features(self):
        round_trip(FeaturesRequest(xid=5))
        parsed, _ = round_trip(
            FeaturesReply(xid=5, datapath_id=0xAABBCCDD, n_buffers=256, n_tables=4)
        )
        assert parsed.datapath_id == 0xAABBCCDD
        assert parsed.n_tables == 4

    def test_barrier(self):
        round_trip(BarrierRequest(xid=1))
        round_trip(BarrierReply(xid=1))


class TestFlowMod:
    def test_full_round_trip(self):
        message = FlowMod(
            xid=42,
            match=Match.vlan(101, in_port=1),
            instructions=[
                ApplyActions(
                    actions=(
                        PopVlanAction(),
                        OutputAction(port=3),
                    )
                ),
                GotoTable(table_id=1),
            ],
            priority=2000,
            table_id=0,
            cookie=0xDEADBEEF,
            idle_timeout=30,
            hard_timeout=300,
        )
        parsed, _ = round_trip(message)
        assert parsed.match == message.match
        assert parsed.priority == 2000
        assert parsed.cookie == 0xDEADBEEF
        assert parsed.idle_timeout == 30
        assert len(parsed.instructions) == 2
        apply_instr = parsed.instructions[0]
        assert isinstance(apply_instr, ApplyActions)
        assert isinstance(apply_instr.actions[0], PopVlanAction)
        assert apply_instr.actions[1] == OutputAction(port=3)
        assert parsed.instructions[1] == GotoTable(table_id=1)

    def test_delete_command(self):
        message = FlowMod(command=c.OFPFC_DELETE, match=Match(eth_type=0x0800))
        parsed, _ = round_trip(message)
        assert parsed.command == c.OFPFC_DELETE

    def test_set_field_action(self):
        message = FlowMod(
            instructions=[
                ApplyActions(
                    actions=(
                        PushVlanAction(),
                        SetFieldAction.vlan_vid(102),
                        OutputAction(port=24),
                    )
                )
            ]
        )
        parsed, _ = round_trip(message)
        actions = parsed.instructions[0].actions
        assert isinstance(actions[1], SetFieldAction)
        assert actions[1].field == "vlan_vid"
        assert actions[1].value & 0xFFF == 102

    def test_write_and_clear_instructions(self):
        message = FlowMod(
            instructions=[
                ClearActions(),
                WriteActions(actions=(OutputAction(port=1),)),
            ]
        )
        parsed, _ = round_trip(message)
        assert isinstance(parsed.instructions[0], ClearActions)
        assert isinstance(parsed.instructions[1], WriteActions)


class TestPacketInOut:
    def test_packet_in(self):
        message = PacketIn(
            xid=7,
            reason=c.OFPR_NO_MATCH,
            table_id=0,
            cookie=1,
            match=Match(in_port=4),
            data=b"\x01\x02\x03\x04",
        )
        parsed, _ = round_trip(message)
        assert parsed.in_port == 4
        assert parsed.data == b"\x01\x02\x03\x04"
        assert parsed.reason == c.OFPR_NO_MATCH

    def test_packet_out(self):
        message = PacketOut(
            xid=8,
            in_port=OFPP_CONTROLLER,
            actions=[OutputAction(port=2)],
            data=b"payload-bytes",
        )
        parsed, _ = round_trip(message)
        assert parsed.actions == [OutputAction(port=2)]
        assert parsed.data == b"payload-bytes"

    def test_packet_out_no_actions_means_drop(self):
        parsed, _ = round_trip(PacketOut(xid=1, data=b"x"))
        assert parsed.actions == []


class TestGroupMod:
    def test_select_group_round_trip(self):
        message = GroupMod(
            xid=3,
            command=c.OFPGC_ADD,
            group_type=c.OFPGT_SELECT,
            group_id=50,
            buckets=[
                Bucket(actions=[OutputAction(port=1)], weight=10),
                Bucket(actions=[OutputAction(port=2)], weight=20),
            ],
        )
        parsed, _ = round_trip(message)
        assert parsed.group_id == 50
        assert [bucket.weight for bucket in parsed.buckets] == [10, 20]
        assert parsed.buckets[1].actions == [OutputAction(port=2)]

    def test_bucket_with_multiple_actions(self):
        bucket = Bucket(
            actions=[PushVlanAction(), SetFieldAction.vlan_vid(7), OutputAction(port=9)]
        )
        message = GroupMod(buckets=[bucket])
        parsed, _ = round_trip(message)
        assert len(parsed.buckets[0].actions) == 3


class TestFlowRemoved:
    def test_round_trip(self):
        message = FlowRemoved(
            xid=11,
            match=Match(eth_type=0x0806),
            cookie=5,
            priority=100,
            reason=c.OFPRR_IDLE_TIMEOUT,
            packet_count=42,
            byte_count=4200,
        )
        parsed, _ = round_trip(message)
        assert parsed.packet_count == 42
        assert parsed.match == Match(eth_type=0x0806)


class TestStats:
    def test_flow_stats_request(self):
        parsed, _ = round_trip(FlowStatsRequest(xid=1, table_id=2, match=Match(in_port=1)))
        assert parsed.table_id == 2
        assert parsed.match == Match(in_port=1)

    def test_flow_stats_reply(self):
        message = FlowStatsReply(
            xid=2,
            entries=[
                FlowStatsEntry(
                    table_id=0,
                    priority=10,
                    packet_count=5,
                    byte_count=500,
                    match=Match.vlan(101),
                ),
                FlowStatsEntry(table_id=1, priority=20, match=Match()),
            ],
        )
        parsed, _ = round_trip(message)
        assert len(parsed.entries) == 2
        assert parsed.entries[0].packet_count == 5
        assert parsed.entries[0].match == Match.vlan(101)

    def test_port_stats(self):
        message = PortStatsReply(
            xid=3,
            entries=[
                PortStatsEntry(port_no=1, rx_packets=10, tx_packets=20, rx_bytes=1000)
            ],
        )
        parsed, _ = round_trip(message)
        assert parsed.entries[0].tx_packets == 20
        request, _ = round_trip(PortStatsRequest(xid=4, port_no=7))
        assert request.port_no == 7


ACTION_STRATEGY = st.one_of(
    st.builds(OutputAction, port=st.integers(min_value=1, max_value=1000)),
    st.just(PopVlanAction()),
    st.just(PushVlanAction()),
    st.builds(
        SetFieldAction.vlan_vid, st.integers(min_value=1, max_value=4094)
    ),
    st.builds(GroupAction, group_id=st.integers(min_value=0, max_value=1 << 31)),
)


class TestProperties:
    @given(
        st.integers(min_value=0, max_value=0xFFFFFFFF),
        st.lists(ACTION_STRATEGY, max_size=4),
        st.integers(min_value=0, max_value=0xFFFF),
    )
    def test_flowmod_round_trip(self, xid, actions, priority):
        message = FlowMod(
            xid=xid,
            priority=priority,
            instructions=[ApplyActions(actions=tuple(actions))],
        )
        parsed = parse_message(message.to_bytes())
        assert parsed.xid == xid
        assert parsed.priority == priority
        assert list(parsed.instructions[0].actions) == list(actions)

    @given(st.binary(max_size=64), st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_packet_out_round_trip(self, data, xid):
        message = PacketOut(xid=xid, actions=[OutputAction(port=1)], data=data)
        parsed = parse_message(message.to_bytes())
        assert parsed.data == data
