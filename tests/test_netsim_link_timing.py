"""Link timing semantics: serialisation, FIFO ties, tail-drop, bursts.

`Link` timing is what makes the latency/throughput benches meaningful
(HARMLESS adds one trunk traversal; the cost is serialisation +
propagation), and the burst path must reproduce it exactly: a
`transmit_burst` serialises every frame at the same instants as N
sequential `transmit` calls — only the delivery *event* is coalesced,
with per-frame arrival times preserved in the payload.
"""

import pytest

from repro.net import EthernetFrame, MACAddress
from repro.netsim import Node, Simulator
from repro.netsim.link import wire


class Sink(Node):
    """Records (sim-time, wire-timestamp, frame) for every arrival."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []
        self.bursts = 0

    def receive(self, port, frame):
        self.received.append((self.sim.now, self.sim.now, frame))

    def receive_burst(self, port, arrivals):
        self.bursts += 1
        for stamp, frame in arrivals:
            self.received.append((self.sim.now, stamp, frame))


def make_frame(payload=b"z" * 86, tag=0):
    # 86B payload -> 100B on the wire; src MAC doubles as a frame tag.
    return EthernetFrame(
        dst=MACAddress(2), src=MACAddress(10 + tag), ethertype=0x0800,
        payload=payload,
    )


def make_pair(**kwargs):
    sim = Simulator()
    a, b = Sink(sim, "a"), Sink(sim, "b")
    link = wire(a, b, **kwargs)
    return sim, a, b, link


#: 8 Mbit/s -> 1 byte/us -> a 100B frame serialises in 100us.
BPS_1B_PER_US = 8_000_000


class TestSerializationArithmetic:
    def test_back_to_back_frames_accumulate_serialisation(self):
        sim, a, b, _ = make_pair(
            bandwidth_bps=BPS_1B_PER_US, propagation_delay_s=7e-6
        )
        for tag in range(4):
            a.port(1).send(make_frame(tag=tag))
        sim.run()
        times = [t for t, _, _ in b.received]
        # Frame k finishes serialising at (k+1)*100us, then propagates.
        assert times == pytest.approx([100e-6 * (k + 1) + 7e-6 for k in range(4)])

    def test_gap_larger_than_serialisation_resets_the_wire(self):
        sim, a, b, _ = make_pair(
            bandwidth_bps=BPS_1B_PER_US, propagation_delay_s=0.0
        )
        a.port(1).send(make_frame())
        sim.schedule_at(500e-6, lambda: a.port(1).send(make_frame()))
        sim.run()
        times = [t for t, _, _ in b.received]
        assert times == pytest.approx([100e-6, 600e-6])

    def test_busy_time_equals_sum_of_serialisations(self):
        sim, a, b, link = make_pair(
            bandwidth_bps=BPS_1B_PER_US, propagation_delay_s=0.0
        )
        for _ in range(3):
            a.port(1).send(make_frame())
        sim.run()
        assert link.stats(a.port(1)).busy_time == pytest.approx(300e-6)


class TestFifoTies:
    def test_equal_timestamp_arrivals_keep_send_order(self):
        """Ideal link, several frames sent at one instant: all arrive at
        the same simulated time and must be handed up in send order."""
        sim, a, b, _ = make_pair(bandwidth_bps=None, propagation_delay_s=1e-6)
        for tag in range(5):
            a.port(1).send(make_frame(tag=tag))
        sim.run()
        times = [t for t, _, _ in b.received]
        assert times == pytest.approx([1e-6] * 5)
        assert [int(f.src) - 10 for _, _, f in b.received] == list(range(5))

    def test_two_senders_tie_broken_by_schedule_order(self):
        sim = Simulator()
        hub, left, right = Sink(sim, "hub"), Sink(sim, "l"), Sink(sim, "r")
        wire(left, hub, bandwidth_bps=None, propagation_delay_s=1e-6)
        wire(right, hub, bandwidth_bps=None, propagation_delay_s=1e-6)
        left.port(1).send(make_frame(tag=0))
        right.port(1).send(make_frame(tag=1))
        sim.run()
        assert [int(f.src) - 10 for _, _, f in hub.received] == [0, 1]


class TestTailDrop:
    def test_fill_to_exactly_queue_frames_keeps_all(self):
        sim, a, b, link = make_pair(
            bandwidth_bps=BPS_1B_PER_US, propagation_delay_s=0.0, queue_frames=4
        )
        for tag in range(4):
            assert a.port(1).send(make_frame(tag=tag)) is True
        sim.run()
        assert len(b.received) == 4
        assert link.stats(a.port(1)).drops == 0
        assert link.stats(a.port(1)).queue_hwm == 4

    def test_one_past_queue_frames_tail_drops(self):
        sim, a, b, link = make_pair(
            bandwidth_bps=BPS_1B_PER_US, propagation_delay_s=0.0, queue_frames=4
        )
        results = [a.port(1).send(make_frame(tag=tag)) for tag in range(5)]
        assert results == [True, True, True, True, False]
        sim.run()
        assert len(b.received) == 4
        assert link.stats(a.port(1)).drops == 1
        assert link.stats(a.port(1)).queue_hwm == 4  # never exceeded

    def test_queue_drains_then_accepts_again(self):
        sim, a, b, link = make_pair(
            bandwidth_bps=BPS_1B_PER_US, propagation_delay_s=0.0, queue_frames=2
        )
        a.port(1).send(make_frame())
        a.port(1).send(make_frame())
        assert a.port(1).send(make_frame()) is False
        sim.run()  # drains both
        assert a.port(1).send(make_frame()) is True
        sim.run()
        assert len(b.received) == 3


class TestBurstTransmit:
    def test_burst_preserves_per_frame_arrival_times(self):
        """transmit_burst must stamp each frame with the same arrival
        time N sequential transmits would produce; only the delivery
        event is coalesced at the burst drain."""
        frames = [make_frame(tag=tag) for tag in range(4)]

        sim_seq, a_seq, b_seq, _ = make_pair(
            bandwidth_bps=BPS_1B_PER_US, propagation_delay_s=7e-6
        )
        for frame in frames:
            a_seq.port(1).send(frame)
        sim_seq.run()

        sim_b, a_b, b_b, _ = make_pair(
            bandwidth_bps=BPS_1B_PER_US, propagation_delay_s=7e-6
        )
        assert a_b.port(1).send_burst(list(frames)) == 4
        sim_b.run()

        assert b_b.bursts == 1  # one coalesced event...
        stamps_seq = [t for t, _, _ in b_seq.received]
        stamps_burst = [stamp for _, stamp, _ in b_b.received]
        # Bit-exact, not approx: the burst path must use the very same
        # float expression as serialization_delay(), or busy_until
        # drifts by an ulp per frame and event ordering can flip.
        assert stamps_burst == stamps_seq
        # The coalesced event fires at the drain: the last frame's arrival.
        assert all(t == stamps_seq[-1] for t, _, _ in b_b.received)

    def test_burst_busy_until_bit_identical_to_sequential(self):
        """Odd wire lengths across several bandwidths: the accumulated
        busy_until after a burst equals N sequential transmits exactly."""
        for bandwidth in (1e9, 8_000_000, 123_456_789):
            frames = [make_frame(payload=b"q" * (47 + 13 * k), tag=k) for k in range(6)]
            sim_a, a1, _, link_a = make_pair(bandwidth_bps=bandwidth)
            for frame in frames:
                a1.port(1).send(frame)
            sim_b, a2, _, link_b = make_pair(bandwidth_bps=bandwidth)
            a2.port(1).send_burst(list(frames))
            direction_a = link_a._directions[id(a1.port(1))]
            direction_b = link_b._directions[id(a2.port(1))]
            assert direction_b.busy_until == direction_a.busy_until  # bit-exact

    def test_burst_tail_drop_at_exact_boundary(self):
        sim, a, b, link = make_pair(
            bandwidth_bps=BPS_1B_PER_US, propagation_delay_s=0.0, queue_frames=3
        )
        accepted = a.port(1).send_burst([make_frame(tag=t) for t in range(5)])
        assert accepted == 3
        stats = link.stats(a.port(1))
        assert stats.drops == 2
        assert stats.queue_hwm == 3
        sim.run()
        assert len(b.received) == 3
        assert [int(f.src) - 10 for _, _, f in b.received] == [0, 1, 2]

    def test_burst_then_single_continue_serialising(self):
        """A single transmit after a burst queues behind the burst."""
        sim, a, b, _ = make_pair(
            bandwidth_bps=BPS_1B_PER_US, propagation_delay_s=0.0
        )
        a.port(1).send_burst([make_frame(tag=0), make_frame(tag=1)])
        a.port(1).send(make_frame(tag=2))
        sim.run()
        by_tag = {int(f.src) - 10: stamp for _, stamp, f in b.received}
        assert by_tag[2] == pytest.approx(300e-6)

    def test_burst_stats_match_sequential(self):
        frames = [make_frame(tag=tag) for tag in range(6)]
        sim_a, a1, _, link_a = make_pair(bandwidth_bps=BPS_1B_PER_US)
        for frame in frames:
            a1.port(1).send(frame)
        sim_a.run()
        sim_b, a2, _, link_b = make_pair(bandwidth_bps=BPS_1B_PER_US)
        a2.port(1).send_burst(list(frames))
        sim_b.run()
        stats_seq, stats_burst = link_a.stats(a1.port(1)), link_b.stats(a2.port(1))
        assert stats_burst.frames == stats_seq.frames
        assert stats_burst.bytes == stats_seq.bytes
        assert stats_burst.busy_time == pytest.approx(stats_seq.busy_time)
        assert a2.port(1).tx_frames == a1.port(1).tx_frames
        assert a2.port(1).tx_bytes == a1.port(1).tx_bytes

    def test_burst_queue_hwm_shows_queueing(self):
        """The satellite the hwm exists for: a burst actually occupies
        the queue simultaneously, it does not serialise one at a time."""
        sim, a, b, link = make_pair(
            bandwidth_bps=BPS_1B_PER_US, propagation_delay_s=0.0, queue_frames=64
        )
        a.port(1).send_burst([make_frame(tag=t) for t in range(10)])
        assert link.stats(a.port(1)).queue_hwm == 10
        sim.run()
        assert len(b.received) == 10

    def test_burst_on_down_port_counts_tx_dropped(self):
        sim, a, b, _ = make_pair()
        a.port(1).up = False
        assert a.port(1).send_burst([make_frame(), make_frame()]) == 0
        assert a.port(1).tx_dropped == 2
        sim.run()
        assert b.received == []

    def test_burst_into_down_receiver_is_dropped(self):
        sim, a, b, _ = make_pair(bandwidth_bps=None, propagation_delay_s=0.0)
        b.port(1).up = False
        a.port(1).send_burst([make_frame(), make_frame()])
        sim.run()
        assert b.received == []
        assert b.port(1).rx_frames == 0

    def test_ideal_link_burst_is_one_event(self):
        sim, a, b, _ = make_pair(bandwidth_bps=None, propagation_delay_s=0.0)
        before = sim.events_processed
        a.port(1).send_burst([make_frame(tag=t) for t in range(32)])
        sim.run()
        assert len(b.received) == 32
        assert b.bursts == 1
        assert sim.events_processed - before == 1
