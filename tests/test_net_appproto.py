"""Tests for the DNS and HTTP toy protocols and frame builders."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import (
    DnsMessage,
    DnsQuestion,
    DnsResourceRecord,
    HttpRequest,
    HttpResponse,
    IPv4Address,
    MACAddress,
    PacketDecodeError,
)
from repro.net.build import (
    arp_frame,
    icmp_echo_frame,
    parse_arp,
    parse_ipv4,
    parse_tcp,
    parse_udp,
    tcp_frame,
    udp_frame,
)
from repro.net.dns import DNS_RCODE_NXDOMAIN, decode_name, encode_name
from repro.net.tcp import TCP_FLAG_SYN, TcpSegment
from repro.net.arp import ArpPacket

MAC_A = MACAddress("02:00:00:00:00:01")
MAC_B = MACAddress("02:00:00:00:00:02")
IP_A = IPv4Address("10.0.0.1")
IP_B = IPv4Address("10.0.0.2")

label = st.text(
    alphabet=st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789-"),
    min_size=1,
    max_size=20,
).filter(lambda s: not s.startswith("-") and not s.endswith("-"))
hostnames = st.lists(label, min_size=1, max_size=4).map(".".join)


class TestDnsNames:
    def test_encode_simple(self):
        assert encode_name("a.bc") == b"\x01a\x02bc\x00"

    def test_root(self):
        assert encode_name("") == b"\x00"
        assert encode_name(".") == b"\x00"

    def test_decode(self):
        name, offset = decode_name(b"\x03www\x07example\x03com\x00rest", 0)
        assert name == "www.example.com"
        assert offset == 17

    def test_long_label_rejected(self):
        with pytest.raises(ValueError):
            encode_name("a" * 64)

    def test_truncated_raises(self):
        with pytest.raises(PacketDecodeError):
            decode_name(b"\x05ab", 0)

    @given(hostnames)
    def test_round_trip(self, name):
        encoded = encode_name(name)
        decoded, offset = decode_name(encoded, 0)
        assert decoded == name
        assert offset == len(encoded)


class TestDnsMessage:
    def test_query_round_trip(self):
        query = DnsMessage.query(0x1234, "www.example.com")
        parsed = DnsMessage.from_bytes(query.to_bytes())
        assert parsed == query

    def test_response_with_a_record(self):
        query = DnsMessage.query(7, "site.test")
        answer = DnsResourceRecord.a_record("site.test", IPv4Address("1.2.3.4"))
        response = query.make_response([answer])
        parsed = DnsMessage.from_bytes(response.to_bytes())
        assert parsed.is_response
        assert parsed.transaction_id == 7
        assert parsed.answers[0].address == IPv4Address("1.2.3.4")

    def test_nxdomain_rcode(self):
        response = DnsMessage.query(1, "nope.test").make_response(
            rcode=DNS_RCODE_NXDOMAIN
        )
        parsed = DnsMessage.from_bytes(response.to_bytes())
        assert parsed.rcode == DNS_RCODE_NXDOMAIN
        assert parsed.answers == []

    def test_non_a_record_address_raises(self):
        record = DnsResourceRecord(name="x.test", rtype=16, rdata=b"text")
        with pytest.raises(ValueError):
            record.address

    def test_truncated_message_raises(self):
        with pytest.raises(PacketDecodeError):
            DnsMessage.from_bytes(b"\x00" * 11)

    @given(st.integers(min_value=0, max_value=0xFFFF), hostnames)
    def test_query_round_trip_property(self, transaction_id, name):
        query = DnsMessage.query(transaction_id, name)
        assert DnsMessage.from_bytes(query.to_bytes()) == query


class TestHttp:
    def test_request_round_trip(self):
        request = HttpRequest(method="GET", path="/index.html", host="www.example.com")
        parsed = HttpRequest.from_bytes(request.to_bytes())
        assert parsed.method == "GET"
        assert parsed.path == "/index.html"
        assert parsed.host == "www.example.com"

    def test_request_with_body_sets_content_length(self):
        request = HttpRequest(method="POST", path="/submit", host="h", body=b"k=v")
        raw = request.to_bytes()
        assert b"Content-Length: 3" in raw
        assert HttpRequest.from_bytes(raw).body == b"k=v"

    def test_response_round_trip(self):
        response = HttpResponse(status=403, reason="Forbidden", body=b"blocked")
        parsed = HttpResponse.from_bytes(response.to_bytes())
        assert parsed.status == 403
        assert parsed.reason == "Forbidden"
        assert parsed.body == b"blocked"

    def test_bad_request_line_raises(self):
        with pytest.raises(PacketDecodeError):
            HttpRequest.from_bytes(b"NOT HTTP\r\n\r\n")

    def test_bad_status_line_raises(self):
        with pytest.raises(PacketDecodeError):
            HttpResponse.from_bytes(b"junk\r\n\r\n")


class TestBuilders:
    def test_udp_frame_parses_back(self):
        frame = udp_frame(MAC_A, MAC_B, IP_A, IP_B, 1234, 53, b"query")
        result = parse_udp(frame)
        assert result is not None
        packet, datagram = result
        assert packet.src == IP_A
        assert datagram.dst_port == 53
        assert datagram.payload == b"query"

    def test_udp_frame_with_vlan(self):
        frame = udp_frame(MAC_A, MAC_B, IP_A, IP_B, 1, 2, vlan_id=101)
        assert frame.vlan_id == 101

    def test_tcp_frame_parses_back(self):
        segment = TcpSegment(src_port=5555, dst_port=80, flags=TCP_FLAG_SYN)
        frame = tcp_frame(MAC_A, MAC_B, IP_A, IP_B, segment)
        result = parse_tcp(frame)
        assert result is not None
        _, parsed = result
        assert parsed.is_syn

    def test_icmp_echo_frame(self):
        frame = icmp_echo_frame(MAC_A, MAC_B, IP_A, IP_B, identifier=9, sequence=1)
        packet = parse_ipv4(frame)
        assert packet is not None
        assert packet.protocol == 1

    def test_arp_request_frame_is_broadcast(self):
        frame = arp_frame(ArpPacket.request(MAC_A, IP_A, IP_B))
        assert frame.dst.is_broadcast
        arp = parse_arp(frame)
        assert arp is not None
        assert arp.target_ip == IP_B

    def test_arp_reply_frame_is_unicast(self):
        reply = ArpPacket.request(MAC_A, IP_A, IP_B).make_reply(MAC_B)
        frame = arp_frame(reply)
        assert frame.dst == MAC_A

    def test_parse_helpers_return_none_on_mismatch(self):
        frame = udp_frame(MAC_A, MAC_B, IP_A, IP_B, 1, 2)
        assert parse_arp(frame) is None
        assert parse_tcp(frame) is None
