"""Unit + property tests for Ethernet frames and VLAN tag handling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    Dot1QTag,
    EthernetFrame,
    MACAddress,
    PacketDecodeError,
)

MAC_A = MACAddress("00:00:00:00:00:0a")
MAC_B = MACAddress("00:00:00:00:00:0b")


def make_frame(payload=b"hello", tags=None):
    return EthernetFrame(
        dst=MAC_B,
        src=MAC_A,
        ethertype=ETHERTYPE_IPV4,
        payload=payload,
        tags=list(tags or []),
    )


class TestDot1QTag:
    def test_tci_packing(self):
        tag = Dot1QTag(vlan_id=101, pcp=5, dei=True)
        assert tag.tci == (5 << 13) | (1 << 12) | 101

    def test_tci_round_trip(self):
        tag = Dot1QTag(vlan_id=4001, pcp=7, dei=False)
        assert Dot1QTag.from_tci(tag.tci) == tag

    def test_vlan_id_range(self):
        with pytest.raises(ValueError):
            Dot1QTag(vlan_id=4096)
        with pytest.raises(ValueError):
            Dot1QTag(vlan_id=-1)

    def test_pcp_range(self):
        with pytest.raises(ValueError):
            Dot1QTag(vlan_id=1, pcp=8)

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_from_tci_total(self, tci):
        tag = Dot1QTag.from_tci(tci)
        assert tag.tci == tci


class TestEthernetFrame:
    def test_untagged_wire_format(self):
        frame = make_frame(payload=b"\x01\x02")
        raw = frame.to_bytes()
        assert raw[:6] == MAC_B.packed
        assert raw[6:12] == MAC_A.packed
        assert raw[12:14] == b"\x08\x00"
        assert raw[14:] == b"\x01\x02"

    def test_untagged_round_trip(self):
        frame = make_frame(payload=b"payload-bytes")
        parsed = EthernetFrame.from_bytes(frame.to_bytes())
        assert parsed == frame

    def test_single_tag_round_trip(self):
        frame = make_frame().push_vlan(101)
        parsed = EthernetFrame.from_bytes(frame.to_bytes())
        assert parsed.vlan_id == 101
        assert parsed == frame

    def test_single_tag_uses_8100_tpid(self):
        raw = make_frame().push_vlan(101).to_bytes()
        assert raw[12:14] == b"\x81\x00"

    def test_qinq_outer_tpid_is_88a8(self):
        raw = make_frame().push_vlan(101).push_vlan(200).to_bytes()
        assert raw[12:14] == b"\x88\xa8"
        assert raw[16:18] == b"\x81\x00"

    def test_qinq_round_trip(self):
        frame = make_frame().push_vlan(101).push_vlan(200)
        parsed = EthernetFrame.from_bytes(frame.to_bytes())
        assert [tag.vlan_id for tag in parsed.tags] == [200, 101]
        assert parsed == frame

    def test_push_then_pop_is_identity(self):
        frame = make_frame()
        assert frame.push_vlan(300).pop_vlan() == frame

    def test_pop_untagged_raises(self):
        with pytest.raises(ValueError):
            make_frame().pop_vlan()

    def test_set_vlan_rewrites_outer_only(self):
        frame = make_frame().push_vlan(101).push_vlan(200)
        rewritten = frame.set_vlan(999)
        assert rewritten.vlan_id == 999
        assert rewritten.tags[1].vlan_id == 101

    def test_set_vlan_untagged_raises(self):
        with pytest.raises(ValueError):
            make_frame().set_vlan(5)

    def test_push_does_not_mutate_original(self):
        frame = make_frame()
        frame.push_vlan(10)
        assert frame.tags == []

    def test_vlan_property_none_when_untagged(self):
        assert make_frame().vlan is None
        assert make_frame().vlan_id is None

    def test_wire_length_pads_to_minimum(self):
        assert make_frame(payload=b"x").wire_length == 60
        assert make_frame(payload=b"x" * 100).wire_length == 114

    def test_wire_length_accounts_for_tags(self):
        tagged = make_frame(payload=b"x").push_vlan(1)
        assert tagged.wire_length == 64

    def test_truncated_frame_raises(self):
        with pytest.raises(PacketDecodeError):
            EthernetFrame.from_bytes(b"\x00" * 13)

    def test_truncated_tag_raises(self):
        raw = MAC_B.packed + MAC_A.packed + b"\x81\x00\x00"
        with pytest.raises(PacketDecodeError):
            EthernetFrame.from_bytes(raw)

    def test_copy_is_independent(self):
        frame = make_frame(tags=[Dot1QTag(5)])
        clone = frame.copy()
        clone.tags.append(Dot1QTag(6))
        assert len(frame.tags) == 1

    def test_rejects_bad_ethertype(self):
        with pytest.raises(ValueError):
            EthernetFrame(dst=MAC_A, src=MAC_B, ethertype=0x10000)

    def test_rejects_non_bytes_payload(self):
        with pytest.raises(TypeError):
            EthernetFrame(dst=MAC_A, src=MAC_B, ethertype=ETHERTYPE_ARP, payload="str")

    def test_str_mentions_vlan(self):
        assert "vlan 42" in str(make_frame().push_vlan(42))


macs = st.integers(min_value=0, max_value=(1 << 48) - 1).map(MACAddress)
vlan_ids = st.integers(min_value=1, max_value=4094)
tags = st.builds(
    Dot1QTag,
    vlan_id=vlan_ids,
    pcp=st.integers(min_value=0, max_value=7),
    dei=st.booleans(),
)
frames = st.builds(
    EthernetFrame,
    dst=macs,
    src=macs,
    ethertype=st.integers(min_value=0x0600, max_value=0xFFFF).filter(
        lambda v: v not in (0x8100, 0x88A8)
    ),
    payload=st.binary(max_size=256),
    tags=st.lists(tags, max_size=3),
)


class TestEthernetProperties:
    @given(frames)
    def test_serialise_parse_round_trip(self, frame):
        assert EthernetFrame.from_bytes(frame.to_bytes()) == frame

    @given(frames, vlan_ids)
    def test_push_pop_identity(self, frame, vlan_id):
        assert frame.push_vlan(vlan_id).pop_vlan() == frame

    @given(frames, vlan_ids)
    def test_push_sets_outer_vlan(self, frame, vlan_id):
        assert frame.push_vlan(vlan_id).vlan_id == vlan_id

    @given(frames)
    def test_wire_length_lower_bound(self, frame):
        assert frame.wire_length >= len(frame.to_bytes())
        assert frame.wire_length >= 60
