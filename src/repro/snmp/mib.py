"""The MIB tree an agent serves.

Nodes are registered under base OIDs.  Scalars read/write a single
value; tables enumerate dynamic rows on demand (so walking ifTable
always reflects live switch state rather than a snapshot).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.snmp.oid import OID

ReadFn = Callable[[], Any]
WriteFn = Callable[[Any], None]
#: Table enumerator: yields (index-suffix, value) pairs in index order.
RowsFn = Callable[[], Iterable[tuple[tuple[int, ...], Any]]]
#: Table writer: (index-suffix, value) -> None.
TableWriteFn = Callable[[tuple[int, ...], Any], None]


class MibNode:
    """Base class: something mounted at a base OID."""

    def __init__(self, base: OID, writable: bool = False) -> None:
        self.base = OID(base)
        self.writable = writable

    def get(self, oid: OID) -> "tuple[bool, Any]":
        """(found, value) for an exact OID."""
        raise NotImplementedError

    def set(self, oid: OID, value: Any) -> bool:
        """Write; returns False if the OID does not exist here."""
        raise NotImplementedError

    def successor(self, oid: OID) -> "Optional[tuple[OID, Any]]":
        """First (oid, value) pair strictly after *oid* within this node."""
        raise NotImplementedError


class MibScalar(MibNode):
    """A single value at ``base.0``."""

    def __init__(
        self,
        base: OID,
        read: ReadFn,
        write: "WriteFn | None" = None,
    ) -> None:
        super().__init__(base, writable=write is not None)
        self._read = read
        self._write = write
        self.instance = self.base.child(0)

    def get(self, oid: OID) -> "tuple[bool, Any]":
        if oid == self.instance:
            return True, self._read()
        return False, None

    def set(self, oid: OID, value: Any) -> bool:
        if oid != self.instance or self._write is None:
            return False
        self._write(value)
        return True

    def successor(self, oid: OID) -> "Optional[tuple[OID, Any]]":
        if oid < self.instance:
            return self.instance, self._read()
        return None


class MibTable(MibNode):
    """A table of dynamic rows under a base OID.

    The *rows* callable re-enumerates live state on every operation,
    yielding (index-suffix, value) pairs already sorted by index.
    """

    def __init__(
        self,
        base: OID,
        rows: RowsFn,
        write: "TableWriteFn | None" = None,
    ) -> None:
        super().__init__(base, writable=write is not None)
        self._rows = rows
        self._write = write

    def get(self, oid: OID) -> "tuple[bool, Any]":
        if not self.base.is_prefix_of(oid):
            return False, None
        wanted = oid.strip_prefix(self.base)
        for suffix, value in self._rows():
            if suffix == wanted:
                return True, value
        return False, None

    def set(self, oid: OID, value: Any) -> bool:
        if self._write is None or not self.base.is_prefix_of(oid):
            return False
        self._write(oid.strip_prefix(self.base), value)
        return True

    def successor(self, oid: OID) -> "Optional[tuple[OID, Any]]":
        best: "Optional[tuple[OID, Any]]" = None
        for suffix, value in self._rows():
            candidate = self.base.child(*suffix)
            if candidate > oid and (best is None or candidate < best[0]):
                best = (candidate, value)
        return best


class MibTree:
    """All nodes served by one agent, kept sorted by base OID."""

    def __init__(self) -> None:
        self._nodes: list[MibNode] = []

    def mount(self, node: MibNode) -> MibNode:
        """Register *node*; bases must not nest inside each other."""
        for existing in self._nodes:
            if existing.base.is_prefix_of(node.base) or node.base.is_prefix_of(
                existing.base
            ):
                raise ValueError(
                    f"OID region conflict: {existing.base} vs {node.base}"
                )
        self._nodes.append(node)
        self._nodes.sort(key=lambda n: n.base.parts)
        return node

    def scalar(self, base: "OID | str", read: ReadFn, write: "WriteFn | None" = None) -> MibScalar:
        node = MibScalar(OID(base), read, write)
        self.mount(node)
        return node

    def table(
        self, base: "OID | str", rows: RowsFn, write: "TableWriteFn | None" = None
    ) -> MibTable:
        node = MibTable(OID(base), rows, write)
        self.mount(node)
        return node

    def get(self, oid: OID) -> "tuple[bool, Any]":
        for node in self._nodes:
            found, value = node.get(oid)
            if found:
                return True, value
        return False, None

    def locate(self, oid: OID) -> "Optional[MibNode]":
        """The node whose region covers *oid* (used for SET validation).

        For scalars this means the exact ``base.0`` instance; for tables
        any OID under the base, because SET may create new rows
        (RowStatus createAndGo).
        """
        for node in self._nodes:
            if isinstance(node, MibScalar):
                if oid == node.instance:
                    return node
            elif node.base.is_prefix_of(oid) and len(oid) > len(node.base):
                return node
        return None

    def set(self, oid: OID, value: Any) -> "tuple[bool, bool]":
        """(exists, written): distinguishes noSuchName from readOnly."""
        for node in self._nodes:
            found, _ = node.get(oid)
            if found:
                if not node.writable:
                    return True, False
                return True, node.set(oid, value)
        return False, False

    def successor(self, oid: OID) -> "Optional[tuple[OID, Any]]":
        best: "Optional[tuple[OID, Any]]" = None
        for node in self._nodes:
            candidate = node.successor(oid)
            if candidate is not None and (best is None or candidate[0] < best[0]):
                best = candidate
        return best
