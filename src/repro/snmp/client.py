"""The SNMP manager side: get/set/walk against an agent."""

from __future__ import annotations

import itertools
from typing import Any

from repro.snmp.agent import SnmpAgent, SnmpError, SnmpErrorStatus
from repro.snmp.oid import OID
from repro.snmp.pdu import PduType, SnmpPdu


class SnmpTimeout(Exception):
    """The agent dropped the request (bad community or unreachable)."""


class SnmpClient:
    """Issues requests to one agent.

    The HARMLESS Manager uses this through the NAPALM-like drivers; it
    is also handy directly in tests and examples.
    """

    def __init__(self, agent: SnmpAgent, community: str = "public") -> None:
        self.agent = agent
        self.community = community
        self._request_ids = itertools.count(1)

    def _rpc(self, pdu_type: PduType, bindings: list[tuple[OID, Any]]) -> SnmpPdu:
        request = SnmpPdu(
            pdu_type=pdu_type,
            request_id=next(self._request_ids),
            community=self.community,
        )
        for oid, value in bindings:
            request.bind(oid, value)
        response = self.agent.handle(request)
        if response is None:
            raise SnmpTimeout(f"no response (community {self.community!r})")
        if response.error_status:
            raise SnmpError(
                SnmpErrorStatus(response.error_status), response.error_index
            )
        return response

    def get(self, oid: "OID | str") -> Any:
        """GET a single value."""
        response = self._rpc(PduType.GET, [(OID(oid), None)])
        return response.varbinds[0].value

    def get_many(self, oids: "list[OID | str]") -> list[Any]:
        """GET several values in one PDU."""
        response = self._rpc(PduType.GET, [(OID(oid), None) for oid in oids])
        return [binding.value for binding in response.varbinds]

    def get_next(self, oid: "OID | str") -> "tuple[OID, Any]":
        """GETNEXT: the lexicographically next (oid, value)."""
        response = self._rpc(PduType.GETNEXT, [(OID(oid), None)])
        binding = response.varbinds[0]
        return binding.oid, binding.value

    def set(self, oid: "OID | str", value: Any) -> None:
        """SET a single value."""
        self._rpc(PduType.SET, [(OID(oid), value)])

    def set_many(self, bindings: "list[tuple[OID | str, Any]]") -> None:
        """SET several values atomically."""
        self._rpc(PduType.SET, [(OID(oid), value) for oid, value in bindings])

    def walk(self, base: "OID | str") -> "list[tuple[OID, Any]]":
        """All (oid, value) pairs under *base*, in lexicographic order."""
        base = OID(base)
        results: list[tuple[OID, Any]] = []
        cursor = base
        while True:
            try:
                oid, value = self.get_next(cursor)
            except SnmpError as exc:
                if exc.status is SnmpErrorStatus.NO_SUCH_NAME:
                    break  # end of MIB
                raise
            if not base.is_prefix_of(oid):
                break
            results.append((oid, value))
            cursor = oid
        return results

    def table_rows(self, base: "OID | str") -> "dict[tuple[int, ...], Any]":
        """Walk *base* and key results by their index suffix."""
        base = OID(base)
        return {
            oid.strip_prefix(base): value for oid, value in self.walk(base)
        }
