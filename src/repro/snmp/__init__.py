"""Simulated SNMP management plane.

Models SNMP at the PDU level: OIDs with lexicographic GETNEXT ordering,
a MIB tree with scalar and table nodes, an agent with community-string
auth and read-write views, and a client.  Transport is an in-memory
call (the management network is out of band in the HARMLESS
architecture), but every semantic the Manager depends on is faithful:
Q-BRIDGE-MIB PortList bitmaps, ifTable walks, FDB export and
``SET``-driven VLAN reconfiguration.
"""

from repro.snmp.agent import SnmpAgent, SnmpError, SnmpErrorStatus
from repro.snmp.bridge_mib import attach_bridge_mib
from repro.snmp.client import SnmpClient
from repro.snmp.mib import MibNode, MibScalar, MibTable, MibTree
from repro.snmp.oid import OID
from repro.snmp.pdu import PduType, SnmpPdu, VarBind

__all__ = [
    "OID",
    "VarBind",
    "SnmpPdu",
    "PduType",
    "MibTree",
    "MibNode",
    "MibScalar",
    "MibTable",
    "SnmpAgent",
    "SnmpClient",
    "SnmpError",
    "SnmpErrorStatus",
    "attach_bridge_mib",
]
