"""The SNMP agent: community auth + GET/GETNEXT/SET over a MIB tree."""

from __future__ import annotations

import enum

from repro.snmp.mib import MibTree
from repro.snmp.pdu import PduType, SnmpPdu, VarBind


class SnmpErrorStatus(enum.IntEnum):
    """RFC 1157 error-status values (the subset agents actually use)."""

    NO_ERROR = 0
    TOO_BIG = 1
    NO_SUCH_NAME = 2
    BAD_VALUE = 3
    READ_ONLY = 4
    GEN_ERR = 5


class SnmpError(Exception):
    """Raised client-side when a response carries an error-status."""

    def __init__(self, status: SnmpErrorStatus, index: int) -> None:
        self.status = status
        self.index = index
        super().__init__(f"SNMP error {status.name} at varbind {index}")


class SnmpAgent:
    """Serves one device's MIB tree.

    ``read_community`` grants GET/GETNEXT; ``write_community`` grants
    SET as well.  Wrong community -> the request is silently dropped
    (None returned), which is how real agents behave on the wire.
    """

    def __init__(
        self,
        mib: MibTree,
        read_community: str = "public",
        write_community: str = "private",
    ) -> None:
        self.mib = mib
        self.read_community = read_community
        self.write_community = write_community
        self.requests_served = 0
        self.auth_failures = 0

    def handle(self, request: SnmpPdu) -> "SnmpPdu | None":
        """Process one request PDU, returning the response (or None)."""
        if request.pdu_type is PduType.SET:
            authorized = request.community == self.write_community
        else:
            authorized = request.community in (
                self.read_community,
                self.write_community,
            )
        if not authorized:
            self.auth_failures += 1
            return None
        self.requests_served += 1

        if request.pdu_type is PduType.GET:
            return self._handle_get(request)
        if request.pdu_type is PduType.GETNEXT:
            return self._handle_getnext(request)
        if request.pdu_type is PduType.SET:
            return self._handle_set(request)
        return self._error(request, SnmpErrorStatus.GEN_ERR, 0)

    def _response(self, request: SnmpPdu, varbinds: list[VarBind]) -> SnmpPdu:
        return SnmpPdu(
            pdu_type=PduType.RESPONSE,
            request_id=request.request_id,
            community=request.community,
            varbinds=varbinds,
        )

    def _error(self, request: SnmpPdu, status: SnmpErrorStatus, index: int) -> SnmpPdu:
        response = self._response(request, list(request.varbinds))
        response.error_status = int(status)
        response.error_index = index
        return response

    def _handle_get(self, request: SnmpPdu) -> SnmpPdu:
        results = []
        for position, binding in enumerate(request.varbinds, start=1):
            found, value = self.mib.get(binding.oid)
            if not found:
                return self._error(request, SnmpErrorStatus.NO_SUCH_NAME, position)
            results.append(VarBind(oid=binding.oid, value=value))
        return self._response(request, results)

    def _handle_getnext(self, request: SnmpPdu) -> SnmpPdu:
        results = []
        for position, binding in enumerate(request.varbinds, start=1):
            successor = self.mib.successor(binding.oid)
            if successor is None:
                # End of MIB: classic v1 answer is noSuchName.
                return self._error(request, SnmpErrorStatus.NO_SUCH_NAME, position)
            oid, value = successor
            results.append(VarBind(oid=oid, value=value))
        return self._response(request, results)

    def _handle_set(self, request: SnmpPdu) -> SnmpPdu:
        # Validate all bindings before applying any (SET is atomic).
        # An OID is settable if a writable node's region covers it —
        # rows may not exist yet (RowStatus createAndGo creates them).
        nodes = []
        for position, binding in enumerate(request.varbinds, start=1):
            node = self.mib.locate(binding.oid)
            if node is None:
                return self._error(request, SnmpErrorStatus.NO_SUCH_NAME, position)
            if not node.writable:
                return self._error(request, SnmpErrorStatus.READ_ONLY, position)
            nodes.append(node)
        for position, (binding, node) in enumerate(
            zip(request.varbinds, nodes), start=1
        ):
            try:
                written = node.set(binding.oid, binding.value)
            except ValueError:
                return self._error(request, SnmpErrorStatus.BAD_VALUE, position)
            if not written:
                return self._error(request, SnmpErrorStatus.NO_SUCH_NAME, position)
        return self._response(request, list(request.varbinds))
