"""Object identifiers with the ordering GETNEXT walks depend on."""

from __future__ import annotations

from functools import total_ordering
from typing import Iterator


@total_ordering
class OID:
    """An SNMP object identifier — a dotted sequence of non-negative ints.

    Ordering is lexicographic on the component tuple, which is exactly
    the order an agent must return varbinds for GETNEXT/walk.
    """

    __slots__ = ("_parts",)

    def __init__(self, spec: "str | tuple[int, ...] | list[int] | OID") -> None:
        if isinstance(spec, OID):
            self._parts = spec._parts
        elif isinstance(spec, str):
            text = spec.strip().lstrip(".")
            if not text:
                raise ValueError("empty OID")
            try:
                self._parts = tuple(int(part) for part in text.split("."))
            except ValueError as exc:
                raise ValueError(f"malformed OID: {spec!r}") from exc
        elif isinstance(spec, (tuple, list)):
            self._parts = tuple(int(part) for part in spec)
        else:
            raise TypeError(f"cannot build OID from {type(spec).__name__}")
        if not self._parts:
            raise ValueError("empty OID")
        if any(part < 0 for part in self._parts):
            raise ValueError(f"negative OID component: {self}")

    @property
    def parts(self) -> tuple[int, ...]:
        return self._parts

    def child(self, *suffix: int) -> "OID":
        """This OID extended with *suffix* components."""
        return OID(self._parts + tuple(suffix))

    def is_prefix_of(self, other: "OID") -> bool:
        """True if *other* lives under this OID (or equals it)."""
        return other._parts[: len(self._parts)] == self._parts

    def strip_prefix(self, prefix: "OID") -> tuple[int, ...]:
        """The components of self below *prefix* (raises if not under it)."""
        if not prefix.is_prefix_of(self):
            raise ValueError(f"{self} is not under {prefix}")
        return self._parts[len(prefix._parts):]

    def __iter__(self) -> Iterator[int]:
        return iter(self._parts)

    def __len__(self) -> int:
        return len(self._parts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OID):
            return self._parts == other._parts
        return NotImplemented

    def __lt__(self, other: "OID") -> bool:
        if isinstance(other, OID):
            return self._parts < other._parts
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("OID", self._parts))

    def __str__(self) -> str:
        return ".".join(str(part) for part in self._parts)

    def __repr__(self) -> str:
        return f"OID('{self}')"


# Well-known bases used by the bridge MIBs.
MIB2 = OID("1.3.6.1.2.1")
SYS_DESCR = MIB2.child(1, 1, 0)
SYS_NAME = MIB2.child(1, 5, 0)
IF_TABLE = MIB2.child(2, 2)
DOT1D_BRIDGE = MIB2.child(17)
DOT1D_TP_FDB = DOT1D_BRIDGE.child(4, 3)
Q_BRIDGE = DOT1D_BRIDGE.child(7)
DOT1Q_VLAN_STATIC = Q_BRIDGE.child(1, 4, 3)
DOT1Q_PVID = Q_BRIDGE.child(1, 4, 5)
