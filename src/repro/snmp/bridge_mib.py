"""MIB-2 / BRIDGE-MIB / Q-BRIDGE-MIB adapter for the legacy switch.

Exposes (all under the standard OIDs):

* system: sysDescr, sysName (writable),
* ifTable: ifIndex / ifDescr / ifAdminStatus (writable) / ifOperStatus /
  ifInOctets / ifOutOctets,
* dot1qTpFdbTable: the learned MAC table, indexed by (vlan, mac),
* dot1qPortVlanTable (PVID, writable),
* dot1qVlanStaticTable: name / egress PortList / untagged PortList /
  row status, all writable — this is the table the HARMLESS Manager
  drives to build the per-port VLAN scheme.

PortList values use the RFC 2674 bitmap encoding (port 1 = high bit of
the first octet), so walks return exactly what a real agent would.
"""

from __future__ import annotations

from typing import Iterable

from repro.legacy.config import PortMode
from repro.legacy.switch import LegacySwitch
from repro.snmp.mib import MibTree
from repro.snmp.oid import OID

SYS_DESCR_OID = OID("1.3.6.1.2.1.1.1")
SYS_NAME_OID = OID("1.3.6.1.2.1.1.5")
IF_TABLE_ENTRY = OID("1.3.6.1.2.1.2.2.1")
DOT1Q_TP_FDB_ENTRY = OID("1.3.6.1.2.1.17.7.1.2.2.1")
DOT1Q_PORT_VLAN_ENTRY = OID("1.3.6.1.2.1.17.7.1.4.5.1")
DOT1Q_VLAN_STATIC_ENTRY = OID("1.3.6.1.2.1.17.7.1.4.3.1")

# ifTable columns.
IF_INDEX, IF_DESCR, IF_ADMIN, IF_OPER, IF_IN_OCTETS, IF_OUT_OCTETS = 1, 2, 7, 8, 10, 16
# dot1qVlanStatic columns.
VLAN_NAME, VLAN_EGRESS, VLAN_FORBIDDEN, VLAN_UNTAGGED, VLAN_ROW_STATUS = 1, 2, 3, 4, 5
# RowStatus values.
ROW_ACTIVE, ROW_CREATE_AND_GO, ROW_DESTROY = 1, 4, 6
# FDB entry status.
FDB_LEARNED, FDB_MGMT = 3, 5


def portlist_to_bytes(ports: Iterable[int], width_ports: int) -> bytes:
    """Encode a port set as an RFC 2674 PortList bitmap."""
    width_octets = (width_ports + 7) // 8
    bits = bytearray(width_octets)
    for port in ports:
        if not 1 <= port <= width_ports:
            raise ValueError(f"port {port} outside PortList width {width_ports}")
        octet, bit = divmod(port - 1, 8)
        bits[octet] |= 0x80 >> bit
    return bytes(bits)


def portlist_from_bytes(raw: bytes) -> set[int]:
    """Decode an RFC 2674 PortList bitmap into a port-number set."""
    ports = set()
    for octet_index, octet in enumerate(raw):
        for bit in range(8):
            if octet & (0x80 >> bit):
                ports.add(octet_index * 8 + bit + 1)
    return ports


class BridgeMibAdapter:
    """Binds a :class:`LegacySwitch` into a :class:`MibTree`."""

    def __init__(self, switch: LegacySwitch, mib: MibTree) -> None:
        self.switch = switch
        self.mib = mib
        self._mount_system()
        self._mount_if_table()
        self._mount_fdb_table()
        self._mount_pvid_table()
        self._mount_vlan_static_table()

    # ------------------------------------------------------------ system

    def _mount_system(self) -> None:
        switch = self.switch
        self.mib.scalar(
            SYS_DESCR_OID,
            read=lambda: f"repro legacy ethernet switch, {len(switch.ports)} ports",
        )

        def write_name(value: str) -> None:
            switch.config.hostname = str(value)

        self.mib.scalar(
            SYS_NAME_OID, read=lambda: switch.config.hostname, write=write_name
        )

    # ----------------------------------------------------------- ifTable

    def _mount_if_table(self) -> None:
        switch = self.switch

        def rows() -> Iterable[tuple[tuple[int, ...], object]]:
            for number in sorted(switch.ports):
                port = switch.ports[number]
                config = switch.config.port(number)
                yield (IF_INDEX, number), number
                yield (IF_DESCR, number), f"Ethernet{number}"
                yield (IF_ADMIN, number), 1 if config.enabled else 2
                yield (IF_OPER, number), 1 if port.up and port.is_wired else 2

        def counter_rows() -> Iterable[tuple[tuple[int, ...], object]]:
            for number in sorted(switch.ports):
                port = switch.ports[number]
                yield (IF_IN_OCTETS, number), port.rx_bytes
                yield (IF_OUT_OCTETS, number), port.tx_bytes

        def all_rows() -> Iterable[tuple[tuple[int, ...], object]]:
            merged = list(rows()) + list(counter_rows())
            merged.sort(key=lambda item: item[0])
            return merged

        def write(suffix: tuple[int, ...], value: object) -> None:
            if len(suffix) != 2 or suffix[0] != IF_ADMIN:
                raise ValueError(f"ifTable column not writable: {suffix}")
            number = suffix[1]
            if int(value) == 1:  # type: ignore[arg-type]
                switch.link_up(number)
            else:
                switch.link_down(number)

        self.mib.table(IF_TABLE_ENTRY, rows=all_rows, write=write)

    # ---------------------------------------------------------- FDB table

    def _mount_fdb_table(self) -> None:
        switch = self.switch

        def rows() -> Iterable[tuple[tuple[int, ...], object]]:
            port_rows = []
            status_rows = []
            for entry in switch.fdb.entries():
                mac_parts = tuple(entry.mac.packed)
                port_rows.append(((2, entry.vlan_id) + mac_parts, entry.port))
                status_rows.append(
                    (
                        (3, entry.vlan_id) + mac_parts,
                        FDB_MGMT if entry.static else FDB_LEARNED,
                    )
                )
            return sorted(port_rows + status_rows)

        self.mib.table(DOT1Q_TP_FDB_ENTRY, rows=rows)

    # --------------------------------------------------------- PVID table

    def _mount_pvid_table(self) -> None:
        switch = self.switch

        def rows() -> Iterable[tuple[tuple[int, ...], object]]:
            for number in sorted(switch.ports):
                config = switch.config.port(number)
                if config.mode is PortMode.ACCESS:
                    pvid = config.pvid
                else:
                    pvid = config.native_vlan if config.native_vlan else 1
                yield (1, number), pvid

        def write(suffix: tuple[int, ...], value: object) -> None:
            if len(suffix) != 2 or suffix[0] != 1:
                raise ValueError(f"bad dot1qPvid index: {suffix}")
            number = suffix[1]
            vlan_id = int(value)  # type: ignore[arg-type]
            new_config = switch.config.copy()
            port = new_config.port(number)
            if port.mode is PortMode.ACCESS:
                new_config.set_access(number, vlan_id)
            else:
                new_config.set_trunk(number, port.allowed_vlans, native_vlan=vlan_id)
            switch.apply_config(new_config)

        self.mib.table(DOT1Q_PORT_VLAN_ENTRY, rows=rows, write=write)

    # --------------------------------------------- dot1qVlanStaticTable

    def _egress_ports(self, vlan_id: int) -> set[int]:
        # Unlike config.ports_in_vlan (a dataplane question answered via
        # PortVlanConfig.carries, which is False on admin-down ports),
        # the static table wants configured membership: a downed port
        # must not lose its VLANs to a read-modify-write cycle.
        egress = set()
        for number, config in self.switch.config.ports.items():
            if config.mode is PortMode.ACCESS:
                if config.pvid == vlan_id:
                    egress.add(number)
            elif vlan_id in config.allowed_vlans or vlan_id == config.native_vlan:
                egress.add(number)
        return egress

    def _untagged_ports(self, vlan_id: int) -> set[int]:
        # Membership is *configuration*: admin-down ports keep their
        # VLANs (otherwise the read-modify-write in _write_membership
        # would silently strip a downed port back to the default VLAN
        # whenever any other port's membership changes).
        untagged = set()
        for number, config in self.switch.config.ports.items():
            if config.mode is PortMode.ACCESS and config.pvid == vlan_id:
                untagged.add(number)
            elif config.mode is PortMode.TRUNK and config.native_vlan == vlan_id:
                untagged.add(number)
        return untagged

    def _mount_vlan_static_table(self) -> None:
        switch = self.switch

        def width() -> int:
            return max(switch.ports, default=0)

        def rows() -> Iterable[tuple[tuple[int, ...], object]]:
            produced = []
            for vlan_id in sorted(switch.config.vlans):
                decl = switch.config.vlans[vlan_id]
                egress = self._egress_ports(vlan_id)
                untagged = self._untagged_ports(vlan_id) & egress
                produced.append(((VLAN_NAME, vlan_id), decl.name))
                produced.append(
                    ((VLAN_EGRESS, vlan_id), portlist_to_bytes(egress, width()))
                )
                produced.append(
                    ((VLAN_UNTAGGED, vlan_id), portlist_to_bytes(untagged, width()))
                )
                produced.append(((VLAN_ROW_STATUS, vlan_id), ROW_ACTIVE))
            return sorted(produced)

        def write(suffix: tuple[int, ...], value: object) -> None:
            if len(suffix) != 2:
                raise ValueError(f"bad dot1qVlanStatic index: {suffix}")
            column, vlan_id = suffix
            if column == VLAN_ROW_STATUS:
                self._write_row_status(vlan_id, int(value))  # type: ignore[arg-type]
            elif column == VLAN_NAME:
                switch.config.declare_vlan(vlan_id).name = str(value)
            elif column == VLAN_EGRESS:
                self._write_membership(vlan_id, egress=portlist_from_bytes(bytes(value)))  # type: ignore[arg-type]
            elif column == VLAN_UNTAGGED:
                self._write_membership(
                    vlan_id, untagged=portlist_from_bytes(bytes(value))  # type: ignore[arg-type]
                )
            else:
                raise ValueError(f"column {column} not writable")

        self.mib.table(DOT1Q_VLAN_STATIC_ENTRY, rows=rows, write=write)

    def _write_row_status(self, vlan_id: int, status: int) -> None:
        config = self.switch.config.copy()
        if status in (ROW_CREATE_AND_GO, ROW_ACTIVE):
            config.declare_vlan(vlan_id)
        elif status == ROW_DESTROY:
            config.remove_vlan(vlan_id)
        else:
            raise ValueError(f"unsupported RowStatus {status}")
        self.switch.apply_config(config)

    def _write_membership(
        self,
        vlan_id: int,
        egress: "set[int] | None" = None,
        untagged: "set[int] | None" = None,
    ) -> None:
        """Read-modify-write one VLAN's membership, re-deriving port modes.

        Q-BRIDGE expresses configuration as per-VLAN port sets; our
        switch model thinks in per-port modes.  After updating the sets
        for *vlan_id*, each affected port's mode is recomputed from its
        memberships across all VLANs:

        * untagged member of exactly one VLAN, no tagged memberships ->
          ACCESS with that PVID;
        * any tagged membership -> TRUNK (untagged membership, if any,
          becomes the native VLAN).
        """
        current_egress = {
            vid: self._egress_ports(vid) for vid in self.switch.config.vlans
        }
        current_untagged = {
            vid: self._untagged_ports(vid) & current_egress[vid]
            for vid in self.switch.config.vlans
        }
        if vlan_id not in current_egress:
            raise ValueError(f"VLAN {vlan_id} does not exist")
        if egress is not None:
            current_egress[vlan_id] = set(egress)
            current_untagged[vlan_id] &= set(egress)
        if untagged is not None:
            # A port is untagged in exactly one VLAN; granting untagged
            # membership here *moves* it (the "switchport access vlan"
            # semantics every vendor implements).
            for other_vid in current_untagged:
                if other_vid == vlan_id:
                    continue
                moved = current_untagged[other_vid] & set(untagged)
                current_untagged[other_vid] -= moved
                current_egress[other_vid] -= moved
            current_untagged[vlan_id] = set(untagged)
            current_egress[vlan_id] |= set(untagged)

        config = self.switch.config.copy()
        affected = set()
        for vid in current_egress:
            affected |= current_egress[vid] | current_untagged[vid]
        affected |= set(config.ports)

        for number in sorted(affected):
            if number not in self.switch.ports:
                raise ValueError(f"switch has no port {number}")
            tagged_memberships = {
                vid
                for vid in current_egress
                if number in current_egress[vid] and number not in current_untagged[vid]
            }
            untagged_memberships = {
                vid for vid in current_untagged if number in current_untagged[vid]
            }
            if len(untagged_memberships) > 1:
                raise ValueError(
                    f"port {number} untagged in multiple VLANs: "
                    f"{sorted(untagged_memberships)}"
                )
            if tagged_memberships:
                native = next(iter(untagged_memberships), None)
                config.set_trunk(number, tagged_memberships, native_vlan=native)
            elif untagged_memberships:
                config.set_access(number, next(iter(untagged_memberships)))
            else:
                # Removed from every VLAN: fall back to the default VLAN,
                # which is what clearing switchport config does.
                config.set_access(number, 1)
        self.switch.apply_config(config)


def attach_bridge_mib(switch: LegacySwitch) -> "tuple[MibTree, BridgeMibAdapter]":
    """Build a MIB tree for *switch* and return (tree, adapter)."""
    mib = MibTree()
    adapter = BridgeMibAdapter(switch, mib)
    return mib, adapter
