"""SNMP protocol data units (modelled, not BER-encoded).

The transport substitution is documented in DESIGN.md: PDUs travel as
objects over an in-memory management channel instead of UDP/BER, but
carry the same fields and honour the same error semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

from repro.snmp.oid import OID


class PduType(enum.Enum):
    GET = "get"
    GETNEXT = "getnext"
    SET = "set"
    RESPONSE = "response"


@dataclass
class VarBind:
    """One (OID, value) pair; value None means end-of-mib / no-such."""

    oid: OID
    value: Any = None

    def __post_init__(self) -> None:
        self.oid = OID(self.oid)


@dataclass
class SnmpPdu:
    """A request or response PDU."""

    pdu_type: PduType
    request_id: int
    community: str = "public"
    varbinds: list[VarBind] = field(default_factory=list)
    error_status: int = 0
    error_index: int = 0

    def bind(self, oid: "OID | str", value: Any = None) -> "SnmpPdu":
        """Append a varbind; returns self for chaining."""
        self.varbinds.append(VarBind(oid=OID(oid), value=value))
        return self
