"""The control channel between one switch and the controller.

Carries serialised OpenFlow bytes in both directions with a one-way
latency (the management network).  Synchronous replies produced by
``SoftSwitch.handle_message`` ride back over the same latency, so a
request/reply exchange costs one RTT — matching what a controller
measures against a real switch.

The channel can also police the switch->controller direction: a
per-datapath token bucket over *packet-in* messages (armed with
:meth:`ControllerChannel.configure_packetin_limit`) bounds the
controller work one misbehaving datapath can generate during a miss
storm.  Only ``OFPT_PACKET_IN`` is metered — echoes, barriers and
stats replies are cheap and must not be starved by a data-plane storm.
The limit is off by default, leaving the channel bit-identical to one
without the feature.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.simulator import Simulator
from repro.openflow import consts as c
from repro.softswitch.datapath import SoftSwitch

#: One-way control-channel latency: the switch is typically one or two
#: L2 hops from the controller on the management network.
DEFAULT_CONTROL_LATENCY_S = 50e-6


class ControllerChannel:
    """Bidirectional byte pipe with latency between controller and switch."""

    def __init__(
        self,
        sim: Simulator,
        switch: SoftSwitch,
        latency_s: float = DEFAULT_CONTROL_LATENCY_S,
    ) -> None:
        self.sim = sim
        self.switch = switch
        self.latency_s = latency_s
        self.to_controller_handler: "Optional[Callable[[bytes], None]]" = None
        self.messages_to_switch = 0
        self.messages_to_controller = 0
        #: False while the management network is unreachable: both
        #: directions black-hole (TCP would eventually reset; the
        #: simplification is a silently lossy pipe with counters).
        self.up = True
        self.dropped_to_switch = 0
        self.dropped_to_controller = 0
        #: Packet-in policing state; rate None means the limiter is off
        #: and the packet-in path is untouched.
        self.packetin_rate_pps: "Optional[float]" = None
        self.packetin_burst = 32
        self.packet_ins_limited = 0
        self._packetin_tokens = 0.0
        self._packetin_refilled_at = 0.0
        switch.to_controller = self._from_switch_async

    def configure_packetin_limit(
        self, rate_pps: "Optional[float]", burst: int = 32
    ) -> None:
        """Arm (or disarm, with ``rate_pps=None``) the packet-in meter."""
        if rate_pps is not None and rate_pps <= 0:
            raise ValueError("packet-in rate must be positive")
        if burst < 1:
            raise ValueError("packet-in burst must be at least 1")
        self.packetin_rate_pps = None if rate_pps is None else float(rate_pps)
        self.packetin_burst = burst
        self._packetin_tokens = float(burst)
        self._packetin_refilled_at = self.sim.now

    def _admit_packet_in(self) -> bool:
        tokens = self._packetin_tokens + (
            (self.sim.now - self._packetin_refilled_at) * self.packetin_rate_pps
        )
        if tokens > self.packetin_burst:
            tokens = float(self.packetin_burst)
        self._packetin_refilled_at = self.sim.now
        if tokens >= 1.0:
            self._packetin_tokens = tokens - 1.0
            return True
        self._packetin_tokens = tokens
        self.packet_ins_limited += 1
        return False

    def set_down(self) -> None:
        """Fail the channel: every message in either direction is lost,
        including ones already in flight when the failure hits."""
        self.up = False

    def set_up(self) -> None:
        self.up = True

    def send_to_switch(self, raw: bytes) -> None:
        """Controller -> switch; switch replies return automatically."""
        if not self.up:
            self.dropped_to_switch += 1
            return
        self.messages_to_switch += 1

        def deliver() -> None:
            if not self.up:
                self.dropped_to_switch += 1
                return
            for response in self.switch.handle_message(raw):
                self._from_switch_async(response)

        self.sim.schedule(self.latency_s, deliver)

    def _from_switch_async(self, raw: bytes) -> None:
        """Switch -> controller (async messages and replies)."""
        if not self.up:
            self.dropped_to_controller += 1
            return
        if (
            self.packetin_rate_pps is not None
            and len(raw) >= 2
            and raw[1] == c.OFPT_PACKET_IN
            and not self._admit_packet_in()
        ):
            return
        self.messages_to_controller += 1

        def deliver() -> None:
            if not self.up:
                self.dropped_to_controller += 1
                return
            if self.to_controller_handler is not None:
                self.to_controller_handler(raw)

        self.sim.schedule(self.latency_s, deliver)
