"""The control channel between one switch and the controller.

Carries serialised OpenFlow bytes in both directions with a one-way
latency (the management network).  Synchronous replies produced by
``SoftSwitch.handle_message`` ride back over the same latency, so a
request/reply exchange costs one RTT — matching what a controller
measures against a real switch.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.simulator import Simulator
from repro.softswitch.datapath import SoftSwitch

#: One-way control-channel latency: the switch is typically one or two
#: L2 hops from the controller on the management network.
DEFAULT_CONTROL_LATENCY_S = 50e-6


class ControllerChannel:
    """Bidirectional byte pipe with latency between controller and switch."""

    def __init__(
        self,
        sim: Simulator,
        switch: SoftSwitch,
        latency_s: float = DEFAULT_CONTROL_LATENCY_S,
    ) -> None:
        self.sim = sim
        self.switch = switch
        self.latency_s = latency_s
        self.to_controller_handler: "Optional[Callable[[bytes], None]]" = None
        self.messages_to_switch = 0
        self.messages_to_controller = 0
        #: False while the management network is unreachable: both
        #: directions black-hole (TCP would eventually reset; the
        #: simplification is a silently lossy pipe with counters).
        self.up = True
        self.dropped_to_switch = 0
        self.dropped_to_controller = 0
        switch.to_controller = self._from_switch_async

    def set_down(self) -> None:
        """Fail the channel: every message in either direction is lost,
        including ones already in flight when the failure hits."""
        self.up = False

    def set_up(self) -> None:
        self.up = True

    def send_to_switch(self, raw: bytes) -> None:
        """Controller -> switch; switch replies return automatically."""
        if not self.up:
            self.dropped_to_switch += 1
            return
        self.messages_to_switch += 1

        def deliver() -> None:
            if not self.up:
                self.dropped_to_switch += 1
                return
            for response in self.switch.handle_message(raw):
                self._from_switch_async(response)

        self.sim.schedule(self.latency_s, deliver)

    def _from_switch_async(self, raw: bytes) -> None:
        """Switch -> controller (async messages and replies)."""
        if not self.up:
            self.dropped_to_controller += 1
            return
        self.messages_to_controller += 1

        def deliver() -> None:
            if not self.up:
                self.dropped_to_controller += 1
                return
            if self.to_controller_handler is not None:
                self.to_controller_handler(raw)

        self.sim.schedule(self.latency_s, deliver)
