"""Base class for controller applications."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.openflow.messages import (
    ErrorMsg,
    FlowRemoved,
    OpenFlowMessage,
    PacketIn,
)

if TYPE_CHECKING:
    from repro.controller.core import Controller, Datapath


class ControllerApp:
    """One unit of control logic (learning switch, LB, DMZ, PC...).

    Apps receive lifecycle and message events; returning True from
    :meth:`on_packet_in` marks the packet consumed so later apps do not
    see it (apps are consulted in registration order).
    """

    name = "app"

    def __init__(self) -> None:
        self.controller: "Controller | None" = None

    def on_switch_ready(self, datapath: "Datapath") -> None:
        """Called once the handshake with a switch completes."""

    def on_packet_in(self, datapath: "Datapath", message: PacketIn) -> bool:
        """Handle a packet-in; return True to stop propagation."""
        return False

    def on_flow_removed(self, datapath: "Datapath", message: FlowRemoved) -> None:
        """Called when a flow with removal notification expires/is deleted."""

    def on_error(self, datapath: "Datapath", message: ErrorMsg) -> None:
        """Called on switch-reported errors."""

    def on_message(self, datapath: "Datapath", message: OpenFlowMessage) -> None:
        """Catch-all for other async messages."""
