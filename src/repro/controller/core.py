"""The controller core: datapath handles, handshake, dispatch."""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional

from repro.netsim.simulator import Simulator
from repro.openflow import consts as c
from repro.openflow.actions import Action
from repro.openflow.instructions import ApplyActions, Instruction
from repro.openflow.match import Match
from repro.openflow.messages import (
    Bucket,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    FlowStatsReply,
    GroupMod,
    Hello,
    OpenFlowMessage,
    PacketIn,
    PacketOut,
    PortStatsReply,
    parse_message,
)
from repro.controller.channel import ControllerChannel, DEFAULT_CONTROL_LATENCY_S
from repro.softswitch.datapath import SoftSwitch


class Datapath:
    """Controller-side handle for one connected switch."""

    def __init__(self, controller: "Controller", channel: ControllerChannel) -> None:
        self.controller = controller
        self.channel = channel
        self.dpid: "int | None" = None
        self.n_tables: int = 0
        self.ready = False
        self._pending_replies: dict[int, Callable[[OpenFlowMessage], None]] = {}

    @property
    def name(self) -> str:
        return self.channel.switch.name

    def send(self, message: OpenFlowMessage) -> None:
        """Serialise and ship one message to the switch."""
        if message.xid == 0:
            message.xid = self.controller.next_xid()
        self.channel.send_to_switch(message.to_bytes())

    def send_with_reply(
        self, message: OpenFlowMessage, callback: Callable[[OpenFlowMessage], None]
    ) -> None:
        """Send a request and invoke *callback* with the matching reply."""
        message.xid = self.controller.next_xid()
        self._pending_replies[message.xid] = callback
        self.channel.send_to_switch(message.to_bytes())

    # ------------------------------------------------------- conveniences

    def flow_add(
        self,
        match: Match,
        actions: "list[Action] | None" = None,
        instructions: "list[Instruction] | None" = None,
        table_id: int = 0,
        priority: int = 0x8000,
        idle_timeout: int = 0,
        hard_timeout: int = 0,
        cookie: int = 0,
        notify_removal: bool = False,
    ) -> None:
        """Install a flow; *actions* shorthand wraps into apply-actions."""
        if actions is not None and instructions is not None:
            raise ValueError("pass either actions or instructions, not both")
        if instructions is None:
            instructions = [ApplyActions(actions=tuple(actions or ()))]
        self.send(
            FlowMod(
                match=match,
                instructions=instructions,
                table_id=table_id,
                priority=priority,
                idle_timeout=idle_timeout,
                hard_timeout=hard_timeout,
                cookie=cookie,
                flags=1 if notify_removal else 0,
            )
        )

    def flow_delete(
        self, match: Match, table_id: int = 0, strict: bool = False, priority: int = 0
    ) -> None:
        self.send(
            FlowMod(
                command=c.OFPFC_DELETE_STRICT if strict else c.OFPFC_DELETE,
                match=match,
                table_id=table_id,
                priority=priority,
            )
        )

    def group_add(
        self, group_id: int, buckets: list[Bucket], group_type: int = c.OFPGT_SELECT
    ) -> None:
        self.send(
            GroupMod(
                command=c.OFPGC_ADD,
                group_type=group_type,
                group_id=group_id,
                buckets=buckets,
            )
        )

    def group_modify(
        self, group_id: int, buckets: list[Bucket], group_type: int = c.OFPGT_SELECT
    ) -> None:
        self.send(
            GroupMod(
                command=c.OFPGC_MODIFY,
                group_type=group_type,
                group_id=group_id,
                buckets=buckets,
            )
        )

    def packet_out(
        self, data: bytes, actions: list[Action], in_port: int = c.OFPP_CONTROLLER
    ) -> None:
        self.send(PacketOut(in_port=in_port, actions=actions, data=data))

    def flood(self, data: bytes, in_port: int) -> None:
        """Packet-out flooding *data* everywhere except *in_port*."""
        from repro.openflow.actions import OutputAction

        self.packet_out(
            data, [OutputAction(port=c.OFPP_FLOOD)], in_port=in_port
        )


class Controller:
    """Hosts apps and speaks OpenFlow to any number of switches."""

    def __init__(self, sim: Simulator, name: str = "controller") -> None:
        self.sim = sim
        self.name = name
        self.apps: list["ControllerApp"] = []
        self.datapaths: dict[int, Datapath] = {}
        self._xids = itertools.count(0x1000)
        self.errors_received: list[ErrorMsg] = []

    def next_xid(self) -> int:
        return next(self._xids)

    def add_app(self, app: "ControllerApp") -> "ControllerApp":
        """Register *app*; returns it for chaining."""
        self.apps.append(app)
        app.controller = self
        for datapath in self.datapaths.values():
            if datapath.ready:
                app.on_switch_ready(datapath)
        return app

    def connect(
        self,
        switch: SoftSwitch,
        latency_s: float = DEFAULT_CONTROL_LATENCY_S,
    ) -> Datapath:
        """Open a channel to *switch* and start the handshake."""
        channel = ControllerChannel(self.sim, switch, latency_s=latency_s)
        datapath = Datapath(self, channel)
        channel.to_controller_handler = lambda raw: self._receive(datapath, raw)
        datapath.send(Hello())
        datapath.send_with_reply(
            FeaturesRequest(), lambda reply: self._features(datapath, reply)
        )
        return datapath

    def _features(self, datapath: Datapath, reply: OpenFlowMessage) -> None:
        assert isinstance(reply, FeaturesReply)
        datapath.dpid = reply.datapath_id
        datapath.n_tables = reply.n_tables
        datapath.ready = True
        self.datapaths[reply.datapath_id] = datapath
        for app in self.apps:
            app.on_switch_ready(datapath)

    def _receive(self, datapath: Datapath, raw: bytes) -> None:
        message = parse_message(raw)
        callback = datapath._pending_replies.pop(message.xid, None)
        if callback is not None and not isinstance(message, (PacketIn, FlowRemoved)):
            callback(message)
            return
        if isinstance(message, Hello):
            return
        if isinstance(message, EchoRequest):
            datapath.send(EchoReply(xid=message.xid, payload=message.payload))
            return
        if isinstance(message, ErrorMsg):
            self.errors_received.append(message)
            for app in self.apps:
                app.on_error(datapath, message)
            return
        if isinstance(message, PacketIn):
            for app in self.apps:
                if app.on_packet_in(datapath, message):
                    break  # app consumed the packet
            return
        if isinstance(message, FlowRemoved):
            for app in self.apps:
                app.on_flow_removed(datapath, message)
            return
        # Unsolicited stats replies etc. go to apps' generic hook.
        for app in self.apps:
            app.on_message(datapath, message)


# Cycle break; also resolves the string annotations above at runtime.
from repro.controller.app import ControllerApp  # noqa: E402,F401
