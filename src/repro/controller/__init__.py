"""Event-driven SDN controller framework (the Ryu stand-in).

A :class:`Controller` connects to any number of
:class:`~repro.softswitch.datapath.SoftSwitch` instances over
latency-modelled channels carrying serialised OpenFlow bytes, performs
the hello/features handshake, and dispatches packet-ins and other
asynchronous messages to registered :class:`ControllerApp` objects —
the programming model Ryu applications use.
"""

from repro.controller.app import ControllerApp
from repro.controller.channel import ControllerChannel
from repro.controller.core import Controller, Datapath

__all__ = ["Controller", "Datapath", "ControllerApp", "ControllerChannel"]
