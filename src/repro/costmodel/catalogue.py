"""Synthetic 2017-era price catalogue.

The paper's artifact relies on street prices that are not archivable;
these SKUs are constructed from the era's public list-price ballpark
(documented in DESIGN.md as a substitution).  The cost *argument* only
needs the ratios to be right: a managed legacy GbE switch costs a few
hundred dollars (and is already owned), a COTS OpenFlow switch costs an
order of magnitude more, and a commodity server with 10G NICs sits in
between but serves several switches at once.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSku:
    """One purchasable device."""

    name: str
    price_usd: float
    ports: int = 0
    port_speed_gbps: float = 1.0
    #: For servers: packets/s one core forwards (ESwitch-calibrated).
    pps_per_core: float = 0.0
    cores: int = 0
    #: For servers/NICs: total trunk capacity in Gbit/s.
    trunk_gbps: float = 0.0


#: Managed GbE access switches (the gear HARMLESS keeps in service).
LEGACY_SWITCHES = {
    24: DeviceSku(name="legacy-24p-1g", price_usd=450.0, ports=24),
    48: DeviceSku(name="legacy-48p-1g", price_usd=800.0, ports=48),
}

#: COTS OpenFlow-capable switches (the forklift alternative).
COTS_OF_SWITCHES = {
    24: DeviceSku(name="cots-of-24p-1g", price_usd=3200.0, ports=24),
    48: DeviceSku(name="cots-of-48p-1g", price_usd=5500.0, ports=48),
}

#: The HARMLESS server: 2x8 cores, runs SS_1+SS_2 for several switches.
SERVER_SKU = DeviceSku(
    name="x86-server-2s",
    price_usd=2600.0,
    pps_per_core=13e6,
    cores=16,
    trunk_gbps=0.0,
)

#: Dual-port 10G NIC; one port = one legacy-switch trunk.
NIC_SKU = DeviceSku(name="10g-dual-nic", price_usd=380.0, trunk_gbps=20.0)

#: GbE quad NIC used by the pure-software strategy for access ports.
QUAD_GBE_NIC_SKU = DeviceSku(name="1g-quad-nic", price_usd=150.0, ports=4)

#: Max PCIe NICs a commodity server takes (pure-software port density cap).
MAX_NICS_PER_SERVER = 6
