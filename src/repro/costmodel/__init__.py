"""Capex model behind the paper's cost-effectiveness claim.

HARMLESS "protects current investment by offering a cost-effective
migration strategy": the enterprise keeps its paid-for legacy switches
and adds one commodity server per group of switches, instead of
replacing every box with a COTS OpenFlow switch.  This package prices
the three strategies (HARMLESS, COTS hardware, pure software switching)
over a synthetic but realistic 2017-era device catalogue and finds the
crossover points.
"""

from repro.costmodel.catalogue import (
    COTS_OF_SWITCHES,
    DeviceSku,
    LEGACY_SWITCHES,
    NIC_SKU,
    SERVER_SKU,
)
from repro.costmodel.model import (
    CostBreakdown,
    CostModel,
    StrategyCost,
)

__all__ = [
    "DeviceSku",
    "LEGACY_SWITCHES",
    "COTS_OF_SWITCHES",
    "SERVER_SKU",
    "NIC_SKU",
    "CostModel",
    "CostBreakdown",
    "StrategyCost",
]
