"""Capex computation for the three SDN-migration strategies."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.costmodel.catalogue import (
    COTS_OF_SWITCHES,
    LEGACY_SWITCHES,
    MAX_NICS_PER_SERVER,
    NIC_SKU,
    QUAD_GBE_NIC_SKU,
    SERVER_SKU,
)


@dataclass
class CostBreakdown:
    """Itemised bill for one strategy at one port count."""

    items: list[tuple[str, int, float]] = field(default_factory=list)

    def add(self, name: str, quantity: int, unit_price: float) -> None:
        if quantity:
            self.items.append((name, quantity, unit_price))

    @property
    def total(self) -> float:
        return sum(quantity * price for _, quantity, price in self.items)

    def describe(self) -> str:
        lines = [
            f"  {quantity:3d} x {name:<18s} @ ${price:8.2f} = ${quantity * price:10.2f}"
            for name, quantity, price in self.items
        ]
        lines.append(f"  {'total':>37s} = ${self.total:10.2f}")
        return "\n".join(lines)


@dataclass
class StrategyCost:
    """Result of pricing one strategy."""

    strategy: str
    ports: int
    breakdown: CostBreakdown
    notes: str = ""

    @property
    def total(self) -> float:
        return self.breakdown.total

    @property
    def per_port(self) -> float:
        return self.total / self.ports if self.ports else float("inf")


class CostModel:
    """Prices SDN-enablement of *n* access ports under each strategy.

    Parameters
    ----------
    legacy_owned:
        If True (the HARMLESS premise), existing legacy switches carry
        zero incremental capex; otherwise their purchase is included
        (the greenfield comparison).
    oversubscription:
        Access-to-trunk oversubscription the operator accepts.  At 1.0
        a 10G trunk serves 10 GbE access ports at line rate; enterprise
        access networks commonly run 4:1 or more.
    """

    def __init__(
        self, legacy_owned: bool = True, oversubscription: float = 4.0
    ) -> None:
        if oversubscription < 1.0:
            raise ValueError("oversubscription factor below 1 is meaningless")
        self.legacy_owned = legacy_owned
        self.oversubscription = oversubscription

    # ------------------------------------------------------------ helpers

    @staticmethod
    def _switch_mix(ports: int, skus: dict) -> list[tuple[int, int]]:
        """Greedy fill with 48-port units, then one smaller if it fits."""
        full, remainder = divmod(ports, 48)
        mix = []
        if full:
            mix.append((48, full))
        if remainder:
            size = 24 if remainder <= 24 else 48
            mix.append((size, 1))
        return mix

    def legacy_switches_for(self, ports: int) -> list[tuple[int, int]]:
        return self._switch_mix(ports, LEGACY_SWITCHES)

    # ----------------------------------------------------------- strategies

    def harmless(self, ports: int) -> StrategyCost:
        """Legacy switches (owned) + servers running SS_1/SS_2.

        Each legacy switch needs one trunk (one 10G NIC port); each
        server takes MAX-ish NICs and must also have the CPU budget for
        the aggregate packet rate.
        """
        breakdown = CostBreakdown()
        mix = self.legacy_switches_for(ports)
        num_switches = sum(count for _, count in mix)
        if not self.legacy_owned:
            for size, count in mix:
                sku = LEGACY_SWITCHES[size]
                breakdown.add(sku.name, count, sku.price_usd)

        # Trunks: one 10G port per legacy switch; NICs are dual-port.
        nics_needed = math.ceil(num_switches / 2)

        # Server CPU: worst-case aggregate pps through the HARMLESS
        # pipeline (SS_1 + SS_2 = 2 lookups + vlan ops per packet).
        # 64B line rate per GbE port ~ 1.488 Mpps, damped by
        # oversubscription; pipeline cost halves effective core rate.
        per_port_mpps = 1.488e6 / self.oversubscription
        required_pps = ports * per_port_mpps
        effective_pps_per_core = SERVER_SKU.pps_per_core / 2.0
        cores_needed = math.ceil(required_pps / effective_pps_per_core)
        servers_by_cpu = math.ceil(cores_needed / SERVER_SKU.cores)
        servers_by_nic = math.ceil(nics_needed / MAX_NICS_PER_SERVER)
        servers = max(1, servers_by_cpu, servers_by_nic)

        breakdown.add(SERVER_SKU.name, servers, SERVER_SKU.price_usd)
        breakdown.add(NIC_SKU.name, nics_needed, NIC_SKU.price_usd)
        return StrategyCost(
            strategy="harmless",
            ports=ports,
            breakdown=breakdown,
            notes=(
                f"{num_switches} legacy switches "
                f"({'owned' if self.legacy_owned else 'purchased'}), "
                f"{servers} server(s), oversub {self.oversubscription:.0f}:1"
            ),
        )

    def cots_hardware(self, ports: int) -> StrategyCost:
        """Forklift to COTS OpenFlow switches."""
        breakdown = CostBreakdown()
        for size, count in self._switch_mix(ports, COTS_OF_SWITCHES):
            sku = COTS_OF_SWITCHES[size]
            breakdown.add(sku.name, count, sku.price_usd)
        return StrategyCost(
            strategy="cots-hardware", ports=ports, breakdown=breakdown
        )

    def pure_software(self, ports: int) -> StrategyCost:
        """Servers with quad-GbE NICs as the switches themselves.

        This is the "lower league in port density" option the paper
        mentions: each server yields at most MAX_NICS x 4 access ports.
        """
        breakdown = CostBreakdown()
        ports_per_server = MAX_NICS_PER_SERVER * QUAD_GBE_NIC_SKU.ports
        servers = math.ceil(ports / ports_per_server)
        nics = math.ceil(ports / QUAD_GBE_NIC_SKU.ports)
        breakdown.add(SERVER_SKU.name, servers, SERVER_SKU.price_usd)
        breakdown.add(QUAD_GBE_NIC_SKU.name, nics, QUAD_GBE_NIC_SKU.price_usd)
        return StrategyCost(
            strategy="pure-software",
            ports=ports,
            breakdown=breakdown,
            notes=f"{servers} server(s), {ports_per_server} ports/server max",
        )

    # ------------------------------------------------------------ analysis

    def compare(self, ports: int) -> dict[str, StrategyCost]:
        return {
            "harmless": self.harmless(ports),
            "cots-hardware": self.cots_hardware(ports),
            "pure-software": self.pure_software(ports),
        }

    def sweep(self, port_counts: "list[int]") -> "list[dict[str, StrategyCost]]":
        return [self.compare(ports) for ports in port_counts]

    def crossover_vs_cots(self, max_ports: int = 2048, step: int = 8) -> "int | None":
        """Smallest port count where COTS becomes cheaper than HARMLESS
        (None if HARMLESS stays cheaper over the whole range)."""
        for ports in range(step, max_ports + 1, step):
            comparison = self.compare(ports)
            if comparison["cots-hardware"].total < comparison["harmless"].total:
                return ports
        return None
