"""HARMLESS reproduction: cost-effective transitioning to SDN.

Full from-scratch reproduction of Szalay et al., "HARMLESS:
Cost-Effective Transitioning to SDN" (SIGCOMM 2017 Posters & Demos),
including every substrate the paper's prototype relied on: a packet
model, a discrete-event network simulator, a legacy 802.1Q switch, an
SNMP/NAPALM management plane, an OpenFlow 1.3 software switch, and a
controller framework - with the HARMLESS architecture (tagging +
hairpinning, translator, S4, Manager) built on top.

Public subpackages: ``repro.net``, ``repro.netsim``, ``repro.legacy``,
``repro.snmp``, ``repro.mgmt``, ``repro.openflow``, ``repro.softswitch``,
``repro.controller``, ``repro.apps``, ``repro.core``, ``repro.costmodel``,
``repro.traffic``, ``repro.nfpa``.
"""

__version__ = "1.0.0"

from repro.core import (
    HarmlessDeployment,
    HarmlessError,
    HarmlessManager,
    HarmlessS4,
    PortVlanMap,
)

__all__ = [
    "__version__",
    "HarmlessManager",
    "HarmlessDeployment",
    "HarmlessError",
    "HarmlessS4",
    "PortVlanMap",
]
