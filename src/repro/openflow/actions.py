"""OpenFlow actions with spec wire encoding and execution semantics.

``apply(frame)`` returns the transformed frame (frames are treated as
immutable values); output/group are terminal decisions resolved by the
switch, not by the action itself.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.addresses import IPv4Address, MACAddress
from repro.net.ethernet import ETHERTYPE_DOT1AD, ETHERTYPE_DOT1Q, EthernetFrame
from repro.openflow.consts import OFPCML_NO_BUFFER, OFPVID_PRESENT
from repro.openflow.match import OXM_FIELDS, _OXM_CLASS_BASIC, _CODE_TO_FIELD

OFPAT_OUTPUT = 0
OFPAT_PUSH_VLAN = 17
OFPAT_POP_VLAN = 18
OFPAT_GROUP = 22
OFPAT_SET_FIELD = 25


class Action:
    """Base class; subclasses define wire format and apply()."""

    type_code: int = -1

    def apply(self, frame: EthernetFrame) -> EthernetFrame:
        """Transform *frame*; default is identity (output/group)."""
        return frame

    def to_bytes(self) -> bytes:
        raise NotImplementedError

    @staticmethod
    def parse_list(data: bytes, offset: int, end: int) -> "list[Action]":
        actions: list[Action] = []
        cursor = offset
        while cursor < end:
            action_type, length = struct.unpack_from("!HH", data, cursor)
            body = data[cursor : cursor + length]
            if action_type == OFPAT_OUTPUT:
                actions.append(OutputAction.from_bytes(body))
            elif action_type == OFPAT_PUSH_VLAN:
                actions.append(PushVlanAction.from_bytes(body))
            elif action_type == OFPAT_POP_VLAN:
                actions.append(PopVlanAction())
            elif action_type == OFPAT_GROUP:
                actions.append(GroupAction.from_bytes(body))
            elif action_type == OFPAT_SET_FIELD:
                actions.append(SetFieldAction.from_bytes(body))
            else:
                raise ValueError(f"unsupported action type {action_type}")
            cursor += length
        return actions

    @staticmethod
    def serialize_list(actions: "list[Action]") -> bytes:
        return b"".join(action.to_bytes() for action in actions)


@dataclass(frozen=True)
class OutputAction(Action):
    """Forward to a port (physical or reserved like OFPP_CONTROLLER)."""

    port: int
    max_len: int = OFPCML_NO_BUFFER

    type_code = OFPAT_OUTPUT

    def to_bytes(self) -> bytes:
        return struct.pack("!HHIH6x", OFPAT_OUTPUT, 16, self.port, self.max_len)

    @classmethod
    def from_bytes(cls, body: bytes) -> "OutputAction":
        _, _, port, max_len = struct.unpack_from("!HHIH", body)
        return cls(port=port, max_len=max_len)

    def __str__(self) -> str:
        from repro.openflow.consts import OFPP_CONTROLLER, OFPP_FLOOD, OFPP_IN_PORT

        names = {
            OFPP_CONTROLLER: "CONTROLLER",
            OFPP_FLOOD: "FLOOD",
            OFPP_IN_PORT: "IN_PORT",
        }
        return f"output:{names.get(self.port, self.port)}"


@dataclass(frozen=True)
class GroupAction(Action):
    """Hand the packet to a group (select/all/indirect)."""

    group_id: int

    type_code = OFPAT_GROUP

    def to_bytes(self) -> bytes:
        return struct.pack("!HHI", OFPAT_GROUP, 8, self.group_id)

    @classmethod
    def from_bytes(cls, body: bytes) -> "GroupAction":
        _, _, group_id = struct.unpack_from("!HHI", body)
        return cls(group_id=group_id)

    def __str__(self) -> str:
        return f"group:{self.group_id}"


@dataclass(frozen=True)
class PushVlanAction(Action):
    """Push a fresh VLAN tag (VID 0 until a set-field fills it in)."""

    ethertype: int = ETHERTYPE_DOT1Q

    type_code = OFPAT_PUSH_VLAN

    def __post_init__(self) -> None:
        if self.ethertype not in (ETHERTYPE_DOT1Q, ETHERTYPE_DOT1AD):
            raise ValueError(f"bad push-vlan ethertype {self.ethertype:#06x}")

    def apply(self, frame: EthernetFrame) -> EthernetFrame:
        return frame.push_vlan(0)

    def to_bytes(self) -> bytes:
        return struct.pack("!HHH2x", OFPAT_PUSH_VLAN, 8, self.ethertype)

    @classmethod
    def from_bytes(cls, body: bytes) -> "PushVlanAction":
        _, _, ethertype = struct.unpack_from("!HHH", body)
        return cls(ethertype=ethertype)

    def __str__(self) -> str:
        return "push_vlan"


@dataclass(frozen=True)
class PopVlanAction(Action):
    """Remove the outermost VLAN tag."""

    type_code = OFPAT_POP_VLAN

    def apply(self, frame: EthernetFrame) -> EthernetFrame:
        if frame.vlan is None:
            # Per spec behaviour on bad pop: leave the packet unchanged
            # (many implementations drop; unchanged keeps pipelines sane).
            return frame
        return frame.pop_vlan()

    def to_bytes(self) -> bytes:
        return struct.pack("!HH4x", OFPAT_POP_VLAN, 8)

    def __str__(self) -> str:
        return "pop_vlan"


@dataclass(frozen=True)
class SetFieldAction(Action):
    """Rewrite a header field (vlan_vid, eth_src/dst, ipv4_src/dst...)."""

    field: str
    value: int

    type_code = OFPAT_SET_FIELD

    def __post_init__(self) -> None:
        if self.field not in OXM_FIELDS:
            raise ValueError(f"unknown set-field target {self.field!r}")

    @classmethod
    def vlan_vid(cls, vlan_id: int) -> "SetFieldAction":
        """Set the VLAN id of the outermost tag (PRESENT bit handled)."""
        return cls(field="vlan_vid", value=OFPVID_PRESENT | vlan_id)

    def apply(self, frame: EthernetFrame) -> EthernetFrame:
        if self.field == "vlan_vid":
            if frame.vlan is None:
                return frame  # set-field on absent tag is a no-op
            return frame.set_vlan(self.value & 0xFFF)
        if self.field == "eth_dst":
            copy = frame.copy()
            copy.dst = MACAddress(self.value)
            return copy
        if self.field == "eth_src":
            copy = frame.copy()
            copy.src = MACAddress(self.value)
            return copy
        if self.field in ("ipv4_src", "ipv4_dst"):
            return self._rewrite_ipv4(frame)
        raise NotImplementedError(f"set-field {self.field} not executable")

    def _rewrite_ipv4(self, frame: EthernetFrame) -> EthernetFrame:
        from repro.net.build import parse_ipv4
        from dataclasses import replace

        packet = parse_ipv4(frame)
        if packet is None:
            return frame
        if self.field == "ipv4_src":
            packet = replace(packet, src=IPv4Address(self.value))
        else:
            packet = replace(packet, dst=IPv4Address(self.value))
        packet = self._fix_l4_checksum(packet)
        copy = frame.copy()
        copy.payload = packet.to_bytes()
        return copy

    @staticmethod
    def _fix_l4_checksum(packet):
        """Recompute the TCP/UDP checksum after address NAT.

        The pseudo header covers the IP addresses, so hardware (and
        every serious software switch) patches the transport checksum
        when a set-field rewrites them.
        """
        from dataclasses import replace

        from repro.net.errors import PacketDecodeError
        from repro.net.ipv4 import IPPROTO_TCP, IPPROTO_UDP
        from repro.net.tcp import TcpSegment
        from repro.net.udp import UdpDatagram

        try:
            if packet.protocol == IPPROTO_UDP:
                datagram = UdpDatagram.from_bytes(packet.payload)
                return replace(
                    packet, payload=datagram.to_bytes(packet.src, packet.dst)
                )
            if packet.protocol == IPPROTO_TCP:
                segment = TcpSegment.from_bytes(packet.payload)
                return replace(
                    packet, payload=segment.to_bytes(packet.src, packet.dst)
                )
        except PacketDecodeError:
            pass  # malformed L4: leave bytes alone, the endpoint drops it
        return packet

    def to_bytes(self) -> bytes:
        code, width = OXM_FIELDS[self.field]
        oxm = struct.pack("!HBB", _OXM_CLASS_BASIC, code << 1, width)
        oxm += self.value.to_bytes(width, "big")
        length = 4 + len(oxm)
        padded = length + ((-length) % 8)
        return (
            struct.pack("!HH", OFPAT_SET_FIELD, padded)
            + oxm
            + b"\x00" * ((-length) % 8)
        )

    @classmethod
    def from_bytes(cls, body: bytes) -> "SetFieldAction":
        oxm_class, code_hm, width = struct.unpack_from("!HBB", body, 4)
        if oxm_class != _OXM_CLASS_BASIC:
            raise ValueError(f"unsupported OXM class {oxm_class:#06x}")
        field = _CODE_TO_FIELD[code_hm >> 1]
        value = int.from_bytes(body[8 : 8 + width], "big")
        return cls(field=field, value=value)

    def __str__(self) -> str:
        if self.field == "vlan_vid":
            return f"set_vlan:{self.value & 0xFFF}"
        return f"set_{self.field}:{self.value:#x}"
