"""A single-pass field view over an Ethernet frame.

The switch pipeline matches fields many times per packet; PacketView
decodes every supported OXM field once into a flat *flow key* tuple
(the OVS-style "miniflow").  The key is what the two-tier fast path is
built on: the exact-match microflow cache hashes it directly, and
pre-compiled :class:`~repro.openflow.match.Match` objects test it with
plain integer comparisons instead of per-field attribute dispatch.
Field names follow the OXM naming.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.net.build import parse_ipv4
from repro.net.errors import PacketDecodeError
from repro.net.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.net.ipv4 import IPPROTO_TCP, IPPROTO_UDP
from repro.net.tcp import TcpSegment
from repro.net.udp import UdpDatagram
from repro.openflow.consts import OFPVID_PRESENT

#: Canonical field order of the flow key.  Every supported OXM field
#: has a fixed slot; absent fields hold None.  Matches and the flow
#: cache index into this tuple, so the order is part of the fast-path
#: contract (append-only if it ever grows).
FLOW_KEY_FIELDS: tuple[str, ...] = (
    "in_port",
    "eth_dst",
    "eth_src",
    "eth_type",
    "vlan_vid",
    "vlan_pcp",
    "ip_dscp",
    "ip_proto",
    "ipv4_src",
    "ipv4_dst",
    "tcp_src",
    "tcp_dst",
    "udp_src",
    "udp_dst",
)

#: field name -> slot in the flow key tuple.
FIELD_INDEX: dict[str, int] = {name: i for i, name in enumerate(FLOW_KEY_FIELDS)}

FlowKey = "tuple[Optional[int], ...]"


class PacketView:
    """Read-only OXM-field access to a frame as it ingresses a port."""

    __slots__ = ("frame", "in_port", "_key")

    def __init__(
        self,
        frame: EthernetFrame,
        in_port: int,
        key: "tuple[Optional[int], ...] | None" = None,
    ) -> None:
        """*key*, when given, is a flow key already decoded for this
        exact (frame, in_port) pair — the burst path passes it so a
        frame object appearing many times in one burst is decoded once.
        """
        self.frame = frame
        self.in_port = in_port
        self._key: "tuple[Optional[int], ...] | None" = key

    def flow_key(self) -> "tuple[Optional[int], ...]":
        """All OXM fields of this packet as one flat tuple.

        Decoded in a single pass on first use (L2 always, L3/L4 when
        present); absent fields are None.  ``vlan_vid`` follows
        OpenFlow semantics: tagged frames report ``OFPVID_PRESENT |
        vid``; untagged frames report 0.
        """
        key = self._key
        if key is None:
            key = self._key = self._decode()
        return key

    def _decode(self) -> "tuple[Optional[int], ...]":
        frame = self.frame
        vlan = frame.vlan
        ip_dscp = ip_proto = ipv4_src = ipv4_dst = None
        tcp_src = tcp_dst = udp_src = udp_dst = None
        if frame.ethertype == ETHERTYPE_IPV4:
            try:
                packet = parse_ipv4(frame)
            except PacketDecodeError:
                packet = None
            if packet is not None:
                ip_dscp = packet.dscp
                ip_proto = packet.protocol
                ipv4_src = int(packet.src)
                ipv4_dst = int(packet.dst)
                try:
                    if ip_proto == IPPROTO_TCP:
                        segment = TcpSegment.from_bytes(packet.payload)
                        tcp_src = segment.src_port
                        tcp_dst = segment.dst_port
                    elif ip_proto == IPPROTO_UDP:
                        datagram = UdpDatagram.from_bytes(packet.payload)
                        udp_src = datagram.src_port
                        udp_dst = datagram.dst_port
                except PacketDecodeError:
                    pass
        return (
            self.in_port,
            int(frame.dst),
            int(frame.src),
            frame.ethertype,
            OFPVID_PRESENT | vlan.vlan_id if vlan is not None else 0,
            vlan.pcp if vlan is not None else None,
            ip_dscp,
            ip_proto,
            ipv4_src,
            ipv4_dst,
            tcp_src,
            tcp_dst,
            udp_src,
            udp_dst,
        )

    def get(self, field: str) -> Optional[Any]:
        """The value of OXM *field* for this packet, or None if absent."""
        index = FIELD_INDEX.get(field)
        if index is None:
            raise KeyError(f"unknown OXM field {field!r}")
        return self.flow_key()[index]
