"""A lazily-parsed field view over an Ethernet frame.

The switch pipeline matches fields many times per packet; PacketView
parses each layer once on first access and caches the extracted match
fields.  Field names follow the OXM naming.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.net.build import parse_ipv4
from repro.net.errors import PacketDecodeError
from repro.net.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.net.ipv4 import IPPROTO_TCP, IPPROTO_UDP, IPv4Packet
from repro.net.tcp import TcpSegment
from repro.net.udp import UdpDatagram
from repro.openflow.consts import OFPVID_PRESENT


class PacketView:
    """Read-only OXM-field access to a frame as it ingresses a port."""

    def __init__(self, frame: EthernetFrame, in_port: int) -> None:
        self.frame = frame
        self.in_port = in_port
        self._l3: "IPv4Packet | None | bool" = False  # False = not parsed yet
        self._l4: "TcpSegment | UdpDatagram | None | bool" = False

    def _ipv4(self) -> "IPv4Packet | None":
        if self._l3 is False:
            if self.frame.ethertype == ETHERTYPE_IPV4:
                try:
                    self._l3 = parse_ipv4(self.frame)
                except PacketDecodeError:
                    self._l3 = None
            else:
                self._l3 = None
        return self._l3  # type: ignore[return-value]

    def _transport(self) -> "TcpSegment | UdpDatagram | None":
        if self._l4 is False:
            packet = self._ipv4()
            self._l4 = None
            if packet is not None:
                try:
                    if packet.protocol == IPPROTO_TCP:
                        self._l4 = TcpSegment.from_bytes(packet.payload)
                    elif packet.protocol == IPPROTO_UDP:
                        self._l4 = UdpDatagram.from_bytes(packet.payload)
                except PacketDecodeError:
                    self._l4 = None
        return self._l4  # type: ignore[return-value]

    def get(self, field: str) -> Optional[Any]:
        """The value of OXM *field* for this packet, or None if absent.

        ``vlan_vid`` follows OpenFlow semantics: tagged frames report
        ``OFPVID_PRESENT | vid``; untagged frames report 0.
        """
        if field == "in_port":
            return self.in_port
        if field == "eth_dst":
            return int(self.frame.dst)
        if field == "eth_src":
            return int(self.frame.src)
        if field == "eth_type":
            return self.frame.ethertype
        if field == "vlan_vid":
            if self.frame.vlan is None:
                return 0
            return OFPVID_PRESENT | self.frame.vlan.vlan_id
        if field == "vlan_pcp":
            return self.frame.vlan.pcp if self.frame.vlan else None
        packet = self._ipv4()
        if field == "ip_proto":
            return packet.protocol if packet else None
        if field == "ipv4_src":
            return int(packet.src) if packet else None
        if field == "ipv4_dst":
            return int(packet.dst) if packet else None
        if field == "ip_dscp":
            return packet.dscp if packet else None
        transport = self._transport()
        if field == "tcp_src":
            return transport.src_port if isinstance(transport, TcpSegment) else None
        if field == "tcp_dst":
            return transport.dst_port if isinstance(transport, TcpSegment) else None
        if field == "udp_src":
            return transport.src_port if isinstance(transport, UdpDatagram) else None
        if field == "udp_dst":
            return transport.dst_port if isinstance(transport, UdpDatagram) else None
        raise KeyError(f"unknown OXM field {field!r}")
