"""A single-pass field view over an Ethernet frame.

The switch pipeline matches fields many times per packet; PacketView
decodes every supported OXM field once into a flat *flow key* tuple
(the OVS-style "miniflow").  The key is what the two-tier fast path is
built on: the exact-match microflow cache hashes it directly, and
pre-compiled :class:`~repro.openflow.match.Match` objects test it with
plain integer comparisons instead of per-field attribute dispatch.
Field names follow the OXM naming.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.net.build import parse_ipv4
from repro.net.checksum import internet_checksum
from repro.net.errors import PacketDecodeError
from repro.net.ethernet import ETHERTYPE_IPV4, EthernetFrame
from repro.net.ipv4 import IPPROTO_TCP, IPPROTO_UDP
from repro.net.tcp import TcpSegment
from repro.net.udp import UdpDatagram
from repro.openflow.consts import OFPVID_PRESENT

#: Canonical field order of the flow key.  Every supported OXM field
#: has a fixed slot; absent fields hold None.  Matches and the flow
#: cache index into this tuple, so the order is part of the fast-path
#: contract (append-only if it ever grows).
FLOW_KEY_FIELDS: tuple[str, ...] = (
    "in_port",
    "eth_dst",
    "eth_src",
    "eth_type",
    "vlan_vid",
    "vlan_pcp",
    "ip_dscp",
    "ip_proto",
    "ipv4_src",
    "ipv4_dst",
    "tcp_src",
    "tcp_dst",
    "udp_src",
    "udp_dst",
)

#: field name -> slot in the flow key tuple.
FIELD_INDEX: dict[str, int] = {name: i for i, name in enumerate(FLOW_KEY_FIELDS)}

FlowKey = "tuple[Optional[int], ...]"


class PacketView:
    """Read-only OXM-field access to a frame as it ingresses a port."""

    __slots__ = ("frame", "in_port", "_key")

    def __init__(
        self,
        frame: EthernetFrame,
        in_port: int,
        key: "tuple[Optional[int], ...] | None" = None,
    ) -> None:
        """*key*, when given, is a flow key already decoded for this
        exact (frame, in_port) pair — the burst path passes it so a
        frame object appearing many times in one burst is decoded once.
        """
        self.frame = frame
        self.in_port = in_port
        self._key: "tuple[Optional[int], ...] | None" = key

    def flow_key(self) -> "tuple[Optional[int], ...]":
        """All OXM fields of this packet as one flat tuple.

        Decoded in a single pass on first use (L2 always, L3/L4 when
        present); absent fields are None.  ``vlan_vid`` follows
        OpenFlow semantics: tagged frames report ``OFPVID_PRESENT |
        vid``; untagged frames report 0.
        """
        key = self._key
        if key is None:
            key = self._key = self._decode()
        return key

    def _decode(self) -> "tuple[Optional[int], ...]":
        frame = self.frame
        vlan = frame.vlan
        ip_dscp = ip_proto = ipv4_src = ipv4_dst = None
        tcp_src = tcp_dst = udp_src = udp_dst = None
        if frame.ethertype == ETHERTYPE_IPV4:
            try:
                packet = parse_ipv4(frame)
            except PacketDecodeError:
                packet = None
            if packet is not None:
                ip_dscp = packet.dscp
                ip_proto = packet.protocol
                ipv4_src = int(packet.src)
                ipv4_dst = int(packet.dst)
                try:
                    if ip_proto == IPPROTO_TCP:
                        segment = TcpSegment.from_bytes(packet.payload)
                        tcp_src = segment.src_port
                        tcp_dst = segment.dst_port
                    elif ip_proto == IPPROTO_UDP:
                        datagram = UdpDatagram.from_bytes(packet.payload)
                        udp_src = datagram.src_port
                        udp_dst = datagram.dst_port
                except PacketDecodeError:
                    pass
        return (
            self.in_port,
            int(frame.dst),
            int(frame.src),
            frame.ethertype,
            OFPVID_PRESENT | vlan.vlan_id if vlan is not None else 0,
            vlan.pcp if vlan is not None else None,
            ip_dscp,
            ip_proto,
            ipv4_src,
            ipv4_dst,
            tcp_src,
            tcp_dst,
            udp_src,
            udp_dst,
        )

    def get(self, field: str) -> Optional[Any]:
        """The value of OXM *field* for this packet, or None if absent."""
        index = FIELD_INDEX.get(field)
        if index is None:
            raise KeyError(f"unknown OXM field {field!r}")
        return self.flow_key()[index]

    def flow_key_for(self, slots: "Iterable[int]") -> "tuple[Optional[int], ...]":
        """The shrunk flow key: only *slots* (sorted, deduplicated) decoded.

        Each returned position equals ``flow_key()[slot]`` for the
        corresponding slot, but when the full key has not been decoded
        yet only the requested fields are parsed — L3/L4 headers a
        pipeline never matches on are skipped (ESwitch's miniflow
        shrinking).  Uses the already-decoded full key when present.
        """
        slots = tuple(sorted(set(slots)))
        key = self._key
        if key is not None:
            return tuple(key[slot] for slot in slots)
        return compile_flow_key_extractor(slots)(self.frame, self.in_port)


def expand_key(
    slots: "tuple[int, ...]", values: "tuple[Optional[int], ...]"
) -> "tuple[Optional[int], ...]":
    """Rehydrate a shrunk key back into full 14-slot form.

    Positions listed in *slots* receive the corresponding entries of
    *values*; every other slot is None.  When *slots* covers every slot
    any match in a pipeline reads, the expanded key classifies exactly
    like the full key — the basis for running interpreted table walks
    (multi-table chain building, select-group hashing) off a shrunk
    key produced by a specialized extractor.
    """
    full: "list[Optional[int]]" = [None] * len(FLOW_KEY_FIELDS)
    for slot, value in zip(slots, values):
        full[slot] = value
    return tuple(full)


# ---------------------------------------------------------------------------
# Miniflow shrinking: code-generated partial flow-key extractors
# ---------------------------------------------------------------------------

#: Names the generated extractor source relies on.  The datapath
#: compiler merges these into its own exec namespace when it inlines
#: ``partial_decode_source`` into a specialized program.
EXTRACTOR_GLOBALS: dict[str, Any] = {
    "internet_checksum": internet_checksum,
    "ETHERTYPE_IPV4": ETHERTYPE_IPV4,
    "IPPROTO_TCP": IPPROTO_TCP,
    "IPPROTO_UDP": IPPROTO_UDP,
    "OFPVID_PRESENT": OFPVID_PRESENT,
    "int_from_bytes": int.from_bytes,
}

_L3_SLOTS = frozenset((6, 7, 8, 9, 10, 11, 12, 13))
_TCP_SLOTS = frozenset((10, 11))
_UDP_SLOTS = frozenset((12, 13))


def partial_decode_source(
    slots: "tuple[int, ...]",
    frame_var: str = "frame",
    in_port_var: str = "in_port",
    prefix: str = "v",
    indent: str = "",
) -> list[str]:
    """Source lines assigning ``{prefix}{slot}`` for every slot in *slots*.

    The emitted code produces exactly what :meth:`PacketView._decode`
    would hold at the requested slots — including every decode-error
    condition (version/IHL/length checks, the IPv4 header checksum, UDP
    length and TCP data-offset validation) and the VLAN/OFPVID
    semantics — but touches only the headers the requested slots need,
    and reads the L3/L4 fields straight off the raw payload bytes
    instead of constructing packet objects, so a pipeline matching
    three fields never pays for a 14-field object decode.  Names in
    :data:`EXTRACTOR_GLOBALS` must be present in the exec namespace.
    """
    need = frozenset(slots)
    unknown = need - set(range(len(FLOW_KEY_FIELDS)))
    if unknown:
        raise ValueError(f"unknown flow-key slots {sorted(unknown)}")
    lines: list[str] = []

    def emit(depth: int, text: str) -> None:
        lines.append(indent + "    " * depth + text)

    if 0 in need:
        emit(0, f"{prefix}0 = {in_port_var}")
    if 1 in need:
        emit(0, f"{prefix}1 = int({frame_var}.dst)")
    if 2 in need:
        emit(0, f"{prefix}2 = int({frame_var}.src)")
    if 3 in need:
        emit(0, f"{prefix}3 = {frame_var}.ethertype")
    if need & {4, 5}:
        emit(0, f"_vlan = {frame_var}.vlan")
        if 4 in need:
            emit(
                0,
                f"{prefix}4 = OFPVID_PRESENT | _vlan.vlan_id "
                "if _vlan is not None else 0",
            )
        if 5 in need:
            emit(0, f"{prefix}5 = _vlan.pcp if _vlan is not None else None")
    l3 = need & _L3_SLOTS
    if not l3:
        return lines
    for slot in sorted(l3):
        emit(0, f"{prefix}{slot} = None")
    ethertype = f"{prefix}3" if 3 in need else f"{frame_var}.ethertype"
    tcp = need & _TCP_SLOTS
    udp = need & _UDP_SLOTS
    emit(0, f"if {ethertype} == ETHERTYPE_IPV4:")
    emit(1, f"_p = {frame_var}.payload")
    emit(1, "_n = len(_p)")
    emit(1, "if _n >= 20:")
    emit(2, "_vi = _p[0]")
    emit(2, "_hl = (_vi & 15) * 4")
    emit(2, "if _vi >> 4 == 4 and 20 <= _hl <= _n:")
    emit(3, "_tl = (_p[2] << 8) | _p[3]")
    emit(3, "if _hl <= _tl <= _n and internet_checksum(_p[:_hl]) == 0:")
    if 6 in need:
        emit(4, f"{prefix}6 = _p[1] >> 2")
    if 7 in need or tcp or udp:
        emit(4, "_proto = _p[9]")
    if 7 in need:
        emit(4, f"{prefix}7 = _proto")
    if 8 in need:
        emit(4, f"{prefix}8 = int_from_bytes(_p[12:16], 'big')")
    if 9 in need:
        emit(4, f"{prefix}9 = int_from_bytes(_p[16:20], 'big')")
    branch = "if"
    if tcp:
        # TcpSegment.from_bytes validity: >= 20 bytes and a data offset
        # of >= 5 words fitting inside the segment.
        emit(4, f"{branch} _proto == IPPROTO_TCP:")
        emit(5, "_l4n = _tl - _hl")
        emit(5, "if _l4n >= 20:")
        emit(6, "_do = _p[_hl + 12] >> 4")
        emit(6, "if _do >= 5 and _do * 4 <= _l4n:")
        if 10 in need:
            emit(7, f"{prefix}10 = (_p[_hl] << 8) | _p[_hl + 1]")
        if 11 in need:
            emit(7, f"{prefix}11 = (_p[_hl + 2] << 8) | _p[_hl + 3]")
        branch = "elif"
    if udp:
        # UdpDatagram.from_bytes validity: >= 8 bytes and a length
        # field of >= 8 fitting inside the datagram.
        emit(4, f"{branch} _proto == IPPROTO_UDP:")
        emit(5, "_l4n = _tl - _hl")
        emit(5, "if _l4n >= 8:")
        emit(6, "_ul = (_p[_hl + 4] << 8) | _p[_hl + 5]")
        emit(6, "if 8 <= _ul <= _l4n:")
        if 12 in need:
            emit(7, f"{prefix}12 = (_p[_hl] << 8) | _p[_hl + 1]")
        if 13 in need:
            emit(7, f"{prefix}13 = (_p[_hl + 2] << 8) | _p[_hl + 3]")
    return lines


_EXTRACTOR_CACHE: "dict[tuple[int, ...], Callable]" = {}


def compile_flow_key_extractor(slots: "Iterable[int]") -> Callable:
    """A compiled ``extract(frame, in_port) -> tuple`` for *slots*.

    The returned function yields exactly what ``flow_key()`` would hold
    at those slot positions (in ascending slot order), decoding nothing
    else.  Compiled once per distinct slot set and cached; the source is
    kept on ``__source__`` for introspection and tests.
    """
    slots = tuple(sorted(set(slots)))
    extractor = _EXTRACTOR_CACHE.get(slots)
    if extractor is None:
        body = partial_decode_source(slots, indent="    ")
        values = ", ".join(f"v{slot}" for slot in slots)
        source = "\n".join(
            ["def _extract(frame, in_port):"]
            + (body or ["    pass"])
            + [f"    return ({values}{',' if slots else ''})"]
        )
        namespace = dict(EXTRACTOR_GLOBALS)
        exec(compile(source, f"<flow-key extractor {slots}>", "exec"), namespace)
        extractor = namespace["_extract"]
        extractor.__source__ = source
        _EXTRACTOR_CACHE[slots] = extractor
    return extractor
