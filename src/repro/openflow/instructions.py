"""OpenFlow 1.3 instructions (the per-table verbs of a flow entry)."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.openflow.actions import Action

OFPIT_GOTO_TABLE = 1
OFPIT_WRITE_ACTIONS = 3
OFPIT_APPLY_ACTIONS = 4
OFPIT_CLEAR_ACTIONS = 5


class Instruction:
    """Base class for flow-entry instructions."""

    type_code: int = -1

    def to_bytes(self) -> bytes:
        raise NotImplementedError

    @staticmethod
    def parse_list(data: bytes, offset: int, end: int) -> "list[Instruction]":
        instructions: list[Instruction] = []
        cursor = offset
        while cursor < end:
            instruction_type, length = struct.unpack_from("!HH", data, cursor)
            body = data[cursor : cursor + length]
            if instruction_type == OFPIT_GOTO_TABLE:
                instructions.append(GotoTable.from_bytes(body))
            elif instruction_type == OFPIT_APPLY_ACTIONS:
                actions = Action.parse_list(body, 8, length)
                instructions.append(ApplyActions(actions=actions))
            elif instruction_type == OFPIT_WRITE_ACTIONS:
                actions = Action.parse_list(body, 8, length)
                instructions.append(WriteActions(actions=actions))
            elif instruction_type == OFPIT_CLEAR_ACTIONS:
                instructions.append(ClearActions())
            else:
                raise ValueError(f"unsupported instruction type {instruction_type}")
            cursor += length
        return instructions

    @staticmethod
    def serialize_list(instructions: "list[Instruction]") -> bytes:
        return b"".join(instruction.to_bytes() for instruction in instructions)


@dataclass(frozen=True)
class GotoTable(Instruction):
    """Continue matching in a later table."""

    table_id: int

    type_code = OFPIT_GOTO_TABLE

    def to_bytes(self) -> bytes:
        return struct.pack("!HHB3x", OFPIT_GOTO_TABLE, 8, self.table_id)

    @classmethod
    def from_bytes(cls, body: bytes) -> "GotoTable":
        _, _, table_id = struct.unpack_from("!HHB", body)
        return cls(table_id=table_id)

    def __str__(self) -> str:
        return f"goto_table:{self.table_id}"


def _actions_instruction_bytes(type_code: int, actions: "list[Action]") -> bytes:
    body = Action.serialize_list(actions)
    return struct.pack("!HH4x", type_code, 8 + len(body)) + body


@dataclass(frozen=True)
class ApplyActions(Instruction):
    """Execute actions immediately, in order."""

    actions: tuple[Action, ...] = field(default_factory=tuple)

    type_code = OFPIT_APPLY_ACTIONS

    def __post_init__(self) -> None:
        object.__setattr__(self, "actions", tuple(self.actions))

    def to_bytes(self) -> bytes:
        return _actions_instruction_bytes(OFPIT_APPLY_ACTIONS, list(self.actions))

    def __str__(self) -> str:
        inner = ",".join(str(action) for action in self.actions)
        return f"apply({inner})"


@dataclass(frozen=True)
class WriteActions(Instruction):
    """Merge actions into the packet's action set (executed at egress)."""

    actions: tuple[Action, ...] = field(default_factory=tuple)

    type_code = OFPIT_WRITE_ACTIONS

    def __post_init__(self) -> None:
        object.__setattr__(self, "actions", tuple(self.actions))

    def to_bytes(self) -> bytes:
        return _actions_instruction_bytes(OFPIT_WRITE_ACTIONS, list(self.actions))

    def __str__(self) -> str:
        inner = ",".join(str(action) for action in self.actions)
        return f"write({inner})"


@dataclass(frozen=True)
class ClearActions(Instruction):
    """Empty the packet's action set."""

    type_code = OFPIT_CLEAR_ACTIONS

    def to_bytes(self) -> bytes:
        return struct.pack("!HH4x", OFPIT_CLEAR_ACTIONS, 8)

    def __str__(self) -> str:
        return "clear_actions"
