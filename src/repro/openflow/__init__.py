"""OpenFlow 1.3 subset with real wire-format serialisation.

Covers what HARMLESS and its use cases need: OXM matches (with masks
and the OFPVID_PRESENT VLAN semantics), apply/write/goto instructions,
output/push-pop-VLAN/set-field/group actions, flow mods, select groups
(used by the load balancer), packet-in/out, stats and the handshake
messages.  Messages serialise to spec-layout OpenFlow 1.3 bytes and
parse back, so captures of the controller channel look like the real
protocol.
"""

from repro.openflow.actions import (
    Action,
    GroupAction,
    OutputAction,
    PopVlanAction,
    PushVlanAction,
    SetFieldAction,
)
from repro.openflow.consts import (
    OFP_VERSION,
    OFPP_ALL,
    OFPP_CONTROLLER,
    OFPP_FLOOD,
    OFPP_IN_PORT,
    OFPVID_PRESENT,
)
from repro.openflow.instructions import (
    ApplyActions,
    ClearActions,
    GotoTable,
    Instruction,
    WriteActions,
)
from repro.openflow.match import Match, MatchField
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    Bucket,
    EchoReply,
    EchoRequest,
    ErrorMsg,
    FeaturesReply,
    FeaturesRequest,
    FlowMod,
    FlowRemoved,
    FlowStatsEntry,
    FlowStatsReply,
    FlowStatsRequest,
    GroupMod,
    Hello,
    OpenFlowMessage,
    PacketIn,
    PacketOut,
    PortStatsEntry,
    PortStatsReply,
    PortStatsRequest,
    parse_message,
)
from repro.openflow.packetview import PacketView

__all__ = [
    "OFP_VERSION",
    "OFPP_CONTROLLER",
    "OFPP_FLOOD",
    "OFPP_ALL",
    "OFPP_IN_PORT",
    "OFPVID_PRESENT",
    "Match",
    "MatchField",
    "PacketView",
    "Action",
    "OutputAction",
    "GroupAction",
    "PushVlanAction",
    "PopVlanAction",
    "SetFieldAction",
    "Instruction",
    "ApplyActions",
    "WriteActions",
    "ClearActions",
    "GotoTable",
    "OpenFlowMessage",
    "Hello",
    "EchoRequest",
    "EchoReply",
    "FeaturesRequest",
    "FeaturesReply",
    "FlowMod",
    "FlowRemoved",
    "PacketIn",
    "PacketOut",
    "GroupMod",
    "Bucket",
    "BarrierRequest",
    "BarrierReply",
    "ErrorMsg",
    "FlowStatsRequest",
    "FlowStatsReply",
    "FlowStatsEntry",
    "PortStatsRequest",
    "PortStatsReply",
    "PortStatsEntry",
    "parse_message",
]
