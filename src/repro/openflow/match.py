"""OXM matches: masked field matching plus spec wire encoding.

A :class:`Match` is a set of (field, value, mask) constraints.  Fields
use the OpenFlow 1.3 OXM basic class; serialisation follows the spec
TLV layout (type=OXM match, padded to 8 bytes), so flow mods captured
off the controller channel carry real OXM bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.net.addresses import IPv4Address, MACAddress
from repro.openflow.consts import OFPVID_PRESENT
from repro.openflow.packetview import FIELD_INDEX, PacketView

#: field name -> (oxm field code, byte width)
OXM_FIELDS: dict[str, tuple[int, int]] = {
    "in_port": (0, 4),
    "eth_dst": (3, 6),
    "eth_src": (4, 6),
    "eth_type": (5, 2),
    "vlan_vid": (6, 2),
    "vlan_pcp": (7, 1),
    "ip_dscp": (8, 1),
    "ip_proto": (10, 1),
    "ipv4_src": (11, 4),
    "ipv4_dst": (12, 4),
    "tcp_src": (13, 2),
    "tcp_dst": (14, 2),
    "udp_src": (15, 2),
    "udp_dst": (16, 2),
}
_CODE_TO_FIELD = {code: name for name, (code, _) in OXM_FIELDS.items()}
_OXM_CLASS_BASIC = 0x8000


def _normalise(field: str, value: object) -> int:
    """Accept the convenient types (addresses, strings) for each field."""
    if field in ("eth_dst", "eth_src") and isinstance(value, (str, bytes, MACAddress)):
        return int(MACAddress(value))
    if field in ("ipv4_src", "ipv4_dst") and isinstance(
        value, (str, bytes, IPv4Address)
    ):
        return int(IPv4Address(value))
    return int(value)  # type: ignore[arg-type]


@dataclass(frozen=True)
class MatchField:
    """One masked constraint: packet_field & mask == value & mask."""

    field: str
    value: int
    mask: Optional[int] = None

    def __post_init__(self) -> None:
        if self.field not in OXM_FIELDS:
            raise ValueError(f"unknown OXM field {self.field!r}")
        width = OXM_FIELDS[self.field][1]
        limit = 1 << (8 * width)
        if not 0 <= self.value < limit:
            raise ValueError(f"{self.field} value out of range: {self.value:#x}")
        if self.mask is not None and not 0 <= self.mask < limit:
            raise ValueError(f"{self.field} mask out of range: {self.mask:#x}")

    @property
    def effective_mask(self) -> int:
        if self.mask is not None:
            return self.mask
        return (1 << (8 * OXM_FIELDS[self.field][1])) - 1

    def covers(self, packet_value: "int | None") -> bool:
        if packet_value is None:
            return False
        mask = self.effective_mask
        return packet_value & mask == self.value & mask


class Match:
    """A conjunction of masked field constraints (empty = match all).

    Construction accepts keyword values or (value, mask) tuples::

        Match(eth_type=0x0800, ipv4_src=("10.0.0.0", 0xFFFFFF00))
        Match.vlan(101)                      # tagged with VID 101
    """

    def __init__(self, **fields: object) -> None:
        self._fields: dict[str, MatchField] = {}
        self._compiled: "tuple[tuple[int, int, int], ...] | None" = None
        self._exact_key: "tuple[tuple[str, ...], tuple[int, ...]] | None | bool" = False
        self._mask_key: (
            "tuple[tuple[tuple[int, int], ...], tuple[int, ...]] | None"
        ) = None
        for name, spec in fields.items():
            if isinstance(spec, tuple):
                value, mask = spec
                self._fields[name] = MatchField(
                    field=name,
                    value=_normalise(name, value),
                    mask=_normalise(name, mask),
                )
            else:
                self._fields[name] = MatchField(
                    field=name, value=_normalise(name, spec)
                )

    @classmethod
    def vlan(cls, vlan_id: int, **fields: object) -> "Match":
        """Match frames tagged with *vlan_id* (OFPVID_PRESENT handled)."""
        return cls(vlan_vid=OFPVID_PRESENT | vlan_id, **fields)

    @classmethod
    def untagged(cls, **fields: object) -> "Match":
        """Match frames with no VLAN tag."""
        return cls(vlan_vid=0, **fields)

    @property
    def fields(self) -> dict[str, MatchField]:
        return dict(self._fields)

    def get(self, field: str) -> Optional[MatchField]:
        return self._fields.get(field)

    def _compile(self) -> "tuple[tuple[int, int, int], ...]":
        """Pre-compile to (flow-key slot, mask, masked value) triples.

        Turns ``matches`` into plain integer compares over the packet's
        flow key — no per-field name dispatch on the hot path.  Cached;
        Match objects are immutable once visible to a flow table.
        """
        compiled = tuple(
            (
                FIELD_INDEX[name],
                constraint.effective_mask,
                constraint.value & constraint.effective_mask,
            )
            for name, constraint in self._fields.items()
        )
        self._compiled = compiled
        return compiled

    def matches_key(self, key: "tuple[int | None, ...]") -> bool:
        """True if the flow key *key* satisfies every constraint."""
        compiled = self._compiled
        if compiled is None:
            compiled = self._compile()
        for index, mask, value in compiled:
            packet_value = key[index]
            if packet_value is None or packet_value & mask != value:
                return False
        return True

    def matches(self, view: PacketView) -> bool:
        """True if *view* satisfies every constraint."""
        return self.matches_key(view.flow_key())

    def exact_key(self) -> "tuple[tuple[str, ...], tuple[int, ...]] | None":
        """The (field names, values) pair if every constraint is exact.

        An exact match constrains whole fields (no partial masks), so a
        classifier can index it in a hash bucket keyed by the field-set
        and probe with values pulled straight from a packet's flow key.
        Returns None when any field is masked (those entries stay on
        the linear-scan fallback path).
        """
        cached = self._exact_key
        if cached is not False:
            return cached  # type: ignore[return-value]
        names = tuple(sorted(self._fields, key=FIELD_INDEX.__getitem__))
        values = []
        for name in names:
            constraint = self._fields[name]
            width = OXM_FIELDS[name][1]
            if constraint.effective_mask != (1 << (8 * width)) - 1:
                self._exact_key = None
                return None
            values.append(constraint.value)
        self._exact_key = (names, tuple(values))
        return self._exact_key

    def mask_key(self) -> "tuple[tuple[tuple[int, int], ...], tuple[int, ...]]":
        """Canonical (mask-set, masked values) fingerprint of this match.

        The mask-set is the tuple of (flow-key slot, effective mask)
        pairs in slot order; the values are each constraint's value
        pre-masked.  Every Match constraining the same fields with the
        same masks shares a mask-set, so a classifier can group entries
        into one staged subtable per distinct mask-set and probe each
        with ``key[slot] & mask`` pulled straight from a packet's flow
        key.  Defined for every match (exact matches simply carry
        all-ones masks).
        """
        cached = self._mask_key
        if cached is not None:
            return cached
        names = sorted(self._fields, key=FIELD_INDEX.__getitem__)
        mask_set = []
        values = []
        for name in names:
            constraint = self._fields[name]
            mask = constraint.effective_mask
            mask_set.append((FIELD_INDEX[name], mask))
            values.append(constraint.value & mask)
        self._mask_key = (tuple(mask_set), tuple(values))
        return self._mask_key

    def slots(self) -> tuple[int, ...]:
        """Flow-key slots this match reads, ascending.

        The datapath compiler unions these across a table to shrink the
        specialized flow-key extractor to the fields actually matched.
        """
        return tuple(sorted(FIELD_INDEX[name] for name in self._fields))

    def is_subset_of(self, other: "Match") -> bool:
        """True if every packet matching self also matches *other*.

        Used for non-strict flow deletion (OFPFC_DELETE takes all flows
        whose match is a superset... strictly, whose match *overlaps*
        per the spec's "matching flows" definition: we use subset which
        is what mainstream switches implement).
        """
        for name, theirs in other._fields.items():
            mine = self._fields.get(name)
            if mine is None:
                return False
            their_mask = theirs.effective_mask
            my_mask = mine.effective_mask
            # Self must constrain at least the bits other constrains...
            if my_mask & their_mask != their_mask:
                return False
            # ...to the same values.
            if (mine.value & their_mask) != (theirs.value & their_mask):
                return False
        return True

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Match):
            return self._fields == other._fields
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._fields.items()))

    def __iter__(self) -> Iterator[MatchField]:
        return iter(self._fields.values())

    def __len__(self) -> int:
        return len(self._fields)

    def describe(self) -> str:
        """Compact human-readable form used in flow-table dumps."""
        if not self._fields:
            return "*"
        parts = []
        for name in sorted(self._fields):
            constraint = self._fields[name]
            if name == "vlan_vid" and constraint.mask is None:
                if constraint.value == 0:
                    parts.append("vlan=untagged")
                else:
                    parts.append(f"vlan={constraint.value & 0xFFF}")
            elif name in ("ipv4_src", "ipv4_dst"):
                addr = IPv4Address(constraint.value)
                if constraint.mask is not None:
                    bits = bin(constraint.mask).count("1")
                    parts.append(f"{name}={addr}/{bits}")
                else:
                    parts.append(f"{name}={addr}")
            elif name in ("eth_dst", "eth_src"):
                parts.append(f"{name}={MACAddress(constraint.value)}")
            elif name == "eth_type":
                parts.append(f"eth_type={constraint.value:#06x}")
            else:
                suffix = (
                    f"/{constraint.mask:#x}" if constraint.mask is not None else ""
                )
                parts.append(f"{name}={constraint.value}{suffix}")
        return ",".join(parts)

    def __repr__(self) -> str:
        return f"Match({self.describe()})"

    # ------------------------------------------------------- wire format

    def to_bytes(self) -> bytes:
        """Spec ofp_match: type=1 (OXM), length, fields, pad to 8."""
        body = bytearray()
        for name in sorted(self._fields, key=lambda n: OXM_FIELDS[n][0]):
            constraint = self._fields[name]
            code, width = OXM_FIELDS[name]
            has_mask = constraint.mask is not None
            payload = constraint.value.to_bytes(width, "big")
            if has_mask:
                payload += constraint.mask.to_bytes(width, "big")  # type: ignore[union-attr]
            body += struct.pack(
                "!HBB", _OXM_CLASS_BASIC, (code << 1) | int(has_mask), len(payload)
            )
            body += payload
        length = 4 + len(body)
        padding = (-length) % 8
        return struct.pack("!HH", 1, length) + bytes(body) + b"\x00" * padding

    @classmethod
    def from_bytes(cls, data: bytes, offset: int = 0) -> "tuple[Match, int]":
        """Parse an ofp_match; returns (match, next_offset_after_padding)."""
        match_type, length = struct.unpack_from("!HH", data, offset)
        if match_type != 1:
            raise ValueError(f"unsupported ofp_match type {match_type}")
        end = offset + length
        cursor = offset + 4
        result = cls()
        while cursor < end:
            oxm_class, code_hm, payload_len = struct.unpack_from("!HBB", data, cursor)
            cursor += 4
            if oxm_class != _OXM_CLASS_BASIC:
                raise ValueError(f"unsupported OXM class {oxm_class:#06x}")
            code = code_hm >> 1
            has_mask = bool(code_hm & 1)
            name = _CODE_TO_FIELD.get(code)
            if name is None:
                raise ValueError(f"unknown OXM field code {code}")
            width = OXM_FIELDS[name][1]
            expected = width * 2 if has_mask else width
            if payload_len != expected:
                raise ValueError(
                    f"OXM {name} payload length {payload_len} != {expected}"
                )
            value = int.from_bytes(data[cursor : cursor + width], "big")
            mask = None
            if has_mask:
                mask = int.from_bytes(data[cursor + width : cursor + 2 * width], "big")
            result._fields[name] = MatchField(field=name, value=value, mask=mask)
            cursor += payload_len
        return result, offset + length + ((-length) % 8)
