"""OpenFlow 1.3 messages with spec-layout serialisation.

Every message renders an 8-byte ofp_header (version 0x04) followed by
the spec body layout for the supported subset.  ``parse_message``
re-materialises messages from bytes; round-trip identity is enforced by
property tests.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field as dc_field
from typing import ClassVar, Optional

from repro.openflow import consts as c
from repro.openflow.actions import Action
from repro.openflow.instructions import Instruction
from repro.openflow.match import Match

_HEADER = struct.Struct("!BBHI")


@dataclass
class OpenFlowMessage:
    """Base message: carries the transaction id (xid)."""

    xid: int = 0

    msg_type: ClassVar[int] = -1

    def body_bytes(self) -> bytes:
        return b""

    def to_bytes(self) -> bytes:
        body = self.body_bytes()
        return _HEADER.pack(c.OFP_VERSION, self.msg_type, 8 + len(body), self.xid) + body

    @classmethod
    def from_body(cls, xid: int, body: bytes) -> "OpenFlowMessage":
        return cls(xid=xid)


@dataclass
class Hello(OpenFlowMessage):
    msg_type = c.OFPT_HELLO


@dataclass
class EchoRequest(OpenFlowMessage):
    payload: bytes = b""

    msg_type = c.OFPT_ECHO_REQUEST

    def body_bytes(self) -> bytes:
        return self.payload

    @classmethod
    def from_body(cls, xid: int, body: bytes) -> "EchoRequest":
        return cls(xid=xid, payload=body)


@dataclass
class EchoReply(OpenFlowMessage):
    payload: bytes = b""

    msg_type = c.OFPT_ECHO_REPLY

    def body_bytes(self) -> bytes:
        return self.payload

    @classmethod
    def from_body(cls, xid: int, body: bytes) -> "EchoReply":
        return cls(xid=xid, payload=body)


@dataclass
class ErrorMsg(OpenFlowMessage):
    error_type: int = 0
    code: int = 0
    data: bytes = b""

    msg_type = c.OFPT_ERROR

    def body_bytes(self) -> bytes:
        return struct.pack("!HH", self.error_type, self.code) + self.data

    @classmethod
    def from_body(cls, xid: int, body: bytes) -> "ErrorMsg":
        error_type, code = struct.unpack_from("!HH", body)
        return cls(xid=xid, error_type=error_type, code=code, data=body[4:])


@dataclass
class FeaturesRequest(OpenFlowMessage):
    msg_type = c.OFPT_FEATURES_REQUEST


@dataclass
class FeaturesReply(OpenFlowMessage):
    datapath_id: int = 0
    n_buffers: int = 0
    n_tables: int = 1
    capabilities: int = 0

    msg_type = c.OFPT_FEATURES_REPLY

    def body_bytes(self) -> bytes:
        return struct.pack(
            "!QIBB2xII",
            self.datapath_id,
            self.n_buffers,
            self.n_tables,
            0,  # auxiliary_id
            self.capabilities,
            0,  # reserved
        )

    @classmethod
    def from_body(cls, xid: int, body: bytes) -> "FeaturesReply":
        datapath_id, n_buffers, n_tables, _aux, capabilities, _r = struct.unpack_from(
            "!QIBB2xII", body
        )
        return cls(
            xid=xid,
            datapath_id=datapath_id,
            n_buffers=n_buffers,
            n_tables=n_tables,
            capabilities=capabilities,
        )


@dataclass
class FlowMod(OpenFlowMessage):
    """Add/modify/delete a flow entry."""

    match: Match = dc_field(default_factory=Match)
    instructions: list[Instruction] = dc_field(default_factory=list)
    command: int = c.OFPFC_ADD
    table_id: int = 0
    priority: int = 0x8000
    cookie: int = 0
    cookie_mask: int = 0
    idle_timeout: int = 0
    hard_timeout: int = 0
    buffer_id: int = c.OFP_NO_BUFFER
    out_port: int = c.OFPP_ANY
    out_group: int = c.OFPG_ANY
    flags: int = 0

    msg_type = c.OFPT_FLOW_MOD

    def body_bytes(self) -> bytes:
        fixed = struct.pack(
            "!QQBBHHHIIIH2x",
            self.cookie,
            self.cookie_mask,
            self.table_id,
            self.command,
            self.idle_timeout,
            self.hard_timeout,
            self.priority,
            self.buffer_id,
            self.out_port,
            self.out_group,
            self.flags,
        )
        return fixed + self.match.to_bytes() + Instruction.serialize_list(
            self.instructions
        )

    @classmethod
    def from_body(cls, xid: int, body: bytes) -> "FlowMod":
        (
            cookie,
            cookie_mask,
            table_id,
            command,
            idle_timeout,
            hard_timeout,
            priority,
            buffer_id,
            out_port,
            out_group,
            flags,
        ) = struct.unpack_from("!QQBBHHHIIIH", body)
        match, offset = Match.from_bytes(body, 40)
        instructions = Instruction.parse_list(body, offset, len(body))
        return cls(
            xid=xid,
            match=match,
            instructions=instructions,
            command=command,
            table_id=table_id,
            priority=priority,
            cookie=cookie,
            cookie_mask=cookie_mask,
            idle_timeout=idle_timeout,
            hard_timeout=hard_timeout,
            buffer_id=buffer_id,
            out_port=out_port,
            out_group=out_group,
            flags=flags,
        )


@dataclass
class PacketIn(OpenFlowMessage):
    """Packet escalated to the controller."""

    buffer_id: int = c.OFP_NO_BUFFER
    reason: int = c.OFPR_NO_MATCH
    table_id: int = 0
    cookie: int = 0
    match: Match = dc_field(default_factory=Match)
    data: bytes = b""

    msg_type = c.OFPT_PACKET_IN

    @property
    def in_port(self) -> Optional[int]:
        """Convenience: the OXM in_port carried in the match."""
        constraint = self.match.get("in_port")
        return constraint.value if constraint else None

    def body_bytes(self) -> bytes:
        fixed = struct.pack(
            "!IHBBQ",
            self.buffer_id,
            len(self.data),
            self.reason,
            self.table_id,
            self.cookie,
        )
        return fixed + self.match.to_bytes() + b"\x00\x00" + self.data

    @classmethod
    def from_body(cls, xid: int, body: bytes) -> "PacketIn":
        buffer_id, total_len, reason, table_id, cookie = struct.unpack_from(
            "!IHBBQ", body
        )
        match, offset = Match.from_bytes(body, 16)
        data = body[offset + 2 : offset + 2 + total_len]
        return cls(
            xid=xid,
            buffer_id=buffer_id,
            reason=reason,
            table_id=table_id,
            cookie=cookie,
            match=match,
            data=data,
        )


@dataclass
class PacketOut(OpenFlowMessage):
    """Controller-injected packet."""

    in_port: int = c.OFPP_CONTROLLER
    actions: list[Action] = dc_field(default_factory=list)
    data: bytes = b""
    buffer_id: int = c.OFP_NO_BUFFER

    msg_type = c.OFPT_PACKET_OUT

    def body_bytes(self) -> bytes:
        action_bytes = Action.serialize_list(self.actions)
        fixed = struct.pack(
            "!IIH6x", self.buffer_id, self.in_port, len(action_bytes)
        )
        return fixed + action_bytes + self.data

    @classmethod
    def from_body(cls, xid: int, body: bytes) -> "PacketOut":
        buffer_id, in_port, actions_len = struct.unpack_from("!IIH", body)
        actions = Action.parse_list(body, 16, 16 + actions_len)
        return cls(
            xid=xid,
            buffer_id=buffer_id,
            in_port=in_port,
            actions=actions,
            data=body[16 + actions_len :],
        )


@dataclass
class Bucket:
    """One bucket of a group (weight matters for select groups)."""

    actions: list[Action] = dc_field(default_factory=list)
    weight: int = 1
    watch_port: int = c.OFPP_ANY
    watch_group: int = c.OFPG_ANY

    def to_bytes(self) -> bytes:
        action_bytes = Action.serialize_list(self.actions)
        length = 16 + len(action_bytes)
        return (
            struct.pack(
                "!HHII4x", length, self.weight, self.watch_port, self.watch_group
            )
            + action_bytes
        )

    @classmethod
    def parse_list(cls, data: bytes, offset: int, end: int) -> "list[Bucket]":
        buckets = []
        cursor = offset
        while cursor < end:
            length, weight, watch_port, watch_group = struct.unpack_from(
                "!HHII", data, cursor
            )
            actions = Action.parse_list(data, cursor + 16, cursor + length)
            buckets.append(
                cls(
                    actions=actions,
                    weight=weight,
                    watch_port=watch_port,
                    watch_group=watch_group,
                )
            )
            cursor += length
        return buckets


@dataclass
class GroupMod(OpenFlowMessage):
    """Add/modify/delete a group entry."""

    command: int = c.OFPGC_ADD
    group_type: int = c.OFPGT_SELECT
    group_id: int = 0
    buckets: list[Bucket] = dc_field(default_factory=list)

    msg_type = c.OFPT_GROUP_MOD

    def body_bytes(self) -> bytes:
        fixed = struct.pack("!HBxI", self.command, self.group_type, self.group_id)
        return fixed + b"".join(bucket.to_bytes() for bucket in self.buckets)

    @classmethod
    def from_body(cls, xid: int, body: bytes) -> "GroupMod":
        command, group_type, group_id = struct.unpack_from("!HBxI", body)
        buckets = Bucket.parse_list(body, 8, len(body))
        return cls(
            xid=xid,
            command=command,
            group_type=group_type,
            group_id=group_id,
            buckets=buckets,
        )


@dataclass
class FlowRemoved(OpenFlowMessage):
    """Notification that a flow expired or was deleted."""

    match: Match = dc_field(default_factory=Match)
    cookie: int = 0
    priority: int = 0
    reason: int = c.OFPRR_IDLE_TIMEOUT
    table_id: int = 0
    packet_count: int = 0
    byte_count: int = 0

    msg_type = c.OFPT_FLOW_REMOVED

    def body_bytes(self) -> bytes:
        fixed = struct.pack(
            "!QHBBIIHHQQ",
            self.cookie,
            self.priority,
            self.reason,
            self.table_id,
            0,  # duration_sec
            0,  # duration_nsec
            0,  # idle_timeout
            0,  # hard_timeout
            self.packet_count,
            self.byte_count,
        )
        return fixed + self.match.to_bytes()

    @classmethod
    def from_body(cls, xid: int, body: bytes) -> "FlowRemoved":
        cookie, priority, reason, table_id, _ds, _dn, _it, _ht, packets, octets = (
            struct.unpack_from("!QHBBIIHHQQ", body)
        )
        match, _ = Match.from_bytes(body, 40)
        return cls(
            xid=xid,
            match=match,
            cookie=cookie,
            priority=priority,
            reason=reason,
            table_id=table_id,
            packet_count=packets,
            byte_count=octets,
        )


@dataclass
class BarrierRequest(OpenFlowMessage):
    msg_type = c.OFPT_BARRIER_REQUEST


@dataclass
class BarrierReply(OpenFlowMessage):
    msg_type = c.OFPT_BARRIER_REPLY


# ----------------------------- multipart (stats) ---------------------------


@dataclass
class FlowStatsRequest(OpenFlowMessage):
    """Multipart flow-stats request (filter by table/match)."""

    table_id: int = 0xFF  # all tables
    match: Match = dc_field(default_factory=Match)

    msg_type = c.OFPT_MULTIPART_REQUEST

    def body_bytes(self) -> bytes:
        fixed = struct.pack("!HH4x", c.OFPMP_FLOW, 0)
        body = struct.pack(
            "!B3xII4xQQ", self.table_id, c.OFPP_ANY, c.OFPG_ANY, 0, 0
        )
        return fixed + body + self.match.to_bytes()

    @classmethod
    def from_body(cls, xid: int, body: bytes) -> "FlowStatsRequest":
        (table_id,) = struct.unpack_from("!B", body, 8)
        match, _ = Match.from_bytes(body, 40)
        return cls(xid=xid, table_id=table_id, match=match)


@dataclass
class FlowStatsEntry:
    """One flow's statistics in a reply."""

    table_id: int = 0
    priority: int = 0
    packet_count: int = 0
    byte_count: int = 0
    match: Match = dc_field(default_factory=Match)

    def to_bytes(self) -> bytes:
        match_bytes = self.match.to_bytes()
        length = 48 + len(match_bytes)
        return (
            struct.pack(
                "!HBxIIHHHH4xQQQ",
                length,
                self.table_id,
                0,  # duration_sec
                0,  # duration_nsec
                self.priority,
                0,  # idle_timeout
                0,  # hard_timeout
                0,  # flags
                0,  # cookie
                self.packet_count,
                self.byte_count,
            )
            + match_bytes
        )

    @classmethod
    def parse_list(cls, data: bytes, offset: int) -> "list[FlowStatsEntry]":
        entries = []
        cursor = offset
        while cursor < len(data):
            length, table_id = struct.unpack_from("!HB", data, cursor)
            _, _, priority = struct.unpack_from("!IIH", data, cursor + 4)
            _cookie, packets, octets = struct.unpack_from("!QQQ", data, cursor + 24)
            match, _ = Match.from_bytes(data, cursor + 48)
            entries.append(
                cls(
                    table_id=table_id,
                    priority=priority,
                    packet_count=packets,
                    byte_count=octets,
                    match=match,
                )
            )
            cursor += length
        return entries


@dataclass
class FlowStatsReply(OpenFlowMessage):
    entries: list[FlowStatsEntry] = dc_field(default_factory=list)

    msg_type = c.OFPT_MULTIPART_REPLY

    def body_bytes(self) -> bytes:
        fixed = struct.pack("!HH4x", c.OFPMP_FLOW, 0)
        return fixed + b"".join(entry.to_bytes() for entry in self.entries)

    @classmethod
    def from_body(cls, xid: int, body: bytes) -> "FlowStatsReply":
        return cls(xid=xid, entries=FlowStatsEntry.parse_list(body, 8))


@dataclass
class PortStatsRequest(OpenFlowMessage):
    port_no: int = c.OFPP_ANY

    msg_type = c.OFPT_MULTIPART_REQUEST

    def body_bytes(self) -> bytes:
        return struct.pack("!HH4x", c.OFPMP_PORT_STATS, 0) + struct.pack(
            "!I4x", self.port_no
        )

    @classmethod
    def from_body(cls, xid: int, body: bytes) -> "PortStatsRequest":
        (port_no,) = struct.unpack_from("!I", body, 8)
        return cls(xid=xid, port_no=port_no)


@dataclass
class PortStatsEntry:
    port_no: int = 0
    rx_packets: int = 0
    tx_packets: int = 0
    rx_bytes: int = 0
    tx_bytes: int = 0
    rx_dropped: int = 0
    tx_dropped: int = 0

    _STRUCT = struct.Struct("!I4xQQQQQQ")

    def to_bytes(self) -> bytes:
        return self._STRUCT.pack(
            self.port_no,
            self.rx_packets,
            self.tx_packets,
            self.rx_bytes,
            self.tx_bytes,
            self.rx_dropped,
            self.tx_dropped,
        )

    @classmethod
    def parse_list(cls, data: bytes, offset: int) -> "list[PortStatsEntry]":
        entries = []
        cursor = offset
        while cursor + cls._STRUCT.size <= len(data):
            values = cls._STRUCT.unpack_from(data, cursor)
            entries.append(cls(*values))
            cursor += cls._STRUCT.size
        return entries


@dataclass
class PortStatsReply(OpenFlowMessage):
    entries: list[PortStatsEntry] = dc_field(default_factory=list)

    msg_type = c.OFPT_MULTIPART_REPLY

    def body_bytes(self) -> bytes:
        fixed = struct.pack("!HH4x", c.OFPMP_PORT_STATS, 0)
        return fixed + b"".join(entry.to_bytes() for entry in self.entries)

    @classmethod
    def from_body(cls, xid: int, body: bytes) -> "PortStatsReply":
        return cls(xid=xid, entries=PortStatsEntry.parse_list(body, 8))


def _parse_multipart(xid: int, body: bytes, is_reply: bool) -> OpenFlowMessage:
    (mp_type,) = struct.unpack_from("!H", body)
    if mp_type == c.OFPMP_FLOW:
        return (
            FlowStatsReply.from_body(xid, body)
            if is_reply
            else FlowStatsRequest.from_body(xid, body)
        )
    if mp_type == c.OFPMP_PORT_STATS:
        return (
            PortStatsReply.from_body(xid, body)
            if is_reply
            else PortStatsRequest.from_body(xid, body)
        )
    raise ValueError(f"unsupported multipart type {mp_type}")


_SIMPLE_TYPES: dict[int, type[OpenFlowMessage]] = {
    c.OFPT_HELLO: Hello,
    c.OFPT_ERROR: ErrorMsg,
    c.OFPT_ECHO_REQUEST: EchoRequest,
    c.OFPT_ECHO_REPLY: EchoReply,
    c.OFPT_FEATURES_REQUEST: FeaturesRequest,
    c.OFPT_FEATURES_REPLY: FeaturesReply,
    c.OFPT_PACKET_IN: PacketIn,
    c.OFPT_PACKET_OUT: PacketOut,
    c.OFPT_FLOW_MOD: FlowMod,
    c.OFPT_GROUP_MOD: GroupMod,
    c.OFPT_FLOW_REMOVED: FlowRemoved,
    c.OFPT_BARRIER_REQUEST: BarrierRequest,
    c.OFPT_BARRIER_REPLY: BarrierReply,
}


def parse_message(data: bytes) -> OpenFlowMessage:
    """Parse one OpenFlow message from *data* (must be exactly one)."""
    if len(data) < 8:
        raise ValueError(f"OpenFlow message too short: {len(data)} bytes")
    version, msg_type, length, xid = _HEADER.unpack_from(data)
    if version != c.OFP_VERSION:
        raise ValueError(f"unsupported OpenFlow version {version:#04x}")
    if length != len(data):
        raise ValueError(f"length field {length} != buffer {len(data)}")
    body = data[8:]
    if msg_type in (c.OFPT_MULTIPART_REQUEST, c.OFPT_MULTIPART_REPLY):
        return _parse_multipart(xid, body, msg_type == c.OFPT_MULTIPART_REPLY)
    message_cls = _SIMPLE_TYPES.get(msg_type)
    if message_cls is None:
        raise ValueError(f"unsupported OpenFlow message type {msg_type}")
    return message_cls.from_body(xid, body)
