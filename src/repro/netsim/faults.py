"""Fault injection: link flaps, switch crashes, controller-channel loss.

The resilience story of a hybrid network is about what happens *after*
the steady state breaks.  :class:`FaultInjector` schedules the three
event classes the benchmarks and scenario tests exercise, each as a
fail action plus an optional timed restore:

* **Link flap** — :meth:`link_flap` fails a link at a given time and
  restores it after a hold.  The physical side is
  :meth:`repro.netsim.link.Link.set_down` (queued and in-flight frames
  are lost, new frames refused); the detected side calls
  ``link_down``/``link_up`` on any attached node that implements them
  (legacy switches flush per-port FDB entries and notify STP).  Ports
  that were already administratively down stay down across the
  restore.
* **Switch crash** — :meth:`switch_crash` power-cycles a legacy switch
  (``power_off``/``power_on``: black-hole while off, dynamic FDB and
  STP state lost on restart); :meth:`deployment_crash` crashes a
  *migrated* site — the legacy half power-cycles and both S4 datapaths
  lose their flow tables (``reset_pipeline``), then the restore
  re-runs the HARMLESS bring-up: translator rules reinstalled and a
  fresh controller handshake (which re-fires ``on_switch_ready``, so
  reactive apps reinstall their table-miss entries).
* **Controller loss** — :meth:`controller_loss` black-holes a
  control channel for a window (packet-ins die in transit; the
  datapath degrades to table-miss behaviour) and restores it cleanly.
* **Broadcast storm** — :meth:`storm` plays a train of identical
  broadcast frames into a port at a configured rate for a window (a
  looped cable or babbling NIC), counting what the port accepted
  versus dropped.  Containment is the fabric's job — storm control
  (:mod:`repro.legacy.stormcontrol`) if armed, meltdown if not.

The injector only *schedules*; all state changes happen inside the
simulation at the configured times, so runs remain deterministic and
sharded replicas can apply the identical fault plan (every replica must
schedule the same faults — they are topology mutations, SPMD like
everything else; see ``BoundaryLink.set_down`` for the extra
boundary-link constraint that flap holds be at least the sync
lookahead).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.netsim.link import Link
    from repro.netsim.simulator import Simulator

__all__ = ["FaultInjector"]


def _attachments(link: "Link") -> list:
    """The live objects wired into *link*'s ports.

    Normally both ports point at *link* itself; on a severed (sharded)
    link each port holds its own BoundaryLink proxy, and the fault must
    be applied to both proxies so owner and shadow replicas stay in
    lockstep.
    """
    seen: list = []
    for port in (link.port_a, link.port_b):
        attached = link if port.link is None else port.link
        if all(attached is not other for other in seen):
            seen.append(attached)
    return seen


class FaultInjector:
    """Schedules failures and recoveries on a running simulation."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: ``(time, description)`` of every action as it executes.
        self.log: "list[tuple[float, str]]" = []
        #: id(link) -> [(node, port_number)] taken down by a pending cut.
        self._downed_ports: "dict[int, list]" = {}
        #: Storm frames the injection port accepted / refused (down or
        #: dangling ports drop at the source), across all storms.
        self.storm_frames_sent = 0
        self.storm_frames_lost = 0

    def _record(self, description: str) -> None:
        self.log.append((self.sim.now, description))

    # ------------------------------------------------------- link flaps

    def cut_link(self, link: "Link", at_s: float) -> None:
        """Schedule a hard link failure at *at_s* (no restore)."""
        self.sim.schedule_at(at_s, lambda: self._fail_link(link))

    def restore_link(self, link: "Link", at_s: float) -> None:
        """Schedule the restore of a previously cut link."""
        self.sim.schedule_at(at_s, lambda: self._restore_link(link))

    def link_flap(self, link: "Link", at_s: float, hold_s: float) -> None:
        """Fail *link* at *at_s*, restore it ``hold_s`` later."""
        if hold_s <= 0:
            raise ValueError("flap hold time must be positive")
        self.cut_link(link, at_s)
        self.restore_link(link, at_s + hold_s)

    def _fail_link(self, link: "Link") -> None:
        for attached in _attachments(link):
            attached.set_down()
        downed = self._downed_ports.setdefault(id(link), [])
        for port in (link.port_a, link.port_b):
            node = port.node
            # Only nodes with link-state handling (switches) get the
            # loss-of-light signal, and only ports that were actually
            # up — an administratively blocked port must not be
            # resurrected by the eventual restore.
            if port.up and callable(getattr(node, "link_down", None)):
                node.link_down(port.number)
                downed.append((node, port.number))
        self._record(f"link down: {link.name}")

    def _restore_link(self, link: "Link") -> None:
        for attached in _attachments(link):
            attached.set_up()
        for node, port_number in self._downed_ports.pop(id(link), []):
            node.link_up(port_number)
        self._record(f"link up: {link.name}")

    # --------------------------------------------------- switch crashes

    def switch_crash(self, switch, at_s: float, hold_s: float) -> None:
        """Power-cycle a legacy switch: off at *at_s*, on ``hold_s`` later."""
        if hold_s <= 0:
            raise ValueError("crash hold time must be positive")

        def crash() -> None:
            switch.power_off()
            self._record(f"switch crash: {switch.name}")

        def restore() -> None:
            switch.power_on()
            self._record(f"switch restart: {switch.name}")

        self.sim.schedule_at(at_s, crash)
        self.sim.schedule_at(at_s + hold_s, restore)

    def deployment_crash(
        self, deployment, controller, at_s: float, hold_s: float
    ) -> None:
        """Crash a migrated site (legacy half + both S4 datapaths).

        *deployment* is a ``HarmlessDeployment``; *controller* the
        :class:`repro.controller.core.Controller` that owns SS2.  The
        restore replays the HARMLESS bring-up on the wiped hardware:
        translator rules back into SS1, then a fresh controller
        handshake for SS2 so ``on_switch_ready`` reinstalls whatever
        the apps consider baseline state.
        """
        if hold_s <= 0:
            raise ValueError("crash hold time must be positive")
        s4 = deployment.s4

        def crash() -> None:
            deployment.legacy_switch.power_off()
            s4.ss1.reset_pipeline()
            s4.ss2.reset_pipeline()
            self._record(f"site crash: {deployment.legacy_switch.name}")

        def restore() -> None:
            deployment.legacy_switch.power_on()
            s4.install_translator(deployment.port_map)
            controller.connect(s4.ss2)
            self._record(f"site restart: {deployment.legacy_switch.name}")

        self.sim.schedule_at(at_s, crash)
        self.sim.schedule_at(at_s + hold_s, restore)

    # ------------------------------------------------- broadcast storms

    def storm(
        self,
        port,
        at_s: float,
        duration_s: float,
        rate_fps: float,
        burst: int = 16,
        vlan_id: "int | None" = None,
        src_mac=None,
    ) -> int:
        """Blast broadcast frames into the fabric through *port*.

        *port* is the attacker-side :class:`~repro.netsim.node.Port` —
        a host or station port whose link leads into the fabric (the
        storm travels ``port -> switch``, like a looped access cable).
        ``int(duration_s * rate_fps)`` identical broadcast frames leave
        in bursts of *burst* starting at *at_s*; frames the port
        refuses (down/dangling) count as ``storm_frames_lost``.
        Returns the number of frames scheduled.
        """
        if duration_s <= 0:
            raise ValueError("storm duration must be positive")
        # Lazy import: netsim is a base layer; the generators module
        # (which imports netsim) only loads when a storm is injected.
        from repro.traffic.generators import burst_schedule, storm_frames

        schedule = burst_schedule(rate_fps, duration_s, burst, start_s=at_s)
        total = sum(count for _, count in schedule)
        template = storm_frames(1, src_mac=src_mac, vlan_id=vlan_id)[0]

        def begin() -> None:
            self._record(
                f"storm start: {port.node.name}:{port.number} "
                f"({rate_fps:g} fps for {duration_s:g}s)"
            )

        def fire(count: int) -> None:
            queued = port.send_burst([template] * count)
            self.storm_frames_sent += queued
            self.storm_frames_lost += count - queued

        def end() -> None:
            self._record(
                f"storm end: {port.node.name}:{port.number} ({total} frames)"
            )

        self.sim.schedule_at(at_s, begin)
        for start, count in schedule:
            self.sim.schedule_at(start, lambda c=count: fire(c))
        self.sim.schedule_at(at_s + duration_s, end)
        return total

    # -------------------------------------------------- controller loss

    def controller_loss(self, channel, at_s: float, hold_s: float) -> None:
        """Black-hole a control channel for ``hold_s`` seconds."""
        if hold_s <= 0:
            raise ValueError("loss hold time must be positive")

        def fail() -> None:
            channel.set_down()
            self._record(f"controller channel down: {channel.switch.name}")

        def restore() -> None:
            channel.set_up()
            self._record(f"controller channel up: {channel.switch.name}")

        self.sim.schedule_at(at_s, fail)
        self.sim.schedule_at(at_s + hold_s, restore)
