"""Discrete-event network simulator.

A compact but complete event-driven simulator: nodes own ports, ports
pair up over full-duplex links with bandwidth, propagation delay and
finite drop-tail queues, and a global :class:`Simulator` advances
simulated time.  Hosts implement a small ARP/IPv4/ICMP/UDP stack so the
demo use cases run end-to-end exactly as they would on a testbed.

This is the stand-in for the paper's physical testbed (Mininet + real
hosts): byte-accurate frames traverse the same switching code whether
they come from a traffic generator or a host stack.
"""

from repro.netsim.capture import Capture, CaptureEntry
from repro.netsim.faults import FaultInjector
from repro.netsim.host import Host, PingResult
from repro.netsim.link import Link, LinkStats
from repro.netsim.node import Node, Port
from repro.netsim.sharded import (
    ShardedSimulator,
    ShardSimulator,
    ShardSyncError,
)
from repro.netsim.simulator import Event, Simulator

__all__ = [
    "Simulator",
    "Event",
    "ShardSimulator",
    "ShardSyncError",
    "ShardedSimulator",
    "Node",
    "Port",
    "Link",
    "LinkStats",
    "FaultInjector",
    "Host",
    "PingResult",
    "Capture",
    "CaptureEntry",
]
