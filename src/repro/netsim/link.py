"""Full-duplex point-to-point links with realistic timing.

Each direction models: a finite drop-tail transmit queue, store-and-
forward serialisation at the configured bandwidth, then propagation
delay.  These are the terms that appear in the paper's latency story —
HARMLESS adds one extra trunk-link traversal, so getting link timing
right is what makes the latency benchmark meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.ethernet import EthernetFrame
from repro.netsim.node import Port

#: 1 Gbit/s, the typical access speed of the legacy switches HARMLESS targets.
DEFAULT_BANDWIDTH_BPS = 1_000_000_000
#: A couple of metres of copper.
DEFAULT_PROP_DELAY_S = 1e-6
#: Frames queued per direction before tail drop.
DEFAULT_QUEUE_FRAMES = 128


@dataclass
class LinkStats:
    """Per-direction transmission statistics."""

    frames: int = 0
    bytes: int = 0
    drops: int = 0
    busy_time: float = 0.0
    #: Highest simultaneous queue occupancy the direction ever saw —
    #: lets burst benches assert that bursts actually queued rather
    #: than silently serialising one frame at a time.
    queue_hwm: int = 0


class _Direction:
    """State for one direction of the link (a -> b or b -> a)."""

    def __init__(self) -> None:
        self.busy_until = 0.0
        self.queued = 0
        self.stats = LinkStats()
        #: id(event) -> (delivery event, frames it carries).  Every
        #: scheduled delivery registers here and removes itself when it
        #: fires, so :meth:`Link.set_down` can cancel what is on the
        #: wire.  Keyed by id because events are orderable-not-hashable.
        self.in_flight: "dict[int, tuple[object, int]]" = {}


class Link:
    """A full-duplex link between two ports.

    ``bandwidth_bps=None`` gives an ideal link (zero serialisation
    time), used for the patch-port fabric inside the HARMLESS server
    where "links" are memory copies.
    """

    def __init__(
        self,
        port_a: Port,
        port_b: Port,
        bandwidth_bps: "float | None" = DEFAULT_BANDWIDTH_BPS,
        propagation_delay_s: float = DEFAULT_PROP_DELAY_S,
        queue_frames: int = DEFAULT_QUEUE_FRAMES,
        name: "str | None" = None,
    ) -> None:
        if port_a.link is not None or port_b.link is not None:
            raise ValueError("port already wired to a link")
        if port_a is port_b:
            raise ValueError("cannot wire a port to itself")
        self.port_a = port_a
        self.port_b = port_b
        self.bandwidth_bps = bandwidth_bps
        self.propagation_delay_s = propagation_delay_s
        self.queue_frames = queue_frames
        self.name = name or f"{port_a.name}<->{port_b.name}"
        #: Physical state: a downed link refuses new frames and has
        #: dropped whatever was queued or propagating when it failed.
        self.up = True
        self._directions = {id(port_a): _Direction(), id(port_b): _Direction()}
        self.sim = port_a.node.sim
        if port_b.node.sim is not self.sim:
            raise ValueError("ports belong to different simulators")
        port_a.link = self
        port_b.link = self

    def disconnect(self) -> None:
        """Unwire both ports (re-cabling / failed-deployment cleanup).

        Frames already serialised onto the wire still deliver; the
        ports just stop being attached for future sends, and may be
        wired to a new link afterwards.
        """
        if self.port_a.link is self:
            self.port_a.link = None
        if self.port_b.link is self:
            self.port_b.link = None

    def other_end(self, port: Port) -> Port:
        if port is self.port_a:
            return self.port_b
        if port is self.port_b:
            return self.port_a
        raise ValueError(f"{port!r} is not an end of {self.name}")

    def stats(self, from_port: Port) -> LinkStats:
        """Stats for the direction whose transmitter is *from_port*."""
        return self._directions[id(from_port)].stats

    def serialization_delay(self, frame: EthernetFrame) -> float:
        """Time to clock *frame* onto the wire at this link's bandwidth."""
        if self.bandwidth_bps is None:
            return 0.0
        return frame.wire_length * 8 / self.bandwidth_bps

    def _enqueue_frame(self, from_port: Port, frame: EthernetFrame) -> "float | None":
        """Serialise one frame onto the wire: drop-tail check, busy-time
        chaining and stats accounting.  Returns the arrival time at the
        far end, or None on tail drop.  Shared by :meth:`transmit` and
        the sharded boundary proxies, which must reproduce this timing
        bit-for-bit — keep all float math in one place.
        """
        direction = self._directions[id(from_port)]
        now = self.sim.now

        if not self.up or direction.queued >= self.queue_frames:
            direction.stats.drops += 1
            return None

        serialization = self.serialization_delay(frame)
        start = max(now, direction.busy_until)
        finish = start + serialization
        direction.busy_until = finish
        direction.queued += 1
        direction.stats.frames += 1
        direction.stats.bytes += frame.wire_length
        direction.stats.busy_time += serialization
        if direction.queued > direction.stats.queue_hwm:
            direction.stats.queue_hwm = direction.queued

        return finish + self.propagation_delay_s

    def transmit(self, from_port: Port, frame: EthernetFrame) -> bool:
        """Queue *frame* for the far end; returns False on tail drop."""
        arrival = self._enqueue_frame(from_port, frame)
        if arrival is None:
            return False
        direction = self._directions[id(from_port)]
        destination = self.other_end(from_port)

        def deliver() -> None:
            direction.in_flight.pop(id(event), None)
            direction.queued -= 1
            destination.deliver(frame)

        event = self.sim.schedule_at(arrival, deliver)
        direction.in_flight[id(event)] = (event, 1)
        return True

    def transmit_burst(self, from_port: Port, frames: "list[EthernetFrame]") -> int:
        """Queue a burst for the far end; returns how many frames fit.

        Each frame is serialised individually — per-frame start/finish
        times, byte accounting and tail-drop behave exactly like
        *len(frames)* sequential :meth:`transmit` calls — but the whole
        accepted burst rides **one** simulator event, scheduled at the
        burst drain (the last frame's arrival).  The per-frame arrival
        times are preserved in the delivered payload, so receivers that
        care about wire timing still see it; the coalescing trade is
        that earlier frames are *handed over* at drain time (and the
        queue occupancy drains all at once) rather than one event each.
        """
        accepted = self._enqueue_burst(from_port, frames)
        if not accepted:
            return 0
        direction = self._directions[id(from_port)]
        destination = self.other_end(from_port)

        def deliver() -> None:
            direction.in_flight.pop(id(event), None)
            direction.queued -= len(accepted)
            destination.deliver_burst(accepted)

        event = self.sim.schedule_at(accepted[-1][0], deliver)
        direction.in_flight[id(event)] = (event, len(accepted))
        return len(accepted)

    def _enqueue_burst(
        self, from_port: Port, frames: "list[EthernetFrame]"
    ) -> "list[tuple[float, EthernetFrame]]":
        """Serialise a burst onto the wire; returns the accepted
        ``(arrival, frame)`` pairs (dropped frames are absent).  Like
        :meth:`_enqueue_frame` this carries all the timing/stat math so
        the sharded boundary proxies stay bit-identical to local links.
        """
        direction = self._directions[id(from_port)]
        now = self.sim.now
        stats = direction.stats
        if not self.up:
            stats.drops += len(frames)
            return []
        prop = self.propagation_delay_s
        busy = direction.busy_until
        #: id(frame) -> (wire length, serialisation) — bursts repeat
        #: per-flow template frames, so measure each object once.  The
        #: serialisation must come from serialization_delay() itself: a
        #: rearranged float formula can differ in the last ulp, and
        #: burst timing must stay bit-identical to transmit().
        measured: "dict[int, tuple[int, float]]" = {}
        accepted: "list[tuple[float, EthernetFrame]]" = []
        for frame in frames:
            if direction.queued >= self.queue_frames:
                stats.drops += 1
                continue
            entry = measured.get(id(frame))
            if entry is None:
                entry = measured[id(frame)] = (
                    frame.wire_length,
                    self.serialization_delay(frame),
                )
            length, serialization = entry
            start = busy if busy > now else now
            busy = start + serialization
            direction.queued += 1
            stats.frames += 1
            stats.bytes += length
            stats.busy_time += serialization
            accepted.append((busy + prop, frame))
        direction.busy_until = busy
        if direction.queued > stats.queue_hwm:
            stats.queue_hwm = direction.queued
        return accepted

    def set_down(self) -> None:
        """Fail the link: everything queued or propagating is lost.

        Pending delivery events are cancelled and counted as drops in
        the transmitting direction's stats, queue occupancy resets, and
        while down both :meth:`transmit` and :meth:`transmit_burst`
        refuse frames (still counted as drops).  Idempotent.  The
        ports' administrative state is untouched — callers that model a
        detected failure (loss of light) pair this with
        ``LegacySwitch.link_down`` on the attached switches; see
        :mod:`repro.netsim.faults`.
        """
        if not self.up:
            return
        self.up = False
        now = self.sim.now
        for direction in self._directions.values():
            for event, frames in direction.in_flight.values():
                event.cancel()
                direction.stats.drops += frames
            direction.in_flight.clear()
            direction.queued = 0
            if direction.busy_until > now:
                direction.busy_until = now

    def set_up(self) -> None:
        """Restore a failed link; the wire comes back idle and empty."""
        self.up = True

    def utilization(self, from_port: Port, elapsed: float) -> float:
        """Fraction of *elapsed* the direction spent serialising frames."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.stats(from_port).busy_time / elapsed)

    def __repr__(self) -> str:
        return f"Link({self.name})"


def wire(
    node_a,
    node_b,
    bandwidth_bps: "float | None" = DEFAULT_BANDWIDTH_BPS,
    propagation_delay_s: float = DEFAULT_PROP_DELAY_S,
    queue_frames: int = DEFAULT_QUEUE_FRAMES,
) -> Link:
    """Convenience: add a fresh port on each node and link them."""
    return Link(
        node_a.add_port(),
        node_b.add_port(),
        bandwidth_bps=bandwidth_bps,
        propagation_delay_s=propagation_delay_s,
        queue_frames=queue_frames,
    )
