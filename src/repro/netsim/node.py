"""Nodes and ports — the attachment points of the simulated network."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.net.ethernet import EthernetFrame

if TYPE_CHECKING:
    from repro.netsim.capture import Capture
    from repro.netsim.link import Link
    from repro.netsim.simulator import Simulator


def _burst_bytes(frames: "list[EthernetFrame]") -> int:
    """Total wire bytes of a burst, reading each distinct frame object's
    ``wire_length`` once (bursts commonly repeat per-flow templates)."""
    lengths: dict[int, int] = {}
    get = lengths.get
    total = 0
    for frame in frames:
        fid = id(frame)
        length = get(fid)
        if length is None:
            length = lengths[fid] = frame.wire_length
        total += length
    return total


class Port:
    """One network interface of a :class:`Node`.

    Ports are identified by a small integer unique within their node
    (matching how switch ports and OpenFlow port numbers work).  A port
    may be wired to a :class:`Link` or left dangling (frames sent out a
    dangling port are counted and dropped).
    """

    def __init__(self, node: "Node", number: int, name: "str | None" = None) -> None:
        self.node = node
        self.number = number
        self.name = name or f"{node.name}:{number}"
        self.link: Optional["Link"] = None
        self.tx_frames = 0
        self.tx_bytes = 0
        self.rx_frames = 0
        self.rx_bytes = 0
        self.tx_dropped = 0
        self.captures: list["Capture"] = []
        #: Set False to emulate link-down (frames silently dropped).
        self.up = True

    @property
    def is_wired(self) -> bool:
        return self.link is not None

    @property
    def peer(self) -> Optional["Port"]:
        """The port at the far end of the attached link, if any."""
        if self.link is None:
            return None
        return self.link.other_end(self)

    def send(self, frame: EthernetFrame) -> bool:
        """Transmit *frame* out this port.  Returns False if dropped."""
        for capture in self.captures:
            capture.record(self, "tx", frame)
        if not self.up or self.link is None:
            self.tx_dropped += 1
            return False
        self.tx_frames += 1
        self.tx_bytes += frame.wire_length
        return self.link.transmit(self, frame)

    def send_burst(self, frames: "list[EthernetFrame]") -> int:
        """Transmit *frames* back-to-back; returns how many were queued.

        Per-frame semantics (captures, counters, drop-tail) match
        *len(frames)* sequential :meth:`send` calls, but the link
        coalesces the whole burst into one delivery event at the far
        end — the per-event overhead is paid once per burst.
        """
        if self.captures:
            for capture in self.captures:
                for frame in frames:
                    capture.record(self, "tx", frame)
        if not self.up or self.link is None:
            self.tx_dropped += len(frames)
            return 0
        self.tx_frames += len(frames)
        self.tx_bytes += _burst_bytes(frames)
        return self.link.transmit_burst(self, frames)

    def deliver(self, frame: EthernetFrame) -> None:
        """Called by the link when a frame arrives at this port."""
        for capture in self.captures:
            capture.record(self, "rx", frame)
        if not self.up:
            return
        self.rx_frames += 1
        self.rx_bytes += frame.wire_length
        self.node.receive(self, frame)

    def deliver_burst(self, arrivals: "list[tuple[float, EthernetFrame]]") -> None:
        """Called by the link when a coalesced burst drains at this port.

        *arrivals* holds ``(arrival_time, frame)`` pairs in wire order —
        the per-frame serialisation timestamps are preserved even though
        the burst rides one simulator event.
        """
        if self.captures:
            for capture in self.captures:
                for _, frame in arrivals:
                    capture.record(self, "rx", frame)
        if not self.up:
            return
        self.rx_frames += len(arrivals)
        self.rx_bytes += _burst_bytes([frame for _, frame in arrivals])
        self.node.receive_burst(self, arrivals)

    def attach_capture(self, capture: "Capture") -> None:
        self.captures.append(capture)

    def __repr__(self) -> str:
        return f"Port({self.name})"


class Node:
    """Base class for anything with ports: hosts, switches, servers."""

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        self.ports: dict[int, Port] = {}

    def add_port(self, number: "int | None" = None, name: "str | None" = None) -> Port:
        """Create a new port; numbers auto-increment from 1 if omitted."""
        if number is None:
            number = max(self.ports, default=0) + 1
        if number in self.ports:
            raise ValueError(f"{self.name}: port {number} already exists")
        port = Port(self, number, name=name)
        self.ports[number] = port
        return port

    def port(self, number: int) -> Port:
        """Look up a port by number, raising KeyError with context."""
        try:
            return self.ports[number]
        except KeyError:
            raise KeyError(f"{self.name} has no port {number}") from None

    def iter_ports(self) -> Iterator[Port]:
        """Ports in ascending port-number order."""
        for number in sorted(self.ports):
            yield self.ports[number]

    def receive(self, port: Port, frame: EthernetFrame) -> None:
        """Handle a frame arriving on *port*; subclasses override."""
        raise NotImplementedError

    def receive_burst(
        self, port: Port, arrivals: "list[tuple[float, EthernetFrame]]"
    ) -> None:
        """Handle a coalesced burst arriving on *port*.

        The default unrolls to per-frame :meth:`receive` calls so every
        existing node works unchanged; batch-aware nodes (the software
        switch) override this to amortise per-frame work.
        """
        receive = self.receive
        for _, frame in arrivals:
            receive(port, frame)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"
