"""Packet capture taps — the simulator's tcpdump."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional

from repro.net.ethernet import EthernetFrame
from repro.netsim.node import Port


@dataclass
class CaptureEntry:
    """One captured frame with its metadata."""

    time: float
    port_name: str
    direction: str  # "tx" or "rx"
    frame: EthernetFrame

    def __str__(self) -> str:
        return f"{self.time * 1e6:10.3f}us {self.port_name} {self.direction} {self.frame}"


class Capture:
    """Records frames crossing the ports it is attached to.

    Used by tests to assert on exact frame sequences and by the FIG1
    benchmark to print the hop-by-hop trace of the paper's worked
    example.
    """

    def __init__(
        self,
        name: str = "capture",
        filter_fn: "Optional[Callable[[EthernetFrame], bool]]" = None,
        max_entries: int = 100_000,
    ) -> None:
        self.name = name
        self.filter_fn = filter_fn
        self.max_entries = max_entries
        self.entries: list[CaptureEntry] = []
        self.dropped = 0

    def attach(self, *ports: Port) -> "Capture":
        """Attach this capture to one or more ports; returns self."""
        for port in ports:
            port.attach_capture(self)
        return self

    def record(self, port: Port, direction: str, frame: EthernetFrame) -> None:
        if self.filter_fn is not None and not self.filter_fn(frame):
            return
        if len(self.entries) >= self.max_entries:
            self.dropped += 1
            return
        self.entries.append(
            CaptureEntry(
                time=port.node.sim.now,
                port_name=port.name,
                direction=direction,
                frame=frame,
            )
        )

    def clear(self) -> None:
        self.entries.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[CaptureEntry]:
        return iter(self.entries)

    def frames(self, direction: "str | None" = None) -> list[EthernetFrame]:
        """All captured frames, optionally restricted to tx or rx."""
        return [
            entry.frame
            for entry in self.entries
            if direction is None or entry.direction == direction
        ]

    def format_trace(self) -> str:
        """Human-readable multi-line trace (used by the FIG1 bench)."""
        lines = [f"-- capture {self.name}: {len(self.entries)} frames --"]
        lines.extend(str(entry) for entry in self.entries)
        return "\n".join(lines)
