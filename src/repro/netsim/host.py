"""End hosts with a miniature ARP/IPv4/ICMP/UDP/TCP stack.

Hosts resolve MAC addresses via real ARP exchanges, answer pings, run
UDP services (the DNS server in the parental-control demo is one) and
open simplified TCP connections (SYN -> SYN/ACK -> request -> response)
sufficient for the HTTP-level use cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.net.addresses import BROADCAST_MAC, IPv4Address, MACAddress
from repro.net.arp import ARP_OP_REPLY, ARP_OP_REQUEST, ArpPacket
from repro.net.build import arp_frame, ethernet_ipv4
from repro.net.errors import PacketDecodeError
from repro.net.ethernet import ETHERTYPE_ARP, ETHERTYPE_IPV4, EthernetFrame
from repro.net.icmp import ICMP_TYPE_ECHO_REPLY, ICMP_TYPE_ECHO_REQUEST, IcmpPacket
from repro.net.ipv4 import IPPROTO_ICMP, IPPROTO_TCP, IPPROTO_UDP, IPv4Packet
from repro.net.tcp import (
    TCP_FLAG_ACK,
    TCP_FLAG_FIN,
    TCP_FLAG_PSH,
    TCP_FLAG_RST,
    TCP_FLAG_SYN,
    TcpSegment,
)
from repro.net.udp import UdpDatagram
from repro.netsim.node import Node, Port
from repro.netsim.simulator import Simulator

#: Seconds an ARP entry stays fresh.
ARP_TTL_S = 60.0
#: Seconds before parked frames waiting on an ARP reply are dropped.
ARP_REQUEST_TIMEOUT_S = 1.0
#: How long a ping waits before being recorded as lost.
PING_TIMEOUT_S = 1.0

UdpHandler = Callable[["Host", IPv4Address, int, int, bytes], None]
TcpServer = Callable[["Host", IPv4Address, int, bytes], "bytes | None"]


@dataclass
class PingResult:
    """Outcome of one echo request."""

    sequence: int
    sent_at: float
    rtt: Optional[float] = None

    @property
    def lost(self) -> bool:
        return self.rtt is None


@dataclass
class _TcpConn:
    """Client-side state of one simplified TCP exchange."""

    remote_ip: IPv4Address
    remote_port: int
    local_port: int
    request: bytes
    on_response: "Optional[Callable[[bytes], None]]"
    state: str = "syn-sent"
    seq: int = 1000
    response: bytes = b""


class Host(Node):
    """A single-homed end host."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mac: MACAddress,
        ip: IPv4Address,
        gateway: "IPv4Address | None" = None,
    ) -> None:
        super().__init__(sim, name)
        self.mac = MACAddress(mac)
        self.ip = IPv4Address(ip)
        self.gateway = IPv4Address(gateway) if gateway is not None else None
        self.port0 = self.add_port(0, name=f"{name}:eth0")
        self.arp_table: dict[IPv4Address, tuple[MACAddress, float]] = {}
        self._pending_arp: dict[IPv4Address, list[EthernetFrame]] = {}
        self.udp_handlers: dict[int, UdpHandler] = {}
        self.tcp_servers: dict[int, TcpServer] = {}
        self._tcp_conns: dict[tuple[int, int], _TcpConn] = {}
        self._next_ephemeral = 49152
        self.ping_results: list[PingResult] = []
        self._pending_pings: dict[tuple[int, int], PingResult] = {}
        self._ping_id = 0
        self.rx_ip_packets = 0
        self.rx_unhandled = 0
        #: (src_ip, src_port, dst_port, payload) tuples seen by UDP handlers.
        self.udp_received: list[tuple[IPv4Address, int, int, bytes]] = []

    # ------------------------------------------------------------- sending

    def _allocate_port(self) -> int:
        port = self._next_ephemeral
        self._next_ephemeral += 1
        if self._next_ephemeral > 65535:
            self._next_ephemeral = 49152
        return port

    def resolve(self, ip: IPv4Address) -> Optional[MACAddress]:
        """Fresh ARP-table lookup, or None."""
        entry = self.arp_table.get(IPv4Address(ip))
        if entry is None:
            return None
        mac, learned_at = entry
        if self.sim.now - learned_at > ARP_TTL_S:
            del self.arp_table[IPv4Address(ip)]
            return None
        return mac

    def send_ip(self, packet: IPv4Packet) -> None:
        """Send an IPv4 packet, ARP-resolving the next hop as needed."""
        next_hop = packet.dst
        if self.gateway is not None and not self._same_subnet(packet.dst):
            next_hop = self.gateway
        mac = self.resolve(next_hop)
        frame_payload = packet.to_bytes()
        if mac is not None:
            frame = EthernetFrame(
                dst=mac, src=self.mac, ethertype=ETHERTYPE_IPV4, payload=frame_payload
            )
            self.port0.send(frame)
            return
        # Park the frame and ask who-has.
        placeholder = EthernetFrame(
            dst=BROADCAST_MAC,
            src=self.mac,
            ethertype=ETHERTYPE_IPV4,
            payload=frame_payload,
        )
        next_hop = IPv4Address(next_hop)
        queue = self._pending_arp.setdefault(next_hop, [])
        queue.append(placeholder)
        if len(queue) == 1:
            request = ArpPacket.request(self.mac, self.ip, next_hop)
            self.port0.send(arp_frame(request))

            def give_up() -> None:
                # Unanswered ARP: drop the parked frames so later attempts
                # trigger a fresh request instead of queueing forever.
                self._pending_arp.pop(next_hop, None)

            self.sim.schedule(ARP_REQUEST_TIMEOUT_S, give_up)

    def _same_subnet(self, dst: IPv4Address) -> bool:
        # Hosts use a /24 assumption unless they have no gateway at all.
        return int(dst) >> 8 == int(self.ip) >> 8

    def send_udp(
        self,
        dst_ip: IPv4Address,
        dst_port: int,
        payload: bytes,
        src_port: "int | None" = None,
    ) -> int:
        """Send a UDP datagram; returns the source port used."""
        if src_port is None:
            src_port = self._allocate_port()
        datagram = UdpDatagram(src_port=src_port, dst_port=dst_port, payload=payload)
        packet = IPv4Packet(
            src=self.ip,
            dst=IPv4Address(dst_ip),
            protocol=IPPROTO_UDP,
            payload=datagram.to_bytes(self.ip, IPv4Address(dst_ip)),
        )
        self.send_ip(packet)
        return src_port

    def ping(self, dst_ip: IPv4Address, payload: bytes = b"harmless-ping") -> PingResult:
        """Send one echo request; result fills in when the reply returns."""
        self._ping_id += 1
        sequence = self._ping_id
        result = PingResult(sequence=sequence, sent_at=self.sim.now)
        self.ping_results.append(result)
        key = (0x4242, sequence)
        self._pending_pings[key] = result

        echo = IcmpPacket.echo_request(identifier=0x4242, sequence=sequence, payload=payload)
        packet = IPv4Packet(
            src=self.ip,
            dst=IPv4Address(dst_ip),
            protocol=IPPROTO_ICMP,
            payload=echo.to_bytes(),
        )
        self.send_ip(packet)

        def expire() -> None:
            self._pending_pings.pop(key, None)

        self.sim.schedule(PING_TIMEOUT_S, expire)
        return result

    def tcp_request(
        self,
        dst_ip: IPv4Address,
        dst_port: int,
        request: bytes,
        on_response: "Optional[Callable[[bytes], None]]" = None,
    ) -> None:
        """Open a simplified TCP exchange: handshake, one request, one reply."""
        local_port = self._allocate_port()
        conn = _TcpConn(
            remote_ip=IPv4Address(dst_ip),
            remote_port=dst_port,
            local_port=local_port,
            request=request,
            on_response=on_response,
        )
        self._tcp_conns[(local_port, dst_port)] = conn
        syn = TcpSegment(
            src_port=local_port, dst_port=dst_port, seq=conn.seq, flags=TCP_FLAG_SYN
        )
        self._send_tcp(conn.remote_ip, syn)

    def _send_tcp(self, dst_ip: IPv4Address, segment: TcpSegment) -> None:
        packet = IPv4Packet(
            src=self.ip,
            dst=dst_ip,
            protocol=IPPROTO_TCP,
            payload=segment.to_bytes(self.ip, dst_ip),
        )
        self.send_ip(packet)

    # ----------------------------------------------------------- services

    def serve_udp(self, port: int, handler: UdpHandler) -> None:
        """Register *handler* for datagrams to *port*."""
        self.udp_handlers[port] = handler

    def serve_tcp(self, port: int, server: TcpServer) -> None:
        """Register a request->response server on *port*."""
        self.tcp_servers[port] = server

    # ----------------------------------------------------------- receiving

    def receive(self, port: Port, frame: EthernetFrame) -> None:
        if frame.vlan is not None:
            # Hosts sit on access ports; tagged frames are not for us.
            self.rx_unhandled += 1
            return
        if not (frame.dst == self.mac or frame.dst.is_multicast):
            self.rx_unhandled += 1
            return
        try:
            if frame.ethertype == ETHERTYPE_ARP:
                self._receive_arp(ArpPacket.from_bytes(frame.payload))
            elif frame.ethertype == ETHERTYPE_IPV4:
                self._receive_ip(IPv4Packet.from_bytes(frame.payload))
            else:
                self.rx_unhandled += 1
        except PacketDecodeError:
            # Malformed payloads are dropped, as a real stack would.
            self.rx_unhandled += 1

    def _receive_arp(self, arp: ArpPacket) -> None:
        # Learn the sender either way (standard gratuitous-friendly ARP).
        self.arp_table[arp.sender_ip] = (arp.sender_mac, self.sim.now)
        if arp.opcode == ARP_OP_REQUEST and arp.target_ip == self.ip:
            self.port0.send(arp_frame(arp.make_reply(self.mac), src_mac=self.mac))
        elif arp.opcode == ARP_OP_REPLY:
            self._flush_pending(arp.sender_ip, arp.sender_mac)

    def _flush_pending(self, ip: IPv4Address, mac: MACAddress) -> None:
        for frame in self._pending_arp.pop(ip, []):
            resolved = EthernetFrame(
                dst=mac, src=self.mac, ethertype=frame.ethertype, payload=frame.payload
            )
            self.port0.send(resolved)

    def _receive_ip(self, packet: IPv4Packet) -> None:
        if packet.dst != self.ip and not packet.dst.is_multicast:
            self.rx_unhandled += 1
            return
        self.rx_ip_packets += 1
        if packet.protocol == IPPROTO_ICMP:
            self._receive_icmp(packet)
        elif packet.protocol == IPPROTO_UDP:
            self._receive_udp(packet)
        elif packet.protocol == IPPROTO_TCP:
            self._receive_tcp(packet)
        else:
            self.rx_unhandled += 1

    def _receive_icmp(self, packet: IPv4Packet) -> None:
        icmp = IcmpPacket.from_bytes(packet.payload)
        if icmp.icmp_type == ICMP_TYPE_ECHO_REQUEST:
            reply = icmp.make_reply()
            response = IPv4Packet(
                src=self.ip,
                dst=packet.src,
                protocol=IPPROTO_ICMP,
                payload=reply.to_bytes(),
            )
            self.send_ip(response)
        elif icmp.icmp_type == ICMP_TYPE_ECHO_REPLY:
            key = (icmp.identifier, icmp.sequence)
            result = self._pending_pings.pop(key, None)
            if result is not None:
                result.rtt = self.sim.now - result.sent_at

    def _receive_udp(self, packet: IPv4Packet) -> None:
        datagram = UdpDatagram.from_bytes(packet.payload, packet.src, packet.dst)
        handler = self.udp_handlers.get(datagram.dst_port)
        self.udp_received.append(
            (packet.src, datagram.src_port, datagram.dst_port, datagram.payload)
        )
        if handler is not None:
            handler(self, packet.src, datagram.src_port, datagram.dst_port, datagram.payload)

    def _receive_tcp(self, packet: IPv4Packet) -> None:
        segment = TcpSegment.from_bytes(packet.payload, packet.src, packet.dst)
        # Server side: SYN to a listening port.
        if segment.is_syn and segment.dst_port in self.tcp_servers:
            synack = TcpSegment(
                src_port=segment.dst_port,
                dst_port=segment.src_port,
                seq=5000,
                ack=segment.seq + 1,
                flags=TCP_FLAG_SYN | TCP_FLAG_ACK,
            )
            self._send_tcp(packet.src, synack)
            return
        # Server side: data to a listening port -> run the server.
        if segment.dst_port in self.tcp_servers and segment.payload:
            server = self.tcp_servers[segment.dst_port]
            response = server(self, packet.src, segment.src_port, segment.payload)
            if response is not None:
                reply = TcpSegment(
                    src_port=segment.dst_port,
                    dst_port=segment.src_port,
                    seq=5001,
                    ack=segment.seq + len(segment.payload),
                    flags=TCP_FLAG_ACK | TCP_FLAG_PSH | TCP_FLAG_FIN,
                    payload=response,
                )
                self._send_tcp(packet.src, reply)
            return
        # Client side: match an open connection.
        conn = self._tcp_conns.get((segment.dst_port, segment.src_port))
        if conn is None:
            self.rx_unhandled += 1
            return
        if segment.is_rst:
            conn.state = "reset"
            if conn.on_response is not None:
                conn.on_response(b"")
            del self._tcp_conns[(segment.dst_port, segment.src_port)]
            return
        if conn.state == "syn-sent" and segment.flags & TCP_FLAG_SYN:
            conn.state = "established"
            data = TcpSegment(
                src_port=conn.local_port,
                dst_port=conn.remote_port,
                seq=conn.seq + 1,
                ack=segment.seq + 1,
                flags=TCP_FLAG_ACK | TCP_FLAG_PSH,
                payload=conn.request,
            )
            self._send_tcp(conn.remote_ip, data)
            return
        if conn.state == "established" and segment.payload:
            conn.response += segment.payload
            if segment.is_fin:
                conn.state = "closed"
                if conn.on_response is not None:
                    conn.on_response(conn.response)
                del self._tcp_conns[(segment.dst_port, segment.src_port)]

    # ----------------------------------------------------------- queries

    @property
    def ping_loss_rate(self) -> float:
        if not self.ping_results:
            return 0.0
        lost = sum(1 for result in self.ping_results if result.lost)
        return lost / len(self.ping_results)

    def rtts(self) -> list[float]:
        """RTTs of all answered pings, in seconds."""
        return [r.rtt for r in self.ping_results if r.rtt is not None]
