"""The event loop: a priority queue of timestamped callbacks.

A float-seconds clock over a binary heap, with FIFO tie-breaking (the
``(time, seq)`` ordering) so same-instant events run in schedule
order.  Two properties matter to the burst-mode pipeline built on top:

* **batch scheduling** — :meth:`Simulator.schedule_many` enqueues a
  whole ``(time, callback)`` schedule in one call, semantically
  identical to per-pair :meth:`Simulator.schedule_at` calls; traffic
  sources hand over entire send schedules and links ride one event
  per coalesced burst instead of one per frame;
* **O(1) idle detection** — ``pending_events`` is a live counter
  maintained by schedule/cancel/pop (an :class:`Event` keeps an
  ``owner`` back-reference while queued so a late ``cancel()`` cannot
  corrupt it), which ``run_until_idle`` polls without scanning the
  heap.

Cancellation is lazy (the heap skips dead entries when they surface),
but not unboundedly so: cancel-heavy workloads — ping timers that are
re-armed every probe, rollback paths — would otherwise grow the heap
with garbage while ``pending_events`` correctly reads near zero.  A
counter of cancelled-but-queued entries triggers an in-place compaction
(filter + re-heapify) once garbage outnumbers live events, keeping the
queue O(live) while preserving FIFO tie order (the ``seq`` field is a
total order, so re-heapifying cannot reorder ties).

``run(until=...)`` advances the clock to the horizon even when the
queue drains early, so back-to-back ``run`` calls see monotone time.
``inclusive=False`` stops *before* events at exactly ``until`` — the
window mode the sharded engine (:mod:`repro.netsim.sharded`) uses to
process half-open lookahead windows ``[start, horizon)``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback; ordering is (time, seq) so ties are FIFO."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: The owning simulator while the event sits in the queue; cleared
    #: when the event is popped so a late ``cancel()`` cannot corrupt
    #: the live-event counter.
    owner: Optional["Simulator"] = field(default=None, compare=False)

    def cancel(self) -> None:
        """Mark the event dead; the loop skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        owner = self.owner
        if owner is not None:
            owner._pending -= 1
            owner._cancelled += 1
            self.owner = None
            owner._maybe_compact()


class Simulator:
    """A discrete-event simulator with a float-seconds clock.

    Typical use::

        sim = Simulator()
        sim.schedule(0.5, lambda: host.ping(target))
        sim.run(until=2.0)
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._running = False
        #: Live (not-cancelled) events in the queue, maintained by
        #: schedule/cancel/pop so ``pending_events`` is O(1) — it is
        #: polled inside ``run_until_idle`` and must not scan the heap.
        self._pending = 0
        #: Cancelled events still sitting in the queue.  Cancellation is
        #: lazy, so without compaction a schedule/cancel churn loop
        #: (re-armed timers) grows the heap without bound while
        #: ``pending_events`` correctly reads 0.
        self._cancelled = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return self._pending

    def _maybe_compact(self) -> None:
        """Drop cancelled entries once they outnumber live ones.

        Bounds the heap at O(live events) under cancel-heavy churn.
        Safe to trigger from inside a running callback: the run loop
        re-reads ``self._queue`` on every iteration, and re-heapifying
        preserves FIFO ties because ``(time, seq)`` is a total order.
        """
        if self._cancelled <= 64 or self._cancelled * 2 <= len(self._queue):
            return
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._cancelled = 0

    def peek_next_time(self) -> "float | None":
        """Timestamp of the next live event, or None when idle.

        Purges cancelled entries off the top as a side effect (the same
        lazy deletion the run loop performs).
        """
        queue = self._queue
        while queue and queue[0].cancelled:
            heapq.heappop(queue)
            self._cancelled -= 1
        return queue[0].time if queue else None

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule *callback* to run *delay* seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule *callback* at absolute simulated *time*."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time}, already at {self._now}"
            )
        event = Event(time=time, seq=next(self._seq), callback=callback, owner=self)
        heapq.heappush(self._queue, event)
        self._pending += 1
        return event

    def schedule_many(
        self, items: "Iterable[tuple[float, Callable[[], None]]]"
    ) -> list[Event]:
        """Schedule many ``(time, callback)`` pairs in one call.

        Semantically identical to calling :meth:`schedule_at` once per
        pair in iteration order (ties keep FIFO order), but amortises
        the per-call overhead — burst traffic sources hand a whole send
        schedule over at once instead of paying one Python call per
        frame.
        """
        now = self._now
        queue = self._queue
        seq = self._seq
        push = heapq.heappush
        events = []
        for time, callback in items:
            if time < now:
                raise ValueError(f"cannot schedule at {time}, already at {now}")
            event = Event(time=time, seq=next(seq), callback=callback, owner=self)
            push(queue, event)
            self._pending += 1
            events.append(event)
        return events

    def run(
        self,
        until: "float | None" = None,
        max_events: "int | None" = None,
        inclusive: bool = True,
    ) -> int:
        """Process events until the queue drains, *until* is reached, or
        *max_events* have run.  Returns the number of events processed.

        With ``inclusive=False`` events at exactly *until* are left
        queued (a half-open window ``[now, until)``); the clock still
        advances to *until*.  Used by the sharded engine's lookahead
        windows, where the window edge belongs to the next window.
        """
        if not inclusive and until is None:
            raise ValueError("inclusive=False needs an explicit horizon")
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        self._running = True
        processed = 0
        try:
            while self._queue:
                if max_events is not None and processed >= max_events:
                    break
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    self._cancelled -= 1
                    continue
                if until is not None and (
                    event.time > until if inclusive else event.time >= until
                ):
                    break
                heapq.heappop(self._queue)
                self._pending -= 1
                event.owner = None
                self._now = event.time
                event.callback()
                processed += 1
                self._events_processed += 1
            if until is not None and self._now < until:
                # Advance the clock to the horizon even if the queue
                # drained — but not past work a max_events cap left
                # behind inside the window.
                head = self.peek_next_time()
                if head is None or (head > until if inclusive else head >= until):
                    self._now = until
        finally:
            self._running = False
        return processed

    def advance_to(self, time: float) -> None:
        """Jump the clock forward to *time* without processing events.

        Only legal when no pending event lies before *time* — jumping
        over live work would violate causality.  The sharded engine
        uses this to equalise shard clocks at collective-exit points
        (all shards park at the same global instant even when some
        drained their queues earlier than others).
        """
        head = self.peek_next_time()
        if head is not None and head < time:
            raise ValueError(
                f"cannot advance to {time}: pending event at {head}"
            )
        if time > self._now:
            self._now = time

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Run until no events remain (bounded to catch runaway loops)."""
        processed = self.run(max_events=max_events)
        if self.pending_events:
            raise RuntimeError(
                f"simulation did not go idle within {max_events} events"
            )
        return processed
