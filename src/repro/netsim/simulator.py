"""The event loop: a priority queue of timestamped callbacks."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass(order=True)
class Event:
    """A scheduled callback; ordering is (time, seq) so ties are FIFO."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event dead; the loop skips it when popped."""
        self.cancelled = True


class Simulator:
    """A discrete-event simulator with a float-seconds clock.

    Typical use::

        sim = Simulator()
        sim.schedule(0.5, lambda: host.ping(target))
        sim.run(until=2.0)
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule *callback* to run *delay* seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule *callback* at absolute simulated *time*."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time}, already at {self._now}"
            )
        event = Event(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, event)
        return event

    def run(
        self, until: "float | None" = None, max_events: "int | None" = None
    ) -> int:
        """Process events until the queue drains, *until* is reached, or
        *max_events* have run.  Returns the number of events processed.
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        self._running = True
        processed = 0
        try:
            while self._queue:
                if max_events is not None and processed >= max_events:
                    break
                event = self._queue[0]
                if event.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._queue)
                self._now = event.time
                event.callback()
                processed += 1
                self._events_processed += 1
            if until is not None and self._now < until:
                # Advance the clock to the horizon even if the queue drained.
                self._now = until
        finally:
            self._running = False
        return processed

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Run until no events remain (bounded to catch runaway loops)."""
        processed = self.run(max_events=max_events)
        if self.pending_events:
            raise RuntimeError(
                f"simulation did not go idle within {max_events} events"
            )
        return processed
