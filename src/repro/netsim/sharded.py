"""Conservative-lookahead sharded simulation.

One :class:`repro.netsim.simulator.Simulator` is single-threaded, so a
fabric's aggregate packet rate is capped by one core.  This module
splits a simulation into *shards* — independent event loops that only
interact across a known set of *boundary links* with positive
propagation delay — and runs them in parallel with the classic
conservative (lookahead-window) synchronisation of parallel discrete
event simulation:

* **Lookahead** ``L`` is the minimum propagation delay over all
  boundary links.  A frame transmitted at local time ``t`` cannot
  arrive at a peer shard before ``t + L``.
* **Skip-ahead rounds (v2).**  Each barrier piggy-backs every shard's
  true next-event time (own queue head, or the earliest arrival among
  the records it is flushing right now).  A shard then runs up to the
  asymmetric horizon ``min(peers_next, own_flushed_next) + L`` — the
  earliest instant a *peer* could still cause an event here — instead
  of a fixed ``global_next + L`` window.  Its own backlog does not
  bound the horizon: it is drained in ``2L`` chunks that end early the
  moment a chunk exports a boundary record (a response to an export at
  ``x`` cannot arrive before ``x + 2L``, so the chunk end never
  overtakes it).  Idle gaps — reconvergence waits, inter-burst
  spacing, fault-plan quiet periods — therefore collapse into O(1)
  rounds; ``rounds_skipped`` counts the lookahead-multiple barriers
  the v1 loop would have paid.
* **Coalesced boundary exchange (v2).**  All records destined for one
  peer in one round travel as a single message — one length-prefixed
  pickle per (peer, round) on the pipe transport, with a ``None``
  fast token for empty rounds — so trunk-heavy mixes pay one pickle
  per barrier, not per record, and idle barriers ship a few bytes.
  ``bytes_sent`` / ``bytes_received`` on the pipe endpoints make the
  exchange volume measurable.
* **Boundary exchange.**  Frames crossing a severed link are serialised
  on the owning shard with the *exact* arithmetic of
  :meth:`repro.netsim.link.Link.transmit` /
  :meth:`~repro.netsim.link.Link.transmit_burst` (tail drop,
  ``queue_hwm``, per-frame arrival timestamps), shipped as
  ``(arrival, frame)`` records at the next window barrier, and
  re-injected on the receiving shard as ordinary ``Port.deliver`` /
  ``Port.deliver_burst`` events — timestamps are preserved bit-for-bit.

The barrier exchange also carries each shard's clock and cumulative
processed-event count, so every collective ``run()`` call leaves all
shard clocks at the same value and a ``max_events`` cap is enforced
against the *global* count: all shards see the same sum at the same
barrier and break in step (no abort cascade needed).

Two transports implement the same mesh interface: an in-process
:class:`ThreadMesh` (used by :class:`ShardedSimulator` and the tests —
records cross by reference, no serialisation) and per-peer
``multiprocessing`` pipes (:func:`make_pipe_mesh` +
:class:`PipeEndpoint`, used by the fork backend in
:mod:`repro.fabric.partition` for real multi-core parallelism, where
records are pickled).

What parallelises: everything whose events stay inside one shard —
datapath batch processing, legacy bridging, controller channels, host
stacks.  What doesn't: traffic crossing a cut link pays its share of
the per-round pickle, and the round barrier itself is a full
synchronisation — so shard boundaries should cut *few, fat* burst
flows (the PR 3 burst pipeline makes inter-pod traffic exactly that).
"""

from __future__ import annotations

import pickle
import queue as _queue_mod
import threading
from typing import TYPE_CHECKING

from repro.netsim.simulator import Simulator

if TYPE_CHECKING:
    from repro.net.ethernet import EthernetFrame
    from repro.netsim.link import Link
    from repro.netsim.node import Port

_INF = float("inf")

#: Boundary record kinds: single-frame transmits re-inject through
#: ``Port.deliver``, coalesced bursts through ``Port.deliver_burst`` —
#: preserving the entry point keeps receive-side batching identical.
KIND_FRAME = 0
KIND_BURST = 1

#: How long a shard waits on a peer before declaring the mesh dead.
#: Generous: a peer may legitimately spend this long inside one window.
DEFAULT_SYNC_TIMEOUT_S = 600.0

#: Sentinel a failing shard broadcasts so peers blocked in recv() fail
#: fast instead of timing out.
_ABORT = "__shard-abort__"


class ShardSyncError(RuntimeError):
    """A collective run lost synchronisation (peer failure or timeout)."""


class PeerAborted(ShardSyncError):
    """A peer shard signalled failure mid-collective."""


# ---------------------------------------------------------------------------
# Mesh transports
# ---------------------------------------------------------------------------


class ThreadMesh:
    """All-to-all in-process mesh: one queue per directed shard pair.

    Payloads cross by reference — safe because boundary records are
    treated as immutable once flushed (frames are immutable on the
    wire), and it keeps the thread backend free of serialisation cost.
    """

    def __init__(self, nshards: int, timeout_s: float = DEFAULT_SYNC_TIMEOUT_S) -> None:
        if nshards < 2:
            raise ValueError("a mesh needs at least two shards")
        self.nshards = nshards
        self.timeout_s = timeout_s
        self._queues = {
            (src, dst): _queue_mod.SimpleQueue()
            for src in range(nshards)
            for dst in range(nshards)
            if src != dst
        }

    def endpoint(self, shard: int) -> "_ThreadEndpoint":
        return _ThreadEndpoint(self, shard)


class _ThreadEndpoint:
    """One shard's view of a :class:`ThreadMesh`."""

    def __init__(self, mesh: ThreadMesh, shard: int) -> None:
        self._mesh = mesh
        self.shard = shard

    def send(self, peer: int, payload) -> None:
        self._mesh._queues[(self.shard, peer)].put(payload)

    def recv(self, peer: int):
        try:
            payload = self._mesh._queues[(peer, self.shard)].get(
                timeout=self._mesh.timeout_s
            )
        except _queue_mod.Empty:
            raise ShardSyncError(
                f"shard {self.shard}: no message from peer {peer} within "
                f"{self._mesh.timeout_s:.0f}s"
            ) from None
        if isinstance(payload, str) and payload == _ABORT:
            raise PeerAborted(f"shard {self.shard}: peer {peer} aborted")
        return payload

    def abort(self) -> None:
        for peer in range(self._mesh.nshards):
            if peer != self.shard:
                self._mesh._queues[(self.shard, peer)].put(_ABORT)


class PipeEndpoint:
    """Mesh endpoint over ``multiprocessing`` connections (fork backend).

    *connections* maps peer shard -> a duplex ``Connection`` whose far
    end lives in the peer's process (see :func:`make_pipe_mesh`).

    Each payload crosses as one explicit :func:`pickle.dumps` blob
    (highest protocol) through ``send_bytes`` / ``recv_bytes`` — the
    ``Connection`` framing length-prefixes it — so a whole (peer,
    round) batch is a single pickle and the endpoint can meter the
    exchange: ``bytes_sent`` / ``bytes_received`` count the serialised
    payload volume for :meth:`ShardSimulator.sync_stats`.  Pickling a
    burst preserves intra-record frame identity (the pickle memo), so
    repeated per-flow template frames stay one object per burst and
    the receiving datapath still decodes each template once.
    """

    def __init__(
        self, shard: int, connections: dict, timeout_s: float = DEFAULT_SYNC_TIMEOUT_S
    ) -> None:
        self.shard = shard
        self._connections = connections
        self._timeout_s = timeout_s
        self.bytes_sent = 0
        self.bytes_received = 0

    def send(self, peer: int, payload) -> None:
        blob = pickle.dumps(payload, pickle.HIGHEST_PROTOCOL)
        self.bytes_sent += len(blob)
        self._connections[peer].send_bytes(blob)

    def recv(self, peer: int):
        connection = self._connections[peer]
        if not connection.poll(self._timeout_s):
            raise ShardSyncError(
                f"shard {self.shard}: no message from peer {peer} within "
                f"{self._timeout_s:.0f}s"
            )
        try:
            blob = connection.recv_bytes()
        except EOFError:
            raise ShardSyncError(
                f"shard {self.shard}: peer {peer} closed its pipe"
            ) from None
        self.bytes_received += len(blob)
        payload = pickle.loads(blob)
        if isinstance(payload, str) and payload == _ABORT:
            raise PeerAborted(f"shard {self.shard}: peer {peer} aborted")
        return payload

    def abort(self) -> None:
        blob = pickle.dumps(_ABORT, pickle.HIGHEST_PROTOCOL)
        for connection in self._connections.values():
            try:
                connection.send_bytes(blob)
            except (OSError, ValueError):
                pass  # peer already gone; nothing left to warn


def make_pipe_mesh(nshards: int) -> "list[dict]":
    """Duplex pipes for every shard pair, created *before* forking.

    Returns one ``{peer: Connection}`` map per shard; each worker keeps
    its own map after fork and the parent closes every connection it
    holds (see the fork backend) so peer death surfaces as EOF.
    """
    import multiprocessing

    context = multiprocessing.get_context("fork")
    meshes: "list[dict]" = [dict() for _ in range(nshards)]
    for a in range(nshards):
        for b in range(a + 1, nshards):
            end_a, end_b = context.Pipe(duplex=True)
            meshes[a][b] = end_a
            meshes[b][a] = end_b
    return meshes


# ---------------------------------------------------------------------------
# The per-shard simulator
# ---------------------------------------------------------------------------


class ShardSimulator(Simulator):
    """A :class:`Simulator` whose ``run()`` is a collective operation.

    Every shard of a sharded simulation must call ``run()`` with the
    same arguments at the same point of the protocol — the call blocks
    on the window exchange until all peers arrive.  Because this *is*
    the fabric's simulator, everything built on top (fleets, hosts,
    stations) synchronises automatically: any internal
    ``sim.run(until=now + x)`` becomes a collective windowed run.

    With ``nshards == 1`` it degenerates to a plain simulator.
    """

    def __init__(
        self,
        shard: int = 0,
        nshards: int = 1,
        lookahead_s: "float | None" = None,
        transport=None,
    ) -> None:
        super().__init__()
        if nshards < 1 or not 0 <= shard < nshards:
            raise ValueError(f"bad shard index {shard}/{nshards}")
        if nshards > 1:
            if lookahead_s is None or lookahead_s <= 0:
                raise ValueError(
                    "sharded simulation needs positive lookahead (min cut-link "
                    "propagation delay)"
                )
            if transport is None:
                raise ValueError("sharded simulation needs a mesh transport")
        self.shard = shard
        self.nshards = nshards
        self.lookahead_s = lookahead_s
        self.transport = transport
        self._peers = tuple(peer for peer in range(nshards) if peer != shard)
        self._outbound: "dict[int, list]" = {peer: [] for peer in self._peers}
        self._ingress: "dict[int, Port]" = {}
        #: Boundaries whose receiving end is failed: later-injected
        #: records (frames transmitted before the failure, crossing at
        #: a subsequent barrier) are discarded instead of delivered.
        self._ingress_down: "set[int]" = set()
        #: boundary_id -> {id(event): (event, frames)} — pending
        #: imported deliveries, so a fault can drop what is mid-crossing.
        self._ingress_pending: "dict[int, dict[int, tuple[object, int]]]" = {}
        #: Imported frames discarded because their boundary was down.
        self.boundary_drops = 0
        #: Same drops attributed to the cut trunk that lost them, so a
        #: sharded fault run can name the boundary a frame died on.
        self.boundary_drops_by_id: "dict[int, int]" = {}
        self.sync_rounds = 0
        #: Barriers the v1 fixed-window loop would have paid that the
        #: skip-ahead horizon crossed in one round.
        self.rounds_skipped = 0
        self.frames_exported = 0
        self.frames_imported = 0
        #: Boundary records (frame/burst units, = pickled list entries)
        #: handed to the transport; with ``sync_rounds`` this gives the
        #: records-per-pickle coalescing ratio.
        self.records_exported = 0
        #: Frames a *foreign* replica region tried to transmit across a
        #: boundary — always 0 in a correct replica (foreign regions
        #: receive no traffic); counted, not raised, so a violation
        #: surfaces in stats()/tests instead of deadlocking the mesh.
        self.shadow_drops = 0

    # ----------------------------------------------- boundary plumbing

    def register_ingress(self, boundary_id: int, port: "Port") -> None:
        """Declare *port* (owned by this shard) as the landing point of
        boundary *boundary_id* — where peer records are re-injected."""
        self._ingress[boundary_id] = port

    def export(self, peer: int, boundary_id: int, kind: int, arrivals: list) -> None:
        """Buffer boundary records for *peer*; flushed at the next
        window barrier (called by :class:`BoundaryLink`)."""
        self._outbound[peer].append((boundary_id, kind, arrivals))
        self.frames_exported += len(arrivals)
        self.records_exported += 1

    def _inject(self, records: list) -> None:
        """Schedule a peer's flushed records as local delivery events.

        Mirrors exactly what the severed :class:`~repro.netsim.link
        .Link` would have scheduled locally: one ``deliver`` at the
        frame's arrival, or one ``deliver_burst`` at the burst drain
        with per-frame timestamps intact.  Record order is preserved,
        so same-link FIFO survives the crossing.
        """
        for boundary_id, kind, arrivals in records:
            if boundary_id in self._ingress_down:
                # Transmitted before the failure, crossed after it: the
                # replica's local link would have cancelled these.
                self._count_boundary_drops(boundary_id, len(arrivals))
                continue
            port = self._ingress[boundary_id]
            self.frames_imported += len(arrivals)
            if kind == KIND_FRAME:
                arrival, frame = arrivals[0]
                self._schedule_import(
                    boundary_id, arrival, 1, lambda p=port, f=frame: p.deliver(f)
                )
            else:
                self._schedule_import(
                    boundary_id,
                    arrivals[-1][0],
                    len(arrivals),
                    lambda p=port, a=arrivals: p.deliver_burst(a),
                )

    def _schedule_import(
        self, boundary_id: int, time: float, frames: int, callback
    ) -> None:
        """Schedule one imported delivery, tracked per boundary so
        :meth:`drop_ingress` can cancel what is still in flight."""
        pending = self._ingress_pending.setdefault(boundary_id, {})

        def deliver() -> None:
            pending.pop(key, None)
            callback()

        event = self.schedule_at(time, deliver)
        key = id(event)
        pending[key] = (event, frames)

    def drop_ingress(self, boundary_id: int) -> None:
        """Fail the receiving end of a boundary: cancel pending imported
        deliveries and discard records injected while down.  Mirrors
        :meth:`repro.netsim.link.Link.set_down` cancelling in-flight
        frames on an unsevered link (see :class:`BoundaryLink`)."""
        self._ingress_down.add(boundary_id)
        for event, frames in self._ingress_pending.pop(boundary_id, {}).values():
            event.cancel()
            self._count_boundary_drops(boundary_id, frames)

    def restore_ingress(self, boundary_id: int) -> None:
        self._ingress_down.discard(boundary_id)

    def _count_boundary_drops(self, boundary_id: int, frames: int) -> None:
        self.boundary_drops += frames
        self.boundary_drops_by_id[boundary_id] = (
            self.boundary_drops_by_id.get(boundary_id, 0) + frames
        )

    # ------------------------------------------------- collective run

    def run(
        self,
        until: "float | None" = None,
        max_events: "int | None" = None,
        inclusive: bool = True,
    ) -> int:
        if self.nshards == 1:
            return super().run(until=until, max_events=max_events, inclusive=inclusive)
        return self._collective_run(until, max_events)

    def _collective_run(self, until: "float | None", max_events: "int | None") -> int:
        window = self.lookahead_s
        processed = 0
        final_clock = None
        failed = True
        try:
            while True:
                # Flush boundary records and advertise the earliest
                # event this shard can still cause: its own queue head,
                # or the earliest delivery among the records it is
                # flushing right now (which peers haven't scheduled yet).
                flush, self._outbound = self._outbound, {p: [] for p in self._peers}
                flushed_min = _INF
                for records in flush.values():
                    for _, kind, arrivals in records:
                        event_time = (
                            arrivals[0][0] if kind == KIND_FRAME else arrivals[-1][0]
                        )
                        if event_time < flushed_min:
                            flushed_min = event_time
                local_next = self.peek_next_time()
                advertised = flushed_min
                if local_next is not None and local_next < advertised:
                    advertised = local_next

                # One message per (peer, round): the record batch (None
                # as the empty-round fast token), the advertisement, the
                # clock, and the cumulative processed count that makes
                # max_events a global property.
                for peer in self._peers:
                    self.transport.send(
                        peer, (flush[peer] or None, advertised, self._now, processed)
                    )
                peers_min = _INF
                global_clock = self._now
                global_processed = processed
                for peer in self._peers:
                    records, peer_next, peer_clock, peer_processed = (
                        self.transport.recv(peer)
                    )
                    if records:
                        self._inject(records)
                    if peer_next < peers_min:
                        peers_min = peer_next
                    if peer_clock > global_clock:
                        global_clock = peer_clock
                    global_processed += peer_processed
                self.sync_rounds += 1
                global_next = min(advertised, peers_min)

                # All exit decisions below use only values every shard
                # computed identically this round (global sums/minima),
                # so the whole collective breaks at the same barrier.
                if max_events is not None and global_processed >= max_events:
                    # Best-effort clock equalisation: park at the global
                    # maximum only where no pending event predates it.
                    head = self.peek_next_time()
                    if head is None or head >= global_clock:
                        final_clock = global_clock
                    break
                if global_next == _INF:
                    # Globally idle.  Park every clock at the same spot.
                    final_clock = until if until is not None else global_clock
                    break
                if until is not None and global_next > until:
                    final_clock = until
                    break

                # Skip-ahead horizon: the earliest instant a *peer*
                # could still cause an event here is (its advertised
                # next event) + lookahead; records flushed *this*
                # round can draw responses from flushed_min + L on.
                # The shard's own backlog does not bound the horizon —
                # it is drained in 2L chunks below.
                hard_stop = min(peers_min, flushed_min) + window
                budget = (
                    None if max_events is None else max_events - global_processed
                )
                entry = self._now
                while True:
                    base = self.peek_next_time()
                    if base is None or base >= hard_stop:
                        break
                    if until is not None and base > until:
                        break
                    # A response to a record exported at x >= base
                    # arrives at x + 2L >= chunk end, so ending the
                    # chunk on first export keeps the clock behind
                    # anything a peer can throw back.
                    chunk = base + 2.0 * window
                    if chunk > hard_stop:
                        chunk = hard_stop
                    if until is not None and chunk > until:
                        # Terminal stretch: remaining events are <=
                        # until; exports land >= base + L and are
                        # reconciled at the next barrier.
                        count = super().run(until=until, max_events=budget)
                    else:
                        count = super().run(
                            until=chunk, max_events=budget, inclusive=False
                        )
                    processed += count
                    if budget is not None:
                        budget -= count
                        if budget <= 0:
                            break
                    if any(self._outbound.values()):
                        break
                    if until is not None and self._now >= until:
                        break
                # Windows a fixed-step engine would have barriered
                # through this round, minus the one barrier v2 paid.
                if window > 0 and self._now > entry + window:
                    self.rounds_skipped += max(
                        0, int((self._now - entry) / window) - 1
                    )
            failed = False
        finally:
            if failed:
                # Wake peers blocked on this shard before propagating.
                self.transport.abort()
        if final_clock is not None and self._now < final_clock:
            self.advance_to(final_clock)
        return processed

    def sync_stats(self) -> dict:
        return {
            "shard": self.shard,
            "now": self._now,
            "events_processed": self._events_processed,
            "pending_events": self.pending_events,
            "sync_rounds": self.sync_rounds,
            "rounds_skipped": self.rounds_skipped,
            "frames_exported": self.frames_exported,
            "frames_imported": self.frames_imported,
            "records_exported": self.records_exported,
            # 0 on by-reference transports (ThreadMesh) which never
            # serialise; the pipe endpoints meter their pickles.
            "bytes_sent": getattr(self.transport, "bytes_sent", 0),
            "bytes_received": getattr(self.transport, "bytes_received", 0),
            "shadow_drops": self.shadow_drops,
            "boundary_drops": self.boundary_drops,
            "boundary_drops_by_id": dict(self.boundary_drops_by_id),
        }


# ---------------------------------------------------------------------------
# Boundary links
# ---------------------------------------------------------------------------


class BoundaryLink:
    """Stand-in wired into one port of a severed cut link.

    Each shard holds an identical replica of the full fabric; cut links
    are severed by re-pointing both end ports here while keeping the
    original :class:`~repro.netsim.link.Link` object for its direction
    state and timing math:

    * the **owned** endpoint (``exporting=True``) serialises outgoing
      frames through ``Link._enqueue_frame`` / ``_enqueue_burst`` — so
      tail-drop, ``queue_hwm``, busy-time chaining and per-frame
      arrival floats are bit-identical to an unsevered link — schedules
      the local queue-drain decrement, and exports the accepted
      ``(arrival, frame)`` records to the peer shard instead of
      delivering locally;
    * the **foreign** endpoint (``exporting=False``) swallows traffic:
      a correct replica's foreign region transmits nothing, and
      ``ShardSimulator.shadow_drops`` counts any frame proving
      otherwise.

    Attribute reads fall through to the underlying link, so topology
    code (``port.peer``, ``link.stats``) keeps working on severed ports.
    """

    def __init__(
        self,
        link: "Link",
        sim: ShardSimulator,
        boundary_id: int,
        peer_shard: int,
        exporting: bool,
    ) -> None:
        self._link = link
        self._sim = sim
        self._boundary_id = boundary_id
        self._peer_shard = peer_shard
        self._exporting = exporting

    def __getattr__(self, name: str):
        return getattr(self._link, name)

    def transmit(self, from_port: "Port", frame: "EthernetFrame") -> bool:
        if not self._exporting:
            self._sim.shadow_drops += 1
            return False
        link = self._link
        arrival = link._enqueue_frame(from_port, frame)
        if arrival is None:
            return False
        direction = link._directions[id(from_port)]

        def landed() -> None:
            direction.in_flight.pop(id(event), None)
            direction.queued -= 1

        event = self._sim.schedule_at(arrival, landed)
        direction.in_flight[id(event)] = (event, 1)
        self._sim.export(
            self._peer_shard, self._boundary_id, KIND_FRAME, [(arrival, frame)]
        )
        return True

    def transmit_burst(self, from_port: "Port", frames: "list[EthernetFrame]") -> int:
        if not self._exporting:
            self._sim.shadow_drops += len(frames)
            return 0
        link = self._link
        accepted = link._enqueue_burst(from_port, frames)
        if not accepted:
            return 0
        direction = link._directions[id(from_port)]

        def landed() -> None:
            direction.in_flight.pop(id(event), None)
            direction.queued -= len(accepted)

        event = self._sim.schedule_at(accepted[-1][0], landed)
        direction.in_flight[id(event)] = (event, len(accepted))
        self._sim.export(self._peer_shard, self._boundary_id, KIND_BURST, accepted)
        return len(accepted)

    def set_down(self) -> None:
        """Fail the severed link on this replica.

        The underlying :class:`~repro.netsim.link.Link` drops its
        queued/in-flight accounting (bit-identical stats to the
        unsevered link), and the owned endpoint additionally cancels
        imported deliveries still pending locally plus any records a
        peer flushes while the link is down — those frames were
        transmitted before the failure and would have been cancelled
        mid-wire by an unsevered link.  Every replica must apply the
        same fault at the same time (SPMD, like all topology mutations),
        and the hold time must be at least the sync lookahead so the
        restore lands in a window after the last stale record.
        """
        self._link.set_down()
        if self._exporting:
            self._sim.drop_ingress(self._boundary_id)

    def set_up(self) -> None:
        self._link.set_up()
        if self._exporting:
            self._sim.restore_ingress(self._boundary_id)

    def __repr__(self) -> str:
        role = "export" if self._exporting else "shadow"
        return f"BoundaryLink({self._link.name}, {role})"


def sever_link(
    link: "Link",
    sim: ShardSimulator,
    boundary_id: int,
    peer_shard: int,
    owned_port: "Port | None",
) -> None:
    """Replace both endpoints of *link* with boundary proxies.

    *owned_port* is the endpoint this shard owns (its transmits are
    exported to *peer_shard*; peer records land on it); pass ``None``
    when neither endpoint is owned (a cut between two other shards —
    both ends become shadow proxies).
    """
    for port in (link.port_a, link.port_b):
        exporting = port is owned_port
        port.link = BoundaryLink(
            link, sim, boundary_id, peer_shard if exporting else -1, exporting
        )
    if owned_port is not None:
        sim.register_ingress(boundary_id, owned_port)


# ---------------------------------------------------------------------------
# Facade
# ---------------------------------------------------------------------------


def run_collective(
    sims: "list[ShardSimulator]",
    until: "float | None" = None,
    max_events: "int | None" = None,
) -> "list[int]":
    """Drive every shard's collective ``run()`` on its own thread.

    Returns per-shard processed counts; re-raises the first shard
    failure (peers unblock via the abort cascade, so joins terminate).
    """
    results: "list[int | None]" = [None] * len(sims)
    errors: "list[BaseException | None]" = [None] * len(sims)

    def drive(index: int, sim: ShardSimulator) -> None:
        try:
            results[index] = sim.run(until=until, max_events=max_events)
        except BaseException as exc:  # noqa: BLE001 - propagated below
            errors[index] = exc

    threads = [
        threading.Thread(
            target=drive, args=(index, sim), name=f"shard-{index}", daemon=True
        )
        for index, sim in enumerate(sims)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for error in errors:
        if error is not None and not isinstance(error, PeerAborted):
            raise error
    for error in errors:
        if error is not None:
            raise error
    return [count for count in results if count is not None] or [0]


class ShardedSimulator:
    """N shard event loops behind the familiar simulator surface.

    Exposes ``run()`` / ``schedule*()`` / ``pending_events`` /
    ``run_until_idle()`` like a plain :class:`Simulator`, plus merged
    per-shard :meth:`stats`.  Shards run on in-process threads (the
    :class:`ThreadMesh` transport); for multi-core process workers see
    the fork backend in :mod:`repro.fabric.partition`, which drives the
    same :class:`ShardSimulator` protocol over pipes.

    Scheduling targets a specific shard (default 0) — callbacks run
    inside that shard's event loop and must only touch that shard's
    objects.
    """

    def __init__(
        self,
        shards: int = 1,
        lookahead_s: "float | None" = None,
        timeout_s: float = DEFAULT_SYNC_TIMEOUT_S,
    ) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        mesh = ThreadMesh(shards, timeout_s=timeout_s) if shards > 1 else None
        self.shards: "list[ShardSimulator]" = [
            ShardSimulator(
                shard=index,
                nshards=shards,
                lookahead_s=lookahead_s if shards > 1 else None,
                transport=mesh.endpoint(index) if mesh is not None else None,
            )
            for index in range(shards)
        ]

    # ------------------------------------------------ simulator surface

    @property
    def now(self) -> float:
        return max(sim.now for sim in self.shards)

    @property
    def pending_events(self) -> int:
        return sum(sim.pending_events for sim in self.shards)

    @property
    def events_processed(self) -> int:
        return sum(sim.events_processed for sim in self.shards)

    def schedule(self, delay: float, callback, shard: int = 0):
        return self.shards[shard].schedule(delay, callback)

    def schedule_at(self, time: float, callback, shard: int = 0):
        return self.shards[shard].schedule_at(time, callback)

    def schedule_many(self, items, shard: int = 0):
        return self.shards[shard].schedule_many(items)

    def run(
        self, until: "float | None" = None, max_events: "int | None" = None
    ) -> int:
        if len(self.shards) == 1:
            return self.shards[0].run(until=until, max_events=max_events)
        return sum(run_collective(self.shards, until=until, max_events=max_events))

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        processed = self.run(max_events=max_events)
        if self.pending_events:
            raise RuntimeError(
                f"simulation did not go idle within {max_events} events"
            )
        return processed

    # --------------------------------------------------------- insight

    def stats(self) -> dict:
        """Merged view plus the per-shard sync counters."""
        per_shard = [sim.sync_stats() for sim in self.shards]
        return {
            "shards": len(self.shards),
            "now": self.now,
            "events_processed": self.events_processed,
            "pending_events": self.pending_events,
            "sync_rounds": max((row["sync_rounds"] for row in per_shard), default=0),
            "rounds_skipped": max(
                (row["rounds_skipped"] for row in per_shard), default=0
            ),
            "frames_exported": sum(row["frames_exported"] for row in per_shard),
            "records_exported": sum(row["records_exported"] for row in per_shard),
            "bytes_exchanged": sum(row["bytes_sent"] for row in per_shard),
            "shadow_drops": sum(row["shadow_drops"] for row in per_shard),
            "boundary_drops": sum(row["boundary_drops"] for row in per_shard),
            "per_shard": per_shard,
        }


__all__ = [
    "BoundaryLink",
    "DEFAULT_SYNC_TIMEOUT_S",
    "KIND_BURST",
    "KIND_FRAME",
    "PeerAborted",
    "PipeEndpoint",
    "ShardSimulator",
    "ShardSyncError",
    "ShardedSimulator",
    "ThreadMesh",
    "make_pipe_mesh",
    "run_collective",
    "sever_link",
]
