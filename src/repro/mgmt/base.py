"""The vendor-neutral driver API and its SNMP-backed core.

A driver executes three kinds of work, all over SNMP:

* *getters* — facts, interfaces, VLANs, MAC table (read community),
* *config ops* — a vendor-neutral op list (declare VLAN, access port,
  trunk port) applied via Q-BRIDGE SET operations (write community),
* *config sessions* — candidate text in the vendor's own syntax,
  parsed into ops, previewed, committed atomically, or rolled back.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.snmp.agent import SnmpAgent, SnmpError
from repro.snmp.bridge_mib import (
    DOT1Q_PORT_VLAN_ENTRY,
    DOT1Q_TP_FDB_ENTRY,
    DOT1Q_VLAN_STATIC_ENTRY,
    IF_TABLE_ENTRY,
    ROW_CREATE_AND_GO,
    ROW_DESTROY,
    VLAN_EGRESS,
    VLAN_NAME,
    VLAN_ROW_STATUS,
    VLAN_UNTAGGED,
    portlist_from_bytes,
    portlist_to_bytes,
)
from repro.snmp.client import SnmpClient, SnmpTimeout
from repro.snmp.oid import SYS_DESCR, SYS_NAME


class DriverError(Exception):
    """Connection or execution failure at the driver layer."""


class ConfigSessionError(DriverError):
    """Candidate/commit workflow misuse (no candidate, parse error...)."""


@dataclass
class DeviceConnection:
    """How to reach one device's management agent."""

    agent: SnmpAgent
    hostname: str = "switch"
    read_community: str = "public"
    write_community: str = "private"


@dataclass
class ConfigOp:
    """One vendor-neutral configuration operation."""

    kind: str  # "vlan" | "no-vlan" | "access" | "trunk"
    vlan_id: int = 0
    port: int = 0
    name: str = ""
    allowed_vlans: tuple[int, ...] = ()
    native_vlan: "int | None" = None

    def key(self) -> tuple:
        """Deduplication/ordering key: VLAN declarations first."""
        order = {"vlan": 0, "no-vlan": 1, "access": 2, "trunk": 2}
        return (order[self.kind], self.vlan_id, self.port)


@dataclass
class VlanView:
    """What get_vlans() reports for one VLAN."""

    name: str
    untagged: list[int] = field(default_factory=list)
    tagged: list[int] = field(default_factory=list)


class NetworkDriver(ABC):
    """Base driver; subclasses supply naming and config syntax."""

    vendor = "generic"

    def __init__(self, connection: DeviceConnection) -> None:
        self.connection = connection
        self._client: Optional[SnmpClient] = None
        self._candidate: "list[ConfigOp] | None" = None
        self._candidate_text: str = ""
        self._rollback_ops: "list[ConfigOp] | None" = None

    # -------------------------------------------------------- connection

    def open(self) -> None:
        """Establish the management session (verifies reachability)."""
        client = SnmpClient(
            self.connection.agent, community=self.connection.write_community
        )
        try:
            client.get(SYS_DESCR)
        except (SnmpTimeout, SnmpError) as exc:
            raise DriverError(f"cannot reach {self.connection.hostname}: {exc}") from exc
        self._client = client

    def close(self) -> None:
        self._client = None
        self._candidate = None

    def is_alive(self) -> bool:
        if self._client is None:
            return False
        try:
            self._client.get(SYS_DESCR)
            return True
        except (SnmpTimeout, SnmpError):
            return False

    @property
    def client(self) -> SnmpClient:
        if self._client is None:
            raise DriverError("driver is not open")
        return self._client

    def __enter__(self) -> "NetworkDriver":
        self.open()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ----------------------------------------------------- vendor naming

    @abstractmethod
    def interface_name(self, port: int) -> str:
        """Vendor-specific name for switch port *port*."""

    @abstractmethod
    def parse_interface(self, name: str) -> int:
        """Inverse of :meth:`interface_name`."""

    # ------------------------------------------------------------ getters

    def get_facts(self) -> dict[str, Any]:
        """Device identity and interface inventory."""
        descr = self.client.get(SYS_DESCR)
        name = self.client.get(SYS_NAME)
        interfaces = self.get_interfaces()
        return {
            "hostname": name,
            "vendor": self.vendor,
            "model": descr,
            "interface_list": sorted(interfaces),
        }

    def get_interfaces(self) -> dict[str, dict[str, Any]]:
        """Per-interface admin/oper state and octet counters."""
        rows = self.client.table_rows(IF_TABLE_ENTRY)
        ports = sorted({suffix[1] for suffix in rows if suffix[0] == 1})
        result: dict[str, dict[str, Any]] = {}
        for port in ports:
            result[self.interface_name(port)] = {
                "port": port,
                "is_enabled": rows.get((7, port)) == 1,
                "is_up": rows.get((8, port)) == 1,
                "rx_octets": rows.get((10, port), 0),
                "tx_octets": rows.get((16, port), 0),
            }
        return result

    def get_vlans(self) -> dict[int, VlanView]:
        """VLANs with their tagged/untagged member ports."""
        rows = self.client.table_rows(DOT1Q_VLAN_STATIC_ENTRY)
        vlans: dict[int, VlanView] = {}
        for suffix, value in rows.items():
            column, vlan_id = suffix
            view = vlans.setdefault(vlan_id, VlanView(name=""))
            if column == VLAN_NAME:
                view.name = str(value)
            elif column == VLAN_EGRESS:
                egress = portlist_from_bytes(bytes(value))
                view.tagged = sorted(egress)
            elif column == VLAN_UNTAGGED:
                view.untagged = sorted(portlist_from_bytes(bytes(value)))
        for view in vlans.values():
            view.tagged = [port for port in view.tagged if port not in view.untagged]
        return vlans

    def get_mac_address_table(self) -> list[dict[str, Any]]:
        """The learned FDB as NAPALM reports it."""
        rows = self.client.table_rows(DOT1Q_TP_FDB_ENTRY)
        table = []
        for suffix, value in rows.items():
            if suffix[0] != 2:  # port column only
                continue
            vlan_id = suffix[1]
            mac_bytes = bytes(suffix[2:8])
            status = rows.get((3,) + suffix[1:], 3)
            table.append(
                {
                    "mac": ":".join(f"{byte:02x}" for byte in mac_bytes),
                    "vlan": vlan_id,
                    "interface": self.interface_name(int(value)),
                    "static": status == 5,
                }
            )
        return table

    def get_port_count(self) -> int:
        return len(self.get_interfaces())

    # --------------------------------------------------------- config ops

    def apply_ops(self, ops: "list[ConfigOp]") -> None:
        """Execute vendor-neutral ops over SNMP, VLAN declarations first."""
        width = self.get_port_count()
        for op in sorted(ops, key=ConfigOp.key):
            if op.kind == "vlan":
                self.client.set(
                    DOT1Q_VLAN_STATIC_ENTRY.child(VLAN_ROW_STATUS, op.vlan_id),
                    ROW_CREATE_AND_GO,
                )
                if op.name:
                    self.client.set(
                        DOT1Q_VLAN_STATIC_ENTRY.child(VLAN_NAME, op.vlan_id), op.name
                    )
            elif op.kind == "no-vlan":
                self.client.set(
                    DOT1Q_VLAN_STATIC_ENTRY.child(VLAN_ROW_STATUS, op.vlan_id),
                    ROW_DESTROY,
                )
            elif op.kind == "access":
                self._apply_access(op, width)
            elif op.kind == "trunk":
                self._apply_trunk(op, width)
            else:
                raise DriverError(f"unknown config op kind {op.kind!r}")

    def _current_untagged(self, vlan_id: int) -> set[int]:
        rows = self.client.table_rows(DOT1Q_VLAN_STATIC_ENTRY)
        raw = rows.get((VLAN_UNTAGGED, vlan_id), b"")
        return portlist_from_bytes(bytes(raw))

    def _current_egress(self, vlan_id: int) -> set[int]:
        rows = self.client.table_rows(DOT1Q_VLAN_STATIC_ENTRY)
        raw = rows.get((VLAN_EGRESS, vlan_id), b"")
        return portlist_from_bytes(bytes(raw))

    def _apply_access(self, op: ConfigOp, width: int) -> None:
        untagged = self._current_untagged(op.vlan_id) | {op.port}
        self.client.set(
            DOT1Q_VLAN_STATIC_ENTRY.child(VLAN_UNTAGGED, op.vlan_id),
            portlist_to_bytes(untagged, width),
        )

    def _apply_trunk(self, op: ConfigOp, width: int) -> None:
        for vlan_id in op.allowed_vlans:
            egress = self._current_egress(vlan_id) | {op.port}
            untagged = self._current_untagged(vlan_id) - {op.port}
            self.client.set(
                DOT1Q_VLAN_STATIC_ENTRY.child(VLAN_EGRESS, vlan_id),
                portlist_to_bytes(egress, width),
            )
            self.client.set(
                DOT1Q_VLAN_STATIC_ENTRY.child(VLAN_UNTAGGED, vlan_id),
                portlist_to_bytes(untagged, width),
            )
        if op.native_vlan is not None:
            self._apply_access(
                ConfigOp(kind="access", vlan_id=op.native_vlan, port=op.port), width
            )

    # ------------------------------------------------------ config session

    @abstractmethod
    def render_config(self, ops: "list[ConfigOp]") -> str:
        """Render ops into this vendor's configuration syntax."""

    @abstractmethod
    def parse_config(self, text: str) -> "list[ConfigOp]":
        """Parse this vendor's configuration syntax into ops."""

    def load_merge_candidate(self, config: str) -> None:
        """Stage *config* (vendor syntax) for commit."""
        self._candidate = self.parse_config(config)
        self._candidate_text = config

    def compare_config(self) -> str:
        """Preview: the staged ops rendered back in vendor syntax."""
        if self._candidate is None:
            return ""
        return self.render_config(self._candidate)

    def commit_config(self) -> None:
        """Apply the candidate; snapshots current state for rollback."""
        if self._candidate is None:
            raise ConfigSessionError("no candidate loaded")
        self._rollback_ops = self._snapshot_ops()
        self.apply_ops(self._candidate)
        self._candidate = None

    def discard_config(self) -> None:
        self._candidate = None
        self._candidate_text = ""

    def rollback(self) -> None:
        """Return to the configuration captured by the last commit.

        Strategy: strip every non-default VLAN's membership (which
        drops the affected ports back into the default VLAN), destroy
        VLANs that did not exist at snapshot time, then replay the
        snapshot ops to rebuild the old layout.
        """
        if self._rollback_ops is None:
            raise ConfigSessionError("nothing to roll back to")
        snapshot_vlans = {
            op.vlan_id for op in self._rollback_ops if op.kind == "vlan"
        }
        width = self.get_port_count()
        current_vlans = set(self.get_vlans())
        for vlan_id in sorted(current_vlans - {1}):
            self.client.set(
                DOT1Q_VLAN_STATIC_ENTRY.child(VLAN_EGRESS, vlan_id),
                portlist_to_bytes(set(), width),
            )
        for vlan_id in sorted(current_vlans - snapshot_vlans - {1}):
            self.apply_ops([ConfigOp(kind="no-vlan", vlan_id=vlan_id)])
        self.apply_ops(self._rollback_ops)
        self._rollback_ops = None

    def _snapshot_ops(self) -> "list[ConfigOp]":
        """Capture the current VLAN/port layout as a replayable op list."""
        ops: list[ConfigOp] = []
        trunk_membership: dict[int, set[int]] = {}
        for vlan_id, view in sorted(self.get_vlans().items()):
            ops.append(ConfigOp(kind="vlan", vlan_id=vlan_id, name=view.name))
            for port in view.untagged:
                ops.append(ConfigOp(kind="access", vlan_id=vlan_id, port=port))
            for port in view.tagged:
                trunk_membership.setdefault(port, set()).add(vlan_id)
        for port, vlans in sorted(trunk_membership.items()):
            ops.append(
                ConfigOp(kind="trunk", port=port, allowed_vlans=tuple(sorted(vlans)))
            )
        return ops
