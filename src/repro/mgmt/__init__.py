"""NAPALM-style multi-vendor management drivers.

The paper's Manager "automatically manages and queries the legacy
Ethernet switch via SNMP through NAPALM".  This package reproduces that
layer: a vendor-neutral :class:`NetworkDriver` API with per-vendor
personalities (interface naming and configuration syntax differ), all
executing over the simulated SNMP agent of the target switch.

Config workflow mirrors NAPALM: load a candidate (vendor-syntax text),
``compare_config`` to preview, ``commit_config`` to apply atomically,
``rollback`` to return to the pre-commit state.
"""

from repro.mgmt.base import (
    ConfigSessionError,
    DeviceConnection,
    DriverError,
    NetworkDriver,
)
from repro.mgmt.drivers import (
    SimEOSDriver,
    SimIOSDriver,
    SimProCurveDriver,
    get_network_driver,
)

__all__ = [
    "NetworkDriver",
    "DeviceConnection",
    "DriverError",
    "ConfigSessionError",
    "SimIOSDriver",
    "SimEOSDriver",
    "SimProCurveDriver",
    "get_network_driver",
]
