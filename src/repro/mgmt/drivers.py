"""Vendor personalities: IOS-like, EOS-like and ProCurve-like drivers.

Each driver renders and parses its own configuration dialect — the
point the paper makes about NAPALM "supporting numerous networking
operating systems (e.g., Cisco IOS, Arista EOS)".  The dialects here
are deliberately recognisable miniatures of the real ones.
"""

from __future__ import annotations

import re

from repro.mgmt.base import ConfigOp, ConfigSessionError, NetworkDriver


class _InterfaceStanzaDriver(NetworkDriver):
    """Shared renderer/parser for IOS/EOS style interface stanzas."""

    interface_prefix = "Ethernet"

    def interface_name(self, port: int) -> str:
        return f"{self.interface_prefix}{port}"

    def parse_interface(self, name: str) -> int:
        pattern = re.escape(self.interface_prefix) + r"(\d+)$"
        match = re.match(pattern, name.strip())
        if not match:
            raise ConfigSessionError(
                f"{self.vendor}: bad interface name {name!r}"
            )
        return int(match.group(1))

    def render_config(self, ops: "list[ConfigOp]") -> str:
        lines: list[str] = []
        for op in sorted(ops, key=ConfigOp.key):
            if op.kind == "vlan":
                lines.append(f"vlan {op.vlan_id}")
                if op.name:
                    lines.append(f" name {op.name}")
            elif op.kind == "no-vlan":
                lines.append(f"no vlan {op.vlan_id}")
            elif op.kind == "access":
                lines.append(f"interface {self.interface_name(op.port)}")
                lines.append(" switchport mode access")
                lines.append(f" switchport access vlan {op.vlan_id}")
            elif op.kind == "trunk":
                lines.append(f"interface {self.interface_name(op.port)}")
                lines.append(" switchport mode trunk")
                allowed = ",".join(str(v) for v in op.allowed_vlans)
                lines.append(f" switchport trunk allowed vlan {allowed}")
                if op.native_vlan is not None:
                    lines.append(
                        f" switchport trunk native vlan {op.native_vlan}"
                    )
        return "\n".join(lines) + "\n"

    def parse_config(self, text: str) -> "list[ConfigOp]":
        ops: list[ConfigOp] = []
        current_port: "int | None" = None
        pending_trunk: "ConfigOp | None" = None
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith("!"):
                continue
            if match := re.match(r"no vlan (\d+)$", line):
                ops.append(ConfigOp(kind="no-vlan", vlan_id=int(match.group(1))))
            elif match := re.match(r"vlan (\d+)$", line):
                ops.append(ConfigOp(kind="vlan", vlan_id=int(match.group(1))))
            elif match := re.match(r"name (\S+)$", line):
                if not ops or ops[-1].kind != "vlan":
                    raise ConfigSessionError(f"{self.vendor}: 'name' outside vlan: {line!r}")
                ops[-1].name = match.group(1)
            elif match := re.match(r"interface (\S+)$", line):
                current_port = self.parse_interface(match.group(1))
                pending_trunk = None
            elif line == "switchport mode access":
                self._require_interface(current_port, line)
            elif line == "switchport mode trunk":
                self._require_interface(current_port, line)
                pending_trunk = ConfigOp(kind="trunk", port=current_port)  # type: ignore[arg-type]
                ops.append(pending_trunk)
            elif match := re.match(r"switchport access vlan (\d+)$", line):
                self._require_interface(current_port, line)
                ops.append(
                    ConfigOp(
                        kind="access",
                        port=current_port,  # type: ignore[arg-type]
                        vlan_id=int(match.group(1)),
                    )
                )
            elif match := re.match(r"switchport trunk allowed vlan ([\d,]+)$", line):
                if pending_trunk is None:
                    raise ConfigSessionError(
                        f"{self.vendor}: trunk vlans outside trunk mode: {line!r}"
                    )
                pending_trunk.allowed_vlans = tuple(
                    int(v) for v in match.group(1).split(",")
                )
            elif match := re.match(r"switchport trunk native vlan (\d+)$", line):
                if pending_trunk is None:
                    raise ConfigSessionError(
                        f"{self.vendor}: native vlan outside trunk mode: {line!r}"
                    )
                pending_trunk.native_vlan = int(match.group(1))
            else:
                raise ConfigSessionError(f"{self.vendor}: cannot parse {line!r}")
        return ops

    def _require_interface(self, current_port: "int | None", line: str) -> None:
        if current_port is None:
            raise ConfigSessionError(
                f"{self.vendor}: switchport command outside interface: {line!r}"
            )


class SimIOSDriver(_InterfaceStanzaDriver):
    """Cisco-IOS-flavoured personality (GigabitEthernet0/N naming)."""

    vendor = "sim-ios"
    interface_prefix = "GigabitEthernet0/"


class SimEOSDriver(_InterfaceStanzaDriver):
    """Arista-EOS-flavoured personality (EthernetN naming)."""

    vendor = "sim-eos"
    interface_prefix = "Ethernet"


class SimProCurveDriver(NetworkDriver):
    """HP-ProCurve-flavoured personality.

    ProCurve config is VLAN-centric: ports are listed as tagged or
    untagged members inside each ``vlan`` stanza, and interfaces are
    bare numbers.
    """

    vendor = "sim-procurve"

    def interface_name(self, port: int) -> str:
        return str(port)

    def parse_interface(self, name: str) -> int:
        if not name.strip().isdigit():
            raise ConfigSessionError(f"{self.vendor}: bad interface {name!r}")
        return int(name.strip())

    def render_config(self, ops: "list[ConfigOp]") -> str:
        # Group access/trunk ops per VLAN the ProCurve way.
        untagged: dict[int, list[int]] = {}
        tagged: dict[int, list[int]] = {}
        names: dict[int, str] = {}
        removals: list[int] = []
        for op in ops:
            if op.kind == "vlan":
                names.setdefault(op.vlan_id, op.name)
            elif op.kind == "no-vlan":
                removals.append(op.vlan_id)
            elif op.kind == "access":
                untagged.setdefault(op.vlan_id, []).append(op.port)
            elif op.kind == "trunk":
                for vlan_id in op.allowed_vlans:
                    tagged.setdefault(vlan_id, []).append(op.port)
                if op.native_vlan is not None:
                    untagged.setdefault(op.native_vlan, []).append(op.port)
        lines: list[str] = []
        for vlan_id in sorted(set(names) | set(untagged) | set(tagged)):
            lines.append(f"vlan {vlan_id}")
            if names.get(vlan_id):
                lines.append(f'   name "{names[vlan_id]}"')
            for port in sorted(untagged.get(vlan_id, [])):
                lines.append(f"   untagged {port}")
            for port in sorted(tagged.get(vlan_id, [])):
                lines.append(f"   tagged {port}")
            lines.append("   exit")
        for vlan_id in removals:
            lines.append(f"no vlan {vlan_id}")
        return "\n".join(lines) + "\n"

    def parse_config(self, text: str) -> "list[ConfigOp]":
        ops: list[ConfigOp] = []
        trunk_vlans: dict[int, list[int]] = {}
        current_vlan: "int | None" = None
        for raw_line in text.splitlines():
            line = raw_line.strip()
            if not line or line.startswith(";"):
                continue
            if match := re.match(r"no vlan (\d+)$", line):
                ops.append(ConfigOp(kind="no-vlan", vlan_id=int(match.group(1))))
                current_vlan = None
            elif match := re.match(r"vlan (\d+)$", line):
                current_vlan = int(match.group(1))
                ops.append(ConfigOp(kind="vlan", vlan_id=current_vlan))
            elif match := re.match(r'name "?([^"]+)"?$', line):
                if current_vlan is None:
                    raise ConfigSessionError(f"{self.vendor}: name outside vlan")
                ops[-1].name = match.group(1)
            elif match := re.match(r"untagged ([\d,\-]+)$", line):
                if current_vlan is None:
                    raise ConfigSessionError(f"{self.vendor}: untagged outside vlan")
                for port in _expand_port_range(match.group(1)):
                    ops.append(
                        ConfigOp(kind="access", vlan_id=current_vlan, port=port)
                    )
            elif match := re.match(r"tagged ([\d,\-]+)$", line):
                if current_vlan is None:
                    raise ConfigSessionError(f"{self.vendor}: tagged outside vlan")
                for port in _expand_port_range(match.group(1)):
                    trunk_vlans.setdefault(port, []).append(current_vlan)
            elif line == "exit":
                current_vlan = None
            else:
                raise ConfigSessionError(f"{self.vendor}: cannot parse {line!r}")
        for port, vlans in sorted(trunk_vlans.items()):
            ops.append(
                ConfigOp(kind="trunk", port=port, allowed_vlans=tuple(sorted(vlans)))
            )
        return ops


def _expand_port_range(spec: str) -> list[int]:
    """Expand ProCurve port lists like ``1,3,5-7`` into [1, 3, 5, 6, 7]."""
    ports: list[int] = []
    for chunk in spec.split(","):
        if "-" in chunk:
            low, high = chunk.split("-", 1)
            ports.extend(range(int(low), int(high) + 1))
        else:
            ports.append(int(chunk))
    return ports


_DRIVERS = {
    "sim-ios": SimIOSDriver,
    "sim-eos": SimEOSDriver,
    "sim-procurve": SimProCurveDriver,
}


def get_network_driver(vendor: str) -> type[NetworkDriver]:
    """Look up a driver class by vendor string (NAPALM's entry point)."""
    try:
        return _DRIVERS[vendor]
    except KeyError:
        raise ValueError(
            f"unknown vendor {vendor!r}; available: {sorted(_DRIVERS)}"
        ) from None
