"""Use case (a): source-IP load balancing across web backends.

Ingress web traffic to a virtual IP (VIP) is spread over backends with
an OpenFlow *select* group whose hash includes the source IP — the
matching of the paper's demo ("equally distribute ingress web traffic
between multiple backends based on matching of the source IP address").
Each bucket rewrites the destination MAC/IP to one backend; return
traffic is rewritten back to the VIP so clients see a single server.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addresses import IPv4Address, MACAddress
from repro.openflow.actions import OutputAction, SetFieldAction
from repro.openflow.consts import OFPGT_SELECT
from repro.openflow.match import Match
from repro.openflow.messages import Bucket
from repro.controller.app import ControllerApp
from repro.controller.core import Datapath


@dataclass(frozen=True)
class Backend:
    """One real server behind the VIP."""

    ip: IPv4Address
    mac: MACAddress
    port: int  # switch port the backend is attached to
    weight: int = 1


class LoadBalancerApp(ControllerApp):
    """Proactive VIP load balancer on a select group."""

    name = "load-balancer"

    def __init__(
        self,
        vip: IPv4Address,
        vip_mac: MACAddress,
        backends: list[Backend],
        tcp_port: int = 80,
        group_id: int = 1,
        priority: int = 100,
    ) -> None:
        super().__init__()
        self.vip = IPv4Address(vip)
        self.vip_mac = MACAddress(vip_mac)
        self.backends = list(backends)
        self.tcp_port = tcp_port
        self.group_id = group_id
        self.priority = priority
        if not self.backends:
            raise ValueError("load balancer needs at least one backend")

    def _buckets(self) -> list[Bucket]:
        return [
            Bucket(
                weight=backend.weight,
                actions=[
                    SetFieldAction(field="eth_dst", value=int(backend.mac)),
                    SetFieldAction(field="ipv4_dst", value=int(backend.ip)),
                    OutputAction(port=backend.port),
                ],
            )
            for backend in self.backends
        ]

    def on_switch_ready(self, datapath: Datapath) -> None:
        datapath.group_add(self.group_id, self._buckets(), group_type=OFPGT_SELECT)
        # Client -> VIP: hand to the select group.
        from repro.openflow.actions import GroupAction

        datapath.flow_add(
            match=Match(eth_type=0x0800, ipv4_dst=int(self.vip)),
            actions=[GroupAction(group_id=self.group_id)],
            priority=self.priority,
        )
        # Backend -> client: rewrite the source back to the VIP.
        for backend in self.backends:
            datapath.flow_add(
                match=Match(
                    eth_type=0x0800,
                    in_port=backend.port,
                    ipv4_src=int(backend.ip),
                ),
                instructions=None,
                actions=[
                    SetFieldAction(field="ipv4_src", value=int(self.vip)),
                    SetFieldAction(field="eth_src", value=int(self.vip_mac)),
                    OutputAction(port=0xFFFFFFFB),  # FLOOD; refined by L2 app flows
                ],
                priority=self.priority,
            )

    def set_backends(self, datapath: Datapath, backends: list[Backend]) -> None:
        """Re-weight / replace the backend pool on the fly."""
        self.backends = list(backends)
        datapath.group_modify(self.group_id, self._buckets(), group_type=OFPGT_SELECT)
