"""Reactive L2 learning switch — the canonical OpenFlow program."""

from __future__ import annotations

from repro.net.addresses import MACAddress
from repro.net.ethernet import EthernetFrame
from repro.openflow.actions import OutputAction
from repro.openflow.consts import OFPP_CONTROLLER
from repro.openflow.match import Match
from repro.openflow.messages import PacketIn
from repro.controller.app import ControllerApp
from repro.controller.core import Datapath


class LearningSwitchApp(ControllerApp):
    """Learns source MACs from packet-ins and installs forward flows.

    Table-miss sends packets to the controller; once both directions of
    a conversation are learned, traffic is fully handled in the data
    plane (two installed flows per MAC pair, like Ryu's simple_switch).
    """

    name = "learning-switch"

    def __init__(self, flow_priority: int = 10, idle_timeout: int = 0) -> None:
        super().__init__()
        self.flow_priority = flow_priority
        self.idle_timeout = idle_timeout
        #: dpid -> mac -> port
        self.tables: dict[int, dict[MACAddress, int]] = {}
        self.packet_ins_handled = 0
        self.flows_installed = 0

    def on_switch_ready(self, datapath: Datapath) -> None:
        # Table-miss: everything to the controller.
        datapath.flow_add(
            match=Match(),
            actions=[OutputAction(port=OFPP_CONTROLLER)],
            priority=0,
        )

    def on_packet_in(self, datapath: Datapath, message: PacketIn) -> bool:
        if message.in_port is None or datapath.dpid is None:
            return False
        self.packet_ins_handled += 1
        frame = EthernetFrame.from_bytes(message.data)
        table = self.tables.setdefault(datapath.dpid, {})
        if frame.src.is_unicast:
            table[frame.src] = message.in_port

        out_port = table.get(frame.dst)
        if out_port is not None and frame.dst.is_unicast:
            # Install the forward flow and release the packet to it.
            datapath.flow_add(
                match=Match(eth_dst=int(frame.dst)),
                actions=[OutputAction(port=out_port)],
                priority=self.flow_priority,
                idle_timeout=self.idle_timeout,
            )
            self.flows_installed += 1
            datapath.packet_out(
                message.data, [OutputAction(port=out_port)], in_port=message.in_port
            )
        else:
            datapath.flood(message.data, in_port=message.in_port)
        return True
