"""Use case (c): parental control — per-user web-site blocking, on the fly.

Two cooperating enforcement points, both pure OpenFlow:

* **DNS interception**: UDP/53 queries are escalated to the controller;
  a query from a restricted user for a blocked name is answered with
  REFUSED directly from the controller (packet-out), so the site never
  resolves.
* **IP blocking**: if the blocked site's address is already known (or
  learned from DNS answers flowing past), a drop flow for
  (user IP -> site IP) is installed so cached resolutions do not bypass
  the filter.

``block``/``unblock`` work mid-traffic — the paper demos denying
"specific users access to certain web pages on-the-fly".
"""

from __future__ import annotations

from repro.net.addresses import IPv4Address
from repro.net.build import parse_udp
from repro.net.dns import DNS_RCODE_REFUSED, DnsMessage
from repro.net.errors import PacketDecodeError
from repro.net.ethernet import EthernetFrame
from repro.net.ipv4 import IPPROTO_UDP, IPv4Packet
from repro.net.udp import UdpDatagram
from repro.openflow.actions import OutputAction
from repro.openflow.consts import OFPP_CONTROLLER
from repro.openflow.match import Match
from repro.openflow.messages import PacketIn
from repro.controller.app import ControllerApp
from repro.controller.core import Datapath


class ParentalControlApp(ControllerApp):
    """Per-user (source IP) web filtering."""

    name = "parental-control"

    def __init__(self, dns_priority: int = 300, drop_priority: int = 290) -> None:
        super().__init__()
        #: user IP -> set of blocked host names.
        self.blocked_names: dict[IPv4Address, set[str]] = {}
        #: host name -> last A-record seen (learned from passing answers).
        self.name_to_ip: dict[str, IPv4Address] = {}
        self.dns_priority = dns_priority
        self.drop_priority = drop_priority
        self.queries_refused = 0
        self.queries_passed = 0
        self._datapaths: list[Datapath] = []

    def on_switch_ready(self, datapath: Datapath) -> None:
        self._datapaths.append(datapath)
        # All DNS through the controller (both directions).
        datapath.flow_add(
            match=Match(eth_type=0x0800, ip_proto=17, udp_dst=53),
            actions=[OutputAction(port=OFPP_CONTROLLER)],
            priority=self.dns_priority,
        )
        datapath.flow_add(
            match=Match(eth_type=0x0800, ip_proto=17, udp_src=53),
            actions=[OutputAction(port=OFPP_CONTROLLER)],
            priority=self.dns_priority,
        )

    # ------------------------------------------------------------ policy

    def block(self, user_ip: IPv4Address, name: str) -> None:
        """Deny *user_ip* access to *name*, effective immediately."""
        user_ip = IPv4Address(user_ip)
        self.blocked_names.setdefault(user_ip, set()).add(name.lower())
        site_ip = self.name_to_ip.get(name.lower())
        if site_ip is not None:
            self._install_drop(user_ip, site_ip)

    def unblock(self, user_ip: IPv4Address, name: str) -> None:
        """Lift the ban, removing any installed drop flows."""
        user_ip = IPv4Address(user_ip)
        self.blocked_names.get(user_ip, set()).discard(name.lower())
        site_ip = self.name_to_ip.get(name.lower())
        if site_ip is not None:
            for datapath in self._datapaths:
                datapath.flow_delete(
                    Match(
                        eth_type=0x0800,
                        ipv4_src=int(user_ip),
                        ipv4_dst=int(site_ip),
                    )
                )

    def is_blocked(self, user_ip: IPv4Address, name: str) -> bool:
        return name.lower() in self.blocked_names.get(IPv4Address(user_ip), set())

    def _install_drop(self, user_ip: IPv4Address, site_ip: IPv4Address) -> None:
        for datapath in self._datapaths:
            datapath.flow_add(
                match=Match(
                    eth_type=0x0800,
                    ipv4_src=int(user_ip),
                    ipv4_dst=int(site_ip),
                ),
                actions=[],  # drop
                priority=self.drop_priority,
            )

    # ------------------------------------------------------- packet path

    def on_packet_in(self, datapath: Datapath, message: PacketIn) -> bool:
        if message.in_port is None:
            return False
        frame = EthernetFrame.from_bytes(message.data)
        try:
            parsed = parse_udp(frame)
        except PacketDecodeError:
            return False
        if parsed is None:
            return False
        packet, datagram = parsed
        if datagram.dst_port == 53:
            return self._handle_query(datapath, message, frame, packet, datagram)
        if datagram.src_port == 53:
            return self._handle_answer(datapath, message, frame, packet, datagram)
        return False

    def _handle_query(
        self,
        datapath: Datapath,
        message: PacketIn,
        frame: EthernetFrame,
        packet: IPv4Packet,
        datagram: UdpDatagram,
    ) -> bool:
        try:
            query = DnsMessage.from_bytes(datagram.payload)
        except PacketDecodeError:
            return False
        blocked = {
            question.name.lower()
            for question in query.questions
            if self.is_blocked(packet.src, question.name)
        }
        if not blocked:
            self.queries_passed += 1
            datapath.flood(message.data, in_port=message.in_port)
            return True
        # Refuse, impersonating the resolver.
        self.queries_refused += 1
        refusal = query.make_response(rcode=DNS_RCODE_REFUSED)
        reply_udp = UdpDatagram(
            src_port=53, dst_port=datagram.src_port, payload=refusal.to_bytes()
        )
        reply_ip = IPv4Packet(
            src=packet.dst,
            dst=packet.src,
            protocol=IPPROTO_UDP,
            payload=reply_udp.to_bytes(packet.dst, packet.src),
        )
        reply_frame = EthernetFrame(
            dst=frame.src,
            src=frame.dst,
            ethertype=0x0800,
            payload=reply_ip.to_bytes(),
        )
        datapath.packet_out(
            reply_frame.to_bytes(), [OutputAction(port=message.in_port)]
        )
        return True

    def _handle_answer(
        self,
        datapath: Datapath,
        message: PacketIn,
        frame: EthernetFrame,
        packet: IPv4Packet,
        datagram: UdpDatagram,
    ) -> bool:
        try:
            answer = DnsMessage.from_bytes(datagram.payload)
        except PacketDecodeError:
            return False
        # Learn name -> IP so later block() calls can drop at L3 too.
        for record in answer.answers:
            if record.rtype == 1 and len(record.rdata) == 4:
                self.name_to_ip[record.name.lower()] = record.address
                for user_ip, names in self.blocked_names.items():
                    if record.name.lower() in names:
                        self._install_drop(user_ip, record.address)
        datapath.flood(message.data, in_port=message.in_port)
        return True
