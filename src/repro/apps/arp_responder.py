"""Proxy-ARP responder: answers ARP requests from a static table.

Used by the load-balancer scenario so clients can resolve the VIP
without any backend owning it.
"""

from __future__ import annotations

from repro.net.addresses import IPv4Address, MACAddress
from repro.net.arp import ARP_OP_REQUEST
from repro.net.build import arp_frame, parse_arp
from repro.net.ethernet import EthernetFrame
from repro.openflow.actions import OutputAction
from repro.openflow.messages import PacketIn
from repro.controller.app import ControllerApp
from repro.controller.core import Datapath


class ArpResponderApp(ControllerApp):
    """Answers who-has for the IPs it owns; lets other ARP pass."""

    name = "arp-responder"

    def __init__(self, bindings: "dict[IPv4Address, MACAddress] | None" = None) -> None:
        super().__init__()
        self.bindings: dict[IPv4Address, MACAddress] = {
            IPv4Address(ip): MACAddress(mac)
            for ip, mac in (bindings or {}).items()
        }
        self.replies_sent = 0

    def add_binding(self, ip: IPv4Address, mac: MACAddress) -> None:
        self.bindings[IPv4Address(ip)] = MACAddress(mac)

    def on_packet_in(self, datapath: Datapath, message: PacketIn) -> bool:
        if message.in_port is None:
            return False
        frame = EthernetFrame.from_bytes(message.data)
        arp = parse_arp(frame)
        if arp is None or arp.opcode != ARP_OP_REQUEST:
            return False
        owned_mac = self.bindings.get(arp.target_ip)
        if owned_mac is None:
            return False
        reply = arp.make_reply(owned_mac)
        datapath.packet_out(
            arp_frame(reply, src_mac=owned_mac).to_bytes(),
            [OutputAction(port=message.in_port)],
        )
        self.replies_sent += 1
        return True
