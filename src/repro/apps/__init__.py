"""Controller applications.

The three use cases the paper demos (load balancer, DMZ, parental
control) plus the L2 plumbing they ride on (learning switch, ARP
responder).  All of them are ordinary OpenFlow programs: because the
HARMLESS translator hides the VLAN mapping, the very same apps run
unmodified against an ideal OpenFlow switch or a HARMLESS-migrated
legacy switch — the property the transparency benchmark checks.
"""

from repro.apps.arp_responder import ArpResponderApp
from repro.apps.dmz import DmzPolicyApp, Vm
from repro.apps.learning_switch import LearningSwitchApp
from repro.apps.load_balancer import Backend, LoadBalancerApp
from repro.apps.parental_control import ParentalControlApp

__all__ = [
    "LearningSwitchApp",
    "ArpResponderApp",
    "LoadBalancerApp",
    "Backend",
    "DmzPolicyApp",
    "Vm",
    "ParentalControlApp",
]
