"""Use case (b): DMZ — VM-level access policies in a multi-tenant cloud.

A default-deny policy with an explicit allow matrix: only VM pairs that
appear in ``allowed_pairs`` may exchange traffic (the paper's example:
Host 1 and Host 2 "permitted to exchange traffic only with each
other").  Policy is installed proactively: allow flows at high
priority, ARP restricted to the same pairs, and a priority-0 drop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addresses import IPv4Address, MACAddress
from repro.openflow.actions import OutputAction
from repro.openflow.match import Match
from repro.controller.app import ControllerApp
from repro.controller.core import Datapath


@dataclass(frozen=True)
class Vm:
    """One tenant VM attached to a switch port."""

    name: str
    ip: IPv4Address
    mac: MACAddress
    port: int


class DmzPolicyApp(ControllerApp):
    """Default-deny pairwise connectivity policy."""

    name = "dmz-policy"

    def __init__(
        self,
        vms: list[Vm],
        allowed_pairs: "set[tuple[str, str]]",
        priority: int = 200,
    ) -> None:
        super().__init__()
        self.vms = {vm.name: vm for vm in vms}
        if len(self.vms) != len(vms):
            raise ValueError("duplicate VM names")
        self.allowed_pairs = {self._norm(a, b) for a, b in allowed_pairs}
        for a, b in self.allowed_pairs:
            if a not in self.vms or b not in self.vms:
                raise ValueError(f"allowed pair references unknown VM: {(a, b)}")
        self.priority = priority
        self._installed_datapaths: list[Datapath] = []

    @staticmethod
    def _norm(a: str, b: str) -> tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def is_allowed(self, name_a: str, name_b: str) -> bool:
        return self._norm(name_a, name_b) in self.allowed_pairs

    def on_switch_ready(self, datapath: Datapath) -> None:
        self._installed_datapaths.append(datapath)
        # Explicit default deny (also documents intent in the flow dump).
        datapath.flow_add(match=Match(), actions=[], priority=0)
        for a, b in sorted(self.allowed_pairs):
            self._install_pair(datapath, self.vms[a], self.vms[b])

    def _install_pair(self, datapath: Datapath, vm_a: Vm, vm_b: Vm) -> None:
        for src, dst in ((vm_a, vm_b), (vm_b, vm_a)):
            # IPv4 both ways.
            datapath.flow_add(
                match=Match(
                    eth_type=0x0800,
                    ipv4_src=int(src.ip),
                    ipv4_dst=int(dst.ip),
                ),
                actions=[OutputAction(port=dst.port)],
                priority=self.priority,
            )
            # ARP between the pair (request broadcast + unicast reply).
            datapath.flow_add(
                match=Match(
                    eth_type=0x0806,
                    in_port=src.port,
                    eth_src=int(src.mac),
                ),
                actions=[OutputAction(port=dst.port)],
                priority=self.priority,
            )

    def allow(self, datapath: Datapath, name_a: str, name_b: str) -> None:
        """Grant a pair connectivity at runtime (fine-tuning the policy)."""
        pair = self._norm(name_a, name_b)
        if pair in self.allowed_pairs:
            return
        self.allowed_pairs.add(pair)
        self._install_pair(datapath, self.vms[pair[0]], self.vms[pair[1]])

    def revoke(self, datapath: Datapath, name_a: str, name_b: str) -> None:
        """Remove a pair's connectivity at runtime."""
        pair = self._norm(name_a, name_b)
        if pair not in self.allowed_pairs:
            return
        self.allowed_pairs.discard(pair)
        vm_a, vm_b = self.vms[pair[0]], self.vms[pair[1]]
        for src, dst in ((vm_a, vm_b), (vm_b, vm_a)):
            datapath.flow_delete(
                Match(
                    eth_type=0x0800,
                    ipv4_src=int(src.ip),
                    ipv4_dst=int(dst.ip),
                )
            )
            datapath.flow_delete(
                Match(eth_type=0x0806, in_port=src.port, eth_src=int(src.mac))
            )
