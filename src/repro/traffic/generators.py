"""Flow populations and arrival processes for the benchmarks.

Everything takes an explicit ``random.Random`` or seed so a benchmark
row is exactly reproducible — the NFPA methodology the paper's authors
use for software-switch measurement.

Besides per-frame schedules (:func:`cbr_schedule`,
:func:`poisson_schedule`), the module generates **bursts** — real
softswitches only reach line rate by amortising per-packet overhead
over batches (DPDK/OVS batch receive), and the simulated pipeline
mirrors that: :func:`burst_schedule` spaces whole bursts instead of
single frames, :func:`interleave_bursts` fills them with frames from a
weighted flow mix (reusing one template frame per flow, which the batch
datapath decodes once per burst), and :class:`BurstSource` plays the
result onto a port with one coalesced link event per burst.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

from repro.net.addresses import BROADCAST_MAC, IPv4Address, MACAddress
from repro.net.build import udp_frame
from repro.net.ethernet import EthernetFrame
from repro.netsim.node import Node, Port


@dataclass(frozen=True)
class FlowSpec:
    """One synthetic flow (constant 5-tuple)."""

    src_mac: MACAddress
    dst_mac: MACAddress
    src_ip: IPv4Address
    dst_ip: IPv4Address
    src_port: int
    dst_port: int

    def frame(self, payload_len: int = 64, vlan_id: "int | None" = None) -> EthernetFrame:
        return synth_frame(self, payload_len=payload_len, vlan_id=vlan_id)


def make_flow_population(
    count: int,
    seed: int = 0,
    src_net: str = "10.1.0.0",
    dst_net: str = "10.2.0.0",
    dst_port: "int | None" = None,
) -> list[FlowSpec]:
    """*count* distinct flows with randomised addresses."""
    rng = random.Random(seed)
    flows = []
    seen = set()
    base_src = int(IPv4Address(src_net))
    base_dst = int(IPv4Address(dst_net))
    while len(flows) < count:
        spec = FlowSpec(
            src_mac=MACAddress(0x02_0A_00_000000 + rng.randrange(1 << 24)),
            dst_mac=MACAddress(0x02_0B_00_000000 + rng.randrange(1 << 24)),
            src_ip=IPv4Address(base_src + rng.randrange(1 << 16)),
            dst_ip=IPv4Address(base_dst + rng.randrange(1 << 16)),
            src_port=rng.randrange(1024, 65536),
            dst_port=dst_port if dst_port is not None else rng.randrange(1, 1024),
        )
        key = (spec.src_ip, spec.dst_ip, spec.src_port, spec.dst_port)
        if key in seen:
            continue
        seen.add(key)
        flows.append(spec)
    return flows


def zipf_weights(count: int, skew: float = 1.0) -> list[float]:
    """Zipfian popularity weights (rank 1 most popular), normalised."""
    if count < 1:
        raise ValueError("need at least one flow")
    raw = [1.0 / (rank**skew) for rank in range(1, count + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def synth_frame(
    spec: FlowSpec, payload_len: int = 64, vlan_id: "int | None" = None
) -> EthernetFrame:
    """A UDP frame for *spec* padded to *payload_len* UDP-payload bytes."""
    return udp_frame(
        spec.src_mac,
        spec.dst_mac,
        spec.src_ip,
        spec.dst_ip,
        spec.src_port,
        spec.dst_port,
        payload=b"\x00" * payload_len,
        vlan_id=vlan_id,
    )


def cbr_schedule(rate_pps: float, duration_s: float, start_s: float = 0.0) -> list[float]:
    """Constant-bit-rate send times."""
    if rate_pps <= 0:
        raise ValueError("rate must be positive")
    interval = 1.0 / rate_pps
    count = int(duration_s * rate_pps)
    return [start_s + index * interval for index in range(count)]


def poisson_schedule(
    rate_pps: float, duration_s: float, seed: int = 0, start_s: float = 0.0
) -> list[float]:
    """Poisson-arrival send times (exponential gaps)."""
    if rate_pps <= 0:
        raise ValueError("rate must be positive")
    rng = random.Random(seed)
    times = []
    clock = start_s
    while True:
        clock += rng.expovariate(rate_pps)
        if clock >= start_s + duration_s:
            break
        times.append(clock)
    return times


def burst_schedule(
    rate_pps: float,
    duration_s: float,
    burst_size: int,
    start_s: float = 0.0,
) -> "list[tuple[float, int]]":
    """CBR traffic emitted in bursts: ``(start_time, frame_count)`` pairs.

    The aggregate rate matches :func:`cbr_schedule` — the same
    ``int(duration * rate)`` frames — but frames leave in bursts of
    *burst_size* spaced ``burst_size / rate`` apart (the final burst
    may be partial).  ``burst_size=1`` degenerates to per-frame CBR.
    """
    if rate_pps <= 0:
        raise ValueError("rate must be positive")
    if burst_size < 1:
        raise ValueError("burst size must be at least 1")
    total = int(duration_s * rate_pps)
    interval = burst_size / rate_pps
    schedule = []
    index = 0
    while total > 0:
        count = min(burst_size, total)
        schedule.append((start_s + index * interval, count))
        total -= count
        index += 1
    return schedule


def interleave_bursts(
    flows: "list[FlowSpec]",
    schedule: "list[tuple[float, int]]",
    seed: int = 0,
    weights: "list[float] | None" = None,
    payload_len: int = 64,
    vlan_id: "int | None" = None,
    train_len: int = 1,
) -> "list[tuple[float, list[EthernetFrame]]]":
    """Fill *schedule*'s bursts with frames from a weighted flow mix.

    Each burst interleaves frames drawn from *flows* (by *weights*,
    e.g. :func:`zipf_weights`; uniform when omitted), so one burst
    carries repeated flow keys the way aggregated access traffic does —
    exactly what the batch datapath's per-key grouping amortises.
    ``train_len > 1`` makes every draw contribute a *train* of up to
    that many back-to-back frames from one flow (the TCP-window/GSO
    shape real captures show), raising within-burst flow locality.
    One template frame is built per flow and reused for all its packets
    (frames are immutable on the wire; the pipeline transforms copies),
    which also lets the datapath decode each template once per burst.
    """
    if not flows:
        raise ValueError("need at least one flow")
    if weights is not None and len(weights) != len(flows):
        raise ValueError("weights must align with flows")
    if train_len < 1:
        raise ValueError("train length must be at least 1")
    rng = random.Random(seed)
    templates = [
        synth_frame(flow, payload_len=payload_len, vlan_id=vlan_id)
        for flow in flows
    ]
    indices = range(len(flows))
    # choices() rebuilds the cumulative distribution on every call;
    # precompute it once so per-train draws stay O(log flows).
    cum_weights = (
        None if weights is None else list(itertools.accumulate(weights))
    )
    bursts = []
    for start, count in schedule:
        if train_len == 1:
            picks = rng.choices(indices, cum_weights=cum_weights, k=count)
            frames = [templates[index] for index in picks]
        else:
            frames = []
            while len(frames) < count:
                (index,) = rng.choices(indices, cum_weights=cum_weights)
                run = min(rng.randint(1, train_len), count - len(frames))
                frames.extend([templates[index]] * run)
        bursts.append((start, frames))
    return bursts


#: Source MAC a broadcast storm claims unless the caller picks one
#: (locally administered, so it never collides with host/station MACs).
STORM_SRC_MAC = MACAddress(0x02_BA_D0_00_00_01)


def storm_frames(
    count: int,
    src_mac: "MACAddress | None" = None,
    vlan_id: "int | None" = None,
    payload_len: int = 32,
) -> "list[EthernetFrame]":
    """*count* copies of one broadcast frame — a looped or babbling source.

    A real broadcast storm replicates the *same* frame (a loop replays
    it, a babbling NIC repeats it), so a single template is reused for
    the whole train; anything metering the storm sees *count* identical
    flood-class arrivals.
    """
    if count < 1:
        raise ValueError("storm needs at least one frame")
    template = udp_frame(
        src_mac if src_mac is not None else STORM_SRC_MAC,
        BROADCAST_MAC,
        IPv4Address("10.255.0.1"),
        IPv4Address("10.255.255.255"),
        68,
        67,
        payload=b"\x00" * payload_len,
        vlan_id=vlan_id,
    )
    return [template] * count


def mac_churn_bursts(
    schedule: "list[tuple[float, int]]",
    seed: int = 0,
    dst_mac: "MACAddress | None" = None,
    vlan_id: "int | None" = None,
    payload_len: int = 32,
) -> "list[tuple[float, list[EthernetFrame]]]":
    """Fill *schedule*'s bursts with frames from ever-changing source MACs.

    Every frame carries a **distinct** randomised source MAC (collisions
    are re-drawn), so a train of *n* frames forces *n* FDB learns — the
    MAC-churn pressure a scanning worm or an L2 loop with diverse
    traffic puts on the CAM.  The destination defaults to a fixed
    never-learned unicast MAC, so every frame is also an unknown-unicast
    flood; pass a learned *dst_mac* to exercise pure learning pressure
    instead.
    """
    rng = random.Random(seed)
    dst = dst_mac if dst_mac is not None else MACAddress(0x02_DE_AD_00_00_01)
    seen: "set[int]" = set()
    bursts = []
    for start, count in schedule:
        frames = []
        for _ in range(count):
            while True:
                low = rng.randrange(1 << 32)
                if low not in seen:
                    seen.add(low)
                    break
            frames.append(
                udp_frame(
                    MACAddress(0x02_C4_00_00_00_00 | low),
                    dst,
                    IPv4Address("10.254.0.1"),
                    IPv4Address("10.254.0.2"),
                    1024,
                    1024,
                    payload=b"\x00" * payload_len,
                    vlan_id=vlan_id,
                )
            )
        bursts.append((start, frames))
    return bursts


def station_mac(pod: int, station: int = 0) -> MACAddress:
    """The MAC a fabric traffic station in *pod* claims for its flows."""
    if not 0 <= pod < 256 or not 0 <= station < 256:
        raise ValueError("pod and station indices must fit one byte")
    return MACAddress(0x02_F0_00_00_00_00 | (pod << 8) | station)


def _station_net(pod: int) -> str:
    """First two octets of a pod station's flow-IP block.

    Historically ``10.{100 + pod}``; the carry folds into the first
    octet so pods >= 156 stay representable while every pod below
    that keeps its exact historical prefix.
    """
    hi, lo = divmod(100 + pod, 256)
    return f"{10 + hi}.{lo}"


@dataclass(frozen=True)
class CrossPodFlow:
    """One fabric flow: a 5-tuple travelling between two pods."""

    src_pod: int
    dst_pod: int
    spec: FlowSpec


def cross_pod_flows(
    pods: int, per_pair: int = 1, seed: int = 0,
    peers_per_pod: "int | None" = None,
) -> "list[CrossPodFlow]":
    """Flows between every ordered pod pair of a fabric.

    Each of the ``pods * (pods - 1)`` ordered pairs gets *per_pair*
    flows whose endpoints are the pods' traffic stations
    (:func:`station_mac`) and whose IPs/L4 ports make every 5-tuple
    distinct — so a multi-hop fabric bench exercises many microflow
    keys per hop while the learning switch only installs one rule per
    destination MAC.  Frames for a flow enter the fabric at the
    station of ``src_pod`` and must be delivered to the station of
    ``dst_pod``.

    *peers_per_pod* caps each source pod at that many destination pods
    (evenly strided around the pod ring) instead of all ``pods - 1`` —
    at 64+ pods the all-pairs flow count is quadratic, far more than a
    sharded fabric bench needs to saturate every trunk.  ``None`` keeps
    the historical all-pairs behaviour (and its exact RNG sequence).
    """
    if pods < 2:
        raise ValueError("cross-pod traffic needs at least two pods")
    if per_pair < 1:
        raise ValueError("per_pair must be at least 1")
    if peers_per_pod is not None and not 1 <= peers_per_pod <= pods - 1:
        raise ValueError("peers_per_pod must be in [1, pods - 1]")
    rng = random.Random(seed)
    allowed: "dict[int, set[int]] | None" = None
    if peers_per_pod is not None:
        stride = (pods - 1) / peers_per_pod
        allowed = {
            src: {
                (src + 1 + int(index * stride)) % pods
                for index in range(peers_per_pod)
            }
            for src in range(pods)
        }
    flows = []
    for src_pod in range(pods):
        for dst_pod in range(pods):
            if src_pod == dst_pod:
                continue
            if allowed is not None and dst_pod not in allowed[src_pod]:
                continue
            for index in range(per_pair):
                flows.append(
                    CrossPodFlow(
                        src_pod=src_pod,
                        dst_pod=dst_pod,
                        spec=FlowSpec(
                            src_mac=station_mac(src_pod),
                            dst_mac=station_mac(dst_pod),
                            src_ip=IPv4Address(
                                f"{_station_net(src_pod)}.{dst_pod}.{index + 1}"
                            ),
                            dst_ip=IPv4Address(
                                f"{_station_net(dst_pod)}.{src_pod}.{index + 1}"
                            ),
                            src_port=rng.randrange(1024, 65536),
                            dst_port=rng.randrange(1, 1024),
                        ),
                    )
                )
    return flows


def announcement_frame(spec: FlowSpec, payload_len: int = 32) -> EthernetFrame:
    """A broadcast frame *from the flow's destination* station.

    Played into the fabric at the destination pod before measurement,
    it floods everywhere and lets every learning switch on the way
    learn ``spec.dst_mac``'s location — the warm-up that turns the
    first measured frame of each flow into a data-plane hit instead of
    a packet-in.
    """
    return udp_frame(
        spec.dst_mac,
        BROADCAST_MAC,
        spec.dst_ip,
        spec.src_ip,
        spec.dst_port,
        spec.src_port,
        payload=b"\x00" * payload_len,
    )


class BurstSource(Node):
    """A traffic-generator node that plays bursts onto its port.

    Wire it to a device under test, hand it ``(time, frames)`` bursts
    (from :func:`interleave_bursts`), and :meth:`start` schedules one
    simulator event per burst (via ``Simulator.schedule_many``); each
    firing pushes the whole burst through ``Port.send_burst``, so the
    frames ride one coalesced link event to the far end.  Received
    frames are counted and dropped (a generator is not a sink).
    """

    def __init__(self, sim, name: str) -> None:
        super().__init__(sim, name)
        self.sent = 0
        self.rx_count = 0

    @property
    def port0(self) -> Port:
        if not self.ports:
            self.add_port()
        return self.ports[min(self.ports)]

    def start(
        self, bursts: "list[tuple[float, list[EthernetFrame]]]"
    ) -> None:
        """Schedule every burst for transmission at its start time."""
        port = self.port0

        def fire(frames: "list[EthernetFrame]") -> None:
            self.sent += port.send_burst(frames)

        self.sim.schedule_many(
            (start, (lambda f=frames: fire(f))) for start, frames in bursts
        )

    def receive(self, port: Port, frame: EthernetFrame) -> None:
        self.rx_count += 1
