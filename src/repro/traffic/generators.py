"""Flow populations and arrival processes for the benchmarks.

Everything takes an explicit ``random.Random`` or seed so a benchmark
row is exactly reproducible — the NFPA methodology the paper's authors
use for software-switch measurement.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.net.addresses import IPv4Address, MACAddress
from repro.net.build import udp_frame
from repro.net.ethernet import EthernetFrame


@dataclass(frozen=True)
class FlowSpec:
    """One synthetic flow (constant 5-tuple)."""

    src_mac: MACAddress
    dst_mac: MACAddress
    src_ip: IPv4Address
    dst_ip: IPv4Address
    src_port: int
    dst_port: int

    def frame(self, payload_len: int = 64, vlan_id: "int | None" = None) -> EthernetFrame:
        return synth_frame(self, payload_len=payload_len, vlan_id=vlan_id)


def make_flow_population(
    count: int,
    seed: int = 0,
    src_net: str = "10.1.0.0",
    dst_net: str = "10.2.0.0",
    dst_port: "int | None" = None,
) -> list[FlowSpec]:
    """*count* distinct flows with randomised addresses."""
    rng = random.Random(seed)
    flows = []
    seen = set()
    base_src = int(IPv4Address(src_net))
    base_dst = int(IPv4Address(dst_net))
    while len(flows) < count:
        spec = FlowSpec(
            src_mac=MACAddress(0x02_0A_00_000000 + rng.randrange(1 << 24)),
            dst_mac=MACAddress(0x02_0B_00_000000 + rng.randrange(1 << 24)),
            src_ip=IPv4Address(base_src + rng.randrange(1 << 16)),
            dst_ip=IPv4Address(base_dst + rng.randrange(1 << 16)),
            src_port=rng.randrange(1024, 65536),
            dst_port=dst_port if dst_port is not None else rng.randrange(1, 1024),
        )
        key = (spec.src_ip, spec.dst_ip, spec.src_port, spec.dst_port)
        if key in seen:
            continue
        seen.add(key)
        flows.append(spec)
    return flows


def zipf_weights(count: int, skew: float = 1.0) -> list[float]:
    """Zipfian popularity weights (rank 1 most popular), normalised."""
    if count < 1:
        raise ValueError("need at least one flow")
    raw = [1.0 / (rank**skew) for rank in range(1, count + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def synth_frame(
    spec: FlowSpec, payload_len: int = 64, vlan_id: "int | None" = None
) -> EthernetFrame:
    """A UDP frame for *spec* padded to *payload_len* UDP-payload bytes."""
    return udp_frame(
        spec.src_mac,
        spec.dst_mac,
        spec.src_ip,
        spec.dst_ip,
        spec.src_port,
        spec.dst_port,
        payload=b"\x00" * payload_len,
        vlan_id=vlan_id,
    )


def cbr_schedule(rate_pps: float, duration_s: float, start_s: float = 0.0) -> list[float]:
    """Constant-bit-rate send times."""
    if rate_pps <= 0:
        raise ValueError("rate must be positive")
    interval = 1.0 / rate_pps
    count = int(duration_s * rate_pps)
    return [start_s + index * interval for index in range(count)]


def poisson_schedule(
    rate_pps: float, duration_s: float, seed: int = 0, start_s: float = 0.0
) -> list[float]:
    """Poisson-arrival send times (exponential gaps)."""
    if rate_pps <= 0:
        raise ValueError("rate must be positive")
    rng = random.Random(seed)
    times = []
    clock = start_s
    while True:
        clock += rng.expovariate(rate_pps)
        if clock >= start_s + duration_s:
            break
        times.append(clock)
    return times
