"""Synthetic workload generation (seeded, reproducible)."""

from repro.traffic.generators import (
    BurstSource,
    FlowSpec,
    burst_schedule,
    cbr_schedule,
    interleave_bursts,
    make_flow_population,
    poisson_schedule,
    synth_frame,
    zipf_weights,
)

__all__ = [
    "FlowSpec",
    "make_flow_population",
    "zipf_weights",
    "synth_frame",
    "cbr_schedule",
    "poisson_schedule",
    "burst_schedule",
    "interleave_bursts",
    "BurstSource",
]
