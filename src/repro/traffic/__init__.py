"""Synthetic workload generation (seeded, reproducible)."""

from repro.traffic.generators import (
    BurstSource,
    CrossPodFlow,
    FlowSpec,
    announcement_frame,
    burst_schedule,
    cbr_schedule,
    cross_pod_flows,
    interleave_bursts,
    make_flow_population,
    poisson_schedule,
    station_mac,
    synth_frame,
    zipf_weights,
)

__all__ = [
    "FlowSpec",
    "make_flow_population",
    "zipf_weights",
    "synth_frame",
    "cbr_schedule",
    "poisson_schedule",
    "burst_schedule",
    "interleave_bursts",
    "BurstSource",
    "CrossPodFlow",
    "cross_pod_flows",
    "station_mac",
    "announcement_frame",
]
