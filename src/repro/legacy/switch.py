"""The legacy switch data plane.

Faithful 802.1Q bridging:

* ingress classification (access PVID / trunk tag / native VLAN),
* ingress filtering (frames in VLANs a port does not carry are dropped),
* source learning into the per-VLAN FDB,
* known-unicast forwarding, unknown-unicast/broadcast/multicast flooding
  within the VLAN,
* egress tagging rules (access and native egress untagged, trunk
  tagged).

This is exactly the machinery HARMLESS exploits: putting each access
port in its own VLAN makes the trunk carry a per-port tag, and the FDB
does the hairpin turn on the way back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.ethernet import EthernetFrame
from repro.netsim.node import Node, Port
from repro.netsim.simulator import Simulator
from repro.legacy.config import PortMode, RunningConfig
from repro.legacy.fdb import ForwardingDatabase
from repro.legacy.stp import STP_ETHERTYPE, STP_MULTICAST, PortState

#: Store-and-forward lookup latency of typical GbE merchant silicon.
DEFAULT_PROCESSING_DELAY_S = 4e-6


@dataclass
class SwitchCounters:
    """Aggregate data-plane counters (exported via SNMP)."""

    rx_frames: int = 0
    tx_frames: int = 0
    flooded: int = 0
    filtered_ingress: int = 0
    dropped_no_ports: int = 0
    #: Flood-class frames dropped by storm control (see
    #: :mod:`repro.legacy.stormcontrol`); 0 unless a meter is armed.
    storm_suppressed: int = 0
    per_port_rx: dict[int, int] = field(default_factory=dict)
    per_port_tx: dict[int, int] = field(default_factory=dict)


class LegacySwitch(Node):
    """A legacy managed Ethernet switch.

    Ports must be created with :meth:`add_port` before use; their VLAN
    behaviour is controlled entirely by the :class:`RunningConfig`,
    which the management plane (SNMP/driver) edits at runtime — just
    like reconfiguring a real switch while traffic flows.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        num_ports: int = 24,
        fdb_capacity: int = 8192,
        processing_delay_s: float = DEFAULT_PROCESSING_DELAY_S,
    ) -> None:
        super().__init__(sim, name)
        self.config = RunningConfig(hostname=name)
        self.fdb = ForwardingDatabase(capacity=fdb_capacity, aging_s=self.config.fdb_aging_s)
        self.processing_delay_s = processing_delay_s
        self.counters = SwitchCounters()
        #: Attached spanning-tree instance (see :mod:`repro.legacy.stp`);
        #: None means no STP — the dataplane forwards unconditionally.
        self.stp = None
        #: Optional per-ingress-port flood meter (see
        #: :mod:`repro.legacy.stormcontrol`); None — the default — keeps
        #: the flood path bit-identical to a switch without the feature.
        self.storm_control = None
        #: False while crashed (see :meth:`power_off`): the dataplane
        #: drops everything and the control plane is frozen.
        self.running = True
        #: When a burst is in flight, egress frames collect here (per
        #: output port, in forwarding order) instead of being sent one
        #: link event each; see :meth:`receive_burst`.
        self._egress_buffer: "dict[int, list[EthernetFrame]] | None" = None
        for number in range(1, num_ports + 1):
            self.add_port(number)
            self.config.port(number)  # default access port in VLAN 1

    # ------------------------------------------------------------ ingress

    def receive(self, port: Port, frame: EthernetFrame) -> None:
        if not self.running:
            return  # a crashed switch is a black hole
        self.counters.rx_frames += 1
        self.counters.per_port_rx[port.number] = (
            self.counters.per_port_rx.get(port.number, 0) + 1
        )
        port_config = self.config.port(port.number)
        if not port_config.enabled:
            self.counters.filtered_ingress += 1
            return

        if self.stp is not None and self.stp.handles(port.number):
            # BPDUs go to the control plane before any 802.1Q
            # classification (they are untagged link-local frames).
            if frame.dst == STP_MULTICAST and frame.ethertype == STP_ETHERTYPE:
                self.stp.receive_bpdu(port.number, frame)
                return
            state = self.stp.port_state(port.number)
            if state is not PortState.FORWARDING:
                if state is PortState.LEARNING:
                    learned = self._classify_ingress(port.number, frame)
                    if learned is not None and learned[1].src.is_unicast:
                        self.fdb.learn(
                            learned[0], learned[1].src, port.number, self.sim.now
                        )
                self.counters.filtered_ingress += 1
                return

        classified = self._classify_ingress(port.number, frame)
        if classified is None:
            self.counters.filtered_ingress += 1
            return
        vlan_id, inner = classified

        # Source learning happens before the forwarding decision.
        if inner.src.is_unicast:
            self.fdb.learn(vlan_id, inner.src, port.number, self.sim.now)

        delay = self.processing_delay_s
        if delay > 0:
            self.sim.schedule(delay, lambda: self._forward(port.number, vlan_id, inner))
        else:
            self._forward(port.number, vlan_id, inner)

    def receive_burst(
        self, port: Port, arrivals: "list[tuple[float, EthernetFrame]]"
    ) -> None:
        """Bridge a coalesced burst, re-coalescing the egress per port.

        Frames are classified, learned and forwarded strictly in wire
        order through the exact per-frame :meth:`receive` logic, so
        counters, FDB state and the frame sequence on every egress link
        are identical to *len(arrivals)* sequential deliveries.  The
        only difference is event shape: all frames a burst sends to one
        egress port leave as **one** :meth:`Port.send_burst` call (one
        link event), which keeps fabric-scale burst traffic coalesced
        across chains of legacy and migrated hops.  A non-zero
        ``processing_delay_s`` schedules each forward individually, so
        the burst path only engages on delay-free switches.
        """
        if self.processing_delay_s > 0 or len(arrivals) < 2:
            super().receive_burst(port, arrivals)
            return
        self._egress_buffer = {}
        try:
            receive = self.receive
            for _, frame in arrivals:
                receive(port, frame)
        finally:
            buffered, self._egress_buffer = self._egress_buffer, None
        for number, frames in buffered.items():
            out = self.port(number)
            if len(frames) == 1:
                out.send(frames[0])
            else:
                out.send_burst(frames)

    def _classify_ingress(
        self, port_number: int, frame: EthernetFrame
    ) -> "tuple[int, EthernetFrame] | None":
        """Map an arriving frame to (vlan, untagged-frame), or None to drop.

        The returned frame always has the classification tag removed so
        forwarding logic deals in canonical untagged frames plus a VLAN
        id — mirroring how switch ASICs carry VLAN metadata out of band.
        """
        port_config = self.config.port(port_number)
        if port_config.mode is PortMode.ACCESS:
            if frame.vlan is not None:
                # 802.1Q access ports drop tagged frames (no VLAN leaking).
                return None
            return port_config.pvid, frame
        # Trunk port.
        if frame.vlan is None:
            if port_config.native_vlan is None:
                return None
            return port_config.native_vlan, frame
        vlan_id = frame.vlan_id
        if vlan_id not in port_config.allowed_vlans:
            return None
        return vlan_id, frame.pop_vlan()

    # ----------------------------------------------------------- egress

    def _forward(self, ingress_port: int, vlan_id: int, frame: EthernetFrame) -> None:
        if not self.running:
            return  # crashed while the frame sat in the lookup pipeline
        out_port = None
        if frame.dst.is_unicast:
            out_port = self.fdb.lookup(vlan_id, frame.dst, self.sim.now)
            if out_port is None:
                self.fdb.flood_fallbacks += 1
        if out_port is not None:
            if out_port != ingress_port:
                self._egress(out_port, vlan_id, frame)
            return
        # Unknown unicast / broadcast / multicast: flood the VLAN —
        # unless the ingress port's storm meter says this is a storm.
        if self.storm_control is not None and not self.storm_control.allow(
            ingress_port, self.sim.now
        ):
            self.counters.storm_suppressed += 1
            return
        members = self.config.ports_in_vlan(vlan_id)
        flooded_to = [number for number in members if number != ingress_port]
        if not flooded_to:
            self.counters.dropped_no_ports += 1
            return
        self.counters.flooded += 1
        for number in flooded_to:
            self._egress(number, vlan_id, frame)

    def _egress(self, port_number: int, vlan_id: int, frame: EthernetFrame) -> None:
        port_config = self.config.port(port_number)
        if not port_config.carries(vlan_id) or not port_config.enabled:
            return
        if self.stp is not None and not self.stp.forwarding_allowed(port_number):
            return  # blocked / still listening: the loop stays broken
        if port_config.mode is PortMode.ACCESS:
            out_frame = frame  # access egress is always untagged
        elif vlan_id == port_config.native_vlan:
            out_frame = frame  # native VLAN leaves untagged
        else:
            out_frame = frame.push_vlan(vlan_id)
        self.counters.tx_frames += 1
        self.counters.per_port_tx[port_number] = (
            self.counters.per_port_tx.get(port_number, 0) + 1
        )
        if self._egress_buffer is not None:
            self._egress_buffer.setdefault(port_number, []).append(out_frame)
            return
        self.port(port_number).send(out_frame)

    # ------------------------------------------------------- management

    def apply_config(self, new_config: RunningConfig) -> list[str]:
        """Replace the running config, flushing FDB entries of changed ports.

        Returns the human-readable change list (what a real switch logs).
        """
        changes = self.config.diff(new_config)
        changed_ports = [
            number
            for number in set(self.config.ports) | set(new_config.ports)
            if self.config.ports.get(number) != new_config.ports.get(number)
        ]
        self.config = new_config
        self.fdb.aging_s = new_config.fdb_aging_s
        for number in changed_ports:
            self.fdb.flush_port(number)
        return changes

    def link_down(self, port_number: int) -> None:
        """Administratively take a port down (flushes its FDB entries)."""
        self.port(port_number).up = False
        self.config.port(port_number).enabled = False
        self.fdb.flush_port(port_number)
        if self.stp is not None:
            self.stp.port_down(port_number)

    def link_up(self, port_number: int) -> None:
        self.port(port_number).up = True
        self.config.port(port_number).enabled = True
        if self.stp is not None:
            self.stp.port_up(port_number)

    def power_off(self) -> None:
        """Crash the switch: every frame vanishes until :meth:`power_on`.

        Ports stay physically up (a hung supervisor, not pulled cables)
        — neighbours detect the outage by silence, e.g. STP max-age.
        """
        if not self.running:
            return
        self.running = False
        if self.stp is not None:
            self.stp.stop()

    def power_on(self) -> None:
        """Restart after a crash: dynamic state is lost, config survives.

        The dynamic FDB is empty (static entries are configuration and
        come back with it) and the STP instance re-runs its election
        from scratch, exactly like a power-cycled real bridge.
        """
        if self.running:
            return
        self.running = True
        self.fdb.flush_dynamic()
        if self.stp is not None:
            self.stp.restart()
