"""Configuration model of the legacy switch.

A :class:`RunningConfig` is a plain data object so the management plane
(SNMP agent, vendor drivers) can read and write it, diff it and roll it
back — the same operations NAPALM performs against real devices.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

#: The VLAN every port belongs to out of the box.
DEFAULT_VLAN = 1
#: Highest usable VLAN id (4095 is reserved by 802.1Q).
MAX_VLAN = 4094


class PortMode(enum.Enum):
    """802.1Q operating mode of a switch port."""

    ACCESS = "access"
    TRUNK = "trunk"


@dataclass
class PortVlanConfig:
    """VLAN configuration of one port.

    For ACCESS ports only ``pvid`` matters: ingress untagged frames are
    classified into it and egress frames are sent untagged.

    For TRUNK ports ``allowed_vlans`` lists the tagged VLANs carried;
    ``native_vlan`` (optional) is sent/received untagged.
    """

    mode: PortMode = PortMode.ACCESS
    pvid: int = DEFAULT_VLAN
    allowed_vlans: set[int] = field(default_factory=set)
    native_vlan: "int | None" = None
    enabled: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if not 1 <= self.pvid <= MAX_VLAN:
            raise ValueError(f"PVID out of range: {self.pvid}")
        for vlan in self.allowed_vlans:
            if not 1 <= vlan <= MAX_VLAN:
                raise ValueError(f"allowed VLAN out of range: {vlan}")
        if self.native_vlan is not None and not 1 <= self.native_vlan <= MAX_VLAN:
            raise ValueError(f"native VLAN out of range: {self.native_vlan}")
        if self.mode is PortMode.ACCESS and self.allowed_vlans:
            raise ValueError("access ports cannot carry tagged VLANs")

    def carries(self, vlan: int) -> bool:
        """True if frames of *vlan* may ingress/egress this port."""
        if not self.enabled:
            return False
        if self.mode is PortMode.ACCESS:
            return vlan == self.pvid
        return vlan in self.allowed_vlans or vlan == self.native_vlan

    def copy(self) -> "PortVlanConfig":
        return PortVlanConfig(
            mode=self.mode,
            pvid=self.pvid,
            allowed_vlans=set(self.allowed_vlans),
            native_vlan=self.native_vlan,
            enabled=self.enabled,
            description=self.description,
        )


@dataclass
class VlanDecl:
    """A VLAN declared on the switch (id + administrative name)."""

    vlan_id: int
    name: str = ""

    def __post_init__(self) -> None:
        if not 1 <= self.vlan_id <= MAX_VLAN:
            raise ValueError(f"VLAN id out of range: {self.vlan_id}")
        if not self.name:
            self.name = f"VLAN{self.vlan_id:04d}"


@dataclass
class RunningConfig:
    """The complete modifiable state of a legacy switch."""

    hostname: str = "switch"
    vlans: dict[int, VlanDecl] = field(default_factory=lambda: {1: VlanDecl(1, "default")})
    ports: dict[int, PortVlanConfig] = field(default_factory=dict)
    fdb_aging_s: float = 300.0

    def declare_vlan(self, vlan_id: int, name: str = "") -> VlanDecl:
        """Create (or return the existing) VLAN declaration."""
        if vlan_id not in self.vlans:
            self.vlans[vlan_id] = VlanDecl(vlan_id, name)
        return self.vlans[vlan_id]

    def remove_vlan(self, vlan_id: int) -> None:
        if vlan_id == DEFAULT_VLAN:
            raise ValueError("cannot remove the default VLAN")
        for port_num, port in self.ports.items():
            if port.carries(vlan_id):
                raise ValueError(
                    f"VLAN {vlan_id} still configured on port {port_num}"
                )
        self.vlans.pop(vlan_id, None)

    def port(self, number: int) -> PortVlanConfig:
        """The config of port *number*, created on first touch."""
        if number not in self.ports:
            self.ports[number] = PortVlanConfig()
        return self.ports[number]

    def set_access(self, number: int, vlan_id: int) -> None:
        """Make *number* an access port in *vlan_id* (declaring it)."""
        self.declare_vlan(vlan_id)
        config = self.port(number)
        config.mode = PortMode.ACCESS
        config.pvid = vlan_id
        config.allowed_vlans = set()
        config.native_vlan = None
        config.validate()

    def set_trunk(
        self,
        number: int,
        allowed_vlans: "set[int] | list[int]",
        native_vlan: "int | None" = None,
    ) -> None:
        """Make *number* a trunk carrying *allowed_vlans* (declaring them)."""
        for vlan in allowed_vlans:
            self.declare_vlan(vlan)
        if native_vlan is not None:
            self.declare_vlan(native_vlan)
        config = self.port(number)
        config.mode = PortMode.TRUNK
        config.allowed_vlans = set(allowed_vlans)
        config.native_vlan = native_vlan
        config.validate()

    def ports_in_vlan(self, vlan_id: int) -> list[int]:
        """Sorted port numbers that carry *vlan_id*."""
        return sorted(
            number for number, config in self.ports.items() if config.carries(vlan_id)
        )

    def copy(self) -> "RunningConfig":
        duplicate = RunningConfig(
            hostname=self.hostname,
            vlans={vid: VlanDecl(decl.vlan_id, decl.name) for vid, decl in self.vlans.items()},
            ports={number: config.copy() for number, config in self.ports.items()},
            fdb_aging_s=self.fdb_aging_s,
        )
        return duplicate

    def diff(self, other: "RunningConfig") -> list[str]:
        """Human-readable differences from *self* to *other*."""
        changes: list[str] = []
        if self.hostname != other.hostname:
            changes.append(f"hostname: {self.hostname} -> {other.hostname}")
        for vlan_id in sorted(set(self.vlans) | set(other.vlans)):
            if vlan_id not in self.vlans:
                changes.append(f"+vlan {vlan_id} ({other.vlans[vlan_id].name})")
            elif vlan_id not in other.vlans:
                changes.append(f"-vlan {vlan_id}")
        for number in sorted(set(self.ports) | set(other.ports)):
            mine = self.ports.get(number)
            theirs = other.ports.get(number)
            if mine == theirs:
                continue
            if theirs is None:
                changes.append(f"-port {number}")
            else:
                changes.append(
                    f"~port {number}: mode={theirs.mode.value} pvid={theirs.pvid} "
                    f"allowed={sorted(theirs.allowed_vlans)} native={theirs.native_vlan}"
                )
        return changes
