"""Per-port storm control: broadcast/unknown-unicast flood metering.

A broadcast storm is the classic failure mode of bridged Ethernet: one
looped cable or one babbling NIC floods every link of the VLAN at line
rate, and because flooding is the *correct* forwarding behaviour for
broadcast and unknown unicast, nothing stops it — the fabric melts
while every switch does exactly what 802.1D says.  Real managed
switches therefore ship *storm control* (Cisco ``storm-control
broadcast level``, IEEE "traffic-storm protection"): a per-ingress-port
meter over flood-class frames that, once exceeded, suppresses further
floods from that port for a recovery interval.

:class:`StormControl` is that meter in simulated time:

* **Token bucket per ingress port.**  ``rate_fps`` tokens accrue per
  simulated second up to a depth of ``burst`` tokens; each admitted
  flood-class frame spends one.  Conforming traffic (ARP, DHCP, the
  odd unknown-unicast miss) never notices the meter.
* **Suppress + timed recovery.**  The frame that finds the bucket
  empty trips the port into suppression: every flood-class frame from
  that port is dropped for ``recovery_s`` simulated seconds, then the
  port recovers with a full bucket (and trips again within ``burst``
  frames if the storm is still running — the duty cycle real
  shutdown-free storm control exhibits).
* **Counters.**  ``storms_detected``, ``frames_suppressed`` and
  ``recoveries`` aggregate and per port, exported via :meth:`stats`
  the way the dataplane counters ride SNMP.

The same object guards both dataplanes: :class:`~repro.legacy.switch
.LegacySwitch` consults it at the flood decision for the ingress port,
and a migrated :class:`~repro.softswitch.datapath.SoftSwitch` consults
it (as ``flood_guard``) before expanding an ``OFPP_FLOOD``/``OFPP_ALL``
output — so a storm crossing the legacy/SDN boundary of a
part-migrated fabric meets the identical policy on either side.

Everything is pure simulated time and per-port arrival order, so
sharded replicas metering the same traffic make identical decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DEFAULT_RECOVERY_S", "StormControl"]

#: Default suppression hold once a storm trips a port.
DEFAULT_RECOVERY_S = 0.1


@dataclass
class _PortMeter:
    """Token-bucket state and counters for one ingress port."""

    tokens: float
    refilled_at: float
    #: Simulated time suppression ends; None while conforming.
    suppressed_until: "float | None" = None
    storms_detected: int = 0
    frames_suppressed: int = 0
    recoveries: int = 0


class StormControl:
    """A per-port flood meter shared by legacy and migrated datapaths."""

    def __init__(
        self,
        rate_fps: float,
        burst: int = 64,
        recovery_s: float = DEFAULT_RECOVERY_S,
    ) -> None:
        if rate_fps <= 0:
            raise ValueError("storm-control rate must be positive")
        if burst < 1:
            raise ValueError("storm-control burst must be at least 1")
        if recovery_s <= 0:
            raise ValueError("storm-control recovery must be positive")
        self.rate_fps = float(rate_fps)
        self.burst = burst
        self.recovery_s = recovery_s
        self._meters: "dict[int, _PortMeter]" = {}
        self.storms_detected = 0
        self.frames_suppressed = 0
        self.recoveries = 0

    def _meter(self, port: int, now: float) -> _PortMeter:
        meter = self._meters.get(port)
        if meter is None:
            meter = self._meters[port] = _PortMeter(
                tokens=float(self.burst), refilled_at=now
            )
        return meter

    def allow(self, port: int, now: float) -> bool:
        """Admit or suppress one flood-class frame arriving on *port*."""
        meter = self._meter(port, now)
        if meter.suppressed_until is not None:
            if now < meter.suppressed_until:
                meter.frames_suppressed += 1
                self.frames_suppressed += 1
                return False
            # Recovery: the hold expired — forget the storm, refill.
            meter.suppressed_until = None
            meter.tokens = float(self.burst)
            meter.refilled_at = now
            meter.recoveries += 1
            self.recoveries += 1
        tokens = meter.tokens + (now - meter.refilled_at) * self.rate_fps
        if tokens > self.burst:
            tokens = float(self.burst)
        meter.refilled_at = now
        if tokens >= 1.0:
            meter.tokens = tokens - 1.0
            return True
        meter.tokens = tokens
        meter.suppressed_until = now + self.recovery_s
        meter.storms_detected += 1
        self.storms_detected += 1
        meter.frames_suppressed += 1
        self.frames_suppressed += 1
        return False

    def suppressed(self, port: int, now: float) -> bool:
        """True while *port* sits inside a suppression hold."""
        meter = self._meters.get(port)
        return (
            meter is not None
            and meter.suppressed_until is not None
            and now < meter.suppressed_until
        )

    def triggered_ports(self) -> "list[int]":
        """Ports that have tripped the meter at least once, sorted."""
        return sorted(
            port
            for port, meter in self._meters.items()
            if meter.storms_detected
        )

    def stats(self) -> dict:
        """Configuration plus aggregate and per-port counters."""
        return {
            "rate_fps": self.rate_fps,
            "burst": self.burst,
            "recovery_s": self.recovery_s,
            "storms_detected": self.storms_detected,
            "frames_suppressed": self.frames_suppressed,
            "recoveries": self.recoveries,
            "ports": {
                port: {
                    "storms_detected": meter.storms_detected,
                    "frames_suppressed": meter.frames_suppressed,
                    "recoveries": meter.recoveries,
                }
                for port, meter in sorted(self._meters.items())
            },
        }
