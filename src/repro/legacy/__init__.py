"""Legacy (non-SDN) Ethernet switch model.

Implements the parts of a plain managed L2 switch that HARMLESS relies
on: MAC learning with aging, per-VLAN flooding domains, and 802.1Q
access/trunk port modes with PVID tagging.  The HARMLESS Manager drives
the same configuration surface a real switch exposes (via the simulated
SNMP agent and vendor drivers in :mod:`repro.snmp` / :mod:`repro.mgmt`).
"""

from repro.legacy.config import (
    PortMode,
    PortVlanConfig,
    RunningConfig,
    VlanDecl,
)
from repro.legacy.fdb import FdbEntry, ForwardingDatabase
from repro.legacy.stormcontrol import StormControl
from repro.legacy.stp import PortRole, PortState, SpanningTree
from repro.legacy.switch import LegacySwitch

__all__ = [
    "PortMode",
    "PortVlanConfig",
    "VlanDecl",
    "RunningConfig",
    "ForwardingDatabase",
    "FdbEntry",
    "LegacySwitch",
    "StormControl",
    "SpanningTree",
    "PortRole",
    "PortState",
]
