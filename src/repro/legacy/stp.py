"""Simplified 802.1D spanning tree for the legacy dataplane.

The ring topology needs what every real bridged network needs: a loop
in the cabling that the control plane, not the cabling, keeps loop-free
— so that when a link is cut, the blocked port can take over.  This
module implements the minimum of 802.1D that delivers that behaviour
while staying deterministic and cheap inside the simulator:

* **Election by priority vector.**  Every bridge has a 64-bit id
  (16-bit priority, 48-bit address) and advertises
  ``(root_id, root_cost, bridge_id, port_id)`` in config BPDUs sent to
  the 01:80:C2:00:00:00 group address.  Lowest vector wins: the lowest
  bridge id becomes root, every other bridge picks a root port
  (cheapest path, sender id / sender port / local port as tie-breaks),
  and each segment keeps exactly one designated transmitter.  Ports
  that are neither root nor designated block.
* **Timed transitions.**  A port moves BLOCKING -> LISTENING ->
  LEARNING -> FORWARDING, spending ``forward_delay_s`` in each
  intermediate state, so data never flows before election has settled.
  Blocking is immediate.  Ports outside the managed set ("edge" ports
  — hosts, generators, the HARMLESS trunk) forward immediately and
  never see BPDUs.
* **Failure detection.**  A received vector expires after
  ``max_age_s`` without refresh (the designated peer died or the path
  to the root collapsed); ``link_down`` clears it immediately.  Either
  way the bridge re-runs the election with what remains, which is what
  re-converges a cut ring onto its formerly blocked port.  Inferior
  information *from the same sender* replaces the stored vector at
  once, so a bridge that lost its root propagates the bad news a hop
  per BPDU instead of a hop per timeout.
* **Topology-change flushes, epoch-style.**  Real 802.1D shortens FDB
  aging via TCN/TCA handshakes; this model does the equivalent
  flush-now: each change mints a ``(origin bridge, sequence)`` epoch
  carried in every BPDU and in a TCN sent out the root port, and every
  bridge flushes its dynamic FDB exactly once per new epoch — loop
  free, ack free, and fast enough that stale entries never blackhole
  unicast until the 300 s aging timer would have saved them.

Timers default to a 20x-compressed scale (hello 0.1 s vs the standard
2 s) purely so scenario scripts converge in tenths of simulated
seconds; the ratios between hello, max-age and forward-delay are
preserved in spirit.  BPDUs ride a private ethertype instead of LLC
(the simulator's frames are Ethernet II only).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING

from repro.net.addresses import MACAddress
from repro.net.ethernet import EthernetFrame

if TYPE_CHECKING:
    from repro.legacy.switch import LegacySwitch

__all__ = [
    "DEFAULT_FORWARD_DELAY_S",
    "DEFAULT_HELLO_S",
    "DEFAULT_MAX_AGE_S",
    "DEFAULT_PORT_COST",
    "PortRole",
    "PortState",
    "STP_ETHERTYPE",
    "STP_MULTICAST",
    "SpanningTree",
]

#: The IEEE bridge group address all BPDUs are sent to.
STP_MULTICAST = MACAddress("01:80:c2:00:00:00")
#: Stand-in ethertype for the 802.2 LLC encapsulation real BPDUs use.
STP_ETHERTYPE = 0x010B

DEFAULT_BRIDGE_PRIORITY = 0x8000
DEFAULT_PORT_COST = 100
DEFAULT_HELLO_S = 0.1
DEFAULT_MAX_AGE_S = 0.35
DEFAULT_FORWARD_DELAY_S = 0.15

_CONFIG = 0
_TCN = 1
#: type, root_id, root_cost, bridge_id, port_id, tc_origin, tc_seq
_BPDU = struct.Struct("!BQLQHQL")


class PortState(Enum):
    BLOCKING = "blocking"
    LISTENING = "listening"
    LEARNING = "learning"
    FORWARDING = "forwarding"


class PortRole(Enum):
    ROOT = "root"
    DESIGNATED = "designated"
    ALTERNATE = "alternate"
    DISABLED = "disabled"


@dataclass
class _PortInfo:
    """The best vector heard on a port, and when it was last refreshed."""

    vector: "tuple[int, int, int, int]"
    received_at: float


class _StpPort:
    """Election state for one managed port."""

    def __init__(self, number: int, cost: int) -> None:
        self.number = number
        self.cost = cost
        self.info: "_PortInfo | None" = None
        self.role = PortRole.DESIGNATED
        self.state = PortState.BLOCKING
        self.disabled = False
        #: Pending LISTENING->LEARNING->FORWARDING events (cancellable).
        self.transition: list = []


def bridge_address(name: str) -> MACAddress:
    """Deterministic locally-administered bridge MAC for *name*."""
    return MACAddress(0x02_00_00_00_00_00 | zlib.crc32(name.encode()))


class SpanningTree:
    """One bridge's spanning-tree instance, attached to a LegacySwitch.

    *ports* lists the managed (inter-switch) port numbers; every other
    port of the switch is an edge port — ungated, BPDU-free.  Attach
    after the switch's links are wired so the first BPDUs have
    somewhere to go (construction registers itself as ``switch.stp``
    and starts the election immediately).
    """

    def __init__(
        self,
        switch: "LegacySwitch",
        ports: "list[int]",
        priority: int = DEFAULT_BRIDGE_PRIORITY,
        address: "MACAddress | None" = None,
        hello_s: float = DEFAULT_HELLO_S,
        max_age_s: float = DEFAULT_MAX_AGE_S,
        forward_delay_s: float = DEFAULT_FORWARD_DELAY_S,
        port_cost: int = DEFAULT_PORT_COST,
    ) -> None:
        if not 0 <= priority <= 0xFFFF:
            raise ValueError(f"bridge priority out of range: {priority}")
        self.switch = switch
        self.sim = switch.sim
        self.address = address if address is not None else bridge_address(switch.name)
        self.bridge_id = priority << 48 | int(self.address)
        self.hello_s = hello_s
        self.max_age_s = max_age_s
        self.forward_delay_s = forward_delay_s
        self._ports = {
            number: _StpPort(number, port_cost) for number in sorted(set(ports))
        }
        self.root_id = self.bridge_id
        self.root_cost = 0
        self.root_port: "int | None" = None
        #: origin bridge id -> highest flushed sequence (epoch dedup).
        self._tc_seen: "dict[int, int]" = {}
        self._tc_local_seq = 0
        #: The epoch stamped on outgoing BPDUs ((0, 0) = none yet).
        self._tc_current: "tuple[int, int]" = (0, 0)
        self._tick_event = None
        self.running = False
        self.bpdus_sent = 0
        self.bpdus_received = 0
        self.topology_changes = 0
        self.tc_flushes = 0
        switch.stp = self
        self.start()

    # --------------------------------------------------------- queries

    def handles(self, port_number: int) -> bool:
        """True when *port_number* is a managed (non-edge) port."""
        return port_number in self._ports

    def port_state(self, port_number: int) -> "PortState | None":
        """The managed port's state, or None for edge ports."""
        port = self._ports.get(port_number)
        return None if port is None else port.state

    def port_role(self, port_number: int) -> "PortRole | None":
        port = self._ports.get(port_number)
        return None if port is None else port.role

    def forwarding_allowed(self, port_number: int) -> bool:
        """Dataplane gate: may the switch move frames through this port?"""
        port = self._ports.get(port_number)
        return port is None or port.state is PortState.FORWARDING

    @property
    def is_root(self) -> bool:
        return self.root_id == self.bridge_id

    def settle_s(self) -> float:
        """Conservative time for a fresh election to reach FORWARDING."""
        return 2 * self.forward_delay_s + 2 * self.hello_s

    def describe(self) -> str:
        role = "root" if self.is_root else f"root-port {self.root_port}"
        ports = ", ".join(
            f"{p.number}:{p.role.value}/{p.state.value}"
            for p in self._ports.values()
        )
        return f"{self.switch.name}: {role}, cost {self.root_cost} [{ports}]"

    # ------------------------------------------------------- lifecycle

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        self._reconverge(force_transmit=True)
        self._tick_event = self.sim.schedule(self.hello_s, self._tick)

    def stop(self) -> None:
        """Halt the instance (switch crash): timers die, state freezes."""
        if not self.running:
            return
        self.running = False
        if self._tick_event is not None:
            self._tick_event.cancel()
            self._tick_event = None
        for port in self._ports.values():
            self._cancel_transition(port)
            port.state = PortState.BLOCKING

    def restart(self) -> None:
        """Cold restart (switch power-on): all learned state is gone."""
        self.stop()
        for port in self._ports.values():
            port.info = None
            port.role = PortRole.DESIGNATED
            port.state = PortState.BLOCKING
        self.root_id = self.bridge_id
        self.root_cost = 0
        self.root_port = None
        self.start()

    def port_down(self, port_number: int) -> None:
        """The switch detected loss of link on a managed port."""
        port = self._ports.get(port_number)
        if port is None or port.disabled:
            return
        port.disabled = True
        port.info = None
        self._cancel_transition(port)
        was_forwarding = port.state is PortState.FORWARDING
        port.state = PortState.BLOCKING
        port.role = PortRole.DISABLED
        if not self.running:
            return
        self._reconverge()
        if was_forwarding:
            self._topology_changed()

    def port_up(self, port_number: int) -> None:
        port = self._ports.get(port_number)
        if port is None or not port.disabled:
            return
        port.disabled = False
        port.info = None
        port.role = PortRole.DESIGNATED
        if self.running:
            self._reconverge(force_transmit=True)

    # --------------------------------------------------------- receive

    def receive_bpdu(self, port_number: int, frame: EthernetFrame) -> None:
        port = self._ports.get(port_number)
        if port is None or port.disabled or not self.running:
            return  # edge or dead ports ignore BPDUs
        try:
            (msg_type, root_id, root_cost, bridge_id, port_id,
             tc_origin, tc_seq) = _BPDU.unpack_from(frame.payload)
        except struct.error:
            return
        self.bpdus_received += 1
        self._note_tc(tc_origin, tc_seq)
        if msg_type != _CONFIG:
            return  # TCN carries only the epoch, handled above
        vector = (root_id, root_cost, bridge_id, port_id)
        stored = port.info
        if stored is not None and stored.vector[2:] == (bridge_id, port_id):
            # Same sender: always accept, even if worse — this is how
            # "I lost the root" propagates without waiting for max-age.
            changed = stored.vector != vector
            port.info = _PortInfo(vector, self.sim.now)
        elif stored is None or vector < stored.vector:
            changed = True
            port.info = _PortInfo(vector, self.sim.now)
        else:
            return  # inferior info from a different sender: ignore
        if changed:
            self._reconverge()

    # -------------------------------------------------------- election

    def _reconverge(self, force_transmit: bool = False) -> None:
        """Re-run the election; transmit BPDUs if anything changed."""
        before = (
            self.root_id,
            self.root_cost,
            self.root_port,
            tuple((p.number, p.role) for p in self._ports.values()),
        )
        self._recompute()
        after = (
            self.root_id,
            self.root_cost,
            self.root_port,
            tuple((p.number, p.role) for p in self._ports.values()),
        )
        if force_transmit or before != after:
            self._transmit_config()

    def _recompute(self) -> None:
        candidates = []
        for port in self._ports.values():
            if port.disabled or port.info is None:
                continue
            root_id, cost, bridge_id, port_id = port.info.vector
            candidates.append(
                (root_id, cost + port.cost, bridge_id, port_id, port.number)
            )
        best = min(candidates) if candidates else None
        if best is None or best[0] >= self.bridge_id:
            self.root_id = self.bridge_id
            self.root_cost = 0
            self.root_port = None
        else:
            root_id = best[0]
            through = min(c for c in candidates if c[0] == root_id)
            self.root_id = root_id
            self.root_cost = through[1]
            self.root_port = through[4]

        for port in self._ports.values():
            if port.disabled:
                port.role = PortRole.DISABLED
            elif port.number == self.root_port:
                port.role = PortRole.ROOT
            elif port.info is None:
                port.role = PortRole.DESIGNATED
            else:
                mine = (self.root_id, self.root_cost, self.bridge_id, port.number)
                port.role = (
                    PortRole.DESIGNATED
                    if mine < port.info.vector
                    else PortRole.ALTERNATE
                )
            self._apply_state(port)

    def _apply_state(self, port: _StpPort) -> None:
        if port.role in (PortRole.ROOT, PortRole.DESIGNATED):
            if port.state is PortState.FORWARDING or port.transition:
                return  # already there, or already on its way
            port.state = PortState.LISTENING
            delay = self.forward_delay_s

            def to_learning(p=port):
                p.state = PortState.LEARNING

            def to_forwarding(p=port):
                p.transition.clear()
                p.state = PortState.FORWARDING
                self._topology_changed()

            port.transition = [
                self.sim.schedule(delay, to_learning),
                self.sim.schedule(2 * delay, to_forwarding),
            ]
        else:
            was_forwarding = port.state is PortState.FORWARDING
            self._cancel_transition(port)
            port.state = PortState.BLOCKING
            if was_forwarding:
                self._topology_changed()

    @staticmethod
    def _cancel_transition(port: _StpPort) -> None:
        for event in port.transition:
            event.cancel()
        port.transition.clear()

    # ------------------------------------------------ topology changes

    def _topology_changed(self) -> None:
        """A port entered or left FORWARDING: mint and spread an epoch."""
        self.topology_changes += 1
        self._tc_local_seq += 1
        self._tc_seen[self.bridge_id] = self._tc_local_seq
        self._tc_current = (self.bridge_id, self._tc_local_seq)
        self.switch.fdb.flush_dynamic()
        self._transmit_config()
        self._send_tcn()

    def _note_tc(self, origin: int, seq: int) -> None:
        if origin == 0 or seq <= self._tc_seen.get(origin, 0):
            return
        self._tc_seen[origin] = seq
        self._tc_current = (origin, seq)
        self.tc_flushes += 1
        self.switch.fdb.flush_dynamic()
        self._transmit_config()  # spread downstream (designated ports)
        self._send_tcn()  # spread upstream (root port)

    # -------------------------------------------------------- transmit

    def _tick(self) -> None:
        self._tick_event = None
        if not self.running:
            return
        now = self.sim.now
        expired = False
        for port in self._ports.values():
            if (
                port.info is not None
                and now - port.info.received_at > self.max_age_s
            ):
                port.info = None
                expired = True
        if expired:
            self._reconverge()
        self._transmit_config()
        self._tick_event = self.sim.schedule(self.hello_s, self._tick)

    def _transmit_config(self) -> None:
        if not self.running:
            return
        origin, seq = self._tc_current
        for port in self._ports.values():
            if port.disabled or port.role is not PortRole.DESIGNATED:
                continue
            payload = _BPDU.pack(
                _CONFIG, self.root_id, self.root_cost, self.bridge_id,
                port.number, origin, seq,
            )
            self._send(port.number, payload)

    def _send_tcn(self) -> None:
        if not self.running or self.root_port is None:
            return
        origin, seq = self._tc_current
        payload = _BPDU.pack(
            _TCN, self.root_id, self.root_cost, self.bridge_id,
            self.root_port, origin, seq,
        )
        self._send(self.root_port, payload)

    def _send(self, port_number: int, payload: bytes) -> None:
        frame = EthernetFrame(
            dst=STP_MULTICAST,
            src=self.address,
            ethertype=STP_ETHERTYPE,
            payload=payload,
        )
        self.switch.port(port_number).send(frame)
        self.bpdus_sent += 1
