"""The forwarding database (MAC table) of the legacy switch."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.net.addresses import MACAddress


@dataclass
class FdbEntry:
    """One learned (VLAN, MAC) -> port binding."""

    vlan_id: int
    mac: MACAddress
    port: int
    learned_at: float
    static: bool = False

    def age(self, now: float) -> float:
        return now - self.learned_at


class ForwardingDatabase:
    """A bounded, aging MAC table.

    Real switches have a fixed-size CAM; the eviction policy here is
    **explicit and load-bearing**: when the table is full, learning a
    new address evicts the *oldest dynamic* entry (smallest
    ``learned_at``; static entries are configuration and never
    evicted).  This is a simplification of hash-bucket collision
    behaviour that preserves the important properties under MAC-churn
    pressure: memory stays bounded at ``capacity`` entries, the switch
    never refuses to learn, and traffic towards an evicted MAC degrades
    to *flooding*, not to loss — counted in ``flood_fallbacks`` by the
    dataplane whenever a unicast lookup misses and the frame floods
    instead (see :meth:`stats`).
    """

    def __init__(self, capacity: int = 8192, aging_s: float = 300.0) -> None:
        if capacity < 1:
            raise ValueError("FDB capacity must be positive")
        self.capacity = capacity
        self.aging_s = aging_s
        self._entries: dict[tuple[int, MACAddress], FdbEntry] = {}
        self.learn_events = 0
        self.move_events = 0
        self.evictions = 0
        #: Unknown-unicast frames the dataplane flooded because the
        #: lookup missed (aged out, evicted, or never learned) —
        #: incremented by the owning switch at its flood decision.
        self.flood_fallbacks = 0

    def __len__(self) -> int:
        return len(self._entries)

    def learn(self, vlan_id: int, mac: MACAddress, port: int, now: float) -> None:
        """Learn or refresh a dynamic entry; never overrides static ones."""
        if mac.is_multicast:
            return  # group addresses are never sources
        key = (vlan_id, mac)
        existing = self._entries.get(key)
        if existing is not None:
            if existing.static:
                return
            if existing.port != port:
                self.move_events += 1
            existing.port = port
            existing.learned_at = now
            return
        if len(self._entries) >= self.capacity:
            self._evict_oldest()
        self._entries[key] = FdbEntry(
            vlan_id=vlan_id, mac=mac, port=port, learned_at=now
        )
        self.learn_events += 1

    def add_static(self, vlan_id: int, mac: MACAddress, port: int) -> None:
        """Pin a (VLAN, MAC) to a port; survives aging and flushes."""
        self._entries[(vlan_id, mac)] = FdbEntry(
            vlan_id=vlan_id, mac=mac, port=port, learned_at=0.0, static=True
        )

    def _evict_oldest(self) -> None:
        """Evict-oldest-dynamic: the capacity policy, in one place."""
        dynamic = [
            (entry.learned_at, key)
            for key, entry in self._entries.items()
            if not entry.static
        ]
        if not dynamic:
            raise RuntimeError("FDB full of static entries")
        _, victim = min(dynamic)
        del self._entries[victim]
        self.evictions += 1

    def lookup(self, vlan_id: int, mac: MACAddress, now: float) -> Optional[int]:
        """The port for (vlan, mac), or None if unknown/expired."""
        entry = self._entries.get((vlan_id, mac))
        if entry is None:
            return None
        if not entry.static and entry.age(now) > self.aging_s:
            del self._entries[(vlan_id, mac)]
            return None
        return entry.port

    def expire(self, now: float) -> int:
        """Remove all dynamic entries older than the aging time."""
        stale = [
            key
            for key, entry in self._entries.items()
            if not entry.static and entry.age(now) > self.aging_s
        ]
        for key in stale:
            del self._entries[key]
        return len(stale)

    def flush_port(self, port: int) -> int:
        """Drop all dynamic entries pointing at *port* (link-down handling)."""
        doomed = [
            key
            for key, entry in self._entries.items()
            if entry.port == port and not entry.static
        ]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def flush_dynamic(self) -> int:
        """Drop every dynamic entry (topology change / switch restart).

        Static entries are configuration, not learned state — they
        survive, exactly as on a power-cycled real switch whose startup
        config repopulates them.
        """
        doomed = [
            key for key, entry in self._entries.items() if not entry.static
        ]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def flush_vlan(self, vlan_id: int) -> int:
        """Drop all dynamic entries in *vlan_id*."""
        doomed = [
            key
            for key, entry in self._entries.items()
            if entry.vlan_id == vlan_id and not entry.static
        ]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    def stats(self) -> dict:
        """Occupancy and pressure counters (exported like SNMP gauges).

        ``inserts`` counts new dynamic entries accepted (refreshes and
        moves excluded), ``evictions`` the oldest-dynamic victims the
        capacity policy removed, and ``flood_fallbacks`` the unknown-
        unicast frames that degraded to flooding — together they are
        the observable proof that a full table floods, not crashes.
        """
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "inserts": self.learn_events,
            "moves": self.move_events,
            "evictions": self.evictions,
            "flood_fallbacks": self.flood_fallbacks,
        }

    def entries(self) -> Iterator[FdbEntry]:
        """All entries, sorted by (vlan, mac) — the order SNMP walks them."""
        for key in sorted(self._entries):
            yield self._entries[key]
