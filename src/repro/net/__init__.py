"""Wire-format packet model.

Byte-accurate implementations of the protocols HARMLESS touches:
Ethernet II, 802.1Q VLAN tags (including QinQ stacking), ARP, IPv4
(with header checksum), ICMP, UDP and TCP (with pseudo-header
checksums), plus small DNS and HTTP payload helpers used by the demo
use cases.

Every header type serialises to ``bytes`` and parses back; round-trip
identity is enforced by property tests.  The rest of the repository
(simulator, switches, OpenFlow pipeline) operates on these objects, so
the forwarding code paths exercised here are the same ones a hardware
testbed would exercise on real frames.
"""

from repro.net.addresses import (
    BROADCAST_MAC,
    IPv4Address,
    IPv4Network,
    MACAddress,
)
from repro.net.arp import (
    ARP_OP_REPLY,
    ARP_OP_REQUEST,
    ArpPacket,
)
from repro.net.checksum import internet_checksum
from repro.net.dns import DnsMessage, DnsQuestion, DnsResourceRecord
from repro.net.errors import PacketDecodeError
from repro.net.ethernet import (
    ETHERTYPE_ARP,
    ETHERTYPE_DOT1AD,
    ETHERTYPE_DOT1Q,
    ETHERTYPE_IPV4,
    Dot1QTag,
    EthernetFrame,
)
from repro.net.http import HttpRequest, HttpResponse
from repro.net.ipv4 import (
    IPPROTO_ICMP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    IPv4Packet,
)
from repro.net.icmp import (
    ICMP_TYPE_ECHO_REPLY,
    ICMP_TYPE_ECHO_REQUEST,
    IcmpPacket,
)
from repro.net.tcp import TCP_FLAG_ACK, TCP_FLAG_FIN, TCP_FLAG_RST, TCP_FLAG_SYN, TcpSegment
from repro.net.udp import UdpDatagram

__all__ = [
    "BROADCAST_MAC",
    "MACAddress",
    "IPv4Address",
    "IPv4Network",
    "internet_checksum",
    "PacketDecodeError",
    "EthernetFrame",
    "Dot1QTag",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_ARP",
    "ETHERTYPE_DOT1Q",
    "ETHERTYPE_DOT1AD",
    "ArpPacket",
    "ARP_OP_REQUEST",
    "ARP_OP_REPLY",
    "IPv4Packet",
    "IPPROTO_ICMP",
    "IPPROTO_TCP",
    "IPPROTO_UDP",
    "IcmpPacket",
    "ICMP_TYPE_ECHO_REQUEST",
    "ICMP_TYPE_ECHO_REPLY",
    "UdpDatagram",
    "TcpSegment",
    "TCP_FLAG_SYN",
    "TCP_FLAG_ACK",
    "TCP_FLAG_FIN",
    "TCP_FLAG_RST",
    "DnsMessage",
    "DnsQuestion",
    "DnsResourceRecord",
    "HttpRequest",
    "HttpResponse",
]
