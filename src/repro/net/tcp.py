"""TCP segments (RFC 793) — header-accurate, with a minimal option model.

The simulator does not run a full TCP state machine for bulk transfer
(the benchmarks are packet-level), but the parental-control use case
inspects SYNs and the DMZ use case matches on ports, so segments carry
real flags, sequence numbers and checksums.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.net.addresses import IPv4Address
from repro.net.checksum import pseudo_header_checksum
from repro.net.errors import PacketDecodeError
from repro.net.ipv4 import IPPROTO_TCP

TCP_FLAG_FIN = 0x01
TCP_FLAG_SYN = 0x02
TCP_FLAG_RST = 0x04
TCP_FLAG_PSH = 0x08
TCP_FLAG_ACK = 0x10
TCP_FLAG_URG = 0x20

_HEADER = struct.Struct("!HHIIBBHHH")


@dataclass
class TcpSegment:
    """A TCP segment."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535
    urgent: int = 0
    options: bytes = field(default=b"")
    payload: bytes = b""

    def __post_init__(self) -> None:
        for name, port in (("src_port", self.src_port), ("dst_port", self.dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"{name} out of range: {port}")
        if not 0 <= self.seq < 1 << 32 or not 0 <= self.ack < 1 << 32:
            raise ValueError("seq/ack out of range")
        if len(self.options) % 4:
            raise ValueError("TCP options must be padded to 32-bit words")
        if len(self.options) > 40:
            raise ValueError("TCP options longer than 40 bytes")
        self.payload = bytes(self.payload)

    @property
    def data_offset(self) -> int:
        """Header length in 32-bit words."""
        return 5 + len(self.options) // 4

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & TCP_FLAG_SYN) and not self.flags & TCP_FLAG_ACK

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & TCP_FLAG_RST)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & TCP_FLAG_FIN)

    def flag_names(self) -> str:
        names = []
        for bit, name in (
            (TCP_FLAG_SYN, "SYN"),
            (TCP_FLAG_ACK, "ACK"),
            (TCP_FLAG_FIN, "FIN"),
            (TCP_FLAG_RST, "RST"),
            (TCP_FLAG_PSH, "PSH"),
            (TCP_FLAG_URG, "URG"),
        ):
            if self.flags & bit:
                names.append(name)
        return "|".join(names) if names else "none"

    def _header(self, checksum: int) -> bytes:
        offset_reserved = self.data_offset << 4
        return (
            _HEADER.pack(
                self.src_port,
                self.dst_port,
                self.seq,
                self.ack,
                offset_reserved,
                self.flags,
                self.window,
                checksum,
                self.urgent,
            )
            + self.options
        )

    def to_bytes(self, src_ip: IPv4Address, dst_ip: IPv4Address) -> bytes:
        unchecksummed = self._header(checksum=0) + self.payload
        checksum = pseudo_header_checksum(
            src_ip.packed, dst_ip.packed, IPPROTO_TCP, unchecksummed
        )
        return self._header(checksum=checksum) + self.payload

    @classmethod
    def from_bytes(
        cls,
        data: bytes,
        src_ip: "IPv4Address | None" = None,
        dst_ip: "IPv4Address | None" = None,
    ) -> "TcpSegment":
        if len(data) < 20:
            raise PacketDecodeError("tcp", f"segment too short: {len(data)} bytes")
        (
            src_port,
            dst_port,
            seq,
            ack,
            offset_reserved,
            flags,
            window,
            checksum,
            urgent,
        ) = _HEADER.unpack_from(data)
        data_offset = offset_reserved >> 4
        header_len = data_offset * 4
        if data_offset < 5 or len(data) < header_len:
            raise PacketDecodeError("tcp", f"bad data offset {data_offset}")
        if src_ip is not None and dst_ip is not None:
            computed = pseudo_header_checksum(
                src_ip.packed, dst_ip.packed, IPPROTO_TCP, data
            )
            if computed != 0:
                raise PacketDecodeError("tcp", "checksum mismatch")
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            urgent=urgent,
            options=data[20:header_len],
            payload=data[header_len:],
        )

    def __str__(self) -> str:
        return (
            f"TCP {self.src_port} > {self.dst_port} [{self.flag_names()}] "
            f"seq {self.seq} ack {self.ack} len {len(self.payload)}"
        )
