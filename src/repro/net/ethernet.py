"""Ethernet II frames and 802.1Q VLAN tags.

The 802.1Q behaviour here is the foundation of HARMLESS: the legacy
switch pushes a per-access-port tag, the translator (SS_1) pops it, and
the reverse path pushes the destination port's tag.  Tags are modelled
as an explicit stack so QinQ (802.1ad S-tag over C-tag) also works,
which the scalability benchmarks use when several legacy switches share
one trunk.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.net.addresses import MACAddress
from repro.net.errors import PacketDecodeError

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
ETHERTYPE_DOT1Q = 0x8100
ETHERTYPE_DOT1AD = 0x88A8
ETHERTYPE_LLDP = 0x88CC

#: Minimum Ethernet payload (frames shorter than this get padded on the wire).
MIN_PAYLOAD = 46
#: Conventional Ethernet MTU used by default links.
DEFAULT_MTU = 1500

_TAG_STRUCT = struct.Struct("!HH")


@dataclass(frozen=True)
class Dot1QTag:
    """One 802.1Q (or 802.1ad) tag: TPID implied by stack position.

    Attributes:
        vlan_id: 12-bit VLAN identifier (0 = priority tag, 4095 reserved).
        pcp: 3-bit priority code point.
        dei: drop-eligible indicator bit.
    """

    vlan_id: int
    pcp: int = 0
    dei: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.vlan_id <= 4095:
            raise ValueError(f"VLAN id out of range: {self.vlan_id}")
        if not 0 <= self.pcp <= 7:
            raise ValueError(f"PCP out of range: {self.pcp}")

    @property
    def tci(self) -> int:
        """The 16-bit tag control information field."""
        return (self.pcp << 13) | (int(self.dei) << 12) | self.vlan_id

    @classmethod
    def from_tci(cls, tci: int) -> "Dot1QTag":
        return cls(vlan_id=tci & 0x0FFF, pcp=tci >> 13 & 0x7, dei=bool(tci >> 12 & 0x1))

    def __str__(self) -> str:
        return f"vlan {self.vlan_id} pcp {self.pcp}"


@dataclass
class EthernetFrame:
    """An Ethernet II frame with an explicit VLAN tag stack.

    ``tags[0]`` is the outermost tag.  ``ethertype`` is the *inner*
    ethertype (the payload's protocol), independent of tagging, which is
    how OpenFlow's OXM model exposes it too.
    """

    dst: MACAddress
    src: MACAddress
    ethertype: int
    payload: bytes = b""
    tags: list[Dot1QTag] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.dst = MACAddress(self.dst)
        self.src = MACAddress(self.src)
        if not 0 <= self.ethertype <= 0xFFFF:
            raise ValueError(f"ethertype out of range: {self.ethertype:#x}")
        if not isinstance(self.payload, (bytes, bytearray)):
            raise TypeError("payload must be bytes")
        self.payload = bytes(self.payload)

    # -- VLAN tag manipulation (semantics match OpenFlow push/pop actions) --

    @property
    def vlan(self) -> Optional[Dot1QTag]:
        """The outermost VLAN tag, or None if untagged."""
        return self.tags[0] if self.tags else None

    @property
    def vlan_id(self) -> Optional[int]:
        """The outermost VLAN id, or None if untagged."""
        return self.tags[0].vlan_id if self.tags else None

    def push_vlan(self, vlan_id: int, pcp: int = 0) -> "EthernetFrame":
        """Return a copy with a new outermost tag (OpenFlow PUSH_VLAN + SET_FIELD)."""
        tag = Dot1QTag(vlan_id=vlan_id, pcp=pcp)
        return replace(
            self,
            tags=[tag, *self.tags],
            payload=self.payload,
        )

    def pop_vlan(self) -> "EthernetFrame":
        """Return a copy with the outermost tag removed (OpenFlow POP_VLAN)."""
        if not self.tags:
            raise ValueError("cannot pop VLAN tag from untagged frame")
        return replace(self, tags=list(self.tags[1:]), payload=self.payload)

    def set_vlan(self, vlan_id: int) -> "EthernetFrame":
        """Return a copy with the outermost tag's VLAN id rewritten."""
        if not self.tags:
            raise ValueError("cannot set VLAN id on untagged frame")
        head = replace(self.tags[0], vlan_id=vlan_id)
        return replace(self, tags=[head, *self.tags[1:]], payload=self.payload)

    def copy(self) -> "EthernetFrame":
        return replace(self, tags=list(self.tags), payload=self.payload)

    # -- wire format --

    def to_bytes(self) -> bytes:
        """Serialise, using 0x88a8 for the outer TPID of doubly-tagged frames."""
        buffer = bytearray()
        buffer += self.dst.packed
        buffer += self.src.packed
        for index, tag in enumerate(self.tags):
            outermost_of_stack = index == 0 and len(self.tags) > 1
            tpid = ETHERTYPE_DOT1AD if outermost_of_stack else ETHERTYPE_DOT1Q
            buffer += _TAG_STRUCT.pack(tpid, tag.tci)
        buffer += self.ethertype.to_bytes(2, "big")
        buffer += self.payload
        return bytes(buffer)

    @classmethod
    def from_bytes(cls, data: bytes) -> "EthernetFrame":
        if len(data) < 14:
            raise PacketDecodeError("ethernet", f"frame too short: {len(data)} bytes")
        dst = MACAddress(data[0:6])
        src = MACAddress(data[6:12])
        offset = 12
        tags: list[Dot1QTag] = []
        while True:
            if len(data) < offset + 2:
                raise PacketDecodeError("ethernet", "truncated ethertype")
            ethertype = int.from_bytes(data[offset : offset + 2], "big")
            if ethertype in (ETHERTYPE_DOT1Q, ETHERTYPE_DOT1AD):
                if len(data) < offset + 4:
                    raise PacketDecodeError("ethernet", "truncated 802.1Q tag")
                tci = int.from_bytes(data[offset + 2 : offset + 4], "big")
                tags.append(Dot1QTag.from_tci(tci))
                offset += 4
            else:
                offset += 2
                break
        return cls(
            dst=dst, src=src, ethertype=ethertype, payload=data[offset:], tags=tags
        )

    @property
    def wire_length(self) -> int:
        """Length on the wire in bytes (without preamble/FCS, with padding)."""
        raw = 14 + 4 * len(self.tags) + len(self.payload)
        return max(raw, 14 + 4 * len(self.tags) + MIN_PAYLOAD)

    def __str__(self) -> str:
        tag_text = "".join(f" [{tag}]" for tag in self.tags)
        return (
            f"{self.src} > {self.dst}{tag_text} type {self.ethertype:#06x} "
            f"len {len(self.payload)}"
        )
