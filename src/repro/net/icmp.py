"""ICMP echo (ping) — the latency benchmarks measure with these."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.checksum import internet_checksum
from repro.net.errors import PacketDecodeError

ICMP_TYPE_ECHO_REPLY = 0
ICMP_TYPE_ECHO_REQUEST = 8
ICMP_TYPE_DEST_UNREACHABLE = 3
ICMP_TYPE_TIME_EXCEEDED = 11

_HEADER = struct.Struct("!BBHHH")


@dataclass
class IcmpPacket:
    """An ICMP message; echo request/reply carry identifier + sequence."""

    icmp_type: int
    code: int = 0
    identifier: int = 0
    sequence: int = 0
    payload: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.icmp_type <= 255:
            raise ValueError(f"ICMP type out of range: {self.icmp_type}")
        if not 0 <= self.code <= 255:
            raise ValueError(f"ICMP code out of range: {self.code}")
        self.payload = bytes(self.payload)

    @classmethod
    def echo_request(
        cls, identifier: int, sequence: int, payload: bytes = b""
    ) -> "IcmpPacket":
        return cls(
            icmp_type=ICMP_TYPE_ECHO_REQUEST,
            identifier=identifier,
            sequence=sequence,
            payload=payload,
        )

    def make_reply(self) -> "IcmpPacket":
        if self.icmp_type != ICMP_TYPE_ECHO_REQUEST:
            raise ValueError("can only reply to an echo request")
        return IcmpPacket(
            icmp_type=ICMP_TYPE_ECHO_REPLY,
            identifier=self.identifier,
            sequence=self.sequence,
            payload=self.payload,
        )

    def to_bytes(self) -> bytes:
        unchecksummed = _HEADER.pack(
            self.icmp_type, self.code, 0, self.identifier, self.sequence
        )
        checksum = internet_checksum(unchecksummed + self.payload)
        return (
            _HEADER.pack(self.icmp_type, self.code, checksum, self.identifier, self.sequence)
            + self.payload
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "IcmpPacket":
        if len(data) < 8:
            raise PacketDecodeError("icmp", f"message too short: {len(data)} bytes")
        icmp_type, code, checksum, identifier, sequence = _HEADER.unpack_from(data)
        if internet_checksum(data) != 0:
            raise PacketDecodeError("icmp", "checksum mismatch")
        return cls(
            icmp_type=icmp_type,
            code=code,
            identifier=identifier,
            sequence=sequence,
            payload=data[8:],
        )

    def __str__(self) -> str:
        names = {
            ICMP_TYPE_ECHO_REPLY: "echo-reply",
            ICMP_TYPE_ECHO_REQUEST: "echo-request",
            ICMP_TYPE_DEST_UNREACHABLE: "dest-unreachable",
            ICMP_TYPE_TIME_EXCEEDED: "time-exceeded",
        }
        name = names.get(self.icmp_type, f"type-{self.icmp_type}")
        return f"ICMP {name} id {self.identifier} seq {self.sequence}"
