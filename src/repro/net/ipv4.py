"""IPv4 packets (RFC 791) with header checksum and option support."""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace

from repro.net.addresses import IPv4Address
from repro.net.checksum import internet_checksum
from repro.net.errors import PacketDecodeError

IPPROTO_ICMP = 1
IPPROTO_TCP = 6
IPPROTO_UDP = 17

_FIXED = struct.Struct("!BBHHHBBH4s4s")


@dataclass
class IPv4Packet:
    """An IPv4 packet.

    The header checksum is computed on serialisation; parsing verifies it
    and raises :class:`PacketDecodeError` on corruption, so the simulator
    catches any switch that mangles bytes it should not touch.
    """

    src: IPv4Address
    dst: IPv4Address
    protocol: int
    payload: bytes = b""
    ttl: int = 64
    dscp: int = 0
    ecn: int = 0
    identification: int = 0
    flags: int = 0b010  # don't-fragment, matching common OS defaults
    fragment_offset: int = 0
    options: bytes = field(default=b"")

    def __post_init__(self) -> None:
        self.src = IPv4Address(self.src)
        self.dst = IPv4Address(self.dst)
        if not 0 <= self.protocol <= 255:
            raise ValueError(f"protocol out of range: {self.protocol}")
        if not 0 <= self.ttl <= 255:
            raise ValueError(f"TTL out of range: {self.ttl}")
        if len(self.options) % 4:
            raise ValueError("IPv4 options must be padded to 32-bit words")
        if len(self.options) > 40:
            raise ValueError("IPv4 options longer than 40 bytes")
        self.payload = bytes(self.payload)

    @property
    def ihl(self) -> int:
        """Header length in 32-bit words."""
        return 5 + len(self.options) // 4

    @property
    def total_length(self) -> int:
        return self.ihl * 4 + len(self.payload)

    def decrement_ttl(self) -> "IPv4Packet":
        """Return a copy with TTL reduced by one (raises at zero)."""
        if self.ttl == 0:
            raise ValueError("TTL already zero")
        return replace(self, ttl=self.ttl - 1)

    def header_bytes(self, checksum: int = 0) -> bytes:
        version_ihl = (4 << 4) | self.ihl
        tos = (self.dscp << 2) | self.ecn
        flags_frag = (self.flags << 13) | self.fragment_offset
        return (
            _FIXED.pack(
                version_ihl,
                tos,
                self.total_length,
                self.identification,
                flags_frag,
                self.ttl,
                self.protocol,
                checksum,
                self.src.packed,
                self.dst.packed,
            )
            + self.options
        )

    def to_bytes(self) -> bytes:
        checksum = internet_checksum(self.header_bytes(checksum=0))
        return self.header_bytes(checksum=checksum) + self.payload

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Packet":
        if len(data) < 20:
            raise PacketDecodeError("ipv4", f"header too short: {len(data)} bytes")
        (
            version_ihl,
            tos,
            total_length,
            identification,
            flags_frag,
            ttl,
            protocol,
            checksum,
            src,
            dst,
        ) = _FIXED.unpack_from(data)
        version = version_ihl >> 4
        if version != 4:
            raise PacketDecodeError("ipv4", f"not IPv4 (version {version})")
        ihl = version_ihl & 0x0F
        header_len = ihl * 4
        if ihl < 5 or len(data) < header_len:
            raise PacketDecodeError("ipv4", f"bad IHL {ihl}")
        if total_length < header_len or total_length > len(data):
            raise PacketDecodeError(
                "ipv4", f"bad total length {total_length} (buffer {len(data)})"
            )
        if internet_checksum(data[:header_len]) != 0:
            raise PacketDecodeError("ipv4", "header checksum mismatch")
        return cls(
            src=IPv4Address(src),
            dst=IPv4Address(dst),
            protocol=protocol,
            payload=data[header_len:total_length],
            ttl=ttl,
            dscp=tos >> 2,
            ecn=tos & 0x3,
            identification=identification,
            flags=flags_frag >> 13,
            fragment_offset=flags_frag & 0x1FFF,
            options=data[20:header_len],
        )

    def __str__(self) -> str:
        return (
            f"IP {self.src} > {self.dst} proto {self.protocol} "
            f"ttl {self.ttl} len {self.total_length}"
        )
