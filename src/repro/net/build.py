"""Convenience constructors for full protocol stacks.

Tests, traffic generators and examples all need "an IPv4/UDP frame from
A to B" in one call; these helpers keep that noise out of the call
sites while still producing byte-accurate frames.
"""

from __future__ import annotations

from repro.net.addresses import IPv4Address, MACAddress
from repro.net.arp import ArpPacket
from repro.net.ethernet import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    EthernetFrame,
)
from repro.net.icmp import IcmpPacket
from repro.net.ipv4 import IPPROTO_ICMP, IPPROTO_TCP, IPPROTO_UDP, IPv4Packet
from repro.net.tcp import TcpSegment
from repro.net.udp import UdpDatagram


def ethernet_ipv4(
    src_mac: MACAddress,
    dst_mac: MACAddress,
    ip_packet: IPv4Packet,
    vlan_id: "int | None" = None,
) -> EthernetFrame:
    """Wrap an IPv4 packet in an Ethernet frame, optionally 802.1Q tagged."""
    frame = EthernetFrame(
        dst=dst_mac, src=src_mac, ethertype=ETHERTYPE_IPV4, payload=ip_packet.to_bytes()
    )
    if vlan_id is not None:
        frame = frame.push_vlan(vlan_id)
    return frame


def udp_frame(
    src_mac: MACAddress,
    dst_mac: MACAddress,
    src_ip: IPv4Address,
    dst_ip: IPv4Address,
    src_port: int,
    dst_port: int,
    payload: bytes = b"",
    ttl: int = 64,
    vlan_id: "int | None" = None,
) -> EthernetFrame:
    """Build an Ethernet/IPv4/UDP frame."""
    datagram = UdpDatagram(src_port=src_port, dst_port=dst_port, payload=payload)
    packet = IPv4Packet(
        src=src_ip,
        dst=dst_ip,
        protocol=IPPROTO_UDP,
        payload=datagram.to_bytes(src_ip, dst_ip),
        ttl=ttl,
    )
    return ethernet_ipv4(src_mac, dst_mac, packet, vlan_id=vlan_id)


def tcp_frame(
    src_mac: MACAddress,
    dst_mac: MACAddress,
    src_ip: IPv4Address,
    dst_ip: IPv4Address,
    segment: TcpSegment,
    ttl: int = 64,
    vlan_id: "int | None" = None,
) -> EthernetFrame:
    """Build an Ethernet/IPv4/TCP frame from a prepared segment."""
    packet = IPv4Packet(
        src=src_ip,
        dst=dst_ip,
        protocol=IPPROTO_TCP,
        payload=segment.to_bytes(src_ip, dst_ip),
        ttl=ttl,
    )
    return ethernet_ipv4(src_mac, dst_mac, packet, vlan_id=vlan_id)


def icmp_echo_frame(
    src_mac: MACAddress,
    dst_mac: MACAddress,
    src_ip: IPv4Address,
    dst_ip: IPv4Address,
    identifier: int,
    sequence: int,
    payload: bytes = b"",
    vlan_id: "int | None" = None,
) -> EthernetFrame:
    """Build an Ethernet/IPv4/ICMP echo-request frame."""
    icmp = IcmpPacket.echo_request(identifier=identifier, sequence=sequence, payload=payload)
    packet = IPv4Packet(
        src=src_ip, dst=dst_ip, protocol=IPPROTO_ICMP, payload=icmp.to_bytes()
    )
    return ethernet_ipv4(src_mac, dst_mac, packet, vlan_id=vlan_id)


def arp_frame(arp: ArpPacket, src_mac: "MACAddress | None" = None) -> EthernetFrame:
    """Wrap an ARP packet; requests go to broadcast, replies unicast."""
    from repro.net.addresses import BROADCAST_MAC

    dst = BROADCAST_MAC if int(arp.target_mac) == 0 else arp.target_mac
    return EthernetFrame(
        dst=dst,
        src=src_mac if src_mac is not None else arp.sender_mac,
        ethertype=ETHERTYPE_ARP,
        payload=arp.to_bytes(),
    )


def parse_ipv4(frame: EthernetFrame) -> "IPv4Packet | None":
    """Parse the IPv4 payload of *frame*, or None if not IPv4."""
    if frame.ethertype != ETHERTYPE_IPV4:
        return None
    return IPv4Packet.from_bytes(frame.payload)


def parse_udp(frame: EthernetFrame) -> "tuple[IPv4Packet, UdpDatagram] | None":
    """Parse Ethernet/IPv4/UDP, or None if the stack doesn't match."""
    packet = parse_ipv4(frame)
    if packet is None or packet.protocol != IPPROTO_UDP:
        return None
    return packet, UdpDatagram.from_bytes(packet.payload, packet.src, packet.dst)


def parse_tcp(frame: EthernetFrame) -> "tuple[IPv4Packet, TcpSegment] | None":
    """Parse Ethernet/IPv4/TCP, or None if the stack doesn't match."""
    packet = parse_ipv4(frame)
    if packet is None or packet.protocol != IPPROTO_TCP:
        return None
    return packet, TcpSegment.from_bytes(packet.payload, packet.src, packet.dst)


def parse_arp(frame: EthernetFrame) -> "ArpPacket | None":
    """Parse the ARP payload of *frame*, or None if not ARP."""
    if frame.ethertype != ETHERTYPE_ARP:
        return None
    return ArpPacket.from_bytes(frame.payload)
