"""Toy HTTP/1.1 request/response framing.

The load-balancer and parental-control demos move web traffic; the
hosts in the simulator exchange these small, well-formed HTTP messages
over the TCP segments so policies that inspect the Host header (the PC
use case's "certain web pages") have real bytes to look at.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.errors import PacketDecodeError


@dataclass
class HttpRequest:
    """An HTTP/1.1 request line + headers + optional body."""

    method: str = "GET"
    path: str = "/"
    host: str = ""
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def to_bytes(self) -> bytes:
        lines = [f"{self.method} {self.path} HTTP/1.1"]
        all_headers = dict(self.headers)
        if self.host and "Host" not in all_headers:
            all_headers = {"Host": self.host, **all_headers}
        if self.body and "Content-Length" not in all_headers:
            all_headers["Content-Length"] = str(len(self.body))
        lines.extend(f"{name}: {value}" for name, value in all_headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
        return head + self.body

    @classmethod
    def from_bytes(cls, data: bytes) -> "HttpRequest":
        try:
            head, _, body = data.partition(b"\r\n\r\n")
            text = head.decode("ascii")
        except UnicodeDecodeError as exc:
            raise PacketDecodeError("http", f"non-ascii header: {exc}") from exc
        lines = text.split("\r\n")
        if not lines or len(lines[0].split(" ")) != 3:
            raise PacketDecodeError("http", f"bad request line: {lines[:1]}")
        method, path, version = lines[0].split(" ")
        if not version.startswith("HTTP/"):
            raise PacketDecodeError("http", f"bad version: {version}")
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise PacketDecodeError("http", f"bad header line: {line!r}")
            headers[name.strip()] = value.strip()
        return cls(
            method=method,
            path=path,
            host=headers.get("Host", ""),
            headers=headers,
            body=body,
        )

    def __str__(self) -> str:
        return f"HTTP {self.method} {self.host}{self.path}"


@dataclass
class HttpResponse:
    """An HTTP/1.1 status line + headers + body."""

    status: int = 200
    reason: str = "OK"
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def to_bytes(self) -> bytes:
        all_headers = dict(self.headers)
        if "Content-Length" not in all_headers:
            all_headers["Content-Length"] = str(len(self.body))
        lines = [f"HTTP/1.1 {self.status} {self.reason}"]
        lines.extend(f"{name}: {value}" for name, value in all_headers.items())
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
        return head + self.body

    @classmethod
    def from_bytes(cls, data: bytes) -> "HttpResponse":
        try:
            head, _, body = data.partition(b"\r\n\r\n")
            text = head.decode("ascii")
        except UnicodeDecodeError as exc:
            raise PacketDecodeError("http", f"non-ascii header: {exc}") from exc
        lines = text.split("\r\n")
        parts = lines[0].split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/"):
            raise PacketDecodeError("http", f"bad status line: {lines[:1]}")
        status = int(parts[1])
        reason = parts[2] if len(parts) == 3 else ""
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise PacketDecodeError("http", f"bad header line: {line!r}")
            headers[name.strip()] = value.strip()
        return cls(status=status, reason=reason, headers=headers, body=body)

    def __str__(self) -> str:
        return f"HTTP {self.status} {self.reason} len {len(self.body)}"
