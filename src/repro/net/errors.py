"""Exceptions raised by the packet model."""


class PacketDecodeError(ValueError):
    """Raised when a byte buffer cannot be parsed as the expected header.

    Carries enough context (protocol name and reason) for the simulator's
    capture tooling to report malformed frames precisely.
    """

    def __init__(self, protocol: str, reason: str) -> None:
        self.protocol = protocol
        self.reason = reason
        super().__init__(f"{protocol}: {reason}")
