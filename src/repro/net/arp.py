"""ARP for IPv4 over Ethernet (RFC 826)."""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.net.addresses import IPv4Address, MACAddress
from repro.net.errors import PacketDecodeError

ARP_OP_REQUEST = 1
ARP_OP_REPLY = 2

_HEADER = struct.Struct("!HHBBH")
_HTYPE_ETHERNET = 1
_PTYPE_IPV4 = 0x0800


@dataclass
class ArpPacket:
    """An Ethernet/IPv4 ARP packet."""

    opcode: int
    sender_mac: MACAddress
    sender_ip: IPv4Address
    target_mac: MACAddress
    target_ip: IPv4Address

    def __post_init__(self) -> None:
        if self.opcode not in (ARP_OP_REQUEST, ARP_OP_REPLY):
            raise ValueError(f"unsupported ARP opcode: {self.opcode}")
        self.sender_mac = MACAddress(self.sender_mac)
        self.target_mac = MACAddress(self.target_mac)
        self.sender_ip = IPv4Address(self.sender_ip)
        self.target_ip = IPv4Address(self.target_ip)

    @classmethod
    def request(
        cls, sender_mac: MACAddress, sender_ip: IPv4Address, target_ip: IPv4Address
    ) -> "ArpPacket":
        """Build a who-has request for *target_ip*."""
        return cls(
            opcode=ARP_OP_REQUEST,
            sender_mac=sender_mac,
            sender_ip=sender_ip,
            target_mac=MACAddress(0),
            target_ip=target_ip,
        )

    def make_reply(self, responder_mac: MACAddress) -> "ArpPacket":
        """Build the is-at reply answering this request."""
        if self.opcode != ARP_OP_REQUEST:
            raise ValueError("can only reply to an ARP request")
        return ArpPacket(
            opcode=ARP_OP_REPLY,
            sender_mac=responder_mac,
            sender_ip=self.target_ip,
            target_mac=self.sender_mac,
            target_ip=self.sender_ip,
        )

    def to_bytes(self) -> bytes:
        header = _HEADER.pack(_HTYPE_ETHERNET, _PTYPE_IPV4, 6, 4, self.opcode)
        return (
            header
            + self.sender_mac.packed
            + self.sender_ip.packed
            + self.target_mac.packed
            + self.target_ip.packed
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "ArpPacket":
        if len(data) < 28:
            raise PacketDecodeError("arp", f"packet too short: {len(data)} bytes")
        htype, ptype, hlen, plen, opcode = _HEADER.unpack_from(data)
        if htype != _HTYPE_ETHERNET or ptype != _PTYPE_IPV4:
            raise PacketDecodeError(
                "arp", f"unsupported htype/ptype: {htype}/{ptype:#06x}"
            )
        if hlen != 6 or plen != 4:
            raise PacketDecodeError("arp", f"unsupported address sizes: {hlen}/{plen}")
        return cls(
            opcode=opcode,
            sender_mac=MACAddress(data[8:14]),
            sender_ip=IPv4Address(data[14:18]),
            target_mac=MACAddress(data[18:24]),
            target_ip=IPv4Address(data[24:28]),
        )

    def __str__(self) -> str:
        if self.opcode == ARP_OP_REQUEST:
            return f"ARP who-has {self.target_ip} tell {self.sender_ip}"
        return f"ARP {self.sender_ip} is-at {self.sender_mac}"
